package power

import (
	"math"
	"testing"
	"time"
)

func TestModelWatts(t *testing.T) {
	m := Model{OffWatts: 5, IdleWatts: 50, PeakWatts: 100}
	cases := []struct {
		on   bool
		util float64
		want float64
	}{
		{false, 0, 5},
		{false, 1, 5},
		{true, 0, 50},
		{true, 1, 100},
		{true, 0.5, 75},
		{true, -1, 50}, // clamped
		{true, 2, 100}, // clamped
	}
	for _, c := range cases {
		if got := m.Watts(c.on, c.util); got != c.want {
			t.Errorf("Watts(%v, %g) = %g, want %g", c.on, c.util, got, c.want)
		}
	}
}

func TestMeterRejectsTimeTravel(t *testing.T) {
	m := NewMeter()
	if err := m.Record(time.Minute, map[string]float64{"cache": 100}); err != nil {
		t.Fatal(err)
	}
	if err := m.Record(time.Second, map[string]float64{"cache": 100}); err == nil {
		t.Fatal("out-of-order sample accepted")
	}
}

func TestMeterEnergyConstantLoad(t *testing.T) {
	m := NewMeter()
	// 100 W for exactly one hour sampled every 15s => 100 Wh.
	for at := time.Duration(0); at <= time.Hour; at += SampleInterval {
		if err := m.Record(at, map[string]float64{"cache": 100}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.EnergyWh("cache"); math.Abs(got-100) > 1e-9 {
		t.Fatalf("EnergyWh = %g, want 100", got)
	}
	if got := m.TotalEnergyWh(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("TotalEnergyWh = %g, want 100", got)
	}
}

func TestMeterTrapezoidalRamp(t *testing.T) {
	m := NewMeter()
	// Linear ramp 0..100 W over 1h => average 50 W => 50 Wh.
	for at := time.Duration(0); at <= time.Hour; at += time.Minute {
		w := 100 * at.Seconds() / 3600
		if err := m.Record(at, map[string]float64{"web": w}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.EnergyWh("web"); math.Abs(got-50) > 1e-9 {
		t.Fatalf("EnergyWh = %g, want 50", got)
	}
}

func TestMeterMultiTier(t *testing.T) {
	m := NewMeter()
	for at := time.Duration(0); at <= time.Hour; at += SampleInterval {
		watts := map[string]float64{"cache": 60, "db": 40}
		if at >= 30*time.Minute {
			watts["web"] = 20 // tier appears mid-run
		}
		if err := m.Record(at, watts); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Tiers(); len(got) != 3 || got[0] != "cache" || got[1] != "db" || got[2] != "web" {
		t.Fatalf("Tiers = %v", got)
	}
	if got := m.EnergyWh("cache"); math.Abs(got-60) > 1e-9 {
		t.Fatalf("cache = %g Wh, want 60", got)
	}
	// web ran half the time at 20 W => ≈10 Wh (trapezoid smears one
	// interval at the step).
	if got := m.EnergyWh("web"); math.Abs(got-10) > 0.1 {
		t.Fatalf("web = %g Wh, want ≈10", got)
	}
	// Total series sums tiers per instant.
	_, total := m.TotalSeries()
	if total[0] != 100 {
		t.Fatalf("total[0] = %g, want 100", total[0])
	}
	if last := total[len(total)-1]; last != 120 {
		t.Fatalf("total[last] = %g, want 120", last)
	}
	if got, want := m.TotalEnergyWh("cache", "db"), 100.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalEnergyWh(cache,db) = %g, want %g", got, want)
	}
}

func TestMeterEmptyAndUnknownTier(t *testing.T) {
	m := NewMeter()
	if got := m.EnergyWh("nope"); got != 0 {
		t.Fatalf("empty meter energy = %g", got)
	}
	if times, watts := m.Series("nope"); times != nil || watts != nil {
		t.Fatal("unknown tier returned data")
	}
	if m.Samples() != 0 {
		t.Fatal("empty meter has samples")
	}
}

// Shutting servers off must reduce integrated energy by the modelled
// gap — the mechanism behind the paper's Fig. 11 savings.
func TestEnergySavingFromPoweringOff(t *testing.T) {
	static, dynamic := NewMeter(), NewMeter()
	model := DefaultServer
	const servers = 10
	for at := time.Duration(0); at <= 2*time.Hour; at += SampleInterval {
		staticW := float64(servers) * model.Watts(true, 0.3)
		on := servers
		if at >= time.Hour {
			on = servers / 2
		}
		dynW := float64(on)*model.Watts(true, 0.6) + float64(servers-on)*model.Watts(false, 0)
		static.Record(at, map[string]float64{"cache": staticW})
		dynamic.Record(at, map[string]float64{"cache": dynW})
	}
	if static.EnergyWh("cache") <= dynamic.EnergyWh("cache") {
		t.Fatalf("static %g Wh <= dynamic %g Wh; provisioning saved nothing",
			static.EnergyWh("cache"), dynamic.EnergyWh("cache"))
	}
}
