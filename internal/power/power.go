// Package power models the measurement side of the paper's evaluation
// hardware: per-server power draw (a linear utilisation model standard
// for commodity servers like the paper's Dell PowerEdge R210s) and a
// PDU-style meter that records per-tier watt readings on a fixed
// sampling interval (the paper's Avocent PM3000 samples every 15 s) and
// integrates them into energy for the Fig. 10 curves and Fig. 11 bars.
package power

import (
	"fmt"
	"sort"
	"time"
)

// Model is a per-server power model.
type Model struct {
	// OffWatts is drawn when the server is powered off but still
	// plugged into the PDU (standby).
	OffWatts float64
	// IdleWatts is drawn at zero utilisation.
	IdleWatts float64
	// PeakWatts is drawn at full utilisation.
	PeakWatts float64
}

// DefaultServer approximates the paper's Dell PowerEdge R210.
var DefaultServer = Model{OffWatts: 6, IdleWatts: 55, PeakWatts: 105}

// Watts returns the draw for a power state and utilisation in [0,1].
func (m Model) Watts(on bool, utilization float64) float64 {
	if !on {
		return m.OffWatts
	}
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return m.IdleWatts + utilization*(m.PeakWatts-m.IdleWatts)
}

// SampleInterval is the paper's PDU sampling period.
const SampleInterval = 15 * time.Second

// Meter accumulates timestamped per-tier watt readings and integrates
// them into energy. Samples must be added in nondecreasing time order.
type Meter struct {
	times   []time.Duration
	byTier  map[string][]float64
	tierSet []string
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{byTier: make(map[string][]float64)}
}

// Record appends one sampling instant with per-tier watt readings.
// Tiers absent from a sample are recorded as 0 for that instant.
func (m *Meter) Record(at time.Duration, watts map[string]float64) error {
	if n := len(m.times); n > 0 && at < m.times[n-1] {
		return fmt.Errorf("power: sample at %v precedes last sample %v", at, m.times[n-1])
	}
	for tier := range watts {
		if _, ok := m.byTier[tier]; !ok {
			// Backfill zeros for instants before this tier appeared.
			m.byTier[tier] = make([]float64, len(m.times))
			m.tierSet = append(m.tierSet, tier)
			sort.Strings(m.tierSet)
		}
	}
	m.times = append(m.times, at)
	for tier, series := range m.byTier {
		series = append(series, watts[tier])
		m.byTier[tier] = series
	}
	return nil
}

// Tiers returns the tier names seen so far, sorted.
func (m *Meter) Tiers() []string { return append([]string(nil), m.tierSet...) }

// Samples returns the sampling count.
func (m *Meter) Samples() int { return len(m.times) }

// Series returns the (time, watts) series for a tier. The slices are
// copies.
func (m *Meter) Series(tier string) ([]time.Duration, []float64) {
	series, ok := m.byTier[tier]
	if !ok {
		return nil, nil
	}
	return append([]time.Duration(nil), m.times...), append([]float64(nil), series...)
}

// TotalSeries returns the summed watts across all tiers per instant.
func (m *Meter) TotalSeries() ([]time.Duration, []float64) {
	total := make([]float64, len(m.times))
	for _, series := range m.byTier {
		for i, w := range series {
			total[i] += w
		}
	}
	return append([]time.Duration(nil), m.times...), total
}

// EnergyWh integrates a tier's power over time (trapezoidal rule) and
// returns watt-hours. Unknown tiers integrate to 0.
func (m *Meter) EnergyWh(tier string) float64 {
	return integrateWh(m.times, m.byTier[tier])
}

// TotalEnergyWh integrates the summed draw of the given tiers (all
// tiers when none are given).
func (m *Meter) TotalEnergyWh(tiers ...string) float64 {
	if len(tiers) == 0 {
		tiers = m.tierSet
	}
	total := 0.0
	for _, tier := range tiers {
		total += m.EnergyWh(tier)
	}
	return total
}

func integrateWh(times []time.Duration, watts []float64) float64 {
	if len(times) < 2 || len(watts) < 2 {
		return 0
	}
	joules := 0.0
	for i := 1; i < len(times); i++ {
		dt := (times[i] - times[i-1]).Seconds()
		joules += dt * (watts[i] + watts[i-1]) / 2
	}
	return joules / 3600
}
