package check

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"proteus/internal/faultinject"
	"proteus/internal/telemetry"
	"proteus/internal/testutil/clustertest"
	"proteus/internal/webtier"
)

// vtimer is a cancellable virtual timer for the live plane: the
// coordinator's TTL expiry schedules through After, and the clock only
// moves when the schedule says so (StepAdvance). Cancellation must be
// real — an overlapping transition cancels the pending expiry, and a
// stale fire would finalize the newer window early, which is exactly
// the premature power-off the checker exists to catch.
type vtimer struct {
	now     time.Duration
	entries []*ventry
}

type ventry struct {
	deadline time.Duration
	fn       func()
	canceled bool
}

func (vt *vtimer) After(d time.Duration, fn func()) func() {
	e := &ventry{deadline: vt.now + d, fn: fn}
	vt.entries = append(vt.entries, e)
	return func() { e.canceled = true }
}

// Advance moves the clock and fires due entries in deadline order
// (registration order breaks ties). Fired callbacks may schedule or
// cancel further entries.
func (vt *vtimer) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	target := vt.now + d
	for {
		best := -1
		for i, e := range vt.entries {
			if e.canceled || e.deadline > target {
				continue
			}
			if best == -1 || e.deadline < vt.entries[best].deadline {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := vt.entries[best]
		vt.entries = append(vt.entries[:best], vt.entries[best+1:]...)
		// Fire at the entry's own deadline: a callback that schedules a
		// relative delay measures from its fire time, not the skip's end.
		vt.now = e.deadline
		e.fn()
	}
	vt.now = target
	live := vt.entries[:0]
	for _, e := range vt.entries {
		if !e.canceled {
			live = append(live, e)
		}
	}
	vt.entries = live
}

// backingFunc adapts the oracle's versioned map to webtier.Backing.
type backingFunc func(key string) (string, bool)

func (f backingFunc) Get(key string) ([]byte, error) {
	v, ok := f(key)
	if !ok {
		return nil, fmt.Errorf("check: backing store has no key %q", key)
	}
	return []byte(v), nil
}

// livePlane drives the real stack — cluster.Coordinator over TCP
// cacheserver.LocalNodes, fronted by webtier.Frontend — through the
// checker's step vocabulary.
type livePlane struct {
	env   *clustertest.Env
	front *webtier.Frontend
	inj   *faultinject.Injector
	vt    *vtimer
	log   *telemetry.EventLog
}

func newLivePlane(opt Options, db func(key string) (string, bool)) (*livePlane, error) {
	if opt.SeedBug || opt.SeedBugFanout {
		return nil, fmt.Errorf("check: the seeded-bug hooks are sim-plane only")
	}
	inj := faultinject.New(opt.Seed)
	vt := &vtimer{}
	log := telemetry.NewEventLog(telemetry.EventLogConfig{Clock: func() time.Duration { return vt.now }})
	//lint:allow transdeterminism the live plane half of the conformance harness drives real network components on purpose; determinism is enforced on the model side
	env, err := clustertest.New(clustertest.Opts{
		Nodes:         opt.Servers,
		InitialActive: opt.InitialActive,
		TTL:           opt.TTL,
		HotReplicas:   opt.HotReplicas,
		Backend:       opt.Backend,
		Faults:        inj,
		Seed:          opt.Seed,
		After:         vt.After,
		Events:        log,
	})
	if err != nil {
		return nil, err
	}
	front, err := webtier.New(webtier.Config{
		Coordinator: env.Coord,
		DB:          backingFunc(db),
		Events:      log,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	return &livePlane{env: env, front: front, inj: inj, vt: vt, log: log}, nil
}

func (p *livePlane) Name() string { return "live" }

func (p *livePlane) Get(key string) Observation {
	//lint:allow transdeterminism the live plane half of the conformance harness drives real network components on purpose; determinism is enforced on the model side
	data, src, err := p.front.Fetch(key)
	if err != nil {
		return Observation{Err: err.Error()}
	}
	obs := Observation{Value: string(data), Found: true}
	switch src {
	case webtier.SourceNewCache:
		obs.Src = SourceHit
	case webtier.SourceOldCache:
		obs.Src = SourceMigrated
	default:
		obs.Src = SourceDB
	}
	return obs
}

func (p *livePlane) Set(key, value string) Observation {
	//lint:allow transdeterminism the live plane half of the conformance harness drives real network components on purpose; determinism is enforced on the model side
	if err := p.front.Update(key, []byte(value)); err != nil {
		return Observation{Err: err.Error()}
	}
	return Observation{}
}

func (p *livePlane) Scale(n int) Observation {
	//lint:allow transdeterminism the live plane half of the conformance harness drives real network components on purpose; determinism is enforced on the model side
	err := p.env.Coord.SetActive(n)
	if err != nil && strings.HasPrefix(err.Error(), "cluster: digest from node") {
		// A relocation source that cannot produce a digest degrades its
		// keys to the database path; the transition proceeds. The oracle
		// models the degradation, so the surfaced error is expected
		// whenever a source is unreachable — not a violation.
		err = nil
	}
	if err != nil {
		return Observation{Err: err.Error()}
	}
	return Observation{}
}

func (p *livePlane) Promote(key string) Observation {
	//lint:allow transdeterminism the live plane half of the conformance harness drives real network components on purpose; determinism is enforced on the model side
	hot, err := p.env.Coord.Promote(key)
	if err != nil {
		return Observation{Err: err.Error()}
	}
	return Observation{Found: hot}
}

func (p *livePlane) Demote(key string) Observation {
	return Observation{Found: p.env.Coord.Demote(key)}
}

func (p *livePlane) Crash(server int) {
	if server < 0 || server >= len(p.env.Locals) {
		return
	}
	_ = p.env.Locals[server].PowerOff()
}

func (p *livePlane) Partition(server int) { p.inj.Partition(server) }
func (p *livePlane) Heal(server int)      { p.inj.Heal(server) }

func (p *livePlane) Advance(d time.Duration) { p.vt.Advance(d) }

func (p *livePlane) State() PlaneState {
	st := PlaneState{Active: p.env.Coord.Active(), Transition: p.env.Coord.InTransition()}
	for _, l := range p.env.Locals {
		ns := NodeState{On: l.Running()}
		if srv := l.Server(); srv != nil {
			keys := srv.Cache().Keys() // LRU order; probes want a canonical order
			sort.Strings(keys)
			ns.Keys = keys
		}
		st.Nodes = append(st.Nodes, ns)
	}
	st.Digest = func(node int, key string) bool {
		srv := p.env.Locals[node].Server()
		if srv == nil {
			return false
		}
		return srv.DigestContains(key)
	}
	st.Value = func(node int, key string) (string, bool) {
		srv := p.env.Locals[node].Server()
		if srv == nil {
			return "", false
		}
		v, ok := srv.Cache().Get(key)
		return string(v), ok
	}
	return st
}

func (p *livePlane) Events() *telemetry.EventLog { return p.log }

func (p *livePlane) Close() { p.env.Close() }
