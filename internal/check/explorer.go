package check

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"proteus/internal/core"
)

// Report is the outcome of one conformance run. With one seed and one
// Options value the report is byte-identical across runs and machines:
// everything in it derives from the deterministic schedule and the
// virtual clock.
type Report struct {
	Opt       Options
	History   []Step // generated schedule, truncated at the violation
	Violation *Violation
	Plane     string // violating plane name; "" when clean
	Stats     Stats  // stats of the primary session over History
	// Min is the shrunk reproducing schedule (nil when the run was
	// clean or shrinking was disabled).
	Min []Step
	// MinViolation re-states the violation as the minimal schedule
	// triggers it (probe and detail can legitimately differ from the
	// original once context steps are gone).
	MinViolation *Violation
	// Events is the violating plane's telemetry event stream at the
	// failure point of the minimal (or, without shrinking, original)
	// schedule, as WriteJSON renders it.
	Events []byte
}

// Explore generates a seeded random schedule step by step and drives it
// against the configured plane(s), stopping at the first probe
// violation and (by default) shrinking the history to a minimal
// reproducing schedule.
func Explore(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{Opt: opt}
	kinds := sessionKinds(opt.Plane)
	sessions := make([]*session, 0, len(kinds))
	defer func() {
		for _, s := range sessions {
			s.close()
		}
	}()
	for _, k := range kinds {
		s, err := newSession(opt, k)
		if err != nil {
			return nil, err
		}
		sessions = append(sessions, s)
	}

	gen := newStepGen(opt)
	for i := 0; i < opt.Steps; i++ {
		st := gen.next(sessions[0].oracle.Active())
		rep.History = append(rep.History, st)
		v, plane, events := applyAll(sessions, i, st)
		if v != nil {
			rep.Violation, rep.Plane, rep.Events = v, plane, events
			break
		}
	}
	rep.Stats = sessions[0].stats
	rep.Stats.Flips = sessions[0].oracle.Flips()

	if rep.Violation != nil && !opt.NoShrink {
		min, minV, events, err := Shrink(opt, rep.History)
		if err != nil {
			return nil, err
		}
		if minV != nil {
			rep.Min, rep.MinViolation = min, minV
			if events != nil {
				rep.Events = events
			}
		}
	}
	return rep, nil
}

// Replay runs a fixed schedule (from a .check artifact) against the
// configured plane(s) and reports like Explore, without generating or
// shrinking anything.
func Replay(opt Options, steps []Step) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{Opt: opt, History: steps}
	v, plane, events, stats, err := runHistory(opt, steps)
	if err != nil {
		return nil, err
	}
	if v != nil {
		rep.History = steps[:v.Step+1]
	}
	rep.Violation, rep.Plane, rep.Events, rep.Stats = v, plane, events, stats
	return rep, nil
}

// stepGen draws schedule steps from a seeded stream. It tracks its own
// mirror of the partitioned set so heals target real partitions, and
// takes the current active-prefix size from the caller so scale steps
// are always ±1 moves.
type stepGen struct {
	rng         *rand.Rand
	opt         Options
	keys        []string
	partitioned map[int]bool
	skips       [4]time.Duration
}

func newStepGen(opt Options) *stepGen {
	return &stepGen{
		rng:         rand.New(rand.NewSource(opt.Seed)),
		opt:         opt,
		keys:        keyUniverse(opt.Keys),
		partitioned: make(map[int]bool),
		skips: [4]time.Duration{
			opt.TTL / 4,
			opt.TTL / 2,
			opt.TTL,
			2 * opt.TTL,
		},
	}
}

func (g *stepGen) key() string { return g.keys[g.rng.Intn(len(g.keys))] }

// hotKey draws from the hot candidate set: the first few keys of the
// universe, so promotes, demotes, skewed reads, and writes keep
// colliding on the same keys instead of spreading the hot set thin.
func (g *stepGen) hotKey() string {
	n := len(g.keys)
	if n > 8 {
		n = 8
	}
	return g.keys[g.rng.Intn(n)]
}

func (g *stepGen) scale(active int) Step {
	target := active + 1
	if g.rng.Intn(2) == 0 {
		target = active - 1
	}
	if target < 1 {
		target = active + 1
	}
	if target > g.opt.Servers {
		target = active - 1
	}
	if target < 1 || target == active {
		// Single-server universe: scaling is a no-op; read instead.
		return Step{Kind: StepGet, Key: g.key()}
	}
	return Step{Kind: StepScale, Target: target}
}

func (g *stepGen) partition() Step {
	s := g.rng.Intn(g.opt.Servers)
	g.partitioned[s] = true
	return Step{Kind: StepPartition, Server: s}
}

func (g *stepGen) heal() Step {
	if len(g.partitioned) == 0 {
		return Step{Kind: StepGet, Key: g.key()}
	}
	cut := make([]int, 0, len(g.partitioned))
	for s := range g.partitioned {
		cut = append(cut, s)
	}
	sort.Ints(cut)
	s := cut[g.rng.Intn(len(cut))]
	delete(g.partitioned, s)
	return Step{Kind: StepHeal, Server: s}
}

func (g *stepGen) next(active int) Step {
	if g.opt.HotReplicas > 1 {
		return g.nextReplicated(active)
	}
	switch p := g.rng.Intn(100); {
	case p < 55:
		return Step{Kind: StepGet, Key: g.key()}
	case p < 70:
		return Step{Kind: StepSet, Key: g.key()}
	case p < 78:
		return g.scale(active)
	case p < 86:
		return Step{Kind: StepAdvance, Skip: g.skips[g.rng.Intn(len(g.skips))]}
	case p < 90:
		return Step{Kind: StepCrash, Server: g.rng.Intn(g.opt.Servers)}
	case p < 95:
		return g.partition()
	default:
		return g.heal()
	}
}

// nextReplicated is the replication-aware distribution: it adds the
// promote/demote verbs and skews reads and writes toward the hot
// candidate set, so hot keys see the read/write/scale interleavings
// the replica probes exist to stress. It is a separate branch (not a
// re-weighting of next) so schedules for HotReplicas <= 1 stay
// byte-identical to earlier releases for any given seed.
func (g *stepGen) nextReplicated(active int) Step {
	switch p := g.rng.Intn(100); {
	case p < 40:
		if g.rng.Intn(2) == 0 {
			return Step{Kind: StepGet, Key: g.hotKey()}
		}
		return Step{Kind: StepGet, Key: g.key()}
	case p < 52:
		if g.rng.Intn(2) == 0 {
			return Step{Kind: StepSet, Key: g.hotKey()}
		}
		return Step{Kind: StepSet, Key: g.key()}
	case p < 60:
		return Step{Kind: StepPromote, Key: g.hotKey()}
	case p < 64:
		return Step{Kind: StepDemote, Key: g.hotKey()}
	case p < 72:
		return g.scale(active)
	case p < 80:
		return Step{Kind: StepAdvance, Skip: g.skips[g.rng.Intn(len(g.skips))]}
	case p < 85:
		return Step{Kind: StepCrash, Server: g.rng.Intn(g.opt.Servers)}
	case p < 92:
		return g.partition()
	default:
		return g.heal()
	}
}

// eventsJSON renders a plane's event log deterministically.
func eventsJSON(p Plane) []byte {
	var buf bytes.Buffer
	if err := p.Events().WriteJSON(&buf); err != nil {
		return nil
	}
	return buf.Bytes()
}

// Write renders the report as deterministic text: the format the CLI
// prints and the byte-identity acceptance check compares.
func (r *Report) Write(w io.Writer) error {
	o := r.Opt
	backend := ""
	if o.Backend != "" && o.Backend != core.BackendProteus {
		backend = fmt.Sprintf(" backend=%s", o.Backend)
	}
	replicas := ""
	if o.HotReplicas > 1 {
		replicas = fmt.Sprintf(" replicas=%d", o.HotReplicas)
	}
	if _, err := fmt.Fprintf(w, "proteus-check seed=%d steps=%d plane=%s servers=%d initial=%d keys=%d ttl=%s%s%s\n",
		o.Seed, o.Steps, o.Plane, o.Servers, o.InitialActive, o.Keys, o.TTL, replicas, backend); err != nil {
		return err
	}
	st := r.Stats
	hot := ""
	if o.HotReplicas > 1 {
		hot = fmt.Sprintf(" %d promotes %d demotes", st.Promotes, st.Demotes)
	}
	fmt.Fprintf(w, "executed %d steps: %d gets %d sets %d scales %d advances %d crashes %d partitions %d heals%s\n",
		len(r.History), st.Gets, st.Sets, st.Scales, st.Advances, st.Crashes, st.Partitions, st.Heals, hot)
	fmt.Fprintf(w, "sources: %d hit %d migrated %d db; %d ownership flips\n",
		st.Hits, st.Migrated, st.DBFetches, st.Flips)
	if r.Violation == nil {
		_, err := fmt.Fprintln(w, "outcome: ok (all probes passed)")
		return err
	}
	fmt.Fprintf(w, "outcome: VIOLATION on plane %s\n", r.Plane)
	fmt.Fprintf(w, "  %s\n", r.Violation)
	if r.Min != nil {
		fmt.Fprintf(w, "shrunk to %d steps (from %d):\n", len(r.Min), len(r.History))
		for i, s := range r.Min {
			fmt.Fprintf(w, "  %3d  %s\n", i, s)
		}
		if r.MinViolation != nil {
			fmt.Fprintf(w, "minimal schedule fails with: %s\n", r.MinViolation)
		}
	}
	return nil
}
