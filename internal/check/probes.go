package check

import (
	"fmt"
	"math"
	"sync"

	"proteus/internal/core"
)

// ProbeContext is everything a probe may inspect after one step: the
// reference model (already advanced past the step), the plane's
// observable state, and what the plane and oracle each said about the
// step itself.
type ProbeContext struct {
	Oracle     *Oracle
	State      PlaneState
	StepIndex  int
	Step       Step
	Obs        Observation
	Expected   Observation
	PrevActive int // active-prefix size before this step applied
}

// Probe is one pluggable invariant. Probes may carry state across steps
// (a fresh set is built per run); Check returns nil when the invariant
// holds.
type Probe interface {
	Name() string
	Check(pc *ProbeContext) *Violation
}

// defaultProbes builds the standard probe set, strongest first. The
// write-fanout probe runs before replica-consistency: a skipped
// fan-out first shows up as a value the replicas never received, and
// only later (after a second write) as divergence between copies.
func defaultProbes() []Probe {
	return []Probe{
		&conformanceProbe{},
		&powerProbe{},
		&writeFanoutProbe{},
		&replicaConsistencyProbe{},
		&residencyProbe{},
		&digestProbe{},
		&transitionProbe{},
		&balanceProbe{},
		&migrationBoundProbe{},
		newDoubleMigrationProbe(),
	}
}

func violation(name string, pc *ProbeContext, format string, args ...interface{}) *Violation {
	return &Violation{Probe: name, Step: pc.StepIndex, Detail: fmt.Sprintf(format, args...)}
}

// conformanceProbe compares every observation with the oracle's
// prediction: reads must return exactly the predicted value from the
// predicted source (which encodes the no-stale-read-after-flip
// guarantee — the oracle serves the freshest copy Algorithm 2 can
// reach), and no step may surface a client-visible error.
type conformanceProbe struct{}

func (conformanceProbe) Name() string { return "conformance" }

func (conformanceProbe) Check(pc *ProbeContext) *Violation {
	if pc.Obs.Err != "" {
		return violation("conformance", pc, "%s: plane error: %s", pc.Step, pc.Obs.Err)
	}
	if pc.Step.Kind != StepGet {
		return nil
	}
	if pc.Obs.Found != pc.Expected.Found {
		return violation("conformance", pc, "%s: plane found=%v, oracle expects found=%v",
			pc.Step, pc.Obs.Found, pc.Expected.Found)
	}
	if pc.Obs.Value != pc.Expected.Value {
		return violation("conformance", pc, "%s: plane returned %q, oracle expects %q (stale or corrupt read)",
			pc.Step, pc.Obs.Value, pc.Expected.Value)
	}
	if pc.Obs.Src != pc.Expected.Src {
		return violation("conformance", pc, "%s: plane served from %s, oracle expects %s",
			pc.Step, pc.Obs.Src, pc.Expected.Src)
	}
	return nil
}

// powerProbe checks power-state agreement, which encodes the Section IV
// safety property: a dying server must stay powered until the TTL
// window closes (monotonic power-off safety), and no server powers off
// except by crash or finalize.
type powerProbe struct{}

func (powerProbe) Name() string { return "power-safety" }

func (powerProbe) Check(pc *ProbeContext) *Violation {
	for i := 0; i < pc.Oracle.Servers(); i++ {
		want, got := pc.Oracle.NodeOn(i), pc.State.Nodes[i].On
		if want == got {
			continue
		}
		if open, from, to := pc.Oracle.InTransition(); open && to < from && i >= to && i < from && want && !got {
			return violation("power-safety", pc,
				"node %d powered off during the open shrink window %d->%d (TTL not expired)", i, from, to)
		}
		return violation("power-safety", pc, "node %d power=%v, oracle expects %v", i, got, want)
	}
	return nil
}

// writeFanoutProbe checks write-through completeness for hot keys:
// after any step that wrote key through the cluster (an explicit Set,
// or a Get that fell through to the database), every reachable owner
// at the key's current replica depth must hold exactly the value the
// model installed there. A plane that writes only the primary strands
// the replicas on a stale copy — that stale copy is visible here
// immediately, before any read ever routes to it.
type writeFanoutProbe struct{}

func (writeFanoutProbe) Name() string { return "write-fanout" }

func (writeFanoutProbe) Check(pc *ProbeContext) *Violation {
	key := pc.Step.Key
	switch pc.Step.Kind {
	case StepSet:
	case StepGet:
		if pc.Expected.Src != SourceDB || !pc.Expected.Found {
			return nil
		}
	default:
		return nil
	}
	if !pc.Oracle.IsHot(key) {
		return nil
	}
	for _, owner := range pc.Oracle.Owners(key) {
		if !pc.Oracle.Reachable(owner) {
			continue
		}
		want, wantOK := pc.Oracle.NodeValue(owner, key)
		got, gotOK := pc.State.Value(owner, key)
		if wantOK != gotOK || (wantOK && want != got) {
			return violation("write-fanout", pc,
				"%s: hot key %q on owner %d: plane holds (%q, %v), fan-out should leave (%q, %v)",
				pc.Step, key, owner, got, gotOK, want, wantOK)
		}
	}
	return nil
}

// replicaConsistencyProbe checks the replica invariant after every
// step: for each hot key, all reachable current owners that hold a
// copy on the plane agree on its value. A missing copy is legal (a
// replica may have crashed and restarted cold, or the key may never
// have been written since promotion failed over) — two *different*
// values are not, because a load-routed read could then return either.
type replicaConsistencyProbe struct{}

func (replicaConsistencyProbe) Name() string { return "replica-consistency" }

func (replicaConsistencyProbe) Check(pc *ProbeContext) *Violation {
	for _, key := range pc.Oracle.HotKeys() {
		first := -1
		var firstVal string
		for _, owner := range pc.Oracle.Owners(key) {
			if !pc.Oracle.Reachable(owner) {
				continue
			}
			v, ok := pc.State.Value(owner, key)
			if !ok {
				continue
			}
			if first == -1 {
				first, firstVal = owner, v
				continue
			}
			if v != firstVal {
				return violation("replica-consistency", pc,
					"hot key %q diverges: owner %d holds %q, owner %d holds %q",
					key, first, firstVal, owner, v)
			}
		}
	}
	return nil
}

// residencyProbe checks that every node's resident key set matches the
// model exactly — write-throughs, migrations, flushes, and crash data
// loss all land where Algorithm 2 says they do.
type residencyProbe struct{}

func (residencyProbe) Name() string { return "residency" }

func (residencyProbe) Check(pc *ProbeContext) *Violation {
	for i := 0; i < pc.Oracle.Servers(); i++ {
		if !pc.State.Nodes[i].On {
			continue // power mismatches are powerProbe's report
		}
		want := pc.Oracle.Resident(i)
		got := pc.State.Nodes[i].Keys
		if len(want) != len(got) {
			return violation("residency", pc, "node %d holds %d keys, oracle expects %d",
				i, len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				return violation("residency", pc, "node %d resident set diverges at %q (oracle %q)",
					i, got[j], want[j])
			}
		}
	}
	return nil
}

// digestProbe checks digest↔cache exactness in the direction membership
// queries can decide: every resident key must be in its node's counting
// filter. (The converse — filter-positive but non-resident — is
// indistinguishable from a hash collision by membership queries, and
// harmless: Algorithm 2 treats it as a false positive and degrades to
// the database.)
type digestProbe struct{}

func (digestProbe) Name() string { return "digest-exact" }

func (digestProbe) Check(pc *ProbeContext) *Violation {
	for i := 0; i < pc.Oracle.Servers(); i++ {
		if !pc.State.Nodes[i].On {
			continue
		}
		for _, k := range pc.State.Nodes[i].Keys {
			if !pc.State.Digest(i, k) {
				return violation("digest-exact", pc, "node %d resident key %q missing from its digest", i, k)
			}
		}
	}
	return nil
}

// transitionProbe checks that the plane's transition window opens and
// closes exactly when the model's does.
type transitionProbe struct{}

func (transitionProbe) Name() string { return "transition-window" }

func (transitionProbe) Check(pc *ProbeContext) *Violation {
	open, from, to := pc.Oracle.InTransition()
	if pc.State.Transition != open {
		if open {
			return violation("transition-window", pc, "window %d->%d open in the model but closed on the plane", from, to)
		}
		return violation("transition-window", pc, "plane reports an open window; the model's is closed")
	}
	return nil
}

// balanceProbe checks the Balance Condition once per run, per prefix
// size. Algorithm 1 satisfies it exactly — every active server owns
// 1/n of the ring, checked against the exact rationals. The O(1)
// backends satisfy it in expectation only, so the probe routes a
// fixed deterministic key sample and bounds the worst per-server
// relative imbalance at ~6 binomial standard deviations (constants
// per (backend, n, sample): the measured values live in
// EXPERIMENTS.md). This is the quantified "balance relaxation" the
// backend trade-off buys.
type balanceProbe struct{ ran bool }

func (balanceProbe) Name() string { return "balance" }

func (p *balanceProbe) Check(pc *ProbeContext) *Violation {
	if p.ran {
		return nil
	}
	p.ran = true
	b := pc.Oracle.Backend()
	if b.Kind() == core.BackendProteus {
		const eps = 1e-9
		pl := pc.Oracle.Placement()
		for n := 1; n <= pc.Oracle.Servers(); n++ {
			for s := 0; s < n; s++ {
				f := pl.OwnedFraction(s, n)
				if math.Abs(f-1/float64(n)) > eps {
					return violation("balance", pc,
						"prefix %d: server %d owns fraction %.12f, balance condition wants %.12f", n, s, f, 1/float64(n))
				}
			}
		}
		return nil
	}
	sample := placementSample()
	counts := make([]int, pc.Oracle.Servers())
	for n := 1; n <= pc.Oracle.Servers(); n++ {
		for i := range counts[:n] {
			counts[i] = 0
		}
		for _, k := range sample {
			counts[b.Lookup(k, n)]++
		}
		limit := sampledBalanceLimit(n, len(sample))
		for s := 0; s < n; s++ {
			rel := math.Abs(float64(counts[s])*float64(n)/float64(len(sample)) - 1)
			if rel > limit {
				return violation("balance", pc,
					"prefix %d: server %d owns sampled fraction %.6f of %d keys, relative imbalance %.4f above the %.4f bound for backend %s",
					n, s, float64(counts[s])/float64(len(sample)), len(sample), rel, limit, b.Kind())
			}
		}
	}
	return nil
}

// placementSampleKeys sizes the deterministic key sample the O(1)
// geometry probes route. 4096 keys put one binomial standard deviation
// of per-server imbalance at √(n/4096) relative (~3.5% at n=5).
const placementSampleKeys = 4096

var (
	placementSampleOnce sync.Once
	placementSampleSet  []string
)

// placementSample returns the fixed sampled-probe key set. The keys
// are disjoint from the schedule's key universe ("k%03d") so the
// probes measure pure geometry, not workload.
func placementSample() []string {
	placementSampleOnce.Do(func() {
		placementSampleSet = make([]string, placementSampleKeys)
		for i := range placementSampleSet {
			placementSampleSet[i] = fmt.Sprintf("bal-%05d", i)
		}
	})
	return placementSampleSet
}

// sampledBalanceLimit bounds the worst per-server relative deviation
// for a uniform-in-expectation backend over `samples` keys: six
// binomial standard deviations plus a small absolute floor.
func sampledBalanceLimit(n, samples int) float64 {
	return 6*math.Sqrt(float64(n)/float64(samples)) + 0.02
}

// migrationBoundProbe checks, at every scale step, the paper's
// transition cost bound: the re-mapped fraction of the ring is at most
// |Δn|/max(n, n'). With hot-key replication it also bounds the flip's
// synchronous repair work: the hot-sync sweep installs at most
// |hot| × (R−1) copies, since each hot key re-syncs at most its R−1
// non-primary owners.
type migrationBoundProbe struct{}

func (migrationBoundProbe) Name() string { return "migration-bound" }

func (migrationBoundProbe) Check(pc *ProbeContext) *Violation {
	if pc.Step.Kind != StepScale {
		return nil
	}
	if r := pc.Oracle.HotReplicas(); r > 1 {
		installs, hotBefore := pc.Oracle.LastHotSync()
		if limit := hotBefore * (r - 1); installs > limit {
			return violation("migration-bound", pc,
				"hot-sync after flip installed %d copies, bound is %d (%d hot keys × %d extra replicas)",
				installs, limit, hotBefore, r-1)
		}
	}
	from, to := pc.PrevActive, pc.Oracle.Active()
	if from == to {
		return nil
	}
	delta := to - from
	if delta < 0 {
		delta = -delta
	}
	maxN := from
	if to > maxN {
		maxN = to
	}
	bound := float64(delta) / float64(maxN)
	b := pc.Oracle.Backend()
	if b.Kind() == core.BackendProteus {
		const eps = 1e-9
		frac := pc.Oracle.Placement().MigratedFraction(from, to)
		if frac > bound+eps {
			return violation("migration-bound", pc,
				"transition %d->%d re-maps fraction %.12f, above the |Δn|/max bound %.12f", from, to, frac, bound)
		}
		return nil
	}
	// O(1) backends: measure the moved fraction over the fixed key
	// sample (binomial slack on the bound) and require exact monotone
	// minimality per key — a mover's owner on the larger prefix must be
	// one of the added servers, under growth and shrink alike.
	sample := placementSample()
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	moved := 0
	for _, k := range sample {
		was, now := b.Lookup(k, from), b.Lookup(k, to)
		if was == now {
			continue
		}
		moved++
		widest := now
		if from > to {
			widest = was
		}
		if widest < lo || widest >= hi {
			return violation("migration-bound", pc,
				"transition %d->%d moved key %q from server %d to %d: backend %s must only remap into the added prefix [%d,%d)",
				from, to, k, was, now, b.Kind(), lo, hi)
		}
	}
	frac := float64(moved) / float64(len(sample))
	limit := bound + 6*math.Sqrt(bound/float64(len(sample))) + 0.01
	if frac > limit {
		return violation("migration-bound", pc,
			"transition %d->%d re-maps sampled fraction %.6f, above the |Δn|/max bound %.6f (+sampling slack = %.6f) for backend %s",
			from, to, frac, bound, limit, b.Kind())
	}
	return nil
}

// doubleMigrationProbe checks migration amortization: within one
// transition window a key migrates over the wire at most once, unless
// the copy installed on the new owner was genuinely lost (owner crash),
// the install was impossible (owner unreachable at migration time), or
// the owner is unreachable now (partitioned: the first copy exists but
// cannot serve, so re-migrating is the correct degradation).
// The claim is only made for singly-owned keys: a hot key consults one
// old owner per ring, so it may migrate up to R times in one window
// (once per replica), and the observation stream does not say which
// ring moved. Promotion and demotion change the consulted set, so
// either resets the key's record.
type doubleMigrationProbe struct {
	seen map[string]migrationRecord
}

type migrationRecord struct {
	flip       int
	installed  bool
	owner      int
	ownerEpoch int
}

func newDoubleMigrationProbe() *doubleMigrationProbe {
	return &doubleMigrationProbe{seen: make(map[string]migrationRecord)}
}

func (*doubleMigrationProbe) Name() string { return "double-migration" }

func (p *doubleMigrationProbe) Check(pc *ProbeContext) *Violation {
	if pc.Step.Kind == StepPromote || pc.Step.Kind == StepDemote {
		delete(p.seen, pc.Step.Key)
		return nil
	}
	if pc.Step.Kind != StepGet || pc.Obs.Src != SourceMigrated {
		return nil
	}
	key := pc.Step.Key
	if pc.Oracle.IsHot(key) {
		delete(p.seen, key)
		return nil
	}
	owner := pc.Oracle.Owner(key)
	rec, ok := p.seen[key]
	if ok && rec.flip == pc.Oracle.Flips() && rec.installed &&
		pc.Oracle.Epoch(rec.owner) == rec.ownerEpoch &&
		pc.Oracle.Reachable(rec.owner) {
		return violation("double-migration", pc,
			"key %q migrated twice in transition %d although owner %d kept the first copy",
			key, rec.flip, rec.owner)
	}
	p.seen[key] = migrationRecord{
		flip:       pc.Oracle.Flips(),
		installed:  pc.Oracle.Reachable(owner),
		owner:      owner,
		ownerEpoch: pc.Oracle.Epoch(owner),
	}
	return nil
}
