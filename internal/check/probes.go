package check

import (
	"fmt"
	"math"
)

// ProbeContext is everything a probe may inspect after one step: the
// reference model (already advanced past the step), the plane's
// observable state, and what the plane and oracle each said about the
// step itself.
type ProbeContext struct {
	Oracle     *Oracle
	State      PlaneState
	StepIndex  int
	Step       Step
	Obs        Observation
	Expected   Observation
	PrevActive int // active-prefix size before this step applied
}

// Probe is one pluggable invariant. Probes may carry state across steps
// (a fresh set is built per run); Check returns nil when the invariant
// holds.
type Probe interface {
	Name() string
	Check(pc *ProbeContext) *Violation
}

// defaultProbes builds the standard probe set, strongest first.
func defaultProbes() []Probe {
	return []Probe{
		&conformanceProbe{},
		&powerProbe{},
		&residencyProbe{},
		&digestProbe{},
		&transitionProbe{},
		&balanceProbe{},
		&migrationBoundProbe{},
		newDoubleMigrationProbe(),
	}
}

func violation(name string, pc *ProbeContext, format string, args ...interface{}) *Violation {
	return &Violation{Probe: name, Step: pc.StepIndex, Detail: fmt.Sprintf(format, args...)}
}

// conformanceProbe compares every observation with the oracle's
// prediction: reads must return exactly the predicted value from the
// predicted source (which encodes the no-stale-read-after-flip
// guarantee — the oracle serves the freshest copy Algorithm 2 can
// reach), and no step may surface a client-visible error.
type conformanceProbe struct{}

func (conformanceProbe) Name() string { return "conformance" }

func (conformanceProbe) Check(pc *ProbeContext) *Violation {
	if pc.Obs.Err != "" {
		return violation("conformance", pc, "%s: plane error: %s", pc.Step, pc.Obs.Err)
	}
	if pc.Step.Kind != StepGet {
		return nil
	}
	if pc.Obs.Found != pc.Expected.Found {
		return violation("conformance", pc, "%s: plane found=%v, oracle expects found=%v",
			pc.Step, pc.Obs.Found, pc.Expected.Found)
	}
	if pc.Obs.Value != pc.Expected.Value {
		return violation("conformance", pc, "%s: plane returned %q, oracle expects %q (stale or corrupt read)",
			pc.Step, pc.Obs.Value, pc.Expected.Value)
	}
	if pc.Obs.Src != pc.Expected.Src {
		return violation("conformance", pc, "%s: plane served from %s, oracle expects %s",
			pc.Step, pc.Obs.Src, pc.Expected.Src)
	}
	return nil
}

// powerProbe checks power-state agreement, which encodes the Section IV
// safety property: a dying server must stay powered until the TTL
// window closes (monotonic power-off safety), and no server powers off
// except by crash or finalize.
type powerProbe struct{}

func (powerProbe) Name() string { return "power-safety" }

func (powerProbe) Check(pc *ProbeContext) *Violation {
	for i := 0; i < pc.Oracle.Servers(); i++ {
		want, got := pc.Oracle.NodeOn(i), pc.State.Nodes[i].On
		if want == got {
			continue
		}
		if open, from, to := pc.Oracle.InTransition(); open && to < from && i >= to && i < from && want && !got {
			return violation("power-safety", pc,
				"node %d powered off during the open shrink window %d->%d (TTL not expired)", i, from, to)
		}
		return violation("power-safety", pc, "node %d power=%v, oracle expects %v", i, got, want)
	}
	return nil
}

// residencyProbe checks that every node's resident key set matches the
// model exactly — write-throughs, migrations, flushes, and crash data
// loss all land where Algorithm 2 says they do.
type residencyProbe struct{}

func (residencyProbe) Name() string { return "residency" }

func (residencyProbe) Check(pc *ProbeContext) *Violation {
	for i := 0; i < pc.Oracle.Servers(); i++ {
		if !pc.State.Nodes[i].On {
			continue // power mismatches are powerProbe's report
		}
		want := pc.Oracle.Resident(i)
		got := pc.State.Nodes[i].Keys
		if len(want) != len(got) {
			return violation("residency", pc, "node %d holds %d keys, oracle expects %d",
				i, len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				return violation("residency", pc, "node %d resident set diverges at %q (oracle %q)",
					i, got[j], want[j])
			}
		}
	}
	return nil
}

// digestProbe checks digest↔cache exactness in the direction membership
// queries can decide: every resident key must be in its node's counting
// filter. (The converse — filter-positive but non-resident — is
// indistinguishable from a hash collision by membership queries, and
// harmless: Algorithm 2 treats it as a false positive and degrades to
// the database.)
type digestProbe struct{}

func (digestProbe) Name() string { return "digest-exact" }

func (digestProbe) Check(pc *ProbeContext) *Violation {
	for i := 0; i < pc.Oracle.Servers(); i++ {
		if !pc.State.Nodes[i].On {
			continue
		}
		for _, k := range pc.State.Nodes[i].Keys {
			if !pc.State.Digest(i, k) {
				return violation("digest-exact", pc, "node %d resident key %q missing from its digest", i, k)
			}
		}
	}
	return nil
}

// transitionProbe checks that the plane's transition window opens and
// closes exactly when the model's does.
type transitionProbe struct{}

func (transitionProbe) Name() string { return "transition-window" }

func (transitionProbe) Check(pc *ProbeContext) *Violation {
	open, from, to := pc.Oracle.InTransition()
	if pc.State.Transition != open {
		if open {
			return violation("transition-window", pc, "window %d->%d open in the model but closed on the plane", from, to)
		}
		return violation("transition-window", pc, "plane reports an open window; the model's is closed")
	}
	return nil
}

// balanceProbe checks the paper's Balance Condition once per run: under
// the deterministic placement every active server owns 1/n of the ring,
// for every prefix size n.
type balanceProbe struct{ ran bool }

func (balanceProbe) Name() string { return "balance" }

func (p *balanceProbe) Check(pc *ProbeContext) *Violation {
	if p.ran {
		return nil
	}
	p.ran = true
	const eps = 1e-9
	pl := pc.Oracle.Placement()
	for n := 1; n <= pc.Oracle.Servers(); n++ {
		for s := 0; s < n; s++ {
			f := pl.OwnedFraction(s, n)
			if math.Abs(f-1/float64(n)) > eps {
				return violation("balance", pc,
					"prefix %d: server %d owns fraction %.12f, balance condition wants %.12f", n, s, f, 1/float64(n))
			}
		}
	}
	return nil
}

// migrationBoundProbe checks, at every scale step, the paper's
// transition cost bound: the re-mapped fraction of the ring is at most
// |Δn|/max(n, n').
type migrationBoundProbe struct{}

func (migrationBoundProbe) Name() string { return "migration-bound" }

func (migrationBoundProbe) Check(pc *ProbeContext) *Violation {
	if pc.Step.Kind != StepScale {
		return nil
	}
	from, to := pc.PrevActive, pc.Oracle.Active()
	if from == to {
		return nil
	}
	const eps = 1e-9
	frac := pc.Oracle.Placement().MigratedFraction(from, to)
	delta := to - from
	if delta < 0 {
		delta = -delta
	}
	maxN := from
	if to > maxN {
		maxN = to
	}
	bound := float64(delta) / float64(maxN)
	if frac > bound+eps {
		return violation("migration-bound", pc,
			"transition %d->%d re-maps fraction %.12f, above the |Δn|/max bound %.12f", from, to, frac, bound)
	}
	return nil
}

// doubleMigrationProbe checks migration amortization: within one
// transition window a key migrates over the wire at most once, unless
// the copy installed on the new owner was genuinely lost (owner crash)
// or the install was impossible (owner unreachable at migration time).
type doubleMigrationProbe struct {
	seen map[string]migrationRecord
}

type migrationRecord struct {
	flip       int
	installed  bool
	owner      int
	ownerEpoch int
}

func newDoubleMigrationProbe() *doubleMigrationProbe {
	return &doubleMigrationProbe{seen: make(map[string]migrationRecord)}
}

func (*doubleMigrationProbe) Name() string { return "double-migration" }

func (p *doubleMigrationProbe) Check(pc *ProbeContext) *Violation {
	if pc.Step.Kind != StepGet || pc.Obs.Src != SourceMigrated {
		return nil
	}
	key := pc.Step.Key
	owner := pc.Oracle.Owner(key)
	rec, ok := p.seen[key]
	if ok && rec.flip == pc.Oracle.Flips() && rec.installed &&
		pc.Oracle.Epoch(rec.owner) == rec.ownerEpoch {
		return violation("double-migration", pc,
			"key %q migrated twice in transition %d although owner %d kept the first copy",
			key, rec.flip, rec.owner)
	}
	p.seen[key] = migrationRecord{
		flip:       pc.Oracle.Flips(),
		installed:  pc.Oracle.Reachable(owner),
		owner:      owner,
		ownerEpoch: pc.Oracle.Epoch(owner),
	}
	return nil
}
