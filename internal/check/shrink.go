package check

// Shrink delta-debugs a violating history down to a minimal reproducing
// schedule (ddmin over step subsets, then a greedy single-step sweep).
// Every trial replays the candidate subset on fresh plane(s) — steps
// reference absolute keys, servers, and targets, so any subsequence is
// itself a well-formed schedule. It returns the minimal schedule, the
// violation it triggers, and the violating plane's event stream at that
// failure; minV is nil if the input history does not actually violate
// (a caller bug or a nondeterministic plane, both worth surfacing
// rather than masking).
func Shrink(opt Options, history []Step) (min []Step, minV *Violation, events []byte, err error) {
	fails := func(steps []Step) (*Violation, []byte, error) {
		v, _, ev, _, err := runHistory(opt, steps)
		return v, ev, err
	}

	cur := append([]Step(nil), history...)
	curV, curEvents, err := fails(cur)
	if err != nil || curV == nil {
		return nil, nil, nil, err
	}

	// ddmin: try dropping ever-finer chunks while the violation
	// survives.
	n := 2
	for len(cur) >= 2 {
		chunkLen := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunkLen {
			end := start + chunkLen
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Step, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			v, ev, err := fails(cand)
			if err != nil {
				return nil, nil, nil, err
			}
			if v != nil {
				cur, curV, curEvents = cand, v, ev
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}

	// Greedy sweep: drop single steps until the schedule is 1-minimal.
	for i := 0; i < len(cur); {
		cand := make([]Step, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		v, ev, err := fails(cand)
		if err != nil {
			return nil, nil, nil, err
		}
		if v != nil {
			cur, curV, curEvents = cand, v, ev
		} else {
			i++
		}
	}
	return cur, curV, curEvents, nil
}
