// Package check is the model-based conformance harness for the Proteus
// cluster: FoundationDB-style deterministic simulation testing applied
// to the paper's guarantees.
//
// Three pieces cooperate:
//
//   - A reference model (Oracle) of the whole cluster — a single-map
//     versioned KV store plus a pure-Go mirror of placement ownership,
//     power states, transition phases, exact digest membership, and the
//     TTL window — consuming the same operation stream as the system
//     under test and predicting every observable outcome.
//
//   - A schedule explorer that generates randomized, seeded histories
//     (interleaved client gets and writes, overlapping n→n±1
//     transitions, crashes, partitions via internal/faultinject, and
//     clock skips) and drives them against either execution plane: the
//     discrete-event simulator (sim.Harness) or the real TCP stack
//     (cluster.Coordinator + cacheserver.LocalNode + webtier.Frontend).
//     After every step a pluggable set of invariant probes runs:
//     balance condition at every prefix, migration set within the
//     |Δn|/max(n,n') bound, digest↔cache exactness, residency mirror,
//     conformance of every read with the oracle (no stale read after an
//     ownership flip), no double migration, and power-off safety.
//
//   - A seed shrinker that, on violation, delta-debugs the history to a
//     minimal reproducing schedule and emits a replayable .check
//     artifact carrying the schedule, the violation, and the telemetry
//     event stream at the failure point.
//
// Everything in this package is deterministic by construction: the same
// seed and options produce byte-identical reports on every run and
// every machine, on both planes. That is what makes a violation a
// one-line bug report instead of a flaky CI failure.
package check

import (
	"fmt"
	"time"
)

// StepKind enumerates the schedule vocabulary.
type StepKind uint8

const (
	// StepGet is one client read of Key (Algorithm 2 end to end).
	StepGet StepKind = iota + 1
	// StepSet is one client write of Key: the backing store advances to
	// the next version and the value is written through.
	StepSet
	// StepScale is one provisioning decision: SetActive(Target).
	StepScale
	// StepCrash powers Server off outside any provisioning decision,
	// losing its data.
	StepCrash
	// StepPartition blackholes Server via the fault injector: every
	// operation against it fails until healed.
	StepPartition
	// StepHeal lifts Server's partition.
	StepHeal
	// StepAdvance skips the virtual clock forward by Skip, firing any
	// transition deadline the skip crosses.
	StepAdvance
	// StepPromote moves Key into the hot set: its replica copies are
	// synchronized and reads resolve at HotReplicas depth. A no-op
	// schedule-wise when replication is disabled or an owner is
	// unreachable (promotion is atomic or nothing).
	StepPromote
	// StepDemote removes Key from the hot set; copies linger invisibly.
	StepDemote
)

// Step is one schedule entry. Only the fields its kind names are
// meaningful.
type Step struct {
	Kind   StepKind
	Key    string
	Target int
	Server int
	Skip   time.Duration
}

// String renders the .check history line for the step.
func (s Step) String() string {
	switch s.Kind {
	case StepGet:
		return "get " + s.Key
	case StepSet:
		return "set " + s.Key
	case StepScale:
		return fmt.Sprintf("scale %d", s.Target)
	case StepCrash:
		return fmt.Sprintf("crash %d", s.Server)
	case StepPartition:
		return fmt.Sprintf("partition %d", s.Server)
	case StepHeal:
		return fmt.Sprintf("heal %d", s.Server)
	case StepAdvance:
		return fmt.Sprintf("advance %s", s.Skip)
	case StepPromote:
		return "promote " + s.Key
	case StepDemote:
		return "demote " + s.Key
	default:
		return fmt.Sprintf("step(%d)", uint8(s.Kind))
	}
}

// Source classifies where a read was served, plane-independently.
type Source uint8

const (
	// SourceNone marks non-read observations.
	SourceNone Source = iota
	// SourceHit is a hit on the key's current owner.
	SourceHit
	// SourceMigrated is an Algorithm 2 amortized migration from the old
	// owner during a transition window.
	SourceMigrated
	// SourceDB is a backing-store fetch.
	SourceDB
)

func (s Source) String() string {
	switch s {
	case SourceNone:
		return "none"
	case SourceHit:
		return "hit"
	case SourceMigrated:
		return "migrated"
	case SourceDB:
		return "db"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Observation is what a plane reported for one step. For non-read
// steps only Err is meaningful.
type Observation struct {
	Value string
	Src   Source
	Found bool
	Err   string
}

// Violation is one probe failure, locating the offending step.
type Violation struct {
	Probe  string
	Step   int // 0-based index into the history
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at step %d: %s", v.Probe, v.Step, v.Detail)
}
