package check

import (
	"fmt"
	"sort"
	"time"

	"proteus/internal/core"
)

// Oracle is the reference model of the whole cluster: a single versioned
// map standing in for the backing store, plus a pure-Go mirror of
// placement ownership, node power states, partitions, the smooth
// transition protocol, and exact digest membership. It consumes the same
// operation stream as the system under test and predicts every
// observable outcome (value, source, residency, power states), which is
// what the conformance probes compare against.
//
// The mirror is exact, not approximate, because the conformance
// configuration pins down every source of divergence: a base depth of
// one ring (hot keys extend to HotReplicas over the shared seeded
// geometry), unlimited cache capacity, no per-item TTL, serial steps,
// and rule-free fault injectors. The only plane behaviour the oracle
// does not model is counting-filter false positives — and those are
// observationally equivalent (an FP consult misses on the old owner
// and degrades to the database, which is exactly what the oracle
// predicts from its exact digest set; see ApplyGet).
type Oracle struct {
	placement  *core.Placement
	replicated *core.Replicated
	hotRings   int
	ttl        time.Duration
	now        time.Duration
	active     int
	flips      int

	db      map[string]string
	version map[string]int

	nodes []*modelNode
	part  map[int]bool
	trans *modelTransition
	hot   map[string]struct{}

	// Hot-sync accounting for the extended migration-bound probe: what
	// the most recent ApplyScale did to re-establish the replica
	// invariant.
	lastSyncInstalls int
	lastSyncHot      int
}

// modelNode mirrors one cache server: power state and exact residency.
// epoch counts data-loss events (crash, power-off), letting probes tell
// "the owner lost the installed copy" from "the plane dropped it".
type modelNode struct {
	on    bool
	store map[string]string
	epoch int
}

// modelTransition mirrors the Section IV window with exact digest
// key-sets (nil for a source that was unreachable at the flip, mirroring
// a failed FetchDigest).
type modelTransition struct {
	from, to int
	digests  []map[string]bool
	deadline time.Duration
}

// NewOracle builds the reference model with the initial prefix powered
// on and every key at version 0 in the backing store. hotReplicas is
// the replica depth promoted keys resolve at (<= 1 disables hot-key
// replication, making the model single-ring exactly as before).
// backend selects the placement geometry (empty = Algorithm 1); both
// execution planes must be built with the same kind.
func NewOracle(backend core.BackendKind, servers, initialActive int, ttl time.Duration, keys []string, hotReplicas int) (*Oracle, error) {
	if servers < 1 {
		return nil, fmt.Errorf("check: oracle needs at least 1 server, got %d", servers)
	}
	if initialActive < 1 || initialActive > servers {
		return nil, fmt.Errorf("check: oracle InitialActive %d out of range 1..%d", initialActive, servers)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("check: oracle TTL must be positive")
	}
	if hotReplicas < 1 {
		hotReplicas = 1
	}
	// Ring 0 of a Replicated is the unseeded primary placement, so with
	// hot-key replication disabled this routes exactly like the bare
	// backend.
	replicated, err := core.NewReplicatedBackend(backend, servers, hotReplicas)
	if err != nil {
		return nil, err
	}
	o := &Oracle{
		placement:  replicated.Placement(),
		replicated: replicated,
		hotRings:   hotReplicas,
		ttl:        ttl,
		active:     initialActive,
		db:         make(map[string]string, len(keys)),
		version:    make(map[string]int, len(keys)),
		part:       make(map[int]bool),
		hot:        make(map[string]struct{}),
	}
	for i := 0; i < servers; i++ {
		o.nodes = append(o.nodes, &modelNode{on: i < initialActive, store: make(map[string]string)})
	}
	for _, k := range keys {
		o.db[k] = versioned(k, 0)
	}
	return o, nil
}

// versioned renders the value the backing store holds for key at a
// given write version.
func versioned(key string, v int) string {
	return fmt.Sprintf("%s#v%d", key, v)
}

// DBValue resolves a key in the model's backing store; planes read
// through this so oracle and system always see one store.
func (o *Oracle) DBValue(key string) (string, bool) {
	v, ok := o.db[key]
	return v, ok
}

// Reachable reports whether an operation against server i would
// succeed: powered on and not partitioned away.
func (o *Oracle) Reachable(i int) bool {
	return o.nodes[i].on && !o.part[i]
}

// ApplySet advances the key's version in the backing store and mirrors
// the write-through (webtier.Update, whole objects): every distinct
// owner takes the value if reachable; a hot key that missed a copy is
// demoted, exactly as the plane's storeAll auto-demote rule. It
// returns the new value, which the runner hands to the plane.
func (o *Oracle) ApplySet(key string) string {
	o.version[key]++
	val := versioned(key, o.version[key])
	o.db[key] = val
	o.fanoutWrite(key, val)
	return val
}

// fanoutWrite mirrors webtier storeAll / sim.Harness fanoutWrite: the
// value lands on every reachable distinct owner; any failed copy of a
// multi-owner write demotes the key.
func (o *Oracle) fanoutWrite(key, val string) {
	owners := o.owners(key)
	failed := false
	for _, s := range owners {
		if o.Reachable(s) {
			o.nodes[s].store[key] = val
		} else {
			failed = true
		}
	}
	if failed && len(owners) > 1 {
		delete(o.hot, key)
	}
}

// ApplyGet predicts and mirrors Algorithm 2 for one key, exactly as
// webtier.Frontend.fetch runs it, in three phases: probe the distinct
// current owners (order-independent under the replica invariant, so
// the live tier's load-aware ordering needs no modelling); during a
// transition consult each ring's old-owner broadcast digest and
// migrate on demand; otherwise fall back to the backing store and
// write through to every owner.
func (o *Oracle) ApplyGet(key string) (value string, src Source, found bool) {
	for _, s := range o.owners(key) {
		if o.Reachable(s) {
			if v, ok := o.nodes[s].store[key]; ok {
				return v, SourceHit, true
			}
		}
	}
	if tr := o.trans; tr != nil {
		var consulted []int
		rings := o.ringsFor(key)
		for ring := 0; ring < rings; ring++ {
			owner := o.replicated.OwnerOnRing(key, ring, o.active)
			old := o.replicated.OwnerOnRing(key, ring, tr.from)
			if old == owner || tr.digests[old] == nil || !tr.digests[old][key] {
				continue
			}
			if containsServer(consulted, old) {
				continue
			}
			consulted = append(consulted, old)
			if !o.Reachable(old) {
				continue
			}
			if v, ok := o.nodes[old].store[key]; ok {
				if o.Reachable(owner) {
					o.nodes[owner].store[key] = v
				}
				return v, SourceMigrated, true
			}
			// Unreachable in practice: the exact digest set is a snapshot
			// of residency at the flip, and an old owner distinct from the
			// current owner never loses a key except by crashing (which
			// makes it unreachable). Kept for structural fidelity with
			// Algorithm 2's false-positive branch.
		}
	}
	v, ok := o.db[key]
	if !ok {
		return "", SourceDB, false
	}
	o.fanoutWrite(key, v)
	return v, SourceDB, true
}

func containsServer(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ApplyScale mirrors cluster.Coordinator.SetActive: finalize any pending
// window, power on growth, snapshot exact digest sets of every reachable
// relocation source, flip routing, arm the TTL deadline. degraded counts
// relocation sources whose digest snapshot failed (unreachable), which
// the live plane surfaces as a non-fatal SetActive error.
func (o *Oracle) ApplyScale(n int) (degraded int, err error) {
	if n < 1 || n > len(o.nodes) {
		return 0, fmt.Errorf("check: oracle target %d out of range 1..%d", n, len(o.nodes))
	}
	if n == o.active && o.trans == nil {
		return 0, nil
	}
	o.finalize()
	from := o.active
	if n == from {
		return 0, nil
	}
	if n > from {
		for i := from; i < n; i++ {
			o.nodes[i].on = true
		}
	}
	digests := make([]map[string]bool, len(o.nodes))
	lo, hi := n, from // shrink: dying nodes [n, from) hold the re-mapped keys
	if n > from {
		lo, hi = 0, from // growth: every old-prefix node may hold re-mapped keys
	}
	for i := lo; i < hi; i++ {
		if !o.Reachable(i) {
			degraded++
			continue
		}
		set := make(map[string]bool, len(o.nodes[i].store))
		for k := range o.nodes[i].store {
			set[k] = true
		}
		digests[i] = set
	}
	o.trans = &modelTransition{from: from, to: n, digests: digests, deadline: o.now + o.ttl}
	o.active = n
	o.flips++
	o.hotSyncAfterFlip()
	return degraded, nil
}

// ApplyCrash powers a server off outside any provisioning decision,
// losing its data.
func (o *Oracle) ApplyCrash(i int) {
	if i < 0 || i >= len(o.nodes) {
		return
	}
	if o.nodes[i].on {
		o.powerOff(i)
	}
}

// ApplyPartition blackholes a server. Its data survives (a partition is
// a network fault, not a power fault), so the node's epoch is unchanged.
func (o *Oracle) ApplyPartition(i int) {
	if i >= 0 && i < len(o.nodes) {
		o.part[i] = true
	}
}

// ApplyHeal lifts a partition.
func (o *Oracle) ApplyHeal(i int) {
	if i >= 0 && i < len(o.nodes) {
		delete(o.part, i)
	}
}

// ApplyAdvance moves the model clock, firing the transition deadline if
// the skip crosses it.
func (o *Oracle) ApplyAdvance(d time.Duration) {
	if d <= 0 {
		return
	}
	o.now += d
	if o.trans != nil && o.now >= o.trans.deadline {
		o.finalize()
	}
}

func (o *Oracle) finalize() {
	if o.trans == nil {
		return
	}
	tr := o.trans
	o.trans = nil
	if tr.to < tr.from {
		for i := tr.to; i < tr.from; i++ {
			if o.nodes[i].on {
				o.powerOff(i)
			}
		}
	}
}

func (o *Oracle) powerOff(i int) {
	o.nodes[i].on = false
	o.nodes[i].store = make(map[string]string)
	o.nodes[i].epoch++
}

// Now returns the model clock.
func (o *Oracle) Now() time.Duration { return o.now }

// Active returns the model's active-prefix size.
func (o *Oracle) Active() int { return o.active }

// Servers returns the provisioning-order length.
func (o *Oracle) Servers() int { return len(o.nodes) }

// NodeOn reports the model power state of server i.
func (o *Oracle) NodeOn(i int) bool { return o.nodes[i].on }

// Epoch returns server i's data-loss epoch.
func (o *Oracle) Epoch(i int) int { return o.nodes[i].epoch }

// InTransition reports whether the model window is open and its bounds.
func (o *Oracle) InTransition() (open bool, from, to int) {
	if o.trans == nil {
		return false, 0, 0
	}
	return true, o.trans.from, o.trans.to
}

// Flips returns the number of ownership flips so far (the transition
// ordinal used by the double-migration probe).
func (o *Oracle) Flips() int { return o.flips }

// Owner returns the key's current owner under the model's routing.
func (o *Oracle) Owner(key string) int { return o.replicated.OwnerOnRing(key, 0, o.active) }

// Resident returns the model's resident keys on server i, sorted.
func (o *Oracle) Resident(i int) []string {
	keys := make([]string, 0, len(o.nodes[i].store))
	for k := range o.nodes[i].store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Placement exposes the deterministic placement for the exact-rational
// geometry probes (balance condition, migration bound). It is nil for
// the O(1) backends, whose probes sample through Backend instead.
func (o *Oracle) Placement() *core.Placement { return o.placement }

// Backend exposes the placement geometry shared by both planes.
func (o *Oracle) Backend() core.Backend { return o.replicated.Backend() }
