package check

import (
	"time"

	"proteus/internal/bloom"
	"proteus/internal/faultinject"
	"proteus/internal/sim"
	"proteus/internal/telemetry"
)

// Plane is one execution of the cluster semantics the checker can
// drive: the discrete-event simulator or the live TCP stack. Both
// consume the same step vocabulary; the probes compare each against the
// oracle and (in lockstep mode) against each other.
type Plane interface {
	// Name is "sim" or "live" in reports.
	Name() string
	// Get runs Algorithm 2 for one key.
	Get(key string) Observation
	// Set writes value through to the current owner. The backing store
	// has already advanced (the oracle owns it).
	Set(key, value string) Observation
	// Scale executes SetActive(n).
	Scale(n int) Observation
	// Promote moves key into the hot set (Found reports whether it is
	// hot on return; promotion is atomic or nothing).
	Promote(key string) Observation
	// Demote removes key from the hot set (Found reports whether it
	// was hot).
	Demote(key string) Observation
	// Crash powers a server off outside any provisioning decision.
	Crash(server int)
	// Partition blackholes a server in this plane's fault injector.
	Partition(server int)
	// Heal lifts the partition.
	Heal(server int)
	// Advance skips the plane's virtual clock, firing any transition
	// deadline it crosses.
	Advance(d time.Duration)
	// State snapshots the observable cluster state for the probes.
	State() PlaneState
	// Events returns the plane's telemetry event log.
	Events() *telemetry.EventLog
	// Close releases the plane's resources.
	Close()
}

// NodeState is one server's observable state.
type NodeState struct {
	On   bool
	Keys []string // sorted resident keys; nil when off
}

// PlaneState is the probe-visible cluster snapshot.
type PlaneState struct {
	Active     int
	Transition bool
	Nodes      []NodeState
	// Digest probes server node's live counting filter; false for a
	// powered-off server.
	Digest func(node int, key string) bool
	// Value reads server node's stored value for key directly (no
	// routing, no migration); false for a powered-off server or a
	// non-resident key. The replica probes compare values, not just
	// residency, because a stale copy has the right key and the wrong
	// bytes.
	Value func(node int, key string) (string, bool)
}

// digestParams returns the counting-filter sizing conformance runs use
// on both planes: identical parameters and an identical insert stream
// give bit-identical filters, so even false positives agree across
// planes.
func digestParams() bloom.Params {
	return bloom.Params{Counters: 1 << 14, CounterBits: 4, Hashes: 4}
}

// simPlane adapts sim.Harness to the Plane interface.
type simPlane struct {
	h   *sim.Harness
	inj *faultinject.Injector
	log *telemetry.EventLog
}

func newSimPlane(opt Options, db func(key string) (string, bool)) (*simPlane, error) {
	inj := faultinject.New(opt.Seed)
	p := &simPlane{inj: inj}
	p.log = telemetry.NewEventLog(telemetry.EventLogConfig{Clock: func() time.Duration {
		if p.h == nil {
			return 0
		}
		return p.h.Now()
	}})
	h, err := sim.NewHarness(sim.HarnessConfig{
		Servers:       opt.Servers,
		InitialActive: opt.InitialActive,
		TTL:           opt.TTL,
		Backend:       opt.Backend,
		DigestParams:  digestParams(),
		DB: func(key string) ([]byte, bool) {
			v, ok := db(key)
			if !ok {
				return nil, false
			}
			return []byte(v), true
		},
		Faults:              inj,
		Events:              p.log,
		UnsafeEarlyPowerOff: opt.SeedBug,
		HotReplicas:         opt.HotReplicas,
		UnsafeSkipFanout:    opt.SeedBugFanout,
	})
	if err != nil {
		return nil, err
	}
	p.h = h
	return p, nil
}

func (p *simPlane) Name() string { return "sim" }

func (p *simPlane) Get(key string) Observation {
	v, src, ok := p.h.Get(key)
	obs := Observation{Value: string(v), Found: ok}
	switch src {
	case sim.SourceHit:
		obs.Src = SourceHit
	case sim.SourceMigrated:
		obs.Src = SourceMigrated
	default:
		obs.Src = SourceDB
	}
	return obs
}

func (p *simPlane) Set(key, value string) Observation {
	p.h.Set(key, []byte(value))
	return Observation{}
}

func (p *simPlane) Scale(n int) Observation {
	if err := p.h.SetActive(n); err != nil {
		return Observation{Err: err.Error()}
	}
	return Observation{}
}

func (p *simPlane) Promote(key string) Observation {
	return Observation{Found: p.h.Promote(key)}
}

func (p *simPlane) Demote(key string) Observation {
	return Observation{Found: p.h.Demote(key)}
}

func (p *simPlane) Crash(server int)     { p.h.Crash(server) }
func (p *simPlane) Partition(server int) { p.inj.Partition(server) }
func (p *simPlane) Heal(server int)      { p.inj.Heal(server) }
func (p *simPlane) Advance(d time.Duration) {
	p.h.AdvanceClock(d)
}

func (p *simPlane) State() PlaneState {
	st := PlaneState{Active: p.h.Active()}
	open, _ := p.h.InTransition()
	st.Transition = open
	for i := 0; i < p.h.Servers(); i++ {
		ns := NodeState{On: p.h.NodeOn(i)}
		if ns.On {
			ns.Keys = p.h.ResidentKeys(i)
		}
		st.Nodes = append(st.Nodes, ns)
	}
	st.Digest = func(node int, key string) bool {
		if !p.h.NodeOn(node) {
			return false
		}
		return p.h.DigestContains(node, key)
	}
	st.Value = func(node int, key string) (string, bool) {
		if !p.h.NodeOn(node) {
			return "", false
		}
		v, ok := p.h.NodeValue(node, key)
		return string(v), ok
	}
	return st
}

func (p *simPlane) Events() *telemetry.EventLog { return p.log }
func (p *simPlane) Close()                      {}
