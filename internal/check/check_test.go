package check

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Two explorations with one seed must render byte-identical reports —
// the determinism contract the CLI's CI diff relies on.
func TestExploreDeterministic(t *testing.T) {
	opt := Options{Seed: 42, Steps: 1200, Plane: PlaneBoth}
	var out [2]bytes.Buffer
	for i := range out {
		rep, err := Explore(opt)
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		if rep.Violation != nil {
			t.Fatalf("unexpected violation: %v", rep.Violation)
		}
		if err := rep.Write(&out[i]); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out[0].String(), out[1].String())
	}
}

// Healthy planes must stay violation-free across seeds: a false alarm
// here means the oracle has drifted from the system's semantics.
func TestBothPlanesCleanAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rep, err := Explore(Options{Seed: seed, Steps: 700, Plane: PlaneBoth})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Violation != nil {
			t.Fatalf("seed %d: false alarm: %v (plane %s)", seed, rep.Violation, rep.Plane)
		}
		if rep.Stats.Flips == 0 || rep.Stats.Hits == 0 {
			t.Fatalf("seed %d: schedule too tame to mean anything: %+v", seed, rep.Stats)
		}
	}
}

// The deliberately seeded early-power-off bug (sim harness hook) must
// be caught by a probe and shrunk to a short reproducing schedule.
func TestSeededBugCaughtAndShrunk(t *testing.T) {
	rep, err := Explore(Options{Seed: 3, Steps: 2000, Plane: PlaneSim, SeedBug: true})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Violation == nil {
		t.Fatalf("seeded bug not caught in %d steps", len(rep.History))
	}
	if rep.Min == nil {
		t.Fatalf("violation found but not shrunk")
	}
	if len(rep.Min) > 20 {
		t.Fatalf("minimal schedule has %d steps, want <= 20", len(rep.Min))
	}
	if rep.MinViolation.Probe != "power-safety" {
		t.Fatalf("probe %q caught the bug, want power-safety", rep.MinViolation.Probe)
	}
	// The minimal schedule must reproduce on its own.
	again, err := Replay(Options{Plane: PlaneSim, SeedBug: true}, rep.Min)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if again.Violation == nil {
		t.Fatalf("minimal schedule did not reproduce the violation")
	}
	// And it must be 1-minimal: dropping any step loses the bug.
	for i := range rep.Min {
		cand := append(append([]Step(nil), rep.Min[:i]...), rep.Min[i+1:]...)
		r, err := Replay(Options{Plane: PlaneSim, SeedBug: true}, cand)
		if err != nil {
			t.Fatalf("replay minus step %d: %v", i, err)
		}
		if r.Violation != nil {
			t.Fatalf("schedule is not 1-minimal: still fails without step %d (%s)", i, rep.Min[i])
		}
	}
}

// The .check artifact must round-trip: write, parse, replay, same
// violation.
func TestArtifactRoundTrip(t *testing.T) {
	rep, err := Explore(Options{Seed: 3, Steps: 2000, Plane: PlaneSim, SeedBug: true})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Violation == nil {
		t.Fatalf("need a violation to round-trip")
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, rep); err != nil {
		t.Fatalf("write artifact: %v", err)
	}
	if !strings.Contains(buf.String(), "events\n") {
		t.Fatalf("artifact missing event stream:\n%s", buf.String())
	}
	opt, steps, err := ParseArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse artifact: %v", err)
	}
	if !opt.SeedBug || opt.Plane != PlaneSim || opt.Servers != rep.Opt.Servers {
		t.Fatalf("options did not round-trip: %+v", opt)
	}
	if len(steps) != len(rep.Min) {
		t.Fatalf("parsed %d steps, wrote %d", len(steps), len(rep.Min))
	}
	again, err := Replay(opt, steps)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if again.Violation == nil || again.Violation.Probe != rep.MinViolation.Probe {
		t.Fatalf("replayed violation %v, want probe %q", again.Violation, rep.MinViolation.Probe)
	}

	if _, _, err := ParseArtifact(strings.NewReader("not an artifact\n")); err == nil {
		t.Fatalf("junk input parsed as artifact")
	}
}

// Every step kind must round-trip through its textual form.
func TestStepTextRoundTrip(t *testing.T) {
	steps := []Step{
		{Kind: StepGet, Key: "k007"},
		{Kind: StepSet, Key: "k013"},
		{Kind: StepPromote, Key: "k002"},
		{Kind: StepDemote, Key: "k002"},
		{Kind: StepScale, Target: 4},
		{Kind: StepCrash, Server: 2},
		{Kind: StepPartition, Server: 1},
		{Kind: StepHeal, Server: 1},
		{Kind: StepAdvance, Skip: 7500 * time.Millisecond},
	}
	for _, want := range steps {
		got, err := parseStep(want.String())
		if err != nil {
			t.Fatalf("parse %q: %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v want %+v", want.String(), got, want)
		}
	}
	if _, err := parseStep("launch missiles"); err == nil {
		t.Fatalf("nonsense step parsed")
	}
}

// An overlapping transition cancels the pending TTL expiry. With a
// broken (no-op) cancel the stale timer would finalize the second
// window early and power a dying node off before its TTL — exactly the
// schedule this test replays against the live plane.
func TestLiveOverlappingTransitionsCancelPendingExpiry(t *testing.T) {
	ttl := 30 * time.Second
	steps := []Step{
		{Kind: StepScale, Target: 4},
		{Kind: StepAdvance, Skip: ttl / 2},
		{Kind: StepScale, Target: 3}, // finalizes the first window, cancels its timer
		{Kind: StepAdvance, Skip: ttl / 2},
		// Total elapsed = first window's deadline: a stale fire would
		// close the 4->3 window now, half a TTL early.
		{Kind: StepGet, Key: "k000"},
	}
	rep, err := Replay(Options{Plane: PlaneLive, TTL: ttl}, steps)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Violation != nil {
		t.Fatalf("stale timer fired: %v", rep.Violation)
	}
}

// vtimer must fire due entries in deadline order and honour
// cancellation, including cancels performed by a firing callback.
func TestVtimerOrderAndCancel(t *testing.T) {
	vt := &vtimer{}
	var fired []string
	vt.After(3*time.Second, func() { fired = append(fired, "c") })
	cancelB := vt.After(2*time.Second, func() { fired = append(fired, "b") })
	var cancelD func()
	vt.After(1*time.Second, func() {
		fired = append(fired, "a")
		cancelB()
		cancelD = vt.After(1*time.Second, func() { fired = append(fired, "d") })
	})
	vt.Advance(10 * time.Second)
	if got := strings.Join(fired, ""); got != "adc" {
		t.Fatalf("fired %q, want %q (b canceled by a; d, scheduled by a at 1s+1s, fires before c at 3s)", got, "adc")
	}
	_ = cancelD
	if len(vt.entries) != 0 {
		t.Fatalf("%d entries left after advance", len(vt.entries))
	}
}

// Hand-built schedule: the oracle and sim plane must walk through
// Algorithm 2's phases — write-through hit, on-demand migration during
// a shrink window, database fall-back after a crash.
func TestScriptedAlgorithm2Walkthrough(t *testing.T) {
	opt := Options{Plane: PlaneSim, Servers: 4, InitialActive: 4, Keys: 8, TTL: time.Minute}.withDefaults()
	s, err := newSession(opt, PlaneSim)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.close()

	// Find a key that moves when the prefix shrinks 4 -> 3.
	var moved string
	for _, k := range keyUniverse(opt.Keys) {
		if s.oracle.Placement().Lookup(k, 4) != s.oracle.Placement().Lookup(k, 3) {
			moved = k
			break
		}
	}
	if moved == "" {
		t.Fatalf("no key moves under 4 -> 3 in a universe of %d", opt.Keys)
	}

	run := func(i int, st Step, wantSrc Source) {
		t.Helper()
		obs, v := s.apply(i, st)
		if v != nil {
			t.Fatalf("step %d %s: violation %v", i, st, v)
		}
		if st.Kind == StepGet && obs.Src != wantSrc {
			t.Fatalf("step %d %s: served from %s, want %s", i, st, obs.Src, wantSrc)
		}
	}
	run(0, Step{Kind: StepGet, Key: moved}, SourceDB)       // cold miss, write-through
	run(1, Step{Kind: StepGet, Key: moved}, SourceHit)      // now resident on the owner
	run(2, Step{Kind: StepScale, Target: 3}, SourceNone)    // shrink opens the window
	run(3, Step{Kind: StepGet, Key: moved}, SourceMigrated) // digest consult, amortized move
	run(4, Step{Kind: StepGet, Key: moved}, SourceHit)      // second read hits the new owner
	run(5, Step{Kind: StepAdvance, Skip: 2 * time.Minute}, SourceNone)
	if s.oracle.NodeOn(3) {
		t.Fatalf("dying node still on after the TTL window closed")
	}
	run(6, Step{Kind: StepCrash, Server: s.oracle.Owner(moved)}, SourceNone)
	run(7, Step{Kind: StepGet, Key: moved}, SourceDB) // owner dark: degrade to the database
}
