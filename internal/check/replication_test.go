package check

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// With hot-key replication enabled the explorer adds promote/demote
// verbs and both planes replicate promoted keys; the full probe set —
// including write-fanout and replica-consistency — must stay quiet
// across seeds, and every schedule must actually exercise the hot set.
func TestReplicatedBothPlanesCleanAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rep, err := Explore(Options{Seed: seed, Steps: 700, Plane: PlaneBoth, HotReplicas: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Violation != nil {
			t.Fatalf("seed %d: false alarm: %v (plane %s)", seed, rep.Violation, rep.Plane)
		}
		if rep.Stats.Promotes == 0 || rep.Stats.Flips == 0 {
			t.Fatalf("seed %d: schedule never stressed replication: %+v", seed, rep.Stats)
		}
	}
}

// Replicated explorations must stay byte-identical across runs: the
// load-aware replica choice on the live plane may not leak wall-clock
// nondeterminism into any checker-visible observation.
func TestReplicatedExploreDeterministic(t *testing.T) {
	opt := Options{Seed: 42, Steps: 1200, Plane: PlaneBoth, HotReplicas: 2}
	var out [2]bytes.Buffer
	for i := range out {
		rep, err := Explore(opt)
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		if rep.Violation != nil {
			t.Fatalf("unexpected violation: %v", rep.Violation)
		}
		if err := rep.Write(&out[i]); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out[0].String(), out[1].String())
	}
}

// The seeded skip-fan-out bug (Set writes the primary only, stranding
// replicas on stale copies) must be caught by the write-fanout probe
// and shrink to the two-step essence: promote a key, then write it.
func TestSeededFanoutBugCaughtAndShrunk(t *testing.T) {
	opt := Options{Seed: 3, Steps: 2000, Plane: PlaneSim, HotReplicas: 2, SeedBugFanout: true}
	rep, err := Explore(opt)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Violation == nil {
		t.Fatalf("seeded fan-out bug not caught in %d steps", len(rep.History))
	}
	if rep.Min == nil {
		t.Fatalf("violation found but not shrunk")
	}
	if len(rep.Min) > 4 {
		t.Fatalf("minimal schedule has %d steps, want <= 4:\n%v", len(rep.Min), rep.Min)
	}
	if rep.MinViolation.Probe != "write-fanout" {
		t.Fatalf("probe %q caught the bug, want write-fanout", rep.MinViolation.Probe)
	}
	// The minimal schedule must reproduce on its own and be 1-minimal.
	replayOpt := Options{Plane: PlaneSim, HotReplicas: 2, SeedBugFanout: true}
	again, err := Replay(replayOpt, rep.Min)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if again.Violation == nil {
		t.Fatalf("minimal schedule did not reproduce the violation")
	}
	for i := range rep.Min {
		cand := append(append([]Step(nil), rep.Min[:i]...), rep.Min[i+1:]...)
		r, err := Replay(replayOpt, cand)
		if err != nil {
			t.Fatalf("replay minus step %d: %v", i, err)
		}
		if r.Violation != nil {
			t.Fatalf("schedule is not 1-minimal: still fails without step %d (%s)", i, rep.Min[i])
		}
	}
	// Without replication the same bug hook is unobservable: a single
	// owner IS the full fan-out.
	clean, err := Explore(Options{Seed: 3, Steps: 2000, Plane: PlaneSim, SeedBugFanout: true})
	if err != nil {
		t.Fatalf("explore unreplicated: %v", err)
	}
	if clean.Violation != nil {
		t.Fatalf("skip-fan-out flagged without replication: %v", clean.Violation)
	}
}

// The v2 artifact must round-trip the replication fields and the
// promote/demote verbs, and still accept v1 artifacts.
func TestReplicatedArtifactRoundTrip(t *testing.T) {
	rep, err := Explore(Options{Seed: 3, Steps: 2000, Plane: PlaneSim, HotReplicas: 2, SeedBugFanout: true})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Violation == nil {
		t.Fatalf("need a violation to round-trip")
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, rep); err != nil {
		t.Fatalf("write artifact: %v", err)
	}
	opt, steps, err := ParseArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse artifact: %v", err)
	}
	if opt.HotReplicas != 2 || !opt.SeedBugFanout {
		t.Fatalf("replication options did not round-trip: %+v", opt)
	}
	again, err := Replay(opt, steps)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if again.Violation == nil || again.Violation.Probe != rep.MinViolation.Probe {
		t.Fatalf("replayed violation %v, want probe %q", again.Violation, rep.MinViolation.Probe)
	}

	v1 := "proteus-check/v1\nseed 7\nplane sim\nservers 5\ninitial 3\nkeys 48\nttl 30s\nseed-bug false\nhistory 1\nget k000\n"
	opt1, steps1, err := ParseArtifact(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 artifact rejected: %v", err)
	}
	if opt1.HotReplicas != 0 || len(steps1) != 1 {
		t.Fatalf("v1 parse drifted: %+v, %v", opt1, steps1)
	}
}

// Hand-built schedule walking the replicated protocol: promotion syncs
// every owner, writes fan out, a crashed replica falls back to the
// surviving copy, and the post-flip hot-sync keeps owners aligned.
func TestScriptedReplicationWalkthrough(t *testing.T) {
	opt := Options{Plane: PlaneSim, Servers: 5, InitialActive: 4, Keys: 16,
		TTL: time.Minute, HotReplicas: 2}.withDefaults()
	s, err := newSession(opt, PlaneSim)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.close()

	// Find a key with two distinct owners at the starting prefix.
	var key string
	for _, k := range keyUniverse(opt.Keys) {
		if owners := s.oracle.replicated.DistinctOwnersN(k, 4, 2); len(owners) == 2 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatalf("no key resolves to two distinct owners")
	}

	run := func(i int, st Step) Observation {
		t.Helper()
		obs, v := s.apply(i, st)
		if v != nil {
			t.Fatalf("step %d %s: violation %v", i, st, v)
		}
		return obs
	}
	run(0, Step{Kind: StepGet, Key: key}) // cold: db fill, single owner
	if obs := run(1, Step{Kind: StepPromote, Key: key}); !obs.Found {
		t.Fatalf("promotion refused with all owners reachable")
	}
	run(2, Step{Kind: StepSet, Key: key}) // fan-out write to both owners
	owners := s.oracle.Owners(key)
	if len(owners) != 2 {
		t.Fatalf("hot key resolves to %d owners, want 2", len(owners))
	}
	for _, o := range owners {
		if _, ok := s.oracle.NodeValue(o, key); !ok {
			t.Fatalf("owner %d missing the copy after fan-out", o)
		}
	}
	run(3, Step{Kind: StepCrash, Server: owners[1]}) // lose the replica
	if obs := run(4, Step{Kind: StepGet, Key: key}); obs.Src != SourceHit {
		t.Fatalf("surviving owner did not serve the hot key: src %s", obs.Src)
	}
	run(5, Step{Kind: StepScale, Target: 3}) // flip triggers the hot-sync sweep
	run(6, Step{Kind: StepGet, Key: key})
	if obs := run(7, Step{Kind: StepDemote, Key: key}); !obs.Found {
		// The sweep may already have demoted the key if an owner was dark.
		t.Logf("key already demoted by the post-flip sweep")
	}
	run(8, Step{Kind: StepGet, Key: key})
}
