package check

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"proteus/internal/core"
)

// The .check artifact is the replayable record of a violation: a
// line-oriented header carrying the run options, the (minimal)
// schedule, the violation, and the violating plane's telemetry event
// stream. The format is append-only versioned: parsers reject unknown
// versions, ignore the trailing events (they are evidence, not input),
// and re-derive everything else by replaying the schedule.
//
//	proteus-check/v3
//	seed 42
//	plane sim
//	servers 5
//	initial 3
//	keys 48
//	ttl 30s
//	replicas 2
//	backend pch
//	seed-bug true
//	seed-bug-fanout false
//	violation power-safety at step 7: node 2 powered off ...
//	history 3
//	scale 2
//	promote k001
//	advance 30s
//	events
//	[ ...event JSON... ]
//
// v2 added the replicas, seed-bug-fanout fields and the
// promote/demote verbs; v3 added the backend field. v1 and v2
// artifacts still parse (the new fields default to off / Algorithm 1).

const (
	artifactMagic   = "proteus-check/v3"
	artifactMagicV2 = "proteus-check/v2"
	artifactMagicV1 = "proteus-check/v1"
)

// WriteArtifact renders a report's reproducing schedule as a .check
// artifact. The schedule written is the minimal one when shrinking
// succeeded, the full violating prefix otherwise.
func WriteArtifact(w io.Writer, rep *Report) error {
	if rep.Violation == nil {
		return fmt.Errorf("check: nothing to write: the run was clean")
	}
	steps, v := rep.History, rep.Violation
	if rep.Min != nil {
		steps, v = rep.Min, rep.MinViolation
	}
	bw := bufio.NewWriter(w)
	o := rep.Opt
	fmt.Fprintln(bw, artifactMagic)
	fmt.Fprintf(bw, "seed %d\n", o.Seed)
	fmt.Fprintf(bw, "plane %s\n", o.Plane)
	fmt.Fprintf(bw, "servers %d\n", o.Servers)
	fmt.Fprintf(bw, "initial %d\n", o.InitialActive)
	fmt.Fprintf(bw, "keys %d\n", o.Keys)
	fmt.Fprintf(bw, "ttl %s\n", o.TTL)
	fmt.Fprintf(bw, "replicas %d\n", o.HotReplicas)
	fmt.Fprintf(bw, "backend %s\n", o.Backend)
	fmt.Fprintf(bw, "seed-bug %v\n", o.SeedBug)
	fmt.Fprintf(bw, "seed-bug-fanout %v\n", o.SeedBugFanout)
	if v != nil {
		fmt.Fprintf(bw, "violation %s\n", v)
	}
	fmt.Fprintf(bw, "history %d\n", len(steps))
	for _, s := range steps {
		fmt.Fprintln(bw, s)
	}
	if len(rep.Events) > 0 {
		fmt.Fprintln(bw, "events")
		bw.Write(rep.Events)
		if rep.Events[len(rep.Events)-1] != '\n' {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// ParseArtifact reads a .check artifact back into the options and the
// schedule needed to replay it. The recorded violation and events are
// not trusted: a replay re-derives both.
func ParseArtifact(r io.Reader) (Options, []Step, error) {
	sc := bufio.NewScanner(r)
	var opt Options
	if !sc.Scan() || (sc.Text() != artifactMagic && sc.Text() != artifactMagicV2 && sc.Text() != artifactMagicV1) {
		return opt, nil, fmt.Errorf("check: not a %s artifact", artifactMagic)
	}
	historyLen := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		field, rest, _ := strings.Cut(line, " ")
		var err error
		switch field {
		case "seed":
			opt.Seed, err = strconv.ParseInt(rest, 10, 64)
		case "plane":
			opt.Plane, err = ParsePlane(rest)
		case "servers":
			opt.Servers, err = strconv.Atoi(rest)
		case "initial":
			opt.InitialActive, err = strconv.Atoi(rest)
		case "keys":
			opt.Keys, err = strconv.Atoi(rest)
		case "ttl":
			opt.TTL, err = time.ParseDuration(rest)
		case "replicas":
			opt.HotReplicas, err = strconv.Atoi(rest)
		case "backend":
			opt.Backend, err = core.ParseBackend(rest)
		case "seed-bug":
			opt.SeedBug, err = strconv.ParseBool(rest)
		case "seed-bug-fanout":
			opt.SeedBugFanout, err = strconv.ParseBool(rest)
		case "violation":
			// Recorded evidence; replay re-derives it.
		case "history":
			historyLen, err = strconv.Atoi(rest)
		default:
			return opt, nil, fmt.Errorf("check: artifact: unknown field %q", field)
		}
		if err != nil {
			return opt, nil, fmt.Errorf("check: artifact: field %q: %v", field, err)
		}
		if historyLen >= 0 {
			break
		}
	}
	if historyLen < 0 {
		return opt, nil, fmt.Errorf("check: artifact: missing history section")
	}
	steps := make([]Step, 0, historyLen)
	for len(steps) < historyLen && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		st, err := parseStep(line)
		if err != nil {
			return opt, nil, err
		}
		steps = append(steps, st)
	}
	if err := sc.Err(); err != nil {
		return opt, nil, err
	}
	if len(steps) != historyLen {
		return opt, nil, fmt.Errorf("check: artifact: history promises %d steps, found %d", historyLen, len(steps))
	}
	return opt, steps, nil
}

func parseStep(line string) (Step, error) {
	verb, rest, _ := strings.Cut(line, " ")
	switch verb {
	case "get":
		return Step{Kind: StepGet, Key: rest}, nil
	case "set":
		return Step{Kind: StepSet, Key: rest}, nil
	case "promote":
		return Step{Kind: StepPromote, Key: rest}, nil
	case "demote":
		return Step{Kind: StepDemote, Key: rest}, nil
	case "scale":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return Step{}, fmt.Errorf("check: artifact: scale target %q: %v", rest, err)
		}
		return Step{Kind: StepScale, Target: n}, nil
	case "crash", "partition", "heal":
		s, err := strconv.Atoi(rest)
		if err != nil {
			return Step{}, fmt.Errorf("check: artifact: %s server %q: %v", verb, rest, err)
		}
		kind := map[string]StepKind{"crash": StepCrash, "partition": StepPartition, "heal": StepHeal}[verb]
		return Step{Kind: kind, Server: s}, nil
	case "advance":
		d, err := time.ParseDuration(rest)
		if err != nil {
			return Step{}, fmt.Errorf("check: artifact: advance %q: %v", rest, err)
		}
		return Step{Kind: StepAdvance, Skip: d}, nil
	default:
		return Step{}, fmt.Errorf("check: artifact: unknown step %q", line)
	}
}
