package check

import "sort"

// Hot-key replication, model side: the oracle's mirror of
// cluster.Coordinator's hot set (internal/cluster/hotset.go) and
// sim.Harness's (internal/sim/harness_hot.go). The invariant all three
// maintain, and the replica-consistency probe checks on the plane:
//
//	hot(k) => no two reachable current owners of k hold different values
//
// A missing copy is not divergence (reads fall through); a stale copy
// is, and every path that could create one either synchronizes first
// (promote, post-flip hot sync) or demotes (failed write fan-out,
// unreachable owner at sync time).

// ringsFor returns the replica depth key resolves at, mirroring
// Coordinator.RingsFor (the conformance base depth is always 1).
func (o *Oracle) ringsFor(key string) int {
	if o.hotRings <= 1 {
		return 1
	}
	if _, ok := o.hot[key]; ok {
		return o.hotRings
	}
	return 1
}

// owners returns the key's distinct current owners at its replica
// depth, primary first.
func (o *Oracle) owners(key string) []int {
	return o.replicated.DistinctOwnersN(key, o.active, o.ringsFor(key))
}

// HotReplicas returns the promoted-key replica depth (1 when hot-key
// replication is disabled).
func (o *Oracle) HotReplicas() int { return o.hotRings }

// IsHot reports whether the model considers the key hot.
func (o *Oracle) IsHot(key string) bool {
	_, ok := o.hot[key]
	return ok
}

// HotKeys returns the model's hot set, sorted.
func (o *Oracle) HotKeys() []string {
	keys := make([]string, 0, len(o.hot))
	for k := range o.hot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Owners returns the key's distinct current owners at the key's
// replica depth, primary first (probe support).
func (o *Oracle) Owners(key string) []int { return o.owners(key) }

// NodeValue returns the value the model says server i holds for key.
func (o *Oracle) NodeValue(i int, key string) (string, bool) {
	v, ok := o.nodes[i].store[key]
	return v, ok
}

// LastHotSync reports the most recent ApplyScale's hot-sync work: how
// many replica copies it installed or deleted, and how many keys were
// hot when the flip happened. The extended migration-bound probe
// checks installs <= hotBefore x (HotReplicas - 1).
func (o *Oracle) LastHotSync() (installs, hotBefore int) {
	return o.lastSyncInstalls, o.lastSyncHot
}

// ApplyPromote mirrors Coordinator.Promote / Harness.Promote: if every
// full-depth owner is reachable, the primary's state is copied onto
// every non-primary owner and the key is marked hot. Reports whether
// the key is hot on return.
func (o *Oracle) ApplyPromote(key string) bool {
	if o.hotRings <= 1 {
		return false
	}
	if _, ok := o.hot[key]; ok {
		return true
	}
	if _, ok := o.syncHot(key); !ok {
		return false
	}
	o.hot[key] = struct{}{}
	return true
}

// ApplyDemote mirrors Coordinator.Demote / Harness.Demote: unmark
// only; copies linger invisibly. Reports whether the key was hot.
func (o *Oracle) ApplyDemote(key string) bool {
	if _, ok := o.hot[key]; !ok {
		return false
	}
	delete(o.hot, key)
	return true
}

// syncHot establishes the replica invariant for one key: all
// full-depth owners reachable, then the primary's state (value or
// absence) copied onto every non-primary owner. Returns the number of
// copies touched and whether the sync ran.
func (o *Oracle) syncHot(key string) (installs int, ok bool) {
	owners := o.replicated.DistinctOwnersN(key, o.active, o.hotRings)
	for _, s := range owners {
		if !o.Reachable(s) {
			return 0, false
		}
	}
	v, hit := o.nodes[owners[0]].store[key]
	for _, s := range owners[1:] {
		if hit {
			o.nodes[s].store[key] = v
		} else {
			delete(o.nodes[s].store, key)
		}
		installs++
	}
	return installs, true
}

// hotSyncAfterFlip mirrors the plane-side post-flip sweep: every hot
// key re-synced onto its new owner set, keys with an unreachable owner
// demoted, and the work recorded for the migration-bound probe.
func (o *Oracle) hotSyncAfterFlip() {
	o.lastSyncInstalls, o.lastSyncHot = 0, len(o.hot)
	if o.hotRings <= 1 || len(o.hot) == 0 {
		return
	}
	for _, key := range o.HotKeys() {
		if n, ok := o.syncHot(key); ok {
			o.lastSyncInstalls += n
		} else {
			delete(o.hot, key)
		}
	}
}
