package check

import (
	"fmt"
	"time"

	"proteus/internal/core"
)

// PlaneKind selects which execution plane(s) a run drives.
type PlaneKind int

const (
	// PlaneSim drives the discrete-event simulator harness.
	PlaneSim PlaneKind = iota
	// PlaneLive drives the real TCP stack.
	PlaneLive
	// PlaneBoth drives both in lockstep, additionally comparing their
	// observations step by step.
	PlaneBoth
)

func (k PlaneKind) String() string {
	switch k {
	case PlaneSim:
		return "sim"
	case PlaneLive:
		return "live"
	case PlaneBoth:
		return "both"
	default:
		return fmt.Sprintf("plane(%d)", int(k))
	}
}

// ParsePlane parses a -plane flag value.
func ParsePlane(s string) (PlaneKind, error) {
	switch s {
	case "sim":
		return PlaneSim, nil
	case "live":
		return PlaneLive, nil
	case "both":
		return PlaneBoth, nil
	default:
		return 0, fmt.Errorf("check: unknown plane %q (want sim, live, or both)", s)
	}
}

// Options configures a conformance run. The zero value of every field
// except Seed is filled by withDefaults.
type Options struct {
	Seed          int64
	Steps         int
	Servers       int
	InitialActive int
	Keys          int
	TTL           time.Duration
	Plane         PlaneKind
	// SeedBug arms the sim harness's UnsafeEarlyPowerOff hook (the
	// deliberate premature power-off); sim plane only.
	SeedBug bool
	// HotReplicas enables hot-key replication on the oracle and both
	// planes: promoted keys resolve at this replica depth (0 or 1
	// disables). The explorer adds promote/demote verbs and skews reads
	// toward a hot candidate set when enabled.
	HotReplicas int
	// SeedBugFanout arms the sim harness's UnsafeSkipFanout hook (Set
	// writes the primary only, stranding stale replica copies); sim
	// plane only.
	SeedBugFanout bool
	// NoShrink skips delta-debugging the history after a violation.
	NoShrink bool
	// Backend selects the placement geometry on the oracle and both
	// planes (empty = Algorithm 1). The geometry probes adapt: exact
	// rational balance/migration checks for Algorithm 1, deterministic
	// sampled bounds for the O(1) backends.
	Backend core.BackendKind
}

func (o Options) withDefaults() Options {
	if o.Steps <= 0 {
		o.Steps = 1000
	}
	if o.Servers <= 0 {
		o.Servers = 5
	}
	if o.InitialActive <= 0 {
		o.InitialActive = 3
	}
	if o.InitialActive > o.Servers {
		o.InitialActive = o.Servers
	}
	if o.Keys <= 0 {
		o.Keys = 48
	}
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	return o
}

func keyUniverse(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	return keys
}

// Stats aggregates one run's step and outcome counts.
type Stats struct {
	Gets, Sets, Scales, Crashes, Partitions, Heals, Advances int
	Promotes, Demotes                                        int
	Hits, Migrated, DBFetches                                int
	Flips                                                    int
}

// session is one (oracle, plane, probes) triple consuming the step
// stream.
type session struct {
	oracle *Oracle
	plane  Plane
	probes []Probe
	stats  Stats
}

func newSession(opt Options, kind PlaneKind) (*session, error) {
	oracle, err := NewOracle(opt.Backend, opt.Servers, opt.InitialActive, opt.TTL, keyUniverse(opt.Keys), opt.HotReplicas)
	if err != nil {
		return nil, err
	}
	var plane Plane
	switch kind {
	case PlaneSim:
		plane, err = newSimPlane(opt, oracle.DBValue)
	case PlaneLive:
		plane, err = newLivePlane(opt, oracle.DBValue)
	default:
		err = fmt.Errorf("check: session wants a single plane, got %s", kind)
	}
	if err != nil {
		return nil, err
	}
	return &session{oracle: oracle, plane: plane, probes: defaultProbes()}, nil
}

// apply runs one step through the oracle and the plane, then every
// probe. It returns the step's observation and the first violation.
func (s *session) apply(i int, st Step) (Observation, *Violation) {
	prevActive := s.oracle.Active()
	var obs, exp Observation
	switch st.Kind {
	case StepGet:
		s.stats.Gets++
		v, src, found := s.oracle.ApplyGet(st.Key)
		exp = Observation{Value: v, Src: src, Found: found}
		obs = s.plane.Get(st.Key)
		switch obs.Src {
		case SourceHit:
			s.stats.Hits++
		case SourceMigrated:
			s.stats.Migrated++
		case SourceDB:
			s.stats.DBFetches++
		}
	case StepSet:
		s.stats.Sets++
		val := s.oracle.ApplySet(st.Key)
		obs = s.plane.Set(st.Key, val)
	case StepScale:
		s.stats.Scales++
		if _, err := s.oracle.ApplyScale(st.Target); err != nil {
			return obs, &Violation{Probe: "schedule", Step: i, Detail: err.Error()}
		}
		obs = s.plane.Scale(st.Target)
	case StepCrash:
		s.stats.Crashes++
		s.oracle.ApplyCrash(st.Server)
		s.plane.Crash(st.Server)
	case StepPartition:
		s.stats.Partitions++
		s.oracle.ApplyPartition(st.Server)
		s.plane.Partition(st.Server)
	case StepHeal:
		s.stats.Heals++
		s.oracle.ApplyHeal(st.Server)
		s.plane.Heal(st.Server)
	case StepAdvance:
		s.stats.Advances++
		s.oracle.ApplyAdvance(st.Skip)
		s.plane.Advance(st.Skip)
	case StepPromote:
		s.stats.Promotes++
		exp = Observation{Found: s.oracle.ApplyPromote(st.Key)}
		obs = s.plane.Promote(st.Key)
		if obs.Err == "" && obs.Found != exp.Found {
			return obs, &Violation{Probe: "conformance", Step: i, Detail: fmt.Sprintf(
				"%s: plane promoted=%v, oracle expects %v", st, obs.Found, exp.Found)}
		}
	case StepDemote:
		s.stats.Demotes++
		exp = Observation{Found: s.oracle.ApplyDemote(st.Key)}
		obs = s.plane.Demote(st.Key)
		if obs.Err == "" && obs.Found != exp.Found {
			return obs, &Violation{Probe: "conformance", Step: i, Detail: fmt.Sprintf(
				"%s: plane demoted=%v, oracle expects %v", st, obs.Found, exp.Found)}
		}
	default:
		return obs, &Violation{Probe: "schedule", Step: i, Detail: fmt.Sprintf("unknown step kind %d", st.Kind)}
	}
	pc := &ProbeContext{
		Oracle:     s.oracle,
		State:      s.plane.State(),
		StepIndex:  i,
		Step:       st,
		Obs:        obs,
		Expected:   exp,
		PrevActive: prevActive,
	}
	for _, p := range s.probes {
		if v := p.Check(pc); v != nil {
			return obs, v
		}
	}
	return obs, nil
}

func (s *session) close() {
	s.stats.Flips = s.oracle.Flips()
	s.plane.Close()
}

// sessionKinds expands a PlaneKind into the sessions a run needs.
func sessionKinds(k PlaneKind) []PlaneKind {
	if k == PlaneBoth {
		return []PlaneKind{PlaneSim, PlaneLive}
	}
	return []PlaneKind{k}
}

// runHistory replays a fixed step list against the configured plane(s),
// returning the first violation, the name of the violating plane, the
// event-log JSON of that plane at the failure point, and the primary
// session's stats. It is the engine under both the explorer (which
// generates steps as it goes) and the shrinker/replayer (fixed lists).
func runHistory(opt Options, steps []Step) (*Violation, string, []byte, Stats, error) {
	opt = opt.withDefaults()
	kinds := sessionKinds(opt.Plane)
	sessions := make([]*session, 0, len(kinds))
	defer func() {
		for _, s := range sessions {
			s.close()
		}
	}()
	for _, k := range kinds {
		s, err := newSession(opt, k)
		if err != nil {
			return nil, "", nil, Stats{}, err
		}
		sessions = append(sessions, s)
	}
	for i, st := range steps {
		v, plane, events := applyAll(sessions, i, st)
		if v != nil {
			sessions[0].stats.Flips = sessions[0].oracle.Flips()
			return v, plane, events, sessions[0].stats, nil
		}
	}
	for _, s := range sessions {
		s.stats.Flips = s.oracle.Flips()
	}
	return nil, "", nil, sessions[0].stats, nil
}

// applyAll runs one step through every session and, in lockstep mode,
// cross-checks the planes' observations against each other.
func applyAll(sessions []*session, i int, st Step) (*Violation, string, []byte) {
	obs := make([]Observation, len(sessions))
	for j, s := range sessions {
		o, v := s.apply(i, st)
		if v != nil {
			return v, s.plane.Name(), eventsJSON(s.plane)
		}
		obs[j] = o
	}
	if len(sessions) == 2 && st.Kind == StepGet {
		a, b := obs[0], obs[1]
		if a.Value != b.Value || a.Src != b.Src || a.Found != b.Found {
			v := &Violation{Probe: "lockstep", Step: i, Detail: fmt.Sprintf(
				"%s: planes disagree: %s says (%q, %s, found=%v), %s says (%q, %s, found=%v)",
				st, sessions[0].plane.Name(), a.Value, a.Src, a.Found,
				sessions[1].plane.Name(), b.Value, b.Src, b.Found)}
			return v, "both", eventsJSON(sessions[0].plane)
		}
	}
	return nil, "", nil
}
