package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"proteus/internal/telemetry"
)

func TestWritePrometheusFormat(t *testing.T) {
	reg := telemetry.NewRegistry()
	ops := reg.Counter("proteus_ops_total", "operations by result", "op", "result")
	ops.With("get", "ok").Add(12)
	ops.With("set", "error").Inc()
	reg.Gauge("proteus_active_nodes", "active cache nodes").With().Set(5)
	h := reg.Histogram("proteus_op_seconds", "op latency", "op").With("get")
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE proteus_active_nodes gauge\n",
		"proteus_active_nodes 5\n",
		"# HELP proteus_ops_total operations by result\n",
		"# TYPE proteus_ops_total counter\n",
		`proteus_ops_total{op="get",result="ok"} 12` + "\n",
		`proteus_ops_total{op="set",result="error"} 1` + "\n",
		"# TYPE proteus_op_seconds summary\n",
		`proteus_op_seconds_count{op="get"} 10` + "\n",
		`proteus_op_seconds_sum{op="get"} 1` + "\n",
		`proteus_op_seconds{op="get",quantile="0.5"}`,
		`proteus_op_seconds{op="get",quantile="0.999"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("proteus_paths_total", "by path", "path").With(`a"b\c`).Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `proteus_paths_total{path="a\"b\\c"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("output missing %q:\n%s", want, sb.String())
	}
}
