package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"proteus/internal/telemetry"
)

// durClock is a deterministic duration clock advancing 1ms per reading.
func durClock() func() time.Duration {
	var ticks int
	return func() time.Duration {
		ticks++
		return time.Duration(ticks) * time.Millisecond
	}
}

func recordTransition(l *telemetry.EventLog, from, to, hits, misses int) {
	for n := to; n > from; n-- {
		l.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: n - 1})
	}
	for n := 0; n < from; n++ {
		l.Record(telemetry.Event{Kind: telemetry.EventDigestBuild, Node: n})
	}
	l.Record(telemetry.Event{Kind: telemetry.EventDigestBroadcast, Node: -1})
	l.Record(telemetry.Event{Kind: telemetry.EventOwnershipFlip, Node: -1, From: from, To: to})
	for i := 0; i < hits; i++ {
		l.Record(telemetry.Event{Kind: telemetry.EventMigrationHit, Node: 0})
	}
	for i := 0; i < misses; i++ {
		l.Record(telemetry.Event{Kind: telemetry.EventMigrationMiss, Node: 0})
	}
	l.Record(telemetry.Event{Kind: telemetry.EventTTLExpiry, Node: -1})
}

func TestEventLogTransitionAccounting(t *testing.T) {
	l := telemetry.NewEventLog(telemetry.EventLogConfig{Clock: durClock()})
	recordTransition(l, 2, 4, 3, 1)
	recordTransition(l, 4, 6, 5, 0)

	if got := l.Transitions(); got != 2 {
		t.Errorf("Transitions() = %d, want 2", got)
	}
	m := l.MigrationsPerTransition()
	if len(m) != 2 || m[0] != 3 || m[1] != 5 {
		t.Errorf("MigrationsPerTransition() = %v, want [3 5]", m)
	}
	if got := l.Count(telemetry.EventMigrationHit); got != 8 {
		t.Errorf("Count(MigrationHit) = %d, want 8", got)
	}
	if got := l.Count(telemetry.EventMigrationMiss); got != 1 {
		t.Errorf("Count(MigrationMiss) = %d, want 1", got)
	}
	if got := l.Count(telemetry.EventPowerOn); got != 4 {
		t.Errorf("Count(PowerOn) = %d, want 4", got)
	}

	events := l.Events()
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if i > 0 && ev.At <= events[i-1].At {
			t.Fatalf("event %d time %v not after %v", i, ev.At, events[i-1].At)
		}
	}
	// Migration events carry the ordinal of their transition; power-ons
	// precede the flip so they carry the previous (closed → 0) ordinal.
	var hitTransitions []int
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.EventMigrationHit:
			hitTransitions = append(hitTransitions, ev.Transition)
		case telemetry.EventPowerOn:
			if ev.Transition != 0 {
				t.Errorf("power_on inside transition %d, want 0", ev.Transition)
			}
		}
	}
	want := []int{1, 1, 1, 2, 2, 2, 2, 2}
	if len(hitTransitions) != len(want) {
		t.Fatalf("hit transitions = %v, want %v", hitTransitions, want)
	}
	for i := range want {
		if hitTransitions[i] != want[i] {
			t.Fatalf("hit transitions = %v, want %v", hitTransitions, want)
		}
	}
}

func TestEventLogRingEvictionKeepsCounts(t *testing.T) {
	l := telemetry.NewEventLog(telemetry.EventLogConfig{Clock: durClock(), Capacity: 4})
	recordTransition(l, 1, 2, 10, 0)
	if got := len(l.Events()); got != 4 {
		t.Errorf("ring holds %d events, want 4", got)
	}
	if got := l.Count(telemetry.EventMigrationHit); got != 10 {
		t.Errorf("Count(MigrationHit) = %d after eviction, want 10", got)
	}
	if m := l.MigrationsPerTransition(); len(m) != 1 || m[0] != 10 {
		t.Errorf("MigrationsPerTransition() = %v, want [10]", m)
	}
}

func TestEventLogJSONDeterministic(t *testing.T) {
	run := func() string {
		l := telemetry.NewEventLog(telemetry.EventLogConfig{Clock: durClock()})
		recordTransition(l, 2, 3, 2, 1)
		var sb strings.Builder
		if err := l.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same sequence produced different JSON:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{`"kind": "ownership_flip"`, `"kind": "migration_hit"`, `"at_us"`} {
		if !strings.Contains(a, want) {
			t.Errorf("JSON missing %q:\n%s", want, a)
		}
	}
}

func TestNilEventLogIsUsable(t *testing.T) {
	var l *telemetry.EventLog
	l.Record(telemetry.Event{Kind: telemetry.EventPowerOn})
	if l.Count(telemetry.EventPowerOn) != 0 || l.Transitions() != 0 {
		t.Error("nil event log retained state")
	}
	if l.Events() != nil || l.MigrationsPerTransition() != nil {
		t.Error("nil event log returned non-nil slices")
	}
	var sb strings.Builder
	if err := l.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("nil event log JSON = %q, want []", sb.String())
	}
}

func TestEventKindString(t *testing.T) {
	if telemetry.EventOwnershipFlip.String() != "ownership_flip" {
		t.Errorf("EventOwnershipFlip = %q", telemetry.EventOwnershipFlip.String())
	}
	if got := telemetry.EventKind(200).String(); got != "event_kind_200" {
		t.Errorf("unknown kind = %q", got)
	}
}
