package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"proteus/internal/telemetry"
)

func TestCounterVec(t *testing.T) {
	reg := telemetry.NewRegistry()
	ops := reg.Counter("proteus_test_ops_total", "test ops", "op", "result")
	ops.With("get", "ok").Inc()
	ops.With("get", "ok").Add(2)
	ops.With("set", "error").Inc()

	if got := ops.With("get", "ok").Value(); got != 3 {
		t.Errorf("get/ok = %d, want 3", got)
	}
	if got := ops.With("set", "error").Value(); got != 1 {
		t.Errorf("set/error = %d, want 1", got)
	}
	if got := ops.Total(); got != 4 {
		t.Errorf("Total() = %d, want 4", got)
	}
	// Same vec handle from a second registration call.
	again := reg.Counter("proteus_test_ops_total", "test ops", "op", "result")
	if got := again.With("get", "ok").Value(); got != 3 {
		t.Errorf("re-registered vec sees %d, want 3", got)
	}
}

func TestGaugeAndHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("proteus_test_active", "active nodes").With()
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %v, want 7", g.Value())
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %v, want 3.5", g.Value())
	}

	h := reg.Histogram("proteus_test_latency", "latency", "op").With("get")
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	snap := h.Snapshot()
	if snap.Count() != 100 {
		t.Errorf("histogram count = %d, want 100", snap.Count())
	}
	if snap.Sum() != 100*time.Millisecond {
		t.Errorf("histogram sum = %v, want 100ms", snap.Sum())
	}
}

func TestNilRegistryIsUsable(t *testing.T) {
	var reg *telemetry.Registry
	c := reg.Counter("proteus_test_total", "detached", "op").With("a")
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("detached counter = %d, want 1", c.Value())
	}
	reg.Gauge("proteus_test_g", "detached").With().Set(1)
	reg.Histogram("proteus_test_h", "detached").With().Observe(time.Millisecond)
	if fams := reg.Gather(); fams != nil {
		t.Errorf("nil registry gathered %d families, want none", len(fams))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry export: err=%v output=%q", err, sb.String())
	}
}

func TestRegistryConflictsPanic(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("proteus_test_x", "x", "op")

	expectPanic(t, "kind conflict", func() { reg.Gauge("proteus_test_x", "x", "op") })
	expectPanic(t, "label conflict", func() { reg.Counter("proteus_test_x", "x", "other") })
	expectPanic(t, "arity mismatch", func() { reg.Counter("proteus_test_x", "x", "op").With("a", "b") })
	expectPanic(t, "bad metric name", func() { reg.Counter("bad name", "x") })
	expectPanic(t, "bad label value", func() { reg.Counter("proteus_test_y", "y", "op").With("a\nb") })
}

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestGatherDeterministicOrder(t *testing.T) {
	build := func() *telemetry.Registry {
		reg := telemetry.NewRegistry()
		// Register in one order, populate in another.
		reg.Gauge("proteus_b_gauge", "b").With().Set(2)
		ops := reg.Counter("proteus_a_total", "a", "op")
		ops.With("z").Inc()
		ops.With("a").Add(5)
		return reg
	}
	var first, second strings.Builder
	if err := build().WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("export not deterministic:\n%s\nvs\n%s", first.String(), second.String())
	}
	fams := build().Gather()
	if len(fams) != 2 || fams[0].Name != "proteus_a_total" || fams[1].Name != "proteus_b_gauge" {
		t.Fatalf("families not sorted: %+v", fams)
	}
	if fams[0].Series[0].Labels[0].Value != "a" || fams[0].Series[1].Labels[0].Value != "z" {
		t.Errorf("series not sorted by label value: %+v", fams[0].Series)
	}
}
