package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// AdminMux bundles the export surface into one handler:
//
//	/metrics        Prometheus text exposition
//	/debug/traces   completed spans as JSON
//	/debug/events   transition events as JSON
//	/debug/pprof/   the standard runtime profiles
//	/healthz        liveness probe
//
// pprof handlers are registered explicitly rather than through
// http.DefaultServeMux, so importing this package never mutates global
// state. Any of the three arguments may be nil; the corresponding
// endpoint then serves empty output.
func AdminMux(reg *Registry, tr *Tracer, ev *EventLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = ev.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
