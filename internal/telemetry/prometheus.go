package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// summaryQuantiles are the quantiles exported for histogram families,
// matching the percentiles the experiments report (Fig. 9 uses p99.9).
var summaryQuantiles = []float64{0.5, 0.99, 0.999}

// WritePrometheus writes the registry contents in Prometheus text
// exposition format. Families are sorted by name and series by label
// values, so the output is a deterministic function of the registry
// state. Histogram families are exported as summaries with latency
// values in seconds. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Gather() {
		if err := writeFamily(w, fam); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, fam Family) error {
	if fam.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
		return err
	}
	for _, s := range fam.Series {
		var err error
		switch fam.Kind {
		case "counter":
			err = writeSample(w, fam.Name, s.Labels, "", formatUint(s.Count))
		case "gauge":
			err = writeSample(w, fam.Name, s.Labels, "", formatFloat(s.Value))
		default:
			err = writeSummary(w, fam.Name, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSummary(w io.Writer, name string, s Series) error {
	for _, q := range summaryQuantiles {
		labels := append(append([]Label(nil), s.Labels...),
			Label{Name: "quantile", Value: formatFloat(q)})
		v := formatFloat(seconds(s.Hist.Quantile(q)))
		if err := writeSample(w, name, labels, "", v); err != nil {
			return err
		}
	}
	if err := writeSample(w, name, s.Labels, "_sum", formatFloat(seconds(s.Hist.Sum()))); err != nil {
		return err
	}
	return writeSample(w, name, s.Labels, "_count", formatUint(s.Hist.Count()))
}

func writeSample(w io.Writer, name string, labels []Label, suffix, value string) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func seconds(d time.Duration) float64 { return d.Seconds() }

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeValue escapes a label value per the exposition format.
func escapeValue(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, `\`+"\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}
