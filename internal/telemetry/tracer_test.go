package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"proteus/internal/telemetry"
)

// stepClock is a deterministic test clock advancing 1ms per reading.
func stepClock() func() time.Time {
	base := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	var ticks int
	return func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * time.Millisecond)
	}
}

func TestTracerSpans(t *testing.T) {
	tr := telemetry.NewTracer(telemetry.TracerConfig{Clock: stepClock(), Seed: 1})
	root := tr.Start("request")
	root.SetAttr("key", "user:42")
	child := root.Child("cache.get")
	child.End()
	root.SetAttr("source", "hit")
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children end first, so they commit first.
	if spans[0].Name != "cache.get" || spans[1].Name != "request" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Error("child does not share the root's trace ID")
	}
	if spans[0].ParentID != spans[1].ID {
		t.Error("child's parent is not the root span")
	}
	if !spans[1].Finish.After(spans[1].Start) {
		t.Errorf("root span has no duration: %v .. %v", spans[1].Start, spans[1].Finish)
	}
	if len(spans[1].Attrs) != 2 || spans[1].Attrs[0].Value != "user:42" {
		t.Errorf("root attrs = %+v", spans[1].Attrs)
	}
}

func TestTracerDeterministic(t *testing.T) {
	run := func() string {
		tr := telemetry.NewTracer(telemetry.TracerConfig{Clock: stepClock(), Seed: 42})
		for i := 0; i < 5; i++ {
			s := tr.Start("op")
			s.SetAttr("i", strings.Repeat("x", i))
			s.Child("inner").End()
			s.End()
		}
		var sb strings.Builder
		if err := tr.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different traces:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"trace_id"`) || !strings.Contains(a, `"duration_us"`) {
		t.Errorf("unexpected trace JSON:\n%s", a)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := telemetry.NewTracer(telemetry.TracerConfig{Clock: stepClock(), Seed: 1, Capacity: 3})
	for i := 0; i < 5; i++ {
		tr.Start("op").End()
	}
	if got := len(tr.Spans()); got != 3 {
		t.Errorf("ring holds %d spans, want 3", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
}

func TestNilTracerIsUsable(t *testing.T) {
	var tr *telemetry.Tracer
	s := tr.Start("op")
	s.SetAttr("k", "v")
	s.Child("inner").End()
	s.EndAt(time.Time{})
	s.End()
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer retained state")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("nil tracer JSON = %q, want []", sb.String())
	}
}

func TestTracerPanicsWithoutClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing clock")
		}
	}()
	telemetry.NewTracer(telemetry.TracerConfig{})
}
