package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Clock supplies span timestamps. Required: on the DES plane it is
	// the engine's virtual clock, on the live plane the boundary
	// injects time.Now.
	Clock func() time.Time
	// Seed drives span/trace ID generation. The same seed with the
	// same clock yields byte-identical trace dumps.
	Seed int64
	// Capacity bounds the completed-span ring buffer (default 4096).
	Capacity int
}

const defaultTraceCapacity = 4096

// Tracer records spans into a bounded ring buffer. It is safe for
// concurrent use. A nil *Tracer is a valid no-op: Start returns a nil
// *Span and every Span method tolerates a nil receiver, so
// instrumented code never branches on whether tracing is enabled.
type Tracer struct {
	clock func() time.Time

	mu    sync.Mutex
	rng   *rand.Rand
	ring  []Span
	next  int // ring insertion index
	count int // spans stored, <= len(ring)
	drops uint64
}

// NewTracer builds a tracer. It panics if cfg.Clock is nil — a missing
// clock is a wiring bug, and defaulting to the wall clock would
// silently break DES-plane determinism.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Clock == nil {
		panic("telemetry: TracerConfig.Clock is required")
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &Tracer{
		clock: cfg.Clock,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		ring:  make([]Span, capacity),
	}
}

// Attr is one key/value annotation on a span. Attrs are kept as an
// ordered list (not a map) so JSON output is deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation. Create with Tracer.Start or Span.Child;
// a span becomes visible in the trace store only after End/EndAt.
type Span struct {
	TraceID  uint64 `json:"-"`
	ID       uint64 `json:"-"`
	ParentID uint64 `json:"-"`
	Name     string `json:"name"`
	Start    time.Time
	Finish   time.Time
	Attrs    []Attr

	tracer *Tracer
}

// Start begins a new root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traceID, spanID := t.rng.Uint64(), t.rng.Uint64()
	t.mu.Unlock()
	return &Span{
		TraceID: traceID,
		ID:      spanID,
		Name:    name,
		Start:   t.clock(),
		tracer:  t,
	}
}

// Child begins a span under s, sharing its trace ID.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	spanID := t.rng.Uint64()
	t.mu.Unlock()
	return &Span{
		TraceID:  s.TraceID,
		ID:       spanID,
		ParentID: s.ID,
		Name:     name,
		Start:    t.clock(),
		tracer:   t,
	}
}

// SetAttr appends a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// End completes the span at the tracer's current clock reading and
// commits it to the trace store.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tracer.clock())
}

// EndAt completes the span at an explicit time. The DES runner uses
// this: completion callbacks execute synchronously at schedule time,
// so the finish time is known to the caller, not to the clock.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.Finish = end
	s.tracer.commit(*s)
}

func (t *Tracer) commit(s Span) {
	s.tracer = nil
	t.mu.Lock()
	if t.count == len(t.ring) {
		t.drops++
	} else {
		t.count++
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
}

// Spans returns completed spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.count)
	start := (t.next - t.count + len(t.ring)) % len(t.ring)
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dropped returns how many completed spans were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// spanJSON is the wire form of a span: hex IDs, RFC3339Nano start,
// integer microsecond duration — all deterministic under a virtual
// clock and a fixed seed.
type spanJSON struct {
	TraceID    string `json:"trace_id"`
	SpanID     string `json:"span_id"`
	ParentID   string `json:"parent_id,omitempty"`
	Name       string `json:"name"`
	Start      string `json:"start"`
	DurationUS int64  `json:"duration_us"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// WriteJSON writes the completed spans, oldest first, as a JSON array.
// Two tracers with the same seed, clock, and span sequence produce
// byte-identical output. A nil tracer writes an empty array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	out := make([]spanJSON, len(spans))
	for i, s := range spans {
		out[i] = spanJSON{
			TraceID:    fmt.Sprintf("%016x", s.TraceID),
			SpanID:     fmt.Sprintf("%016x", s.ID),
			Name:       s.Name,
			Start:      s.Start.UTC().Format(time.RFC3339Nano),
			DurationUS: s.Finish.Sub(s.Start).Microseconds(),
			Attrs:      s.Attrs,
		}
		if s.ParentID != 0 {
			out[i].ParentID = fmt.Sprintf("%016x", s.ParentID)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
