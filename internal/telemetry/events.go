package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind identifies one Algorithm 2 / Section IV transition phase.
type EventKind uint8

const (
	// EventPowerOn: a cache node was added to the active set.
	EventPowerOn EventKind = iota + 1
	// EventPowerOff: a cache node left the active set after a
	// transition's TTL window closed.
	EventPowerOff
	// EventDigestBuild: an old owner snapshotted its counting Bloom
	// filter into a broadcast digest.
	EventDigestBuild
	// EventDigestBroadcast: the digests for a transition were
	// installed cluster-wide (routing flip is imminent).
	EventDigestBroadcast
	// EventOwnershipFlip: routing switched to the new active count;
	// the transition window opened.
	EventOwnershipFlip
	// EventMigrationHit: a digest consult hit and the key was
	// amortized-migrated from the old owner (Algorithm 2 lines 7-9).
	EventMigrationHit
	// EventMigrationMiss: a digest consult was a false positive — the
	// old owner did not have the key and the DB was queried.
	EventMigrationMiss
	// EventTTLExpiry: the transition's TTL window closed and its
	// digests were discarded.
	EventTTLExpiry
	// EventHotPromote: a key entered the hot set and its replica copies
	// were installed.
	EventHotPromote
	// EventHotDemote: a key left the hot set (cooled off, or its
	// replica fan-out failed and reads fell back to the primary).
	EventHotDemote
	// EventHotSync: an ownership flip re-synchronised the hot set's
	// replica copies onto the new owner sets.
	EventHotSync
	// EventProvisionDecision: a provisioning policy decided the next
	// slot's fleet size (From = current, To = target; Node carries the
	// slot ordinal). Recorded even for holds, so the decision cadence
	// is reconstructible from the event stream alone.
	EventProvisionDecision
)

var eventKindNames = map[EventKind]string{
	EventPowerOn:           "power_on",
	EventPowerOff:          "power_off",
	EventDigestBuild:       "digest_build",
	EventDigestBroadcast:   "digest_broadcast",
	EventOwnershipFlip:     "ownership_flip",
	EventMigrationHit:      "migration_hit",
	EventMigrationMiss:     "migration_miss",
	EventTTLExpiry:         "ttl_expiry",
	EventHotPromote:        "hot_promote",
	EventHotDemote:         "hot_demote",
	EventHotSync:           "hot_sync",
	EventProvisionDecision: "provision_decision",
}

// String returns the snake_case event name used in exports.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event_kind_%d", uint8(k))
}

// Event is one recorded transition phase.
type Event struct {
	// Seq is the 1-based record order, assigned by the log.
	Seq uint64
	// At is the experiment-relative (or process-relative) timestamp,
	// assigned by the log's clock.
	At time.Duration
	// Kind is the phase.
	Kind EventKind
	// Transition is the 1-based ordinal of the transition this event
	// belongs to (0 for events outside any transition). Assigned by
	// the log: OwnershipFlip opens a transition, TTLExpiry closes it.
	Transition int
	// Node is the cache node the event concerns, -1 when it is
	// cluster-wide.
	Node int
	// From and To are the active-set sizes around an ownership flip
	// (0 otherwise).
	From, To int
}

// EventLogConfig configures an EventLog.
type EventLogConfig struct {
	// Clock supplies event timestamps as a duration from an arbitrary
	// epoch. Required: the DES plane passes the engine clock, the live
	// plane passes time.Since(start) captured at one boundary.
	Clock func() time.Duration
	// Capacity bounds the retained event window (default 16384).
	// Per-kind counts and per-transition migration totals keep
	// counting after eviction.
	Capacity int
}

const defaultEventCapacity = 16384

// EventLog records transition events in a bounded ring buffer while
// maintaining exact per-kind counts and per-transition amortized
// migration totals (the Fig. 7/8 accounting). It is safe for
// concurrent use; a nil *EventLog drops everything.
type EventLog struct {
	clock func() time.Duration

	mu         sync.Mutex
	ring       []Event
	next       int
	count      int
	seq        uint64
	kinds      map[EventKind]uint64
	transition int      // current open transition ordinal, 0 if none
	migrations []uint64 // per-transition migration-hit counts, index = ordinal-1
}

// NewEventLog builds an event log. It panics if cfg.Clock is nil, for
// the same reason NewTracer does.
func NewEventLog(cfg EventLogConfig) *EventLog {
	if cfg.Clock == nil {
		panic("telemetry: EventLogConfig.Clock is required")
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = defaultEventCapacity
	}
	return &EventLog{
		clock: cfg.Clock,
		ring:  make([]Event, capacity),
		kinds: make(map[EventKind]uint64),
	}
}

// Record stamps ev with Seq, At, and the current transition ordinal,
// then appends it. OwnershipFlip opens the next transition before
// stamping; TTLExpiry closes the current one after stamping. The
// caller fills Kind, Node, From, To.
func (l *EventLog) Record(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	ev.At = l.clock()
	switch ev.Kind {
	case EventOwnershipFlip:
		l.migrations = append(l.migrations, 0)
		l.transition = len(l.migrations)
	case EventMigrationHit:
		if l.transition > 0 {
			l.migrations[l.transition-1]++
		}
	}
	ev.Transition = l.transition
	l.kinds[ev.Kind]++
	if l.count == len(l.ring) {
		// Ring full: the oldest event is evicted (counts persist).
	} else {
		l.count++
	}
	l.ring[l.next] = ev
	l.next = (l.next + 1) % len(l.ring)
	if ev.Kind == EventTTLExpiry {
		l.transition = 0
	}
	l.mu.Unlock()
}

// Count returns how many events of the given kind were ever recorded
// (including any evicted from the ring).
func (l *EventLog) Count(kind EventKind) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.kinds[kind]
}

// Transitions returns how many ownership flips have been recorded.
func (l *EventLog) Transitions() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.migrations)
}

// MigrationsPerTransition returns the amortized-migration (digest
// consult hit) count of each transition, in flip order.
func (l *EventLog) MigrationsPerTransition() []uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]uint64(nil), l.migrations...)
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.count)
	start := (l.next - l.count + len(l.ring)) % len(l.ring)
	for i := 0; i < l.count; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// eventJSON is the wire form of an event.
type eventJSON struct {
	Seq        uint64 `json:"seq"`
	AtUS       int64  `json:"at_us"`
	Kind       string `json:"kind"`
	Transition int    `json:"transition,omitempty"`
	Node       int    `json:"node"`
	From       int    `json:"from,omitempty"`
	To         int    `json:"to,omitempty"`
}

// WriteJSON writes the retained events, oldest first, as a JSON array.
// Deterministic for a deterministic clock and event sequence. A nil
// log writes an empty array.
func (l *EventLog) WriteJSON(w io.Writer) error {
	events := l.Events()
	out := make([]eventJSON, len(events))
	for i, ev := range events {
		out[i] = eventJSON{
			Seq:        ev.Seq,
			AtUS:       ev.At.Microseconds(),
			Kind:       ev.Kind.String(),
			Transition: ev.Transition,
			Node:       ev.Node,
			From:       ev.From,
			To:         ev.To,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
