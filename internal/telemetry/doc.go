// Package telemetry is the observability layer shared by both
// execution planes: a labeled metric registry, a deterministic span
// tracer, and a structured transition-event log.
//
// The three pillars:
//
//   - Registry holds labeled counter, gauge and latency-histogram
//     families (histograms wrap metrics.Histogram, so the exported
//     quantiles are the same log-bucketed estimates the experiments
//     report). Instruments are wired once at construction time — the
//     metrichygiene analyzer enforces init-time registration — and are
//     lock-free (atomics) or single-mutex on the observation path.
//     Every constructor is nil-receiver safe: instruments created from
//     a nil *Registry keep counting but are invisible to exporters,
//     which is how components stay unconditionally instrumented while
//     telemetry remains optional.
//
//   - Tracer records spans under an injected Clock with IDs drawn from
//     a seeded generator — no wall clock, no global rand, per the
//     repository's determinism contract (this package is on the
//     nodeterminism replay-critical list). On the DES plane the same
//     seed therefore yields a byte-identical trace dump; on the live
//     plane the boundary (cmd/proteusd) injects time.Now. Completed
//     spans land in a bounded ring buffer.
//
//   - EventLog captures every Algorithm 2 / Section IV phase of a
//     provisioning transition — digest build, broadcast, ownership
//     flip, amortized migration hit/miss (the digest false-positive
//     consult), TTL expiry, power on/off — with per-transition
//     migration counts, so the Fig. 7/8 style accounting the
//     experiments compute offline is also available from a live
//     cluster.
//
// Export: Registry.WritePrometheus emits Prometheus text format,
// Tracer.WriteJSON / EventLog.WriteJSON emit deterministic JSON, and
// AdminMux bundles all three with net/http/pprof into the handler
// cmd/proteusd serves.
package telemetry
