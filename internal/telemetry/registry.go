package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/metrics"
)

// Registry is a set of named metric families. It is safe for concurrent
// use. The zero value is not usable; construct with NewRegistry. A nil
// *Registry is a valid no-op sink: instruments created from it work
// normally but are not exported.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// metricKind discriminates family types.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		// metrics.Histogram exports quantiles, so the Prometheus
		// exposition type is summary.
		return "summary"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled instrument within a family.
type series struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Counter is a monotonically increasing uint64. Mutation is atomic, so
// counters may be bumped from any goroutine without extra locking.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (atomic bit store).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a latency histogram instrument wrapping
// metrics.Histogram under a mutex.
type Histogram struct {
	mu sync.Mutex
	h  metrics.Histogram
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.h.Observe(d)
	h.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram.
func (h *Histogram) Snapshot() metrics.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// CounterVec is a family of counters sharing a name and label schema.
type CounterVec struct{ f *family }

// GaugeVec is a family of gauges.
type GaugeVec struct{ f *family }

// HistogramVec is a family of latency histograms.
type HistogramVec struct{ f *family }

// Counter registers (or finds) a counter family. It panics on a
// name/kind/label-schema conflict: families are wired at init time, so
// a mismatch is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, labels)}
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, labels)}
}

// Histogram registers (or finds) a latency-histogram family.
func (r *Registry) Histogram(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels)}
}

// With returns the counter for the given label values (one per label,
// in schema order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values).counter
}

// Total sums every counter in the family.
func (v *CounterVec) Total() uint64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	var total uint64
	for _, s := range v.f.series {
		total += s.counter.Value()
	}
	return total
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values).gauge
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values).hist
}

// family looks up or creates a family under the registry lock. A nil
// registry returns a detached family: fully functional, never exported.
func (r *Registry) family(name, help string, kind metricKind, labels []string) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidName(l)
	}
	if r == nil {
		return newFamily(name, help, kind, labels)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = newFamily(name, help, kind, labels)
		r.families[name] = f
		return f
	}
	if f.kind != kind || !equalStrings(f.labels, labels) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v, was %s%v",
			name, kind, labels, f.kind, f.labels))
	}
	return f
}

func newFamily(name, help string, kind metricKind, labels []string) *family {
	return &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
}

// seriesKeySep joins label values into a map key; 0x1f (unit separator)
// cannot appear in a valid label value per mustValidValue.
const seriesKeySep = "\x1f"

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values %v, got %v",
			f.name, len(f.labels), f.labels, values))
	}
	for _, v := range values {
		mustValidValue(f.name, v)
	}
	key := strings.Join(values, seriesKeySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{values: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		default:
			s.hist = &Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// mustValidName enforces the Prometheus metric/label name charset.
func mustValidName(name string) {
	if name == "" {
		panic("telemetry: empty metric or label name")
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", name))
		}
	}
}

// mustValidValue rejects label values that would corrupt the series key
// or the exposition format.
func mustValidValue(metric, v string) {
	if strings.ContainsAny(v, seriesKeySep+"\n") {
		panic(fmt.Sprintf("telemetry: metric %q label value %q contains a control character", metric, v))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Label is one name=value pair of an exported series.
type Label struct {
	Name  string
	Value string
}

// Series is an exported snapshot of one instrument.
type Series struct {
	Labels []Label
	// Value holds the counter or gauge reading (counters as exact
	// integers in float form would lose precision past 2^53, so
	// counters are also exposed in Count).
	Value float64
	Count uint64
	// Hist is the histogram snapshot for summary families, nil
	// otherwise.
	Hist *metrics.Histogram
}

// Family is an exported snapshot of one metric family.
type Family struct {
	Name   string
	Help   string
	Kind   string // "counter", "gauge" or "summary"
	Series []Series
}

// Gather snapshots every family, sorted by name with series sorted by
// label values — a deterministic function of the registry contents.
// A nil registry gathers nothing.
func (r *Registry) Gather() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.gather())
	}
	return out
}

func (f *family) gather() Family {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]*series, 0, len(keys))
	for _, k := range keys {
		snap = append(snap, f.series[k])
	}
	f.mu.Unlock()

	fam := Family{Name: f.name, Help: f.help, Kind: f.kind.String()}
	for _, s := range snap {
		labels := make([]Label, len(f.labels))
		for i, name := range f.labels {
			labels[i] = Label{Name: name, Value: s.values[i]}
		}
		es := Series{Labels: labels}
		switch f.kind {
		case kindCounter:
			es.Count = s.counter.Value()
			es.Value = float64(es.Count)
		case kindGauge:
			es.Value = s.gauge.Value()
		default:
			h := s.hist.Snapshot()
			es.Hist = &h
			es.Count = h.Count()
		}
		fam.Series = append(fam.Series, es)
	}
	return fam
}
