package telemetry_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"proteus/internal/telemetry"
)

func TestAdminMux(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("proteus_test_total", "t").With().Add(9)
	tr := telemetry.NewTracer(telemetry.TracerConfig{Clock: stepClock(), Seed: 1})
	tr.Start("op").End()
	ev := telemetry.NewEventLog(telemetry.EventLogConfig{Clock: durClock()})
	ev.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: 3})

	srv := httptest.NewServer(telemetry.AdminMux(reg, tr, ev))
	defer srv.Close()

	cases := []struct {
		path        string
		contentType string
		contains    string
	}{
		{"/metrics", "text/plain", "proteus_test_total 9"},
		{"/debug/traces", "application/json", `"name": "op"`},
		{"/debug/events", "application/json", `"kind": "power_on"`},
		{"/healthz", "", "ok"},
		{"/debug/pprof/cmdline", "", ""},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read body: %v", tc.path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", tc.path, resp.StatusCode)
		}
		if tc.contentType != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), tc.contentType) {
			t.Errorf("GET %s: content type %q", tc.path, resp.Header.Get("Content-Type"))
		}
		if tc.contains != "" && !strings.Contains(string(body), tc.contains) {
			t.Errorf("GET %s: body missing %q:\n%s", tc.path, tc.contains, body)
		}
	}
}

func TestAdminMuxNilComponents(t *testing.T) {
	srv := httptest.NewServer(telemetry.AdminMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/traces", "/debug/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with nil components: status %d", path, resp.StatusCode)
		}
	}
}
