package core

import "fmt"

// Jump is Lamping & Veach's jump consistent hash (2014) as a placement
// backend: O(1) memory, O(log n) expected routing, exact 1/(n+1)
// expected movement on n→n+1. It replays the same monotone growth
// process PCH replays (see pch.go), but from j=1 every time — the
// log-factor PCH's windowing removes. Kept as the classic baseline so
// sweeps and benches compare three backends, not two.
//
// The hash stream is identical to hashring.Jump's original
// (PointSeeded with jumpSeed, then the published jump walk), so
// promoting it to a backend changed no routing decision.
type Jump struct {
	n int
}

// jumpSeed decorrelates Jump's key stream from the ring position
// hash. It predates the backend interface (hashring.Jump used the
// same constant) and must not change: routing is a pure function of
// it.
const jumpSeed = 0x6a756d7068617368 // "jumphash"

// NewJump builds the jump backend for a fleet of n servers.
func NewJump(n int) (*Jump, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: placement needs at least 1 server, got %d", n)
	}
	return &Jump{n: n}, nil
}

// Kind identifies the backend.
func (j *Jump) Kind() BackendKind { return BackendJump }

// Servers returns the fleet size.
func (j *Jump) Servers() int { return j.n }

// Lookup routes key to its owner among the first active servers.
// Panics when active < 1; clamps active to the fleet size.
//
//lint:hotpath jump primary routing decision
func (j *Jump) Lookup(key string, active int) int {
	return j.LookupSeeded(key, 0, active)
}

// LookupSeeded routes key on the ring perturbed by seed; seed 0 is
// the primary ring and agrees with Lookup (and with the stateless
// JumpLookup).
//
//lint:hotpath jump replica-ring routing decision
func (j *Jump) LookupSeeded(key string, seed uint64, active int) int {
	if active < 1 {
		panic("core: active server count must be >= 1")
	}
	if active > j.n {
		active = j.n
	}
	return jumpHash(PointSeeded(key, jumpSeed^seed), active)
}

// JumpLookup is the stateless primary-ring route (no fleet clamp),
// preserved for hashring.Jump's original contract.
//
//lint:hotpath stateless jump routing decision
func JumpLookup(key string, active int) int {
	return jumpHash(PointSeeded(key, jumpSeed), active)
}

// jumpHash is the published algorithm: a sequence of deterministic
// "jumps" whose last landing below n is the bucket.
//
//lint:hotpath jump walk
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
