package core

import (
	"fmt"
	"math/bits"
)

// Power consistent hash: O(1) expected-time, O(1)-memory consistent
// routing over a prefix active set, after the power-of-two
// constructions of "Fast Consistent Hashing in Constant Time" (power
// consistent hash) and FlipHash. No per-N precomputation exists —
// routing is a pure function of the key hash and n — so construction
// is O(1) versus Algorithm 1's O(N³) exact-rational build.
//
// The model is the standard monotone growth process: when the prefix
// grows j-1→j, every key independently moves to the new bucket j-1
// with probability 1/j. That process is exactly what jump consistent
// hash replays, but jump replays it from j=1 and pays O(log n). PCH
// replays only the last power-of-two window and recurses:
//
//	pos(k, 1) = 0
//	pos(k, n) for n in (m/2, m], m = 2^e:
//	    walk the move events in window (m/2, n] using a level-e
//	    stream; if any occurred, pos = the last one's bucket;
//	    otherwise pos = pos(k, m/2).
//
// Move events inside a window are generated with Lamping-Veach's
// next-jump draw (P(next move bucket ≥ t | last at b) = (b+1)/t),
// anchored at the virtual bucket m/2-1, so the window walk costs
// 1 + Σ_{j∈(m/2,n]} 1/j ≤ 1 + ln 2 expected draws. The recursion
// fires with probability (m/2)/n ≤ 1/2... <1, giving O(1) expected
// total work independent of n — the property the N=1024 route bench
// pins against N=16.
//
// Correctness, by induction on n (pos(k, m/2) uniform on [0, m/2)):
//
//	balance    P(pos = j) for j ≥ m/2 is (1/(j+1))·Π_{i>j+1}(1-1/i)
//	           = 1/n; P(pos < m/2) = (m/2)/n spread uniformly by the
//	           induction hypothesis — every bucket weighs exactly 1/n
//	           under the draw distribution. Per-sample imbalance is
//	           binomial (≈√(n/S) relative over S keys), quantified by
//	           the sampled balance probe in internal/check.
//	monotone   growing n→n+1 extends the window by one event: keys
//	           either keep their position or move to bucket n, with
//	           probability 1/(n+1). Crossing a power of two (m→m+1)
//	           opens the level-(e+1) window (m, m+1]; a key that does
//	           not move recurses to pos(k, m), its exact previous
//	           position. Shrinking replays the same process backwards.
//
// The per-level streams must be independent of the flip positions
// they fall back to: deriving the escape position from the same bits
// that decided the fallback (e.g. returning h & (m/2-1) after
// observing h & (m-1) ≥ n) skews escapes into [n-m/2, m/2) and breaks
// balance. Seeding a fresh SplitMix/LCG stream per level from the key
// hash avoids that correlation.

// PCH is the power-consistent-hash placement backend for a fleet of n
// servers. The zero value is unusable; use NewPCH.
type PCH struct {
	n int
}

// pchKeySalt decorrelates PCH's key-hash stream from Point (Algorithm
// 1's ring positions) and from the jump backend, so backends disagree
// independently rather than systematically.
const pchKeySalt = 0x70636873616c7431 // "pchsalt1"

// pchLevelSalt spaces the per-level draw streams (golden-ratio
// increment, the SplitMix64 stream constant).
const pchLevelSalt = 0x9e3779b97f4a7c15

// NewPCH builds the PCH backend for a fleet of n servers. Unlike
// Algorithm 1 there is no MaxServers ceiling: nothing is precomputed.
func NewPCH(n int) (*PCH, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: placement needs at least 1 server, got %d", n)
	}
	return &PCH{n: n}, nil
}

// Kind identifies the backend.
func (p *PCH) Kind() BackendKind { return BackendPCH }

// Servers returns the fleet size.
func (p *PCH) Servers() int { return p.n }

// Lookup routes key to its owner among the first active servers.
// Panics when active < 1; clamps active to the fleet size, mirroring
// Placement.Owner.
//
//lint:hotpath pch primary routing decision
func (p *PCH) Lookup(key string, active int) int {
	return p.LookupSeeded(key, 0, active)
}

// LookupSeeded routes key on the ring perturbed by seed; seed 0 is
// the primary ring and agrees with Lookup.
//
//lint:hotpath pch replica-ring routing decision
func (p *PCH) LookupSeeded(key string, seed uint64, active int) int {
	if active < 1 {
		panic("core: active server count must be >= 1")
	}
	if active > p.n {
		active = p.n
	}
	return pchBucket(mix64(fnv64a(key)^pchKeySalt^seed), active)
}

// pchBucket maps a 64-bit key hash onto [0, n) with the window-walk
// construction described above.
//
//lint:hotpath pch bucket computation
func pchBucket(kh uint64, n int) int {
	for n > 1 {
		// Level e covers n ∈ (lo, 2lo] with lo = 2^(e-1).
		e := bits.Len(uint(n - 1))
		lo := int64(1) << (e - 1)
		b := lo - 1 // virtual anchor: "last move" before the window
		state := mix64(kh ^ pchLevelSalt*uint64(e))
		for {
			// Lamping-Veach next-jump draw; j > b always, so the walk
			// strictly advances and terminates.
			state = state*2862933555777941757 + 1
			j := int64(float64(b+1) * (float64(int64(1)<<31) / float64((state>>33)+1)))
			if j >= int64(n) {
				break
			}
			b = j
		}
		if b >= lo {
			return int(b)
		}
		n = int(lo) // no move in the window: recurse to the pow2 below
	}
	return 0
}
