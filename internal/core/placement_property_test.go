package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// Property sweep to N=256 (2^5 times the paper's tier): along seeded
// random prefix walks, every visited prefix satisfies the Balance
// Condition, every step moves exactly the Theorem-1-minimal fraction,
// and the virtual-node count stays at the Theorem 1 lower bound.
// Spans are computed in one pass over the cached ranges per prefix, so
// the walk cost is O(steps * N^2), dwarfed by the O(N^3) construction.
func TestPropertyPrefixWalks(t *testing.T) {
	sizes := []int{64, 96, 128}
	if !testing.Short() {
		sizes = append(sizes, 256) // ~400 ms construction
	}
	for _, n := range sizes {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			start := time.Now()
			p, err := New(n)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("N=%d: constructed in %v, %d virtual nodes", n, time.Since(start), p.NumVirtualNodes())

			if got, want := p.NumVirtualNodes(), VirtualNodeLowerBound(n); got != want {
				t.Errorf("NumVirtualNodes = %d, want Theorem-1 bound %d", got, want)
			}

			ranges := p.Ranges()
			// spans computes every server's owned span at one prefix in
			// a single pass.
			spans := func(active int) []uint64 {
				out := make([]uint64, n)
				for i, r := range ranges {
					length := RingSize - r.Start
					if i+1 < len(ranges) {
						length = ranges[i+1].Start - r.Start
					}
					out[r.Owner(active)] += length
				}
				return out
			}

			rng := rand.New(rand.NewSource(int64(n)*7919 + 1))
			const steps = 40
			active := 1 + rng.Intn(n)
			for step := 0; step < steps; step++ {
				// Balance Condition at the current prefix: every active
				// server owns RingSize/active up to projection rounding;
				// inactive servers own nothing.
				owned := spans(active)
				want := RingSize / uint64(active)
				for s := 0; s < n; s++ {
					if s < active {
						if diff(owned[s], want) > spanTolerance(n) {
							t.Fatalf("active=%d: server %d owns %d, want≈%d", active, s, owned[s], want)
						}
					} else if owned[s] != 0 {
						t.Fatalf("active=%d: inactive server %d owns %d", active, s, owned[s])
					}
				}

				// Theorem-1 migration bound for the next walk step:
				// moving n1 -> n2 relocates exactly |n2-n1|/max of the
				// ring, and every span moves between the right servers.
				next := 1 + rng.Intn(n)
				hi := active
				if next > hi {
					hi = next
				}
				wantFrac := math.Abs(float64(next-active)) / float64(hi)
				if got := p.MigratedFraction(active, next); math.Abs(got-wantFrac) > 1e-9 {
					t.Fatalf("MigratedFraction(%d,%d) = %g, want %g", active, next, got, wantFrac)
				}
				for _, m := range p.Migrations(active, next) {
					if next > active {
						// Growth: spans move only from old-prefix servers
						// onto newly activated ones.
						if m.From >= active || m.To < active || m.To >= next {
							t.Fatalf("grow %d->%d: span moved %d->%d", active, next, m.From, m.To)
						}
					} else {
						// Shrink: spans move only off dying servers onto
						// survivors.
						if m.From < next || m.From >= active || m.To >= next {
							t.Fatalf("shrink %d->%d: span moved %d->%d", active, next, m.From, m.To)
						}
					}
				}
				active = next
			}
		})
	}
}
