package core

import "fmt"

// Placement backends. Algorithm 1 (Placement) is the paper's exact
// construction: every prefix owns exactly 1/n of the ring and resizes
// move the rational minimum. Its price is N(N-1)/2+1 virtual nodes —
// quadratic memory and an O(N³) exact-rational build that takes
// seconds past N≈256. The alternative backends trade the *exact*
// Balance Condition for O(1) construction and O(1) expected routing
// while keeping the two properties the Section IV transition machine
// actually depends on:
//
//   - prefix-active-set semantics: Route(key, n) ∈ [0, n) for the
//     powered prefix n, so digests, drains and power flips address the
//     same server set under every backend;
//   - monotone minimal remapping: growing n→n+1 moves keys only into
//     bucket n (a 1/(n+1) expected fraction), shrinking is the exact
//     reverse — so the |Δn|/max(n,n') migration bound still holds in
//     expectation and relocation digests still cover every mover.
//
// Balance becomes statistical instead of exact: each server owns 1/n
// of the key space in expectation, with per-sample deviation measured
// by the conformance harness's sampled balance probe (numbers in
// EXPERIMENTS.md).

// BackendKind names a placement backend. The zero value selects
// BackendProteus so existing configs are unchanged.
type BackendKind string

const (
	// BackendProteus is Algorithm 1: exact rational balance, minimal
	// migration, O(N²) virtual nodes.
	BackendProteus BackendKind = "proteus"
	// BackendPCH is power consistent hash: O(1) expected routing and
	// O(1) memory via a power-of-two window walk (pch.go).
	BackendPCH BackendKind = "pch"
	// BackendJump is Lamping-Veach jump consistent hash: O(1) memory,
	// O(log n) expected routing; the classic baseline.
	BackendJump BackendKind = "jump"
)

// ParseBackend maps a flag value to a BackendKind. The empty string
// selects BackendProteus.
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "", string(BackendProteus):
		return BackendProteus, nil
	case string(BackendPCH):
		return BackendPCH, nil
	case string(BackendJump):
		return BackendJump, nil
	default:
		return "", fmt.Errorf("core: unknown placement backend %q (want proteus, pch or jump)", s)
	}
}

func (k BackendKind) String() string {
	if k == "" {
		return string(BackendProteus)
	}
	return string(k)
}

// Backend is the routing contract every placement implementation
// satisfies. Lookup and LookupSeeded panic when active < 1 and clamp
// active to Servers(), mirroring Placement.Owner.
type Backend interface {
	// Kind identifies the implementation.
	Kind() BackendKind
	// Servers returns the fleet size the backend was built for.
	Servers() int
	// Lookup routes key to its owner among the first active servers.
	Lookup(key string, active int) int
	// LookupSeeded routes key on the ring perturbed by seed; seed 0 is
	// the primary ring and agrees with Lookup. Replica rings
	// (core.Replicated) pass their per-ring seeds here.
	LookupSeeded(key string, seed uint64, active int) int
}

// NewBackend constructs the named backend for a fleet of n servers.
// An empty kind selects BackendProteus.
func NewBackend(kind BackendKind, n int) (Backend, error) {
	switch kind {
	case "", BackendProteus:
		return New(n)
	case BackendPCH:
		return NewPCH(n)
	case BackendJump:
		return NewJump(n)
	default:
		return nil, fmt.Errorf("core: unknown placement backend %q (want proteus, pch or jump)", kind)
	}
}

// Kind identifies Placement as the Algorithm 1 backend.
func (p *Placement) Kind() BackendKind { return BackendProteus }

// LookupSeeded routes key on the ring perturbed by seed. Seed 0
// agrees with Lookup exactly (PointSeeded(key, 0) == Point(key)).
// Unlike the O(1) backends this path is not //lint:hotpath: Owner's
// range binary search allocates its sort.Search closure, which is the
// cost the pch backend exists to avoid.
func (p *Placement) LookupSeeded(key string, seed uint64, active int) int {
	return p.Owner(PointSeeded(key, seed), active)
}

var _ Backend = (*Placement)(nil)
var _ Backend = (*PCH)(nil)
var _ Backend = (*Jump)(nil)
