package core

import "testing"

func TestRangeOwnerMethod(t *testing.T) {
	p, err := New(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Ranges() {
		for active := 1; active <= 6; active++ {
			got := r.Owner(active)
			want := p.Owner(r.Start, active)
			if got != want {
				t.Fatalf("Range.Owner(%d) = %d, Placement.Owner = %d", active, got, want)
			}
		}
	}
}

func TestRangeOwnerPanicsBelowChain(t *testing.T) {
	r := Range{Start: 0, Length: 1, Chain: []int{2, 5}}
	defer func() {
		if recover() == nil {
			t.Error("Owner(1) on chain starting at 2 did not panic")
		}
	}()
	r.Owner(1)
}

func TestOwnerOnRingPanicsOutOfRange(t *testing.T) {
	rep, err := NewReplicated(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Replicas(); got != 2 {
		t.Fatalf("Replicas = %d", got)
	}
	if rep.OwnerOnRing("k", 0, 4) != rep.Placement().Lookup("k", 4) {
		t.Fatal("ring 0 disagrees with Lookup")
	}
	defer func() {
		if recover() == nil {
			t.Error("OwnerOnRing(ring=5) did not panic")
		}
	}()
	rep.OwnerOnRing("k", 5, 4)
}

func TestNewReplicatedClampsAndValidates(t *testing.T) {
	rep, err := NewReplicated(3, 0) // r < 1 clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicas() != 1 {
		t.Fatalf("Replicas = %d, want 1", rep.Replicas())
	}
	if _, err := NewReplicated(0, 2); err == nil {
		t.Error("NewReplicated(0, 2) accepted")
	}
}

func TestNoConflictProbabilityDegenerate(t *testing.T) {
	if got := NoConflictProbability(0, 10); got != 0 {
		t.Errorf("r=0: %g", got)
	}
	if got := NoConflictProbability(2, 0); got != 0 {
		t.Errorf("n=0: %g", got)
	}
}
