package core

// RingBits is the log2 of the ring size. The paper's key space K is
// realised as the integer interval [0, RingSize). 62 bits keeps every
// intermediate product of the rational-to-integer projection inside a
// uint64 while leaving the smallest host range (K / (N(N-1)) for the
// largest supported N) astronomically wider than one ring unit.
const RingBits = 62

// RingSize is the number of points on the hash ring (the paper's K).
const RingSize uint64 = 1 << RingBits

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// fnv64a hashes s with FNV-1a. It is inlined here rather than using
// hash/fnv to avoid per-call allocations on the hot lookup path.
func fnv64a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the SplitMix64 finalizer; it decorrelates the bits of FNV
// output so that truncation to RingBits keeps keys uniformly spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Point maps a data key to its position on the ring.
func Point(key string) uint64 {
	return mix64(fnv64a(key)) & (RingSize - 1)
}

// PointSeeded maps a data key to a ring position under an alternative
// hash function identified by seed. The paper's replication scheme
// (Section III-E) builds r rings that share one virtual-node placement
// but use r different hash functions; distinct seeds realise those
// functions.
func PointSeeded(key string, seed uint64) uint64 {
	return mix64(fnv64a(key)^seed) & (RingSize - 1)
}
