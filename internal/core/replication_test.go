package core

import (
	"math"
	"testing"
)

func TestReplicatedFirstRingMatchesLookup(t *testing.T) {
	r, err := NewReplicated(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Placement()
	for i := 0; i < 500; i++ {
		key := string(appendKey(nil, i))
		owners := r.Owners(key, 8)
		if owners[0] != p.Lookup(key, 8) {
			t.Fatalf("key %q: ring 0 owner %d != Lookup %d", key, owners[0], p.Lookup(key, 8))
		}
	}
}

func TestReplicatedOwnersActive(t *testing.T) {
	r, err := NewReplicated(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for active := 1; active <= 10; active++ {
		for i := 0; i < 200; i++ {
			key := string(appendKey(nil, i))
			for ring, o := range r.Owners(key, active) {
				if o < 0 || o >= active {
					t.Fatalf("key %q ring %d active=%d: owner %d out of range", key, ring, active, o)
				}
			}
		}
	}
}

func TestDistinctOwnersDeduplicates(t *testing.T) {
	r, err := NewReplicated(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With only 2 servers and 3 rings, duplicates are guaranteed.
	for i := 0; i < 100; i++ {
		key := string(appendKey(nil, i))
		d := r.DistinctOwners(key, 2)
		if len(d) > 2 {
			t.Fatalf("key %q: %d distinct owners with 2 servers", key, len(d))
		}
		seen := map[int]bool{}
		for _, o := range d {
			if seen[o] {
				t.Fatalf("key %q: DistinctOwners returned duplicate %d", key, o)
			}
			seen[o] = true
		}
	}
}

func TestNoConflictProbabilityEq3(t *testing.T) {
	cases := []struct {
		r, n int
		want float64
	}{
		{1, 10, 1},
		{2, 10, 0.9},
		{3, 10, 0.9 * 0.8},
		{2, 1000, 999.0 / 1000},
		{3, 4096, (4095.0 / 4096) * (4094.0 / 4096)},
		{4, 3, 0}, // more replicas than servers: conflict certain
	}
	for _, c := range cases {
		if got := NoConflictProbability(c.r, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NoConflictProbability(%d,%d) = %g, want %g", c.r, c.n, got, c.want)
		}
	}
}

// Empirical check of Eq. 3: measured no-conflict frequency across many
// keys should be close to the closed form.
func TestNoConflictProbabilityEmpirical(t *testing.T) {
	const n, r, keys = 10, 2, 20000
	rep, err := NewReplicated(n, r)
	if err != nil {
		t.Fatal(err)
	}
	noConflict := 0
	for i := 0; i < keys; i++ {
		key := string(appendKey(nil, i))
		if len(rep.DistinctOwners(key, n)) == r {
			noConflict++
		}
	}
	got := float64(noConflict) / keys
	want := NoConflictProbability(r, n)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical no-conflict %g, Eq.3 predicts %g", got, want)
	}
}

func TestPointSeededDiffersFromPoint(t *testing.T) {
	same := 0
	for i := 0; i < 1000; i++ {
		key := string(appendKey(nil, i))
		if Point(key) == PointSeeded(key, 12345) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 keys hash identically under different seeds", same)
	}
}
