package core_test

import (
	"fmt"

	"proteus/internal/core"
)

// Build the placement for a 4-server provisioning order and route a
// key at different fleet sizes.
func ExampleNew() {
	p, err := core.New(4)
	if err != nil {
		panic(err)
	}
	fmt.Println("virtual nodes:", p.NumVirtualNodes())
	fmt.Println("lower bound:  ", core.VirtualNodeLowerBound(4))
	key := "page:Main_Page"
	for active := 1; active <= 4; active++ {
		fmt.Printf("active=%d -> server %d\n", active, p.Lookup(key, active))
	}
	// Output:
	// virtual nodes: 7
	// lower bound:   7
	// active=1 -> server 0
	// active=2 -> server 1
	// active=3 -> server 1
	// active=4 -> server 1
}

// Inspect how much of the key space moves at each provisioning step —
// always the provable minimum |Δn|/max(n, n').
func ExamplePlacement_MigratedFraction() {
	p, err := core.New(5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("5 -> 4 servers: %.2f of the key space\n", p.MigratedFraction(5, 4))
	fmt.Printf("4 -> 5 servers: %.2f of the key space\n", p.MigratedFraction(4, 5))
	fmt.Printf("5 -> 2 servers: %.2f of the key space\n", p.MigratedFraction(5, 2))
	// Output:
	// 5 -> 4 servers: 0.20 of the key space
	// 4 -> 5 servers: 0.20 of the key space
	// 5 -> 2 servers: 0.60 of the key space
}

// Replication: r rings over one placement (Section III-E).
func ExampleNoConflictProbability() {
	fmt.Printf("r=2, n=10:  %.3f\n", core.NoConflictProbability(2, 10))
	fmt.Printf("r=3, n=100: %.3f\n", core.NoConflictProbability(3, 100))
	// Output:
	// r=2, n=10:  0.900
	// r=3, n=100: 0.970
}
