package core

import "testing"

// FuzzReplicaResolution drives the replicated-ownership resolution path
// with arbitrary keys and geometries and checks the invariants every
// layer above leans on:
//
//   - every owner is inside the active prefix;
//   - the first distinct owner is the primary (unreplicated Lookup);
//   - DistinctOwners has no duplicates and matches DistinctOwnersN at
//     full depth;
//   - deeper resolutions extend shallower ones (prefix property), so
//     promoting a key never moves its existing copies;
//   - resolution is deterministic.
func FuzzReplicaResolution(f *testing.F) {
	f.Add("k001", uint8(5), uint8(3), uint8(2))
	f.Add("", uint8(1), uint8(1), uint8(1))
	f.Add("page/Main_Page", uint8(16), uint8(9), uint8(4))
	f.Add("\x00\xff\x80", uint8(64), uint8(64), uint8(8))
	f.Fuzz(func(t *testing.T, key string, n, active, r uint8) {
		servers := int(n)%64 + 1
		act := int(active)%servers + 1
		factor := int(r)%8 + 1
		rep, err := NewReplicated(servers, factor)
		if err != nil {
			t.Fatalf("NewReplicated(%d, %d): %v", servers, factor, err)
		}
		owners := rep.Owners(key, act)
		if len(owners) != factor {
			t.Fatalf("Owners returned %d entries, want %d", len(owners), factor)
		}
		for ring, o := range owners {
			if o < 0 || o >= act {
				t.Fatalf("ring %d owner %d outside active prefix %d", ring, o, act)
			}
			if got := rep.OwnerOnRing(key, ring, act); got != o {
				t.Fatalf("OwnerOnRing(%d) = %d, Owners[%d] = %d", ring, got, ring, o)
			}
		}
		if owners[0] != rep.Placement().Lookup(key, act) {
			t.Fatalf("ring-0 owner %d differs from unreplicated Lookup %d", owners[0], rep.Placement().Lookup(key, act))
		}

		distinct := rep.DistinctOwners(key, act)
		seen := make(map[int]bool, len(distinct))
		for _, o := range distinct {
			if seen[o] {
				t.Fatalf("DistinctOwners has duplicate %d: %v", o, distinct)
			}
			seen[o] = true
		}
		if len(distinct) < 1 || distinct[0] != owners[0] {
			t.Fatalf("DistinctOwners %v does not start with the primary %d", distinct, owners[0])
		}

		// Prefix property: DistinctOwnersN(k) is a prefix of
		// DistinctOwnersN(k+1) for every depth.
		prev := []int{}
		for rings := 1; rings <= factor; rings++ {
			cur := rep.DistinctOwnersN(key, act, rings)
			if len(cur) < len(prev) {
				t.Fatalf("depth %d resolution shrank: %v -> %v", rings, prev, cur)
			}
			for i := range prev {
				if cur[i] != prev[i] {
					t.Fatalf("depth %d resolution reordered copies: %v -> %v", rings, prev, cur)
				}
			}
			prev = cur
		}
		full := rep.DistinctOwnersN(key, act, factor)
		if len(full) != len(distinct) {
			t.Fatalf("full-depth DistinctOwnersN %v != DistinctOwners %v", full, distinct)
		}
		for i := range full {
			if full[i] != distinct[i] {
				t.Fatalf("full-depth DistinctOwnersN %v != DistinctOwners %v", full, distinct)
			}
		}

		again := rep.DistinctOwners(key, act)
		if len(again) != len(distinct) {
			t.Fatal("resolution not deterministic")
		}
		for i := range again {
			if again[i] != distinct[i] {
				t.Fatal("resolution not deterministic")
			}
		}
	})
}
