package core

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
)

// MaxServers bounds the provisioning order length. Construction is
// O(N^3) exact rational operations: ~60 ms at N=128, ~400 ms at N=256,
// seconds beyond that (far past the paper's 10-server tier). Large
// fleets should construct once and distribute via MarshalBinary.
const MaxServers = 1024

// ErrTooManyServers is returned by New when n exceeds MaxServers.
var ErrTooManyServers = errors.New("core: too many servers")

// Range is one virtual node's host range on the integer ring, exposed
// for inspection and testing. The range covers [Start, Start+Length).
// Chain is the strictly increasing ownership history of the range: the
// servers (by provisioning index) that successively carved a host range
// containing these points. The last entry is the owner when all servers
// are active; the owner at active-prefix size n is the largest entry
// below n.
type Range struct {
	Start  uint64
	Length uint64
	Chain  []int
}

// Owner reports which server owns this range when the first active
// servers are on. It panics if active <= Chain[0] (server 0 is always in
// every chain, so any active >= 1 is valid).
func (r Range) Owner(active int) int {
	for i := len(r.Chain) - 1; i >= 0; i-- {
		if r.Chain[i] < active {
			return r.Chain[i]
		}
	}
	panic(fmt.Sprintf("core: range has no owner below active=%d", active))
}

// Placement is the deterministic virtual-node placement of Algorithm 1
// for a fixed provisioning order of Servers() physical servers. It is
// immutable after construction and safe for concurrent use.
type Placement struct {
	n      int
	starts []uint64 // sorted range starts; range i spans [starts[i], starts[i+1])
	chains [][]int  // chains[i] is the ownership history of range i
}

// ratRange is a host range during exact construction.
type ratRange struct {
	start *big.Rat
	len   *big.Rat
	chain []int
}

// New runs Algorithm 1 for n servers and projects the exact rational
// placement onto the integer ring. The same n always yields the same
// placement, so independent web servers route identically.
func New(n int) (*Placement, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: placement needs at least 1 server, got %d", n)
	}
	if n > MaxServers {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyServers, n, MaxServers)
	}

	// owned[j] lists the host ranges currently owned by server j, in
	// creation order (the order Algorithm 1's inner loop scans R[j]).
	owned := make([][]*ratRange, n)
	all := make([]*ratRange, 0, n*(n-1)/2+1)

	first := &ratRange{start: big.NewRat(0, 1), len: big.NewRat(1, 1), chain: []int{0}}
	owned[0] = append(owned[0], first)
	all = append(all, first)

	// Server p (0-based; the paper's s_{p+1}) carves p virtual nodes,
	// each of length 1/(p(p+1)) of the ring, one from every server j < p.
	for p := 1; p < n; p++ {
		need := big.NewRat(1, int64(p)*int64(p+1))
		for j := 0; j < p; j++ {
			donor, err := pickDonor(owned[j], need)
			if err != nil {
				return nil, fmt.Errorf("core: placing server %d from donor %d: %w", p, j, err)
			}
			piece := &ratRange{
				start: new(big.Rat).Set(donor.start),
				len:   new(big.Rat).Set(need),
				chain: appendChain(donor.chain, p),
			}
			donor.start = new(big.Rat).Add(donor.start, need)
			donor.len = new(big.Rat).Sub(donor.len, need)
			if donor.len.Sign() == 0 {
				owned[j] = removeRange(owned[j], donor)
			}
			owned[p] = append(owned[p], piece)
			all = append(all, piece)
		}
	}

	return project(n, all)
}

// pickDonor implements Algorithm 1 line 6-13: scan the candidate's host
// ranges for one longer than need. The paper requires a strictly longer
// donor but its feasibility proof only guarantees >=, so an exactly
// equal donor is accepted as a fallback (the emptied range is removed by
// the caller).
func pickDonor(ranges []*ratRange, need *big.Rat) (*ratRange, error) {
	var equal *ratRange
	for _, r := range ranges {
		switch r.len.Cmp(need) {
		case 1:
			return r, nil
		case 0:
			if equal == nil {
				equal = r
			}
		}
	}
	if equal != nil {
		return equal, nil
	}
	return nil, errors.New("no feasible donor range")
}

func appendChain(chain []int, owner int) []int {
	out := make([]int, len(chain)+1)
	copy(out, chain)
	out[len(chain)] = owner
	return out
}

func removeRange(ranges []*ratRange, target *ratRange) []*ratRange {
	for i, r := range ranges {
		if r == target {
			return append(ranges[:i], ranges[i+1:]...)
		}
	}
	return ranges
}

// project converts the exact rational ranges to integer ring ranges.
// Boundaries are floored onto the ring; a range whose projection is
// empty (possible only when two rational boundaries fall within one ring
// unit) is dropped, which is harmless because no integer point maps
// into it.
func project(n int, all []*ratRange) (*Placement, error) {
	sort.Slice(all, func(i, j int) bool { return all[i].start.Cmp(all[j].start) < 0 })

	ringSize := new(big.Int).SetUint64(RingSize)
	starts := make([]uint64, 0, len(all))
	chains := make([][]int, 0, len(all))
	for _, r := range all {
		// floor(start * RingSize): start = a/b, so floor(a*RingSize / b).
		num := new(big.Int).Mul(r.start.Num(), ringSize)
		num.Quo(num, r.start.Denom())
		if !num.IsUint64() {
			return nil, fmt.Errorf("core: projected boundary out of range for %v", r.start)
		}
		u := num.Uint64()
		if len(starts) > 0 && u == starts[len(starts)-1] {
			// Previous range projected to zero width; replace it.
			chains[len(chains)-1] = r.chain
			continue
		}
		starts = append(starts, u)
		chains = append(chains, r.chain)
	}
	if len(starts) == 0 || starts[0] != 0 {
		return nil, errors.New("core: projection lost the ring origin")
	}
	return &Placement{n: n, starts: starts, chains: chains}, nil
}

// Servers returns the provisioning-order length N.
func (p *Placement) Servers() int { return p.n }

// NumVirtualNodes returns the number of host ranges on the ring. It
// equals Theorem 1's lower bound N(N-1)/2 + 1 except in the measure-zero
// case where a projected range collapsed.
func (p *Placement) NumVirtualNodes() int { return len(p.starts) }

// VirtualNodeLowerBound returns Theorem 1's minimum number of virtual
// nodes needed to satisfy the Balance Condition for n servers.
func VirtualNodeLowerBound(n int) int {
	return n*(n-1)/2 + 1
}

// rangeIndex locates the range containing the ring point.
func (p *Placement) rangeIndex(point uint64) int {
	// First start is always 0, so Search never returns 0 spuriously.
	i := sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > point })
	return i - 1
}

// Owner reports the server owning a ring point when the first `active`
// servers in the provisioning order are on.
func (p *Placement) Owner(point uint64, active int) int {
	if active < 1 {
		panic("core: active server count must be >= 1")
	}
	if active > p.n {
		active = p.n
	}
	chain := p.chains[p.rangeIndex(point&(RingSize-1))]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i] < active {
			return chain[i]
		}
	}
	return 0 // unreachable: every chain begins with server 0
}

// Lookup maps a data key to its owning server at the given active-prefix
// size. This is the routing decision every web server makes per request.
func (p *Placement) Lookup(key string, active int) int {
	return p.Owner(Point(key), active)
}

// Ranges returns a copy of the host ranges for inspection.
func (p *Placement) Ranges() []Range {
	out := make([]Range, len(p.starts))
	for i := range p.starts {
		out[i] = Range{Start: p.starts[i], Length: p.rangeLen(i), Chain: append([]int(nil), p.chains[i]...)}
	}
	return out
}

func (p *Placement) rangeLen(i int) uint64 {
	if i == len(p.starts)-1 {
		return RingSize - p.starts[i]
	}
	return p.starts[i+1] - p.starts[i]
}

// OwnedSpan returns the total ring span owned by server at the given
// active-prefix size. The Balance Condition makes this RingSize/active
// (up to projection rounding) for every active server.
func (p *Placement) OwnedSpan(server, active int) uint64 {
	var span uint64
	for i := range p.starts {
		if owner := p.ownerOfRange(i, active); owner == server {
			span += p.rangeLen(i)
		}
	}
	return span
}

// OwnedFraction is OwnedSpan as a fraction of the ring.
func (p *Placement) OwnedFraction(server, active int) float64 {
	return float64(p.OwnedSpan(server, active)) / float64(RingSize)
}

func (p *Placement) ownerOfRange(i, active int) int {
	chain := p.chains[i]
	for k := len(chain) - 1; k >= 0; k-- {
		if chain[k] < active {
			return chain[k]
		}
	}
	return 0
}

// Movement describes one contiguous span of the key space that changes
// owner between two active-prefix sizes.
type Movement struct {
	Start  uint64
	Length uint64
	From   int // owner at the source prefix size
	To     int // owner at the destination prefix size
}

// Migrations enumerates every span whose owner differs between
// fromActive and toActive servers. The paper's minimality guarantee is
// that the summed length is |to-from|/max(to,from) of the ring.
func (p *Placement) Migrations(fromActive, toActive int) []Movement {
	var moves []Movement
	for i := range p.starts {
		a := p.ownerOfRange(i, fromActive)
		b := p.ownerOfRange(i, toActive)
		if a == b {
			continue
		}
		m := Movement{Start: p.starts[i], Length: p.rangeLen(i), From: a, To: b}
		// Merge with the previous movement when contiguous and same owners.
		if len(moves) > 0 {
			last := &moves[len(moves)-1]
			if last.Start+last.Length == m.Start && last.From == m.From && last.To == m.To {
				last.Length += m.Length
				continue
			}
		}
		moves = append(moves, m)
	}
	return moves
}

// MigratedFraction returns the fraction of the key space that changes
// owner between the two active-prefix sizes.
func (p *Placement) MigratedFraction(fromActive, toActive int) float64 {
	var total uint64
	for _, m := range p.Migrations(fromActive, toActive) {
		total += m.Length
	}
	return float64(total) / float64(RingSize)
}
