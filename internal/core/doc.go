// Package core implements the primary contribution of the Proteus paper
// (ICDCS 2013): a deterministic virtual-node placement algorithm for
// consistent hashing that keeps load perfectly balanced across every
// active prefix of a fixed provisioning order, while guaranteeing the
// minimum possible amount of data movement at each provisioning step.
//
// Servers are identified by their index 0..N-1 in the fixed provisioning
// order (the paper's s1..sN). At any instant the active set is the prefix
// {0..n-1}; turning a server on or off moves n by one. The Placement type
// answers, for any key and any active-prefix size n, which server owns the
// key — the paper's consistent-hash view shared by every web server — and
// can enumerate exactly which fraction of the key space migrates between
// any two prefix sizes.
//
// Algorithm 1 of the paper is reproduced exactly: server i (1-based)
// contributes i-1 virtual nodes, each carved as a K/(i(i-1))-long host
// range borrowed from one feasible virtual node of every lower-ordered
// server, for a total of N(N-1)/2 + 1 virtual nodes — the lower bound the
// paper proves in Theorem 1. Construction uses exact rational arithmetic
// and is then projected onto a 2^62-point integer ring, so every web
// server derives bit-identical routing tables (the paper's consistency
// objective) with rounding error bounded by one ring unit per boundary.
package core
