package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// projection rounding can shift each boundary by at most one ring unit;
// with O(N^2) boundaries the per-server span error is bounded by N^2.
func spanTolerance(n int) uint64 { return uint64(n * n) }

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-1, 0} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error, got nil", n)
		}
	}
	if _, err := New(MaxServers + 1); err == nil {
		t.Errorf("New(%d): want ErrTooManyServers", MaxServers+1)
	}
}

func TestSingleServerOwnsEverything(t *testing.T) {
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumVirtualNodes(); got != 1 {
		t.Fatalf("NumVirtualNodes = %d, want 1", got)
	}
	for _, pt := range []uint64{0, 1, RingSize / 2, RingSize - 1} {
		if owner := p.Owner(pt, 1); owner != 0 {
			t.Errorf("Owner(%d, 1) = %d, want 0", pt, owner)
		}
	}
}

func TestVirtualNodeCountMeetsTheorem1(t *testing.T) {
	for n := 1; n <= 48; n++ {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		want := VirtualNodeLowerBound(n)
		if got := p.NumVirtualNodes(); got != want {
			t.Errorf("N=%d: NumVirtualNodes = %d, want %d (Theorem 1)", n, got, want)
		}
	}
}

func TestRangesPartitionRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 40} {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		ranges := p.Ranges()
		if ranges[0].Start != 0 {
			t.Fatalf("N=%d: first range starts at %d, want 0", n, ranges[0].Start)
		}
		var total uint64
		for i, r := range ranges {
			if r.Length == 0 {
				t.Errorf("N=%d: range %d has zero length", n, i)
			}
			if i > 0 && ranges[i-1].Start+ranges[i-1].Length != r.Start {
				t.Errorf("N=%d: gap/overlap between range %d and %d", n, i-1, i)
			}
			total += r.Length
		}
		if total != RingSize {
			t.Errorf("N=%d: ranges cover %d, want %d", n, total, RingSize)
		}
	}
}

func TestChainsStrictlyIncreasingFromZero(t *testing.T) {
	p, err := New(24)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range p.Ranges() {
		if r.Chain[0] != 0 {
			t.Fatalf("range %d chain starts with %d, want 0", i, r.Chain[0])
		}
		for k := 1; k < len(r.Chain); k++ {
			if r.Chain[k] <= r.Chain[k-1] {
				t.Fatalf("range %d chain not strictly increasing: %v", i, r.Chain)
			}
		}
	}
}

// The Balance Condition: at every active-prefix size n, every active
// server owns RingSize/n of the key space (up to projection rounding).
func TestBalanceConditionAllPrefixes(t *testing.T) {
	const n = 40 // the paper's whole testbed size
	p, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for active := 1; active <= n; active++ {
		want := RingSize / uint64(active)
		for s := 0; s < active; s++ {
			got := p.OwnedSpan(s, active)
			if diff(got, want) > spanTolerance(n) {
				t.Errorf("active=%d server=%d: span=%d want≈%d", active, s, got, want)
			}
		}
		// Servers beyond the prefix own nothing.
		for s := active; s < n; s++ {
			if got := p.OwnedSpan(s, active); got != 0 {
				t.Errorf("active=%d inactive server=%d owns %d", active, s, got)
			}
		}
	}
}

func diff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Minimality: a step n -> n+1 moves exactly 1/(n+1) of the ring, and the
// moved spans all go to the newly activated server.
func TestMigrationStepMinimal(t *testing.T) {
	const n = 32
	p, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for active := 1; active < n; active++ {
		moves := p.Migrations(active, active+1)
		var total uint64
		for _, m := range moves {
			if m.To != active {
				t.Errorf("step %d->%d: span moves to %d, want new server %d", active, active+1, m.To, active)
			}
			if m.From >= active {
				t.Errorf("step %d->%d: span moves from inactive server %d", active, active+1, m.From)
			}
			total += m.Length
		}
		want := RingSize / uint64(active+1)
		if diff(total, want) > spanTolerance(n) {
			t.Errorf("step %d->%d: moved %d, want≈%d", active, active+1, total, want)
		}
	}
}

// The generalized bound: n1 -> n2 moves (n2-n1)/n2 of the ring.
func TestMigrationArbitraryJump(t *testing.T) {
	const n = 24
	p, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range [][2]int{{1, 24}, {4, 9}, {10, 3}, {24, 1}, {7, 8}, {12, 12}} {
		n1, n2 := step[0], step[1]
		got := p.MigratedFraction(n1, n2)
		hi := n1
		if n2 > hi {
			hi = n2
		}
		want := math.Abs(float64(n2-n1)) / float64(hi)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("MigratedFraction(%d,%d) = %g, want %g", n1, n2, got, want)
		}
	}
}

// When a server is turned off, its load spreads over all remaining
// servers in equal shares (Balance Condition, off direction).
func TestTurnOffSpreadsEvenly(t *testing.T) {
	const n = 16
	p, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for active := n; active >= 3; active-- {
		received := make(map[int]uint64)
		for _, m := range p.Migrations(active, active-1) {
			if m.From != active-1 {
				t.Fatalf("%d->%d: movement from %d, want only from the dying server %d",
					active, active-1, m.From, active-1)
			}
			received[m.To] += m.Length
		}
		if len(received) != active-1 {
			t.Fatalf("%d->%d: %d receivers, want %d", active, active-1, len(received), active-1)
		}
		want := RingSize / uint64(active) / uint64(active-1)
		for to, span := range received {
			if diff(span, want) > spanTolerance(n) {
				t.Errorf("%d->%d: server %d received %d, want≈%d", active, active-1, to, span, want)
			}
		}
	}
}

// Prefix consistency: the placement built for N servers, queried at
// active=n, must agree with the placement built for n servers. This is
// what lets web servers precompute one table for the whole order.
func TestPrefixConsistency(t *testing.T) {
	full, err := New(12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 12; n++ {
		sub, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		for trial := 0; trial < 2000; trial++ {
			pt := rng.Uint64() & (RingSize - 1)
			if a, b := full.Owner(pt, n), sub.Owner(pt, n); a != b {
				t.Fatalf("point %d at active=%d: full says %d, sub says %d", pt, n, a, b)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(20)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Ranges(), b.Ranges()
	if len(ra) != len(rb) {
		t.Fatalf("different range counts: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Start != rb[i].Start || ra[i].Length != rb[i].Length {
			t.Fatalf("range %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestLookupRoutesKeysUniformly(t *testing.T) {
	const n, keys = 10, 200000
	p, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	buf := make([]byte, 0, 16)
	for i := 0; i < keys; i++ {
		buf = appendKey(buf[:0], i)
		counts[p.Lookup(string(buf), n)]++
	}
	want := float64(keys) / float64(n)
	for s, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("server %d got %d keys, want %g ±5%%", s, c, want)
		}
	}
}

func appendKey(buf []byte, i int) []byte {
	buf = append(buf, "key-"...)
	if i == 0 {
		return append(buf, '0')
	}
	var digits [20]byte
	k := len(digits)
	for i > 0 {
		k--
		digits[k] = byte('0' + i%10)
		i /= 10
	}
	return append(buf, digits[k:]...)
}

// Property: for any point and prefix size, the owner is active, and
// growing the prefix by one either keeps the owner or hands the point to
// exactly the newly activated server.
func TestQuickOwnerTransitions(t *testing.T) {
	p, err := New(17)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawPoint uint64, rawActive uint8) bool {
		pt := rawPoint & (RingSize - 1)
		active := int(rawActive)%16 + 1 // 1..16 so active+1 is valid
		owner := p.Owner(pt, active)
		if owner < 0 || owner >= active {
			return false
		}
		next := p.Owner(pt, active+1)
		return next == owner || next == active
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: shrinking the prefix never routes to a dead server and only
// re-routes points that belonged to the dying server.
func TestQuickOwnerShrink(t *testing.T) {
	p, err := New(17)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawPoint uint64, rawActive uint8) bool {
		pt := rawPoint & (RingSize - 1)
		active := int(rawActive)%15 + 2 // 2..16
		before := p.Owner(pt, active)
		after := p.Owner(pt, active-1)
		if after >= active-1 {
			return false
		}
		if before != active-1 && after != before {
			return false // point moved although its server stayed up
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestOwnerPanicsOnZeroActive(t *testing.T) {
	p, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Owner(pt, 0) did not panic")
		}
	}()
	p.Owner(1, 0)
}

func TestOwnerClampsActiveAboveN(t *testing.T) {
	p, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	for pt := uint64(0); pt < RingSize; pt += RingSize / 64 {
		if a, b := p.Owner(pt, 5), p.Owner(pt, 50); a != b {
			t.Fatalf("point %d: active=5 gives %d, active=50 gives %d", pt, a, b)
		}
	}
}

func BenchmarkPlacementConstruct(b *testing.B) {
	for _, n := range []int{10, 40, 128} {
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := New(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLookup(b *testing.B) {
	p, err := New(40)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Owner(uint64(i)*0x9e3779b97f4a7c15&(RingSize-1), 25)
	}
}

func sizeName(n int) string {
	return string(appendKey(nil, n)[4:]) + "-servers"
}
