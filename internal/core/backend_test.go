package core

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// backendKinds lists every selectable placement backend once, so the
// property tests below sweep all of them.
var backendKinds = [3]BackendKind{BackendProteus, BackendPCH, BackendJump}

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("bal-%05d", i)
	}
	return keys
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want BackendKind
	}{
		{"", BackendProteus},
		{"proteus", BackendProteus},
		{"pch", BackendPCH},
		{"jump", BackendJump},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseBackend(%q) = %s, want %s", c.in, got, c.want)
		}
	}
	if _, err := ParseBackend("rendezvous"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
	if got := BackendKind("").String(); got != "proteus" {
		t.Fatalf("zero BackendKind prints %q, want proteus", got)
	}
}

func TestNewBackendRejectsBadInput(t *testing.T) {
	if _, err := NewBackend("maglev", 4); err == nil {
		t.Fatal("NewBackend accepted an unknown kind")
	}
	for _, kind := range backendKinds {
		if _, err := NewBackend(kind, 0); err == nil {
			t.Fatalf("NewBackend(%s, 0) accepted an empty fleet", kind)
		}
		b, err := NewBackend(kind, 7)
		if err != nil {
			t.Fatalf("NewBackend(%s, 7): %v", kind, err)
		}
		if b.Kind() != kind {
			t.Fatalf("backend reports kind %s, want %s", b.Kind(), kind)
		}
		if b.Servers() != 7 {
			t.Fatalf("%s backend reports %d servers, want 7", kind, b.Servers())
		}
	}
}

// TestBackendRouteContract checks the shared Lookup contract: owners
// sit inside the active prefix, active counts beyond the provisioning
// order clamp, active < 1 panics, and seed 0 agrees with the unseeded
// route.
func TestBackendRouteContract(t *testing.T) {
	keys := sampleKeys(512)
	for _, kind := range backendKinds {
		b, err := NewBackend(kind, 24)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			for _, active := range []int{1, 2, 7, 24} {
				o := b.Lookup(k, active)
				if o < 0 || o >= active {
					t.Fatalf("%s: Lookup(%q, %d) = %d outside the active prefix", kind, k, active, o)
				}
				if got := b.LookupSeeded(k, 0, active); got != o {
					t.Fatalf("%s: seed-0 route %d differs from unseeded route %d", kind, got, o)
				}
			}
			if got, want := b.Lookup(k, 1000), b.Lookup(k, 24); got != want {
				t.Fatalf("%s: active=1000 should clamp to the full order: got %d, want %d", kind, got, want)
			}
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Lookup with active=0 did not panic", kind)
				}
			}()
			b.Lookup("k", 0)
		}()
	}
}

// TestBackendBalance samples the per-prefix load of every backend.
// Algorithm 1 is exactly balanced by construction; the O(1) backends
// are balanced in distribution, so their worst per-server relative
// deviation must stay within a binomial-noise envelope of the uniform
// share.
func TestBackendBalance(t *testing.T) {
	const samples = 20000
	keys := sampleKeys(samples)
	for _, kind := range backendKinds {
		n := 64
		if kind == BackendProteus {
			n = 24 // quadratic construction; exactness is proven elsewhere
		}
		b, err := NewBackend(kind, n)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for active := 1; active <= n; active++ {
			for i := range counts[:active] {
				counts[i] = 0
			}
			for _, k := range keys {
				counts[b.Lookup(k, active)]++
			}
			limit := 6*math.Sqrt(float64(active)/samples) + 0.02
			for s := 0; s < active; s++ {
				rel := math.Abs(float64(counts[s])*float64(active)/samples - 1)
				if rel > limit {
					t.Fatalf("%s: server %d at active=%d holds a %.4f relative deviation from 1/n (limit %.4f)",
						kind, s, active, rel, limit)
				}
			}
		}
	}
}

// TestBackendMonotoneMinimality is the exact cross-backend migration
// property: growing the prefix n -> n+1 may move a key only onto the
// new server n, and shrinking may move only server n's keys. The sweep
// crosses several power-of-two boundaries, where the pch backend
// switches window levels.
func TestBackendMonotoneMinimality(t *testing.T) {
	keys := sampleKeys(2048)
	for _, kind := range backendKinds {
		max := 300
		if kind == BackendProteus {
			max = 24
		}
		b, err := NewBackend(kind, max)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			prev := b.Lookup(k, 1)
			for active := 2; active <= max; active++ {
				cur := b.Lookup(k, active)
				if cur != prev && cur != active-1 {
					t.Fatalf("%s: growing %d -> %d moved %q from %d to %d, not onto the new server",
						kind, active-1, active, k, prev, cur)
				}
				prev = cur
			}
		}
	}
}

// TestBackendMigrationFraction quantifies how much moves on each
// n -> n+1 step. Algorithm 1 honours the rational bound exactly; the
// O(1) backends move a Binomial(S, 1/(n+1)) sample of keys, checked
// against the bound plus six standard deviations.
func TestBackendMigrationFraction(t *testing.T) {
	const samples = 20000
	keys := sampleKeys(samples)
	for _, kind := range backendKinds {
		if kind == BackendProteus {
			p, err := New(24)
			if err != nil {
				t.Fatal(err)
			}
			for n := 1; n < 24; n++ {
				bound := 1 / float64(n+1)
				if frac := p.MigratedFraction(n, n+1); frac > bound+1e-9 {
					t.Fatalf("proteus: MigratedFraction(%d, %d) = %v exceeds the %v bound", n, n+1, frac, bound)
				}
			}
			continue
		}
		b, err := NewBackend(kind, 192)
		if err != nil {
			t.Fatal(err)
		}
		prev := make([]int, samples)
		for i, k := range keys {
			prev[i] = b.Lookup(k, 1)
		}
		for to := 2; to <= 192; to++ {
			moved := 0
			for i, k := range keys {
				o := b.Lookup(k, to)
				if o != prev[i] {
					moved++
				}
				prev[i] = o
			}
			bound := 1 / float64(to)
			limit := bound + 6*math.Sqrt(bound/samples) + 0.002
			if frac := float64(moved) / samples; frac > limit {
				t.Fatalf("%s: step %d -> %d moved %.4f of keys (bound %.4f, limit %.4f)",
					kind, to-1, to, frac, bound, limit)
			}
		}
	}
}

// TestReplicatedBackendRings checks the seeded-rings construction that
// hot-key replication rides on: ring 0 is the bare backend, deeper
// rings are genuinely different permutations, and the distinct-owner
// resolution stays inside the active prefix for every backend.
func TestReplicatedBackendRings(t *testing.T) {
	keys := sampleKeys(2048)
	for _, kind := range backendKinds {
		rep, err := NewReplicatedBackend(kind, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Backend().Kind() != kind {
			t.Fatalf("replicated backend reports kind %s, want %s", rep.Backend().Kind(), kind)
		}
		if kind == BackendProteus && rep.Placement() == nil {
			t.Fatal("proteus replicated backend lost its Placement accessor")
		}
		if kind != BackendProteus && rep.Placement() != nil {
			t.Fatalf("%s replicated backend claims an explicit Placement", kind)
		}
		differs := 0
		for _, k := range keys {
			if got, want := rep.OwnerOnRing(k, 0, 16), rep.Backend().Lookup(k, 16); got != want {
				t.Fatalf("%s: ring-0 owner %d differs from bare backend route %d", kind, got, want)
			}
			if rep.OwnerOnRing(k, 1, 16) != rep.OwnerOnRing(k, 0, 16) {
				differs++
			}
			owners := rep.DistinctOwners(k, 16)
			for _, o := range owners {
				if o < 0 || o >= 16 {
					t.Fatalf("%s: distinct owner %d outside the active prefix", kind, o)
				}
			}
		}
		// Two independent uniform rings over 16 servers disagree with
		// probability 15/16; anything below half means the seeds are
		// not perturbing the geometry.
		if differs < len(keys)/2 {
			t.Fatalf("%s: ring 1 agrees with ring 0 on %d/%d keys — seeded rings are not independent",
				kind, len(keys)-differs, len(keys))
		}
	}
}

// TestO1BackendRouteAllocs enforces the zero-allocation contract on the
// O(1) route paths (also enforced statically by the hotalloc lint).
func TestO1BackendRouteAllocs(t *testing.T) {
	for _, kind := range [2]BackendKind{BackendPCH, BackendJump} {
		b, err := NewBackend(kind, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(1000, func() {
			b.Lookup("page:31415", 1024)
			b.LookupSeeded("page:31415", 0x9e3779b97f4a7c15, 1024)
		}); allocs != 0 {
			t.Fatalf("%s: route path allocates %.1f times per op, want 0", kind, allocs)
		}
	}
}

// TestPCHRouteFlatAcrossFleetSize is the perf acceptance gate for the
// O(1) claim: routing against a 1024-server order must cost no more
// than 1.5x routing against 16 servers. Measured as the best of
// several trials so scheduler noise cannot fail the build; the ratio
// sits near 1.15 on an idle machine.
func TestPCHRouteFlatAcrossFleetSize(t *testing.T) {
	keys := sampleKeys(1024)
	measure := func(n int) time.Duration {
		b, err := NewPCH(n)
		if err != nil {
			t.Fatal(err)
		}
		const iters = 200000
		best := time.Duration(math.MaxInt64)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				routeSink += b.Lookup(keys[i%len(keys)], n)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	small, large := measure(16), measure(1024)
	if ratio := float64(large) / float64(small); ratio > 1.5 {
		t.Fatalf("pch route cost grows with fleet size: n=1024 is %.2fx n=16 (%v vs %v), want <= 1.5x",
			ratio, large, small)
	}
}

// routeSink defeats dead-code elimination in the timing loop above.
var routeSink int
