package core

import "testing"

// FuzzRouteStability drives every placement backend with arbitrary
// keys, fleet sizes, prefixes, and ring seeds, and checks the routing
// contract the whole stack depends on:
//
//   - the owner is inside the active prefix;
//   - routing is a pure function: the same (key, seed, active) always
//     resolves to the same server;
//   - active counts past the provisioning order clamp to the full
//     order rather than inventing servers.
//
// Algorithm 1's fleet size is capped lower than the O(1) backends'
// because its construction is quadratic in the order length.
func FuzzRouteStability(f *testing.F) {
	f.Add("k001", uint16(40), uint16(3), uint64(0))
	f.Add("", uint16(1), uint16(1), uint64(1))
	f.Add("page/Main_Page", uint16(1023), uint16(600), uint64(0x9e3779b97f4a7c15))
	f.Add("\x00\xff\x80", uint16(64), uint16(64), uint64(7))
	f.Fuzz(func(t *testing.T, key string, n, active uint16, seed uint64) {
		for _, kind := range backendKinds {
			max := 1024
			if kind == BackendProteus {
				max = 48
			}
			servers := int(n)%max + 1
			act := int(active)%servers + 1
			b, err := NewBackend(kind, servers)
			if err != nil {
				t.Fatalf("NewBackend(%s, %d): %v", kind, servers, err)
			}
			o := b.LookupSeeded(key, seed, act)
			if o < 0 || o >= act {
				t.Fatalf("%s: owner %d outside active prefix %d (servers=%d)", kind, o, act, servers)
			}
			if again := b.LookupSeeded(key, seed, act); again != o {
				t.Fatalf("%s: routing is not deterministic: %d then %d", kind, o, again)
			}
			if seed == 0 && b.Lookup(key, act) != o {
				t.Fatalf("%s: seed-0 LookupSeeded disagrees with Lookup", kind)
			}
			if got, want := b.LookupSeeded(key, seed, servers+3), b.LookupSeeded(key, seed, servers); got != want {
				t.Fatalf("%s: active beyond the order routed to %d, clamp wants %d", kind, got, want)
			}
		}
	})
}
