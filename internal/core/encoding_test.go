package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlacementMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 40} {
		p, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalPlacement(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if back.Servers() != p.Servers() || back.NumVirtualNodes() != p.NumVirtualNodes() {
			t.Fatalf("n=%d: shape mismatch", n)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 2000; trial++ {
			pt := rng.Uint64() & (RingSize - 1)
			active := rng.Intn(n) + 1
			if a, b := p.Owner(pt, active), back.Owner(pt, active); a != b {
				t.Fatalf("n=%d: decoded placement routes %d, original %d", n, b, a)
			}
		}
		if p.Fingerprint() != back.Fingerprint() {
			t.Fatalf("n=%d: fingerprint changed across round trip", n)
		}
	}
}

func TestPlacementEncodingCompact(t *testing.T) {
	p, err := New(40)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// 781 ranges with short chains should encode in a few KB.
	if len(data) > 32*1024 {
		t.Fatalf("encoding is %d bytes; expected a few KB", len(data))
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{1, 2, 3},
		data[:len(data)-1],                    // truncated
		append(data[:len(data):len(data)], 0), // trailing byte
	}
	for i, c := range cases {
		if _, err := UnmarshalPlacement(c); err == nil {
			t.Errorf("case %d: corrupted encoding accepted", i)
		}
	}
	// Flipping header magic must fail.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := UnmarshalPlacement(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

// Property: random byte soup never panics the decoder and never yields
// a structurally invalid placement.
func TestQuickUnmarshalNeverPanics(t *testing.T) {
	prop := func(data []byte) bool {
		p, err := UnmarshalPlacement(data)
		if err != nil {
			return true
		}
		// If it decoded, invariants must hold.
		if p.Servers() < 1 || p.NumVirtualNodes() < 1 {
			return false
		}
		return p.Owner(0, 1) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different placements share a fingerprint")
	}
	c, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("identical placements have different fingerprints")
	}
}
