package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The paper's third objective is that every web server makes identical
// routing decisions. Construction is deterministic, so building from N
// suffices — but operators still want to (a) skip the O(N^3) rational
// construction on hot start-up paths and (b) verify that two processes
// really hold the same table. MarshalBinary/UnmarshalPlacement give a
// compact wire form, and Fingerprint gives a cheap equality check to
// gossip between web servers.

// placementMagic guards the wire encoding ("PVNP": Proteus Virtual
// Node Placement).
const placementMagic = 0x50564e50

// MarshalBinary encodes the placement: header (magic, N, range count),
// then per range its start delta and chain (varint-encoded).
func (p *Placement) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 16+len(p.starts)*8)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, placementMagic)
	put(uint64(p.n))
	put(uint64(len(p.starts)))
	prev := uint64(0)
	for i, start := range p.starts {
		put(start - prev) // starts are sorted; deltas compress well
		prev = start
		chain := p.chains[i]
		put(uint64(len(chain)))
		prevOwner := 0
		for _, owner := range chain {
			put(uint64(owner - prevOwner)) // strictly increasing
			prevOwner = owner
		}
	}
	return buf, nil
}

// UnmarshalPlacement decodes a placement previously encoded with
// MarshalBinary, validating structural invariants.
func UnmarshalPlacement(data []byte) (*Placement, error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != placementMagic {
		return nil, errors.New("core: bad placement magic")
	}
	data = data[4:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, errors.New("core: truncated placement encoding")
		}
		data = data[n:]
		return v, nil
	}
	n64, err := next()
	if err != nil {
		return nil, err
	}
	count64, err := next()
	if err != nil {
		return nil, err
	}
	n := int(n64)
	count := int(count64)
	if n < 1 || n > MaxServers {
		return nil, fmt.Errorf("core: decoded server count %d out of range", n)
	}
	if count < 1 || count > VirtualNodeLowerBound(n) {
		return nil, fmt.Errorf("core: decoded range count %d out of range for n=%d", count, n)
	}
	p := &Placement{n: n, starts: make([]uint64, count), chains: make([][]int, count)}
	prev := uint64(0)
	for i := 0; i < count; i++ {
		delta, err := next()
		if err != nil {
			return nil, err
		}
		start := prev + delta
		if i == 0 && start != 0 {
			return nil, errors.New("core: decoded placement does not start at ring origin")
		}
		if i > 0 && delta == 0 {
			return nil, errors.New("core: decoded placement has empty range")
		}
		if start >= RingSize {
			return nil, errors.New("core: decoded range start beyond ring")
		}
		p.starts[i] = start
		prev = start
		chainLen, err := next()
		if err != nil {
			return nil, err
		}
		if chainLen < 1 || chainLen > uint64(n) {
			return nil, fmt.Errorf("core: decoded chain length %d invalid", chainLen)
		}
		chain := make([]int, chainLen)
		owner := 0
		for k := range chain {
			d, err := next()
			if err != nil {
				return nil, err
			}
			if k == 0 && d != 0 {
				return nil, errors.New("core: decoded chain does not begin at server 0")
			}
			if k > 0 && d == 0 {
				return nil, errors.New("core: decoded chain not strictly increasing")
			}
			owner += int(d)
			if owner >= n {
				return nil, errors.New("core: decoded chain owner out of range")
			}
			chain[k] = owner
		}
		p.chains[i] = chain
	}
	if len(data) != 0 {
		return nil, errors.New("core: trailing bytes after placement encoding")
	}
	return p, nil
}

// Fingerprint returns a 64-bit digest of the routing table. Two
// placements route identically iff their fingerprints match (up to hash
// collisions); web servers exchange it to detect configuration drift.
func (p *Placement) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	mixIn := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	mixIn(uint64(p.n))
	for i, start := range p.starts {
		mixIn(start)
		for _, owner := range p.chains[i] {
			mixIn(uint64(owner))
		}
	}
	return mix64(h)
}
