package core

import (
	"math/rand"
	"testing"
)

// Brute-force cross-check: the Migrations() enumeration must agree
// with per-point owner comparison at every sampled ring position.
func TestMigrationsMatchBruteForce(t *testing.T) {
	const n = 12
	p, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, step := range [][2]int{{12, 11}, {5, 6}, {3, 9}, {9, 3}, {1, 12}} {
		from, to := step[0], step[1]
		moves := p.Migrations(from, to)

		inMove := func(pt uint64) (Movement, bool) {
			for _, m := range moves {
				if pt >= m.Start && pt < m.Start+m.Length {
					return m, true
				}
			}
			return Movement{}, false
		}

		for trial := 0; trial < 5000; trial++ {
			pt := rng.Uint64() & (RingSize - 1)
			a, b := p.Owner(pt, from), p.Owner(pt, to)
			m, moved := inMove(pt)
			if (a != b) != moved {
				t.Fatalf("%d->%d: point %d owner %d->%d but enumeration moved=%v",
					from, to, pt, a, b, moved)
			}
			if moved && (m.From != a || m.To != b) {
				t.Fatalf("%d->%d: point %d movement %+v but owners %d->%d",
					from, to, pt, m, a, b)
			}
		}
	}
}

// Movements must be disjoint and sorted.
func TestMigrationsDisjointSorted(t *testing.T) {
	p, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	moves := p.Migrations(16, 7)
	for i := 1; i < len(moves); i++ {
		prevEnd := moves[i-1].Start + moves[i-1].Length
		if moves[i].Start < prevEnd {
			t.Fatalf("movements overlap at %d: %+v then %+v", i, moves[i-1], moves[i])
		}
	}
}

// Identical from/to yields no movements.
func TestMigrationsIdentity(t *testing.T) {
	p, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	for active := 1; active <= 8; active++ {
		if moves := p.Migrations(active, active); len(moves) != 0 {
			t.Fatalf("active=%d: %d spurious movements", active, len(moves))
		}
	}
}

// OwnedFraction sums to 1 across active servers at every prefix size.
func TestOwnedFractionSums(t *testing.T) {
	p, err := New(20)
	if err != nil {
		t.Fatal(err)
	}
	for active := 1; active <= 20; active++ {
		sum := 0.0
		for s := 0; s < active; s++ {
			sum += p.OwnedFraction(s, active)
		}
		if sum < 0.9999 || sum > 1.0001 {
			t.Fatalf("active=%d: fractions sum to %g", active, sum)
		}
	}
}

func BenchmarkMigrations(b *testing.B) {
	p, err := New(40)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Migrations(40, 20)
	}
}
