package core

import "fmt"

// Replicated realises Section III-E of the paper: r consistent-hashing
// rings that share a single placement geometry but use r different
// hash functions. A key is stored on the owner of its position on every
// ring, giving up to r copies (fewer when two rings map the key to the
// same server — the paper argues the collision probability is small,
// Eq. 3).
//
// The geometry is any placement Backend (Algorithm 1, power consistent
// hash, or jump); ring i perturbs the backend's key stream with
// seeds[i], so e.g. the PCH backend yields r seeded PCH instances
// mirroring Algorithm 1's seeded-rings construction.
type Replicated struct {
	backend Backend
	seeds   []uint64
}

// replicaSeedBase generates the per-ring hash seeds; any fixed distinct
// constants work as long as every web server uses the same ones.
const replicaSeedBase = 0x9e3779b97f4a7c15

// NewReplicated builds an r-way replicated Algorithm 1 placement over
// n servers. Ring 0 uses the unseeded hash, so Owners(key, active)[0]
// equals the unreplicated Lookup result.
func NewReplicated(n, r int) (*Replicated, error) {
	return NewReplicatedBackend(BackendProteus, n, r)
}

// NewReplicatedBackend builds an r-way replicated placement over n
// servers with the named backend geometry (empty kind selects
// BackendProteus).
func NewReplicatedBackend(kind BackendKind, n, r int) (*Replicated, error) {
	if r < 1 {
		r = 1
	}
	b, err := NewBackend(kind, n)
	if err != nil {
		return nil, err
	}
	seeds := make([]uint64, r)
	for i := 1; i < r; i++ {
		seeds[i] = mix64(replicaSeedBase * uint64(i))
	}
	return &Replicated{backend: b, seeds: seeds}, nil
}

// Backend returns the shared placement geometry.
func (r *Replicated) Backend() Backend { return r.backend }

// Placement returns the shared virtual-node placement when the
// geometry is Algorithm 1, and nil for the O(1) backends (which have
// no explicit virtual nodes to expose).
func (r *Replicated) Placement() *Placement {
	p, _ := r.backend.(*Placement)
	return p
}

// Replicas returns the replication factor r.
func (r *Replicated) Replicas() int { return len(r.seeds) }

// OwnerOnRing returns the server owning the key on one ring at the
// given active-prefix size. Ring 0 is the unseeded (primary) ring.
func (r *Replicated) OwnerOnRing(key string, ring, active int) int {
	if ring < 0 || ring >= len(r.seeds) {
		panic(fmt.Sprintf("core: ring %d out of range 0..%d", ring, len(r.seeds)-1))
	}
	return r.backend.LookupSeeded(key, r.seeds[ring], active)
}

// Owners returns the server owning the key on each of the r rings at
// the given active-prefix size. Entries may repeat when rings collide.
func (r *Replicated) Owners(key string, active int) []int {
	out := make([]int, len(r.seeds))
	for i, seed := range r.seeds {
		out[i] = r.backend.LookupSeeded(key, seed, active)
	}
	return out
}

// DistinctOwners returns Owners with duplicates removed, preserving ring
// order; its length is the number of physical copies actually stored.
func (r *Replicated) DistinctOwners(key string, active int) []int {
	return r.DistinctOwnersN(key, active, len(r.seeds))
}

// DistinctOwnersN is DistinctOwners restricted to the first `rings`
// rings (clamped to 1..Replicas). The hot-key layer uses it to give
// promoted keys a deeper replica set than cold keys over one shared
// geometry: cold keys resolve with rings=1 (the primary ring only),
// promoted keys with rings=R. The first entry is always the primary
// (ring-0) owner.
func (r *Replicated) DistinctOwnersN(key string, active, rings int) []int {
	if rings < 1 {
		rings = 1
	}
	if rings > len(r.seeds) {
		rings = len(r.seeds)
	}
	out := make([]int, 0, rings)
	for ring := 0; ring < rings; ring++ {
		o := r.OwnerOnRing(key, ring, active)
		dup := false
		for _, seen := range out {
			if seen == o {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	return out
}

// NoConflictProbability is Eq. 3 of the paper: the probability that r
// independent uniform placements over active servers land on r distinct
// servers, i.e. that a key really gets r copies.
func NoConflictProbability(r, active int) float64 {
	if r < 1 || active < 1 {
		return 0
	}
	p := 1.0
	for i := 0; i < r; i++ {
		p *= float64(active-i) / float64(active)
	}
	if p < 0 {
		return 0
	}
	return p
}
