package hashring

import "proteus/internal/core"

// Jump implements Lamping & Veach's jump consistent hash (2014) — a
// successor technique to the problem Proteus solved in 2013: balancing
// keys over exactly the first n servers of a fixed order with minimal
// movement as n changes, using O(1) memory instead of Proteus's
// N(N-1)/2+1 explicit virtual nodes. The walk itself now lives in
// internal/core as the "jump" placement backend (core.Jump), selectable
// everywhere a backend flag exists; this adapter keeps the original
// bench-era Router shape and routes identically (same seed, same walk).
//
// Like the Proteus placement (and unlike random-vnode consistent
// hashing), Jump satisfies the Balance Condition: every active prefix
// is uniformly balanced in expectation, and a step n -> n+1 moves
// exactly 1/(n+1) of keys. What it cannot do is weighted ranges or
// arbitrary (non-prefix) active sets — the same restriction Proteus
// accepts by fixing the provisioning order.
type Jump struct{}

// Route implements Router.
func (Jump) Route(key string, active int) int {
	if active < 1 {
		panic("hashring: active server count must be >= 1")
	}
	return core.JumpLookup(key, active)
}

var _ Router = Jump{}
