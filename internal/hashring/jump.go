package hashring

import "proteus/internal/core"

// Jump implements Lamping & Veach's jump consistent hash (2014) — a
// successor technique to the problem Proteus solved in 2013: balancing
// keys over exactly the first n servers of a fixed order with minimal
// movement as n changes, using O(1) memory instead of Proteus's
// N(N-1)/2+1 explicit virtual nodes. It is included as a comparison
// baseline (see the DESIGN.md ablation notes), not as part of the
// paper's evaluation.
//
// Like the Proteus placement (and unlike random-vnode consistent
// hashing), Jump satisfies the Balance Condition: every active prefix
// is uniformly balanced in expectation, and a step n -> n+1 moves
// exactly 1/(n+1) of keys. What it cannot do is weighted ranges or
// arbitrary (non-prefix) active sets — the same restriction Proteus
// accepts by fixing the provisioning order.
type Jump struct{}

// jumpSeed decorrelates Jump's key stream from the ring position hash.
const jumpSeed = 0x6a756d7068617368 // "jumphash"

// Route implements Router.
func (Jump) Route(key string, active int) int {
	if active < 1 {
		panic("hashring: active server count must be >= 1")
	}
	return jumpHash(core.PointSeeded(key, jumpSeed), active)
}

// jumpHash is the published algorithm: a sequence of deterministic
// "jumps" whose last landing below n is the bucket.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(1<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

var _ Router = Jump{}
