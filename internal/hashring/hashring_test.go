package hashring

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"proteus/internal/core"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

// loadRatio replays keys through a router and returns min/max per-server
// request counts — the paper's Fig. 5 metric.
func loadRatio(r Router, active int, ks []string) float64 {
	counts := make([]int, active)
	for _, k := range ks {
		counts[r.Route(k, active)]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi == 0 {
		return 1
	}
	return float64(lo) / float64(hi)
}

func TestNaiveBalanced(t *testing.T) {
	ks := keys(100000)
	for _, active := range []int{1, 3, 10} {
		if ratio := loadRatio(Naive{}, active, ks); ratio < 0.93 {
			t.Errorf("naive load ratio at n=%d: %.3f, want >= 0.93", active, ratio)
		}
	}
}

func TestNaiveRemapsAlmostEverything(t *testing.T) {
	ks := keys(50000)
	n := 10
	moved := 0
	for _, k := range ks {
		if (Naive{}).Route(k, n) != (Naive{}).Route(k, n+1) {
			moved++
		}
	}
	frac := float64(moved) / float64(len(ks))
	want := float64(n) / float64(n+1) // the paper's n/(n+1) disruption
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("naive remap fraction %.3f, want ≈%.3f", frac, want)
	}
}

func TestConsistentValidation(t *testing.T) {
	if _, err := NewConsistent(0, 4); err == nil {
		t.Error("NewConsistent(0,4) accepted")
	}
	if _, err := NewConsistent(4, 0); err == nil {
		t.Error("NewConsistent(4,0) accepted")
	}
}

func TestConsistentNodeCounts(t *testing.T) {
	c, err := NewConsistentLogN(10)
	if err != nil {
		t.Fatal(err)
	}
	perServer := c.NumVirtualNodes() / c.Servers()
	if perServer < 3 || perServer > 4 {
		t.Errorf("logN density: %d per server, want ~log2(11)", perServer)
	}
	c, err = NewConsistentHalfSquare(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumVirtualNodes(); got != 50 {
		t.Errorf("half-square total nodes = %d, want 50", got)
	}
}

func TestConsistentRoutesOnlyActive(t *testing.T) {
	c, err := NewConsistent(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, active := range []int{1, 2, 5, 10} {
		for _, k := range keys(2000) {
			if s := c.Route(k, active); s < 0 || s >= active {
				t.Fatalf("Route(%q, %d) = %d", k, active, s)
			}
		}
	}
}

// Consistent hashing's minimal-disruption property: shrinking the active
// set only remaps keys that were on the removed server.
func TestConsistentMinimalDisruption(t *testing.T) {
	c, err := NewConsistent(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(20000)
	for active := 10; active > 1; active-- {
		for _, k := range ks {
			before := c.Route(k, active)
			after := c.Route(k, active-1)
			if before != active-1 && after != before {
				t.Fatalf("key %q moved from %d to %d when server %d shut down",
					k, before, after, active-1)
			}
		}
	}
}

// The paper's Fig. 5 claim: random virtual node placement balances
// noticeably worse than Proteus's deterministic placement.
func TestConsistentImbalanceVsProteus(t *testing.T) {
	const n = 10
	ks := keys(200000)

	logN, err := NewConsistentLogN(n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(n)
	if err != nil {
		t.Fatal(err)
	}
	proteus := Adapter{Placement: p}

	worstLogN, worstProteus := 1.0, 1.0
	for active := 2; active <= n; active++ {
		if r := loadRatio(logN, active, ks); r < worstLogN {
			worstLogN = r
		}
		if r := loadRatio(proteus, active, ks); r < worstProteus {
			worstProteus = r
		}
	}
	if worstProteus < 0.9 {
		t.Errorf("Proteus worst-case load ratio %.3f, want >= 0.9", worstProteus)
	}
	if worstLogN >= worstProteus {
		t.Errorf("random consistent hashing (%.3f) should balance worse than Proteus (%.3f)",
			worstLogN, worstProteus)
	}
}

func TestAdapterMatchesPlacement(t *testing.T) {
	p, err := core.New(6)
	if err != nil {
		t.Fatal(err)
	}
	a := Adapter{Placement: p}
	for _, k := range keys(1000) {
		for active := 1; active <= 6; active++ {
			if a.Route(k, active) != p.Lookup(k, active) {
				t.Fatalf("adapter diverges from placement for %q at %d", k, active)
			}
		}
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a, err := NewConsistent(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConsistent(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(5000) {
		if a.Route(k, 5) != b.Route(k, 5) {
			t.Fatalf("two rings with the shared seed disagree on %q", k)
		}
	}
}

// Property: all routers return in-range servers for any key/active.
func TestQuickRoutersInRange(t *testing.T) {
	c, err := NewConsistent(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(12)
	if err != nil {
		t.Fatal(err)
	}
	routers := []Router{Naive{}, c, Adapter{Placement: p}}
	prop := func(key string, rawActive uint8) bool {
		active := int(rawActive)%12 + 1
		for _, r := range routers {
			if s := r.Route(key, active); s < 0 || s >= active {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNaiveRoute(b *testing.B) {
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Naive{}.Route(ks[i%len(ks)], 10)
	}
}

func BenchmarkConsistentRoute(b *testing.B) {
	c, err := NewConsistent(10, 50)
	if err != nil {
		b.Fatal(err)
	}
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Route(ks[i%len(ks)], 7)
	}
}

// newTestPlacement builds a core placement for comparison tests.
func newTestPlacement(t *testing.T, n int) *core.Placement {
	t.Helper()
	p, err := core.New(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
