// Package hashring implements the load-distribution baselines the paper
// compares Proteus against (Table II):
//
//   - Naive: hash the key and take it modulo the active server count —
//     the scheme Reddit famously outgrew. Perfectly balanced when the
//     server count is static, but a change of n remaps n/(n+1) of keys.
//   - Consistent: classic consistent hashing with randomly placed
//     virtual nodes. The paper evaluates two densities: O(log n) nodes
//     per server and n^2/2 total (to match Proteus's node count). All
//     web servers share one RNG seed so their views agree, mirroring
//     the paper's shared Java Random(0).
//
// Both types satisfy the same Router interface as the Proteus placement
// so the evaluation can swap them freely.
package hashring

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"proteus/internal/core"
)

// Router maps a key to a cache server index given the number of active
// servers. All three schemes (Naive, Consistent, Proteus core.Placement
// via Adapter) implement it.
type Router interface {
	// Route returns the server index in [0, active) for the key.
	Route(key string, active int) int
}

// Naive is hash-modulo routing.
type Naive struct{}

// Route implements Router.
func (Naive) Route(key string, active int) int {
	if active < 1 {
		panic("hashring: active server count must be >= 1")
	}
	return int(core.Point(key) % uint64(active))
}

// vnode is one virtual node on a consistent hashing ring.
type vnode struct {
	pos    uint64
	server int
}

// Consistent is textbook consistent hashing with randomly placed
// virtual nodes. Deactivated servers' nodes are skipped during lookup
// (their keys fall through to the next active successor), which is how
// a plain memcached client library behaves when the server list
// shrinks from the tail.
type Consistent struct {
	servers int
	nodes   []vnode // sorted by pos
}

// Seed is the shared RNG seed for virtual node placement (the paper
// uses Java's Random with seed 0 on every web server).
const Seed = 0

// NewConsistentLogN builds a ring with ceil(log2 n) virtual nodes per
// server (at least one), the density the paper's O(log n) curve uses.
func NewConsistentLogN(servers int) (*Consistent, error) {
	perServer := int(math.Ceil(math.Log2(float64(servers + 1))))
	if perServer < 1 {
		perServer = 1
	}
	return NewConsistent(servers, perServer)
}

// NewConsistentHalfSquare builds a ring with n^2/2 virtual nodes in
// total (at least one per server), matching Proteus's node count — the
// paper's "n^2/2" curve.
func NewConsistentHalfSquare(servers int) (*Consistent, error) {
	perServer := servers * servers / 2 / servers // == servers/2
	if perServer < 1 {
		perServer = 1
	}
	return NewConsistent(servers, perServer)
}

// NewConsistent builds a ring with the given number of virtual nodes
// per server, placed uniformly at random with the shared seed.
func NewConsistent(servers, nodesPerServer int) (*Consistent, error) {
	if servers < 1 {
		return nil, fmt.Errorf("hashring: servers must be >= 1, got %d", servers)
	}
	if nodesPerServer < 1 {
		return nil, fmt.Errorf("hashring: nodesPerServer must be >= 1, got %d", nodesPerServer)
	}
	rng := rand.New(rand.NewSource(Seed))
	nodes := make([]vnode, 0, servers*nodesPerServer)
	for s := 0; s < servers; s++ {
		for v := 0; v < nodesPerServer; v++ {
			nodes = append(nodes, vnode{pos: rng.Uint64() & (core.RingSize - 1), server: s})
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].pos != nodes[j].pos {
			return nodes[i].pos < nodes[j].pos
		}
		return nodes[i].server < nodes[j].server
	})
	return &Consistent{servers: servers, nodes: nodes}, nil
}

// Servers returns the configured server count.
func (c *Consistent) Servers() int { return c.servers }

// NumVirtualNodes returns the ring's total virtual node count.
func (c *Consistent) NumVirtualNodes() int { return len(c.nodes) }

// Route implements Router: the key is served by the first active
// virtual node at or after its ring position (wrapping).
func (c *Consistent) Route(key string, active int) int {
	if active < 1 {
		panic("hashring: active server count must be >= 1")
	}
	if active > c.servers {
		active = c.servers
	}
	point := core.Point(key)
	start := sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i].pos >= point })
	for i := 0; i < len(c.nodes); i++ {
		node := c.nodes[(start+i)%len(c.nodes)]
		if node.server < active {
			return node.server
		}
	}
	panic("hashring: no active virtual node found") // impossible: active >= 1
}

// Adapter exposes a Proteus placement through the Router interface.
type Adapter struct {
	Placement *core.Placement
}

// Route implements Router.
func (a Adapter) Route(key string, active int) int {
	return a.Placement.Lookup(key, active)
}

// ReplicaRouter extends Router with replica-set resolution: the
// distinct servers that hold copies of a key, primary first. A scheme
// without replication returns a single-element set.
type ReplicaRouter interface {
	Router
	// RouteReplicas returns the distinct owners for a key resolved at
	// the given replica depth (clamped to the scheme's maximum). The
	// first entry always equals Route(key, active).
	RouteReplicas(key string, active, replicas int) []int
}

// ReplicatedAdapter exposes a Section III-E replicated placement as a
// ReplicaRouter: Route answers on the primary ring, RouteReplicas over
// the first `replicas` rings. The hot-key layer resolves cold keys at
// depth 1 and promoted keys at depth R against one shared instance.
type ReplicatedAdapter struct {
	Replicated *core.Replicated
}

// Route implements Router (primary ring).
func (a ReplicatedAdapter) Route(key string, active int) int {
	return a.Replicated.OwnerOnRing(key, 0, active)
}

// RouteReplicas implements ReplicaRouter.
func (a ReplicatedAdapter) RouteReplicas(key string, active, replicas int) []int {
	return a.Replicated.DistinctOwnersN(key, active, replicas)
}

var (
	_ Router        = Naive{}
	_ Router        = (*Consistent)(nil)
	_ Router        = Adapter{}
	_ ReplicaRouter = ReplicatedAdapter{}
)
