package hashring

import (
	"math"
	"testing"
)

func TestJumpRoutesInRange(t *testing.T) {
	for _, active := range []int{1, 2, 7, 100} {
		for _, k := range keys(1000) {
			if s := (Jump{}).Route(k, active); s < 0 || s >= active {
				t.Fatalf("Route(%q, %d) = %d", k, active, s)
			}
		}
	}
}

func TestJumpBalanced(t *testing.T) {
	ks := keys(200000)
	for _, active := range []int{3, 10} {
		counts := make([]int, active)
		for _, k := range ks {
			counts[(Jump{}).Route(k, active)]++
		}
		want := float64(len(ks)) / float64(active)
		for s, c := range counts {
			if math.Abs(float64(c)-want) > 0.05*want {
				t.Errorf("active=%d server %d got %d keys, want ≈%g", active, s, c, want)
			}
		}
	}
}

// Jump's defining property — the same one Proteus proves for its
// placement: a step n -> n+1 moves exactly 1/(n+1) of keys, and only
// to the new server.
func TestJumpMinimalDisruption(t *testing.T) {
	ks := keys(100000)
	for _, n := range []int{2, 5, 9} {
		moved := 0
		for _, k := range ks {
			a := (Jump{}).Route(k, n)
			b := (Jump{}).Route(k, n+1)
			if a != b {
				if b != n {
					t.Fatalf("key %q moved to %d, not the new server %d", k, b, n)
				}
				moved++
			}
		}
		frac := float64(moved) / float64(len(ks))
		want := 1.0 / float64(n+1)
		if math.Abs(frac-want) > 0.01 {
			t.Errorf("n=%d: moved %.4f, want ≈%.4f", n, frac, want)
		}
	}
}

// Jump and the Proteus placement solve the same problem: compare their
// worst-case balance over active prefixes. Both should be far above
// random-vnode consistent hashing.
func TestJumpComparableToProteusBalance(t *testing.T) {
	ks := keys(200000)
	jumpWorst, proteusWorst := 1.0, 1.0
	p := newTestPlacement(t, 10)
	for active := 2; active <= 10; active++ {
		if r := loadRatio(Jump{}, active, ks); r < jumpWorst {
			jumpWorst = r
		}
		if r := loadRatio(Adapter{Placement: p}, active, ks); r < proteusWorst {
			proteusWorst = r
		}
	}
	if jumpWorst < 0.9 || proteusWorst < 0.9 {
		t.Errorf("worst ratios: jump=%.3f proteus=%.3f; both should be >= 0.9", jumpWorst, proteusWorst)
	}
	if math.Abs(jumpWorst-proteusWorst) > 0.08 {
		t.Errorf("jump (%.3f) and proteus (%.3f) should balance comparably", jumpWorst, proteusWorst)
	}
}
