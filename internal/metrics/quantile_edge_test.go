package metrics

import (
	"testing"
	"time"
)

// Quantile edge cases the telemetry summary export leans on: empty
// histograms, a single sample, and heavy duplicates must all produce
// sane, non-understating estimates at every q.
func TestQuantileEmptyAllQ(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}
	if h.Sum() != 0 {
		t.Errorf("empty Sum = %v", h.Sum())
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	// With one sample every quantile is that sample; the bucket upper
	// edge must still be clamped to max so it never overshoots.
	for _, q := range []float64{0.001, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 5*time.Millisecond {
			t.Errorf("Quantile(%g) = %v, want 5ms", q, got)
		}
	}
	// Out-of-range q clamps rather than panicking or returning junk.
	if got := h.Quantile(-3); got != 5*time.Millisecond {
		t.Errorf("Quantile(-3) = %v, want 5ms", got)
	}
	if got := h.Quantile(7); got != 5*time.Millisecond {
		t.Errorf("Quantile(7) = %v, want 5ms", got)
	}
	if h.Sum() != 5*time.Millisecond {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestQuantileDuplicates(t *testing.T) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Observe(time.Millisecond)
	}
	// All mass in one bucket: every quantile collapses to the max.
	for _, q := range []float64{0.001, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != time.Millisecond {
			t.Errorf("Quantile(%g) = %v, want 1ms", q, got)
		}
	}
	if h.Count() != 10000 || h.Mean() != time.Millisecond {
		t.Errorf("Count = %d, Mean = %v", h.Count(), h.Mean())
	}
}

func TestQuantileBelowMinLatency(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(time.Microsecond) // below the first bucket edge
	if got := h.Quantile(0.999); got > minLatency {
		t.Errorf("sub-minimum samples produced Quantile = %v > %v", got, minLatency)
	}
}

// TestSeriesMergeOrdering: Total() folds slot histograms left to right,
// but merging is commutative — the same samples distributed into
// different slots (hence merged in a different order) must produce an
// identical aggregate.
func TestSeriesMergeOrdering(t *testing.T) {
	samples := []time.Duration{
		time.Millisecond, 20 * time.Millisecond, 300 * time.Millisecond,
		4 * time.Second, 50 * time.Microsecond, 6 * time.Millisecond,
	}
	forward := NewLatencySeries(6*time.Minute, time.Minute)
	reverse := NewLatencySeries(6*time.Minute, time.Minute)
	for i, d := range samples {
		forward.Observe(time.Duration(i)*time.Minute, d)
		reverse.Observe(time.Duration(len(samples)-1-i)*time.Minute, d)
	}
	ft, rt := forward.Total(), reverse.Total()
	if ft.Count() != rt.Count() || ft.Sum() != rt.Sum() || ft.Max() != rt.Max() {
		t.Fatalf("merge order changed aggregates: %v vs %v", ft, rt)
	}
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		if ft.Quantile(q) != rt.Quantile(q) {
			t.Errorf("merge order changed Quantile(%g): %v vs %v", q, ft.Quantile(q), rt.Quantile(q))
		}
	}
	if *ft != *rt {
		t.Error("merge order changed bucket contents")
	}
}
