package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.999) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zero: %v", h.String())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestBucketForInvariant(t *testing.T) {
	for _, d := range []time.Duration{
		0, minLatency, minLatency + 1, time.Millisecond, 17 * time.Millisecond,
		time.Second, 40 * time.Second, 500 * time.Second,
	} {
		i := bucketFor(d)
		if i < 0 || i >= bucketCount {
			t.Fatalf("bucketFor(%v) = %d out of range", d, i)
		}
		if d > minLatency && i < bucketCount-1 {
			if bucketBounds[i] > d || bucketBounds[i+1] <= d {
				t.Fatalf("bucketFor(%v) = %d but bounds are [%v, %v)", d, i, bucketBounds[i], bucketBounds[i+1])
			}
		}
	}
}

// Quantile estimates must be within one bucket (~4.2%) of the exact
// value, and never underestimate.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]time.Duration, 50000)
	for i := range samples {
		// Log-uniform latencies between 100µs and 1s.
		d := time.Duration(float64(100*time.Microsecond) *
			float64(uint64(1)<<uint(rng.Intn(14))) * (0.5 + rng.Float64()))
		samples[i] = d
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%g: estimate %v below exact %v", q, got, exact)
		}
		if float64(got) > float64(exact)*1.1 {
			t.Errorf("q=%g: estimate %v more than 10%% above exact %v", q, got, exact)
		}
	}
}

func TestQuantileNeverExceedsMax(t *testing.T) {
	prop := func(raw []uint32) bool {
		var h Histogram
		for _, r := range raw {
			h.Observe(time.Duration(r) * time.Microsecond)
		}
		if len(raw) == 0 {
			return h.Quantile(0.999) == 0
		}
		return h.Quantile(1) <= h.Max() && h.Quantile(0.001) <= h.Quantile(0.999)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Max() != time.Second {
		t.Fatalf("merged Max = %v", a.Max())
	}
	if q := a.Quantile(0.999); q < time.Second {
		t.Fatalf("merged p99.9 = %v, want >= 1s", q)
	}
}

func TestLatencySeriesSlotting(t *testing.T) {
	s := NewLatencySeries(time.Hour, time.Minute)
	if s.Slots() != 60 {
		t.Fatalf("Slots = %d, want 60", s.Slots())
	}
	s.Observe(30*time.Second, time.Millisecond)   // slot 0
	s.Observe(61*time.Second, 2*time.Millisecond) // slot 1
	s.Observe(2*time.Hour, 3*time.Millisecond)    // clamps to last
	s.Observe(-time.Second, 4*time.Millisecond)   // clamps to first
	if s.Slot(0).Count() != 2 {
		t.Fatalf("slot 0 count = %d, want 2", s.Slot(0).Count())
	}
	if s.Slot(1).Count() != 1 {
		t.Fatalf("slot 1 count = %d, want 1", s.Slot(1).Count())
	}
	if s.Slot(59).Count() != 1 {
		t.Fatalf("slot 59 count = %d, want 1", s.Slot(59).Count())
	}
	if got := s.Total().Count(); got != 4 {
		t.Fatalf("total count = %d, want 4", got)
	}
	if qs := s.Quantiles(0.999); len(qs) != 60 || qs[2] != 0 {
		t.Fatalf("Quantiles misbehaved: len=%d qs[2]=%v", len(qs), qs[2])
	}
}

func TestLoadSeriesRatio(t *testing.T) {
	s := NewLoadSeries(time.Hour, 30*time.Minute, 4)
	// Slot 0: perfectly balanced across 4.
	for server := 0; server < 4; server++ {
		for i := 0; i < 100; i++ {
			s.Observe(time.Minute, server)
		}
	}
	// Slot 1: skewed 100 vs 50 across 2 active.
	for i := 0; i < 100; i++ {
		s.Observe(31*time.Minute, 0)
	}
	for i := 0; i < 50; i++ {
		s.Observe(31*time.Minute, 1)
	}
	if r := s.MinMaxRatio(0, 4); r != 1 {
		t.Fatalf("slot 0 ratio = %g, want 1", r)
	}
	if r := s.MinMaxRatio(1, 2); r != 0.5 {
		t.Fatalf("slot 1 ratio = %g, want 0.5", r)
	}
	if got := s.SlotTotal(0); got != 400 {
		t.Fatalf("slot 0 total = %d", got)
	}
	if counts := s.SlotCounts(1); counts[0] != 100 || counts[1] != 50 {
		t.Fatalf("slot 1 counts = %v", counts)
	}
}

func TestLoadSeriesIdleSlotRatioIsOne(t *testing.T) {
	s := NewLoadSeries(time.Hour, 30*time.Minute, 4)
	if r := s.MinMaxRatio(0, 4); r != 1 {
		t.Fatalf("idle slot ratio = %g, want 1", r)
	}
}
