package metrics

import (
	"fmt"
	"time"
)

// LatencySeries buckets latency samples into fixed-width time slots —
// the paper groups response times "into 480 slots according to
// physical time" for Fig. 9.
type LatencySeries struct {
	slotWidth time.Duration
	slots     []*Histogram
}

// NewLatencySeries covers [0, duration) with slots of the given width.
func NewLatencySeries(duration, slotWidth time.Duration) *LatencySeries {
	if slotWidth <= 0 {
		panic("metrics: slot width must be positive")
	}
	n := int((duration + slotWidth - 1) / slotWidth)
	if n < 1 {
		n = 1
	}
	slots := make([]*Histogram, n)
	for i := range slots {
		slots[i] = &Histogram{}
	}
	return &LatencySeries{slotWidth: slotWidth, slots: slots}
}

// Observe records a sample at experiment-relative time t. Out-of-range
// times clamp to the first/last slot.
func (s *LatencySeries) Observe(t time.Duration, latency time.Duration) {
	s.slots[s.slotIndex(t)].Observe(latency)
}

func (s *LatencySeries) slotIndex(t time.Duration) int {
	i := int(t / s.slotWidth)
	if i < 0 {
		return 0
	}
	if i >= len(s.slots) {
		return len(s.slots) - 1
	}
	return i
}

// Slots returns the number of slots.
func (s *LatencySeries) Slots() int { return len(s.slots) }

// SlotWidth returns the slot duration.
func (s *LatencySeries) SlotWidth() time.Duration { return s.slotWidth }

// Slot returns the histogram for slot i.
func (s *LatencySeries) Slot(i int) *Histogram { return s.slots[i] }

// Quantiles returns the q-quantile of every slot (0 for empty slots).
func (s *LatencySeries) Quantiles(q float64) []time.Duration {
	out := make([]time.Duration, len(s.slots))
	for i, h := range s.slots {
		out[i] = h.Quantile(q)
	}
	return out
}

// Total merges all slots into one histogram.
func (s *LatencySeries) Total() *Histogram {
	var total Histogram
	for _, h := range s.slots {
		total.Merge(h)
	}
	return &total
}

// LoadSeries counts requests per (slot, server) — the raw data behind
// the paper's Fig. 5 min/max load-balance ratio.
type LoadSeries struct {
	slotWidth time.Duration
	servers   int
	counts    [][]uint64 // [slot][server]
}

// NewLoadSeries covers [0, duration) with the given slot width across
// the given number of servers.
func NewLoadSeries(duration, slotWidth time.Duration, servers int) *LoadSeries {
	if slotWidth <= 0 || servers < 1 {
		panic("metrics: invalid load series shape")
	}
	n := int((duration + slotWidth - 1) / slotWidth)
	if n < 1 {
		n = 1
	}
	counts := make([][]uint64, n)
	for i := range counts {
		counts[i] = make([]uint64, servers)
	}
	return &LoadSeries{slotWidth: slotWidth, servers: servers, counts: counts}
}

// Observe counts one request handled by server at time t.
func (s *LoadSeries) Observe(t time.Duration, server int) {
	i := int(t / s.slotWidth)
	if i < 0 {
		i = 0
	}
	if i >= len(s.counts) {
		i = len(s.counts) - 1
	}
	s.counts[i][server]++
}

// Slots returns the number of slots.
func (s *LoadSeries) Slots() int { return len(s.counts) }

// SlotCounts returns per-server counts for slot i (a copy).
func (s *LoadSeries) SlotCounts(i int) []uint64 {
	return append([]uint64(nil), s.counts[i]...)
}

// MinMaxRatio returns min(load)/max(load) over the first `active`
// servers in slot i — the paper's Fig. 5 metric. It returns 1 for an
// idle slot.
func (s *LoadSeries) MinMaxRatio(i, active int) float64 {
	if active < 1 || active > s.servers {
		panic(fmt.Sprintf("metrics: active %d out of range (servers=%d)", active, s.servers))
	}
	lo, hi := s.counts[i][0], s.counts[i][0]
	for _, c := range s.counts[i][1:active] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi == 0 {
		return 1
	}
	return float64(lo) / float64(hi)
}

// SlotTotal returns the summed request count of slot i.
func (s *LoadSeries) SlotTotal(i int) uint64 {
	var total uint64
	for _, c := range s.counts[i] {
		total += c
	}
	return total
}
