// Package metrics provides the measurement plumbing for the evaluation:
// log-bucketed latency histograms with high-quantile queries (the
// paper's 99.9th-percentile response times, Fig. 9), per-slot time
// series, and per-server load counters for the min/max load-balance
// ratio (Fig. 5).
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-bucketed latency histogram. Buckets grow
// geometrically from 10µs to ~100s with ~4% relative width, so
// quantile error is bounded by the bucket ratio. The zero value is
// ready to use.
type Histogram struct {
	counts [bucketCount]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

const (
	bucketCount = 400
	minLatency  = 10 * time.Microsecond
	// growth is chosen so bucketCount buckets span minLatency..~160s.
	growth = 1.042
)

var bucketBounds = func() [bucketCount]time.Duration {
	var bounds [bucketCount]time.Duration
	edge := float64(minLatency)
	for i := range bounds {
		bounds[i] = time.Duration(edge)
		edge *= growth
	}
	return bounds
}()

func bucketFor(d time.Duration) int {
	if d <= minLatency {
		return 0
	}
	i := int(math.Log(float64(d)/float64(minLatency)) / math.Log(growth))
	if i >= bucketCount {
		return bucketCount - 1
	}
	// Log rounding can land one bucket off; adjust to the invariant
	// bounds[i] <= d < bounds[i+1].
	for i > 0 && bucketBounds[i] > d {
		i--
	}
	for i < bucketCount-1 && bucketBounds[i+1] <= d {
		i++
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest sample observed.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper estimate of the q-quantile (0 < q <= 1),
// or 0 when empty. The estimate is the upper edge of the bucket that
// contains the quantile, so it never understates tail latency.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i == bucketCount-1 {
				return h.max
			}
			upper := bucketBounds[i+1]
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// Merge adds all of other's samples into h (max is preserved; the
// merged mean is sample-weighted).
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999), h.max)
}
