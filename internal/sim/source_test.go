package sim

import (
	"testing"
	"time"
)

func TestSourceLatencyBreakdown(t *testing.T) {
	res := runScenario(t, ScenarioProteus)
	hit := res.SourceLatency(SourceHit)
	mig := res.SourceLatency(SourceMigrated)
	db := res.SourceLatency(SourceDB)

	if hit.Count() == 0 || mig.Count() == 0 || db.Count() == 0 {
		t.Fatalf("empty source histograms: hit=%d mig=%d db=%d",
			hit.Count(), mig.Count(), db.Count())
	}
	// Latency ordering: hit < migrated < database (each adds a hop or a
	// disk access).
	if !(hit.Mean() < mig.Mean() && mig.Mean() < db.Mean()) {
		t.Fatalf("source latency ordering violated: hit=%v migrated=%v db=%v",
			hit.Mean(), mig.Mean(), db.Mean())
	}
	// A migrated request costs two cache ops + a put, far below a DB
	// fetch.
	if mig.Mean() > db.Mean()/2 {
		t.Errorf("migration (%v) should be far cheaper than database (%v)", mig.Mean(), db.Mean())
	}
	if hit.Mean() > 10*time.Millisecond {
		t.Errorf("cache-hit mean %v implausibly slow", hit.Mean())
	}
	// Counts must be consistent with Stats (hits counted only when
	// measured, so allow the warmup gap).
	if hit.Count() > res.Stats.CacheHits {
		t.Errorf("measured hits %d exceed total hits %d", hit.Count(), res.Stats.CacheHits)
	}
	if mig.Count() > res.Stats.MigratedOnDemand {
		t.Errorf("measured migrations %d exceed total %d", mig.Count(), res.Stats.MigratedOnDemand)
	}
}

func TestSourceStrings(t *testing.T) {
	if SourceHit.String() != "cache-hit" || SourceMigrated.String() != "migrated" || SourceDB.String() != "database" {
		t.Fatal("source names wrong")
	}
	if RequestSource(99).String() == "" {
		t.Fatal("unknown source has empty name")
	}
}
