package sim

import (
	"testing"
	"time"

	"proteus/internal/testutil"
)

// testConfig builds a fast compressed-day configuration: 8 simulated
// minutes with 16 provisioning slots.
func testConfig(t testing.TB, scenario Scenario) Config {
	t.Helper()
	corpus := testutil.NewCorpus(t, 50000, 256)
	cfg := NewConfig(scenario, corpus, 8*time.Minute, 600)
	cfg.CachePagesPerServer = 4000
	cfg.SlotWidth = 30 * time.Second
	cfg.Warmup = 60 * time.Second
	cfg.TTL = 8 * time.Second
	cfg.BootDelay = 2 * time.Second
	cfg.LatencySlots = 96
	cfg.PowerEvery = 5 * time.Second
	return cfg
}

func runScenario(t testing.TB, scenario Scenario) *Result {
	t.Helper()
	res, err := Run(testConfig(t, scenario))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testConfig(t, Scenario(99))
	if _, err := Run(cfg); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestStaticScenarioBasics(t *testing.T) {
	res := runScenario(t, ScenarioStatic)
	if res.Stats.Requests == 0 {
		t.Fatal("no requests simulated")
	}
	if res.Stats.Transitions != 0 {
		t.Fatalf("static scenario had %d transitions", res.Stats.Transitions)
	}
	for s, n := range res.Plan {
		if n != res.Config.CacheServers {
			t.Fatalf("static plan slot %d = %d", s, n)
		}
	}
	if hr := res.Stats.HitRatio(); hr < 0.6 {
		t.Fatalf("static hit ratio %.3f too low; cache model broken", hr)
	}
}

func TestDynamicPlanVaries(t *testing.T) {
	res := runScenario(t, ScenarioProteus)
	min, max := res.Plan[0], res.Plan[0]
	for _, n := range res.Plan {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == max {
		t.Fatalf("dynamic plan is flat at %d", min)
	}
	if res.Stats.Transitions == 0 {
		t.Fatal("no transitions despite plan changes")
	}
}

func TestProteusMigratesOnDemand(t *testing.T) {
	res := runScenario(t, ScenarioProteus)
	if res.Stats.MigratedOnDemand == 0 {
		t.Fatal("no on-demand migrations during transitions")
	}
	// Digest false positives must be rare relative to migrations.
	if res.Stats.DigestFalsePos > res.Stats.MigratedOnDemand/5+10 {
		t.Fatalf("digest false positives %d vs migrations %d",
			res.Stats.DigestFalsePos, res.Stats.MigratedOnDemand)
	}
}

// The paper's headline (Fig. 9): Naive transitions produce delay spikes
// that Proteus eliminates. Compare worst-slot p99.9 across scenarios
// under the identical plan and workload.
func TestProteusEliminatesDelaySpike(t *testing.T) {
	worst := func(res *Result) time.Duration {
		var w time.Duration
		for _, q := range res.Latency.Quantiles(0.999) {
			if q > w {
				w = q
			}
		}
		return w
	}
	static := worst(runScenario(t, ScenarioStatic))
	naive := worst(runScenario(t, ScenarioNaive))
	proteus := worst(runScenario(t, ScenarioProteus))

	if naive < 2*static {
		t.Errorf("naive worst p99.9 %v not spiking vs static %v", naive, static)
	}
	if proteus > naive/2 {
		t.Errorf("proteus worst p99.9 %v should be far below naive %v", proteus, naive)
	}
}

// Dynamic provisioning must save energy versus Static (Fig. 11), and
// Proteus must save about as much as Naive (it keeps servers on only
// TTL longer).
func TestEnergySavings(t *testing.T) {
	static := runScenario(t, ScenarioStatic)
	naive := runScenario(t, ScenarioNaive)
	proteus := runScenario(t, ScenarioProteus)

	staticCache := static.Meter.EnergyWh("cache")
	naiveCache := naive.Meter.EnergyWh("cache")
	proteusCache := proteus.Meter.EnergyWh("cache")

	if naiveCache >= staticCache || proteusCache >= staticCache {
		t.Fatalf("cache energy: static=%.1f naive=%.1f proteus=%.1f; no savings",
			staticCache, naiveCache, proteusCache)
	}
	saving := (staticCache - proteusCache) / staticCache
	if saving < 0.10 {
		t.Errorf("proteus cache-tier saving %.1f%%, want >= 10%%", saving*100)
	}
	// Proteus pays at most a small premium over naive for TTL-delayed
	// power-off.
	if proteusCache > naiveCache*1.15 {
		t.Errorf("proteus cache energy %.1f more than 15%% above naive %.1f",
			proteusCache, naiveCache)
	}
	// Whole-cluster saving is smaller but present.
	if proteus.Meter.TotalEnergyWh() >= static.Meter.TotalEnergyWh() {
		t.Error("no whole-cluster saving")
	}
}

// Load balance (Fig. 5): Proteus and Naive stay balanced across slots;
// Consistent (random virtual nodes) balances worse.
func TestLoadBalanceAcrossSlots(t *testing.T) {
	worstRatio := func(res *Result) float64 {
		worst := 1.0
		for s := 1; s < res.Load.Slots(); s++ { // skip slot 0 (warmup edge)
			active := res.Plan[s]
			if res.Load.SlotTotal(s) < 200 {
				continue
			}
			if r := res.Load.MinMaxRatio(s, active); r < worst {
				worst = r
			}
		}
		return worst
	}
	proteus := worstRatio(runScenario(t, ScenarioProteus))
	consistent := worstRatio(runScenario(t, ScenarioConsistent))
	if proteus < 0.5 {
		t.Errorf("proteus worst slot ratio %.3f; load not balanced", proteus)
	}
	if consistent >= proteus {
		t.Errorf("consistent (%.3f) should balance worse than proteus (%.3f)", consistent, proteus)
	}
}

func TestResultSeriesShapes(t *testing.T) {
	res := runScenario(t, ScenarioProteus)
	if res.Latency.Slots() != 96 {
		t.Fatalf("latency slots = %d", res.Latency.Slots())
	}
	if res.Load.Slots() != len(res.Plan) {
		t.Fatalf("load slots %d != plan %d", res.Load.Slots(), len(res.Plan))
	}
	if res.Meter.Samples() == 0 {
		t.Fatal("no power samples")
	}
	if got := len(res.Requests.Counts()); got != 24 {
		t.Fatalf("request counter windows = %d, want 24", got)
	}
	// Request totals must reflect the diurnal curve: peak window >
	// valley window.
	counts := res.Requests.Counts()
	if counts[12] <= counts[0] {
		t.Fatalf("no diurnal shape in request counts: %v", counts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runScenario(t, ScenarioProteus)
	b := runScenario(t, ScenarioProteus)
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func BenchmarkSimProteusCompressedDay(b *testing.B) {
	cfg := testConfig(b, ScenarioProteus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
