// Package sim is the discrete-event simulator that stands in for the
// paper's 40-server testbed. It drives the *same* production code —
// core.Placement routing, bloom digests, cache.Cache LRU stores — under
// a virtual clock, modelling only what the real hardware contributed:
// network round-trips, database service times with bounded per-shard
// concurrency (the overload mechanism behind the Fig. 9 delay spikes),
// closed-loop RBE users, and per-server power draw. A simulated day of
// traffic runs in seconds, which is what makes regenerating every
// figure of the evaluation practical.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a deterministic discrete-event scheduler.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	base   time.Time
}

// NewEngine returns an engine positioned at virtual time 0.
func NewEngine() *Engine {
	return &Engine{base: time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Clock adapts virtual time to the time.Time interface components such
// as cache.Cache expect.
func (e *Engine) Clock() func() time.Time {
	return func() time.Time { return e.base.Add(e.now) }
}

// Time maps a virtual offset to the absolute time the Clock would
// report at that offset (completion callbacks know their finish offset
// before the clock reaches it).
func (e *Engine) Time(d time.Duration) time.Time { return e.base.Add(d) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// fires the event at the current time (never rewinds the clock).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d from now.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.now+d, fn)
}

// Run executes events in time order until the queue is empty or the
// next event is at or beyond the horizon; the clock finishes at the
// horizon.
func (e *Engine) Run(until time.Duration) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at >= until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events (diagnostics/tests).
func (e *Engine) Pending() int { return len(e.events) }

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
