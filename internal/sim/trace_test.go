package sim

import (
	"testing"
	"time"

	"proteus/internal/workload"
)

// buildTrace synthesises a time-ordered event stream covering
// warmup+duration for the test config.
func buildTrace(t testing.TB, cfg Config) []workload.Event {
	t.Helper()
	var events []workload.Event
	err := workload.Generate(workload.GenConfig{
		Duration: cfg.Warmup + cfg.Duration,
		Rate:     cfg.Rate,
		Corpus:   cfg.Corpus,
		Seed:     7,
	}, func(e workload.Event) bool {
		events = append(events, e)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestOpenLoopTraceReplay(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	trace := buildTrace(t, cfg)
	cfg.Trace = trace
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every trace event becomes exactly one request.
	if res.Stats.Requests != uint64(len(trace)) {
		t.Fatalf("requests = %d, trace has %d events", res.Stats.Requests, len(trace))
	}
	// Latency is recorded for the measured window only.
	measured := 0
	for _, e := range trace {
		if e.At >= cfg.Warmup {
			measured++
		}
	}
	if got := res.Latency.Total().Count(); got != uint64(measured) {
		t.Fatalf("measured latencies = %d, want %d", got, measured)
	}
	if res.Stats.HitRatio() < 0.6 {
		t.Fatalf("open-loop hit ratio %.3f too low", res.Stats.HitRatio())
	}
	if res.Stats.Transitions == 0 {
		t.Fatal("no transitions during open-loop replay")
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	cfg := testConfig(t, ScenarioNaive)
	cfg.Trace = buildTrace(t, cfg)
	run := func() Stats {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("open-loop runs differ:\n%+v\n%+v", a, b)
	}
}

// Open loop has no backpressure: under a Naive transition storm the
// same arrival rate keeps hammering the saturated database, so the
// worst slot tail must exceed the closed-loop run's.
func TestOpenLoopSpikesHarder(t *testing.T) {
	worst := func(res *Result) time.Duration {
		var w time.Duration
		for _, q := range res.Latency.Quantiles(0.999) {
			if q > w {
				w = q
			}
		}
		return w
	}
	closedRes, err := Run(testConfig(t, ScenarioNaive))
	if err != nil {
		t.Fatal(err)
	}
	openCfg := testConfig(t, ScenarioNaive)
	openCfg.Trace = buildTrace(t, openCfg)
	openRes, err := Run(openCfg)
	if err != nil {
		t.Fatal(err)
	}
	if worst(openRes) <= worst(closedRes) {
		t.Fatalf("open-loop worst %v not above closed-loop %v",
			worst(openRes), worst(closedRes))
	}
}

// Controller mode composes with open-loop replay: the realized plan
// still tracks the trace's load.
func TestOpenLoopWithController(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	cfg.Trace = buildTrace(t, cfg)
	ctrl := clusterControllerForTest(cfg)
	cfg.Controller = ctrl
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Plan[0], res.Plan[0]
	for _, n := range res.Plan {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max == min {
		t.Fatalf("controller flat under open-loop replay: %v", res.Plan)
	}
}
