package sim

import (
	"testing"
	"time"

	"proteus/internal/provision"
	"proteus/internal/telemetry"
)

// shedder always wants one server fewer — the most drain-hostile policy
// possible, used to force the actuation gate to engage.
type shedder struct{}

func (shedder) Name() string { return "shedder" }
func (shedder) Decide(s provision.State) provision.Target {
	n := s.Active - 1
	if n < 1 {
		n = 1
	}
	return provision.Target{Servers: n, Reason: "shed"}
}

// With the TTL longer than the slot width every scale-down's drain
// window is still open at the next slot boundary, so consecutive sheds
// must be deferred — and no shrink transition may ever begin mid-drain.
func TestPolicyScaleDownGatedWhileDraining(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	cfg.TTL = 2 * cfg.SlotWidth
	cfg.Policy = shedder{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ScaleDownsDeferred == 0 {
		t.Errorf("TTL(%v) > slot(%v) but no scale-down was deferred; plan=%v",
			cfg.TTL, cfg.SlotWidth, res.Plan)
	}
	if res.Stats.MidDrainScaleDowns != 0 {
		t.Errorf("%d scale-downs issued mid-drain, want 0", res.Stats.MidDrainScaleDowns)
	}
	// Sheds still make progress between drains.
	if last := res.Plan[len(res.Plan)-1]; last >= cfg.CacheServers {
		t.Errorf("fleet never shrank: plan=%v", res.Plan)
	}
}

// Policy mode end to end: the delay-feedback controller drives the DES,
// the realized plan tracks the curve, decisions are logged, and the run
// stays deterministic.
func TestPolicyModeDelayFeedback(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(t, ScenarioProteus)
		cfg.Telemetry = true
		cfg.Policy = provision.NewDelayFeedbackConfig(provision.FeedbackConfig{
			Reference:         200 * time.Millisecond,
			Bound:             300 * time.Millisecond,
			PerServerCapacity: cfg.PerServerCapacity,
			Min:               1,
			Max:               cfg.CacheServers,
			SlotWidth:         cfg.SlotWidth,
		})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	slots := int((res.Config.Duration + res.Config.SlotWidth - 1) / res.Config.SlotWidth)
	if len(res.Plan) != slots {
		t.Fatalf("realized plan has %d slots, want %d", len(res.Plan), slots)
	}
	lo, hi := res.Plan[0], res.Plan[0]
	for _, n := range res.Plan {
		if n < 1 || n > res.Config.CacheServers {
			t.Fatalf("plan value %d out of range", n)
		}
		lo, hi = min(lo, n), max(hi, n)
	}
	if lo == hi {
		t.Errorf("delay-feedback never changed the fleet: plan=%v", res.Plan)
	}
	if res.Stats.MidDrainScaleDowns != 0 {
		t.Errorf("%d mid-drain scale-downs, want 0", res.Stats.MidDrainScaleDowns)
	}
	// Slot 0's fleet comes from the initial plan; every later slot
	// boundary records one decision (holds included).
	if got := res.Events.Count(telemetry.EventProvisionDecision); got != uint64(slots-1) {
		t.Errorf("%d provision_decision events, want %d", got, slots-1)
	}

	other := run()
	if res.Stats != other.Stats {
		t.Fatalf("policy runs not deterministic:\n%+v\n%+v", res.Stats, other.Stats)
	}
	for i := range res.Plan {
		if res.Plan[i] != other.Plan[i] {
			t.Fatalf("realized plans differ at slot %d: %d vs %d", i, res.Plan[i], other.Plan[i])
		}
	}
}

// The deprecated Controller knob still works through the adapter.
func TestDeprecatedControllerStillDrives(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	cfg.Controller = clusterControllerForTest(cfg)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slots := int((cfg.Duration + cfg.SlotWidth - 1) / cfg.SlotWidth)
	if len(res.Plan) != slots {
		t.Fatalf("realized plan has %d slots, want %d", len(res.Plan), slots)
	}
}
