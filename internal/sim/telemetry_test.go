package sim

import (
	"bytes"
	"testing"

	"proteus/internal/telemetry"
)

// TestTelemetryDisabledByDefault: the DES plane pays nothing for
// telemetry unless the scenario asks for it.
func TestTelemetryDisabledByDefault(t *testing.T) {
	res := runScenario(t, ScenarioProteus)
	if res.Tracer != nil || res.Events != nil {
		t.Fatal("telemetry populated without Config.Telemetry")
	}
}

// TestTelemetryEventAccounting cross-checks the structured transition
// events against the aggregate Stats the runner keeps independently:
// the per-transition migration counts must reproduce the Fig. 9-style
// amortized-migration accounting exactly.
func TestTelemetryEventAccounting(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	cfg.Telemetry = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracer == nil || res.Events == nil {
		t.Fatal("telemetry enabled but tracer/events missing from result")
	}
	ev := res.Events

	if got := ev.Count(telemetry.EventOwnershipFlip); got != uint64(res.Stats.Transitions) {
		t.Errorf("ownership_flip events = %d, Stats.Transitions = %d", got, res.Stats.Transitions)
	}
	if got := ev.Count(telemetry.EventTTLExpiry); got != uint64(res.Stats.Transitions) {
		t.Errorf("ttl_expiry events = %d, Stats.Transitions = %d", got, res.Stats.Transitions)
	}
	if got := ev.Count(telemetry.EventMigrationHit); got != res.Stats.MigratedOnDemand {
		t.Errorf("migration_hit events = %d, Stats.MigratedOnDemand = %d", got, res.Stats.MigratedOnDemand)
	}
	if got := ev.Count(telemetry.EventMigrationMiss); got != res.Stats.DigestFalsePos {
		t.Errorf("migration_miss events = %d, Stats.DigestFalsePos = %d", got, res.Stats.DigestFalsePos)
	}

	per := ev.MigrationsPerTransition()
	if len(per) != res.Stats.Transitions {
		t.Fatalf("MigrationsPerTransition has %d slots, want %d", len(per), res.Stats.Transitions)
	}
	var sum uint64
	for _, n := range per {
		sum += n
	}
	if sum != res.Stats.MigratedOnDemand {
		t.Errorf("sum(MigrationsPerTransition) = %d, Stats.MigratedOnDemand = %d", sum, res.Stats.MigratedOnDemand)
	}

	// Every server that ever ran must have powered on; every scale-down
	// victim must have powered off.
	if got := ev.Count(telemetry.EventPowerOn); got < uint64(cfg.CacheServers) {
		t.Errorf("power_on events = %d, want at least the initial fleet of %d", got, cfg.CacheServers)
	}
	if res.Stats.Transitions > 0 && ev.Count(telemetry.EventDigestBuild) == 0 {
		t.Error("transitions happened but no digest_build events")
	}
}

// TestTelemetryDeterministic: two runs with the same seed must produce
// byte-identical trace and event streams — the tracer and event log are
// inside the replay-critical boundary.
func TestTelemetryDeterministic(t *testing.T) {
	run := func() (trace, events []byte) {
		cfg := testConfig(t, ScenarioProteus)
		cfg.Telemetry = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var tb, eb bytes.Buffer
		if err := res.Tracer.WriteJSON(&tb); err != nil {
			t.Fatal(err)
		}
		if err := res.Events.WriteJSON(&eb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), eb.Bytes()
	}
	t1, e1 := run()
	t2, e2 := run()
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed runs produced different trace streams")
	}
	if !bytes.Equal(e1, e2) {
		t.Error("same-seed runs produced different event streams")
	}
	if len(e1) == 0 {
		t.Fatal("empty event stream")
	}
}
