package sim

import (
	"fmt"
	"sort"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/core"
	"proteus/internal/faultinject"
	"proteus/internal/telemetry"
)

// Harness is the DES execution plane of the conformance checker
// (internal/check): the same substrate the figure-replay runner uses —
// Engine virtual clock, cache.Cache stores with counting-filter
// digests, core.Placement routing, Section IV transitions — but driven
// one operation at a time by an external schedule instead of a closed
// workload loop. Every method is synchronous in virtual time and the
// whole state is a pure function of the operation sequence, so the
// explorer can interleave client ops, transitions, faults, and clock
// skips arbitrarily and replay them byte-for-byte.
//
// The harness mirrors the live plane's semantics operation for
// operation: Get is Algorithm 2 exactly as webtier.Frontend.fetch runs
// it (try the new owner, consult the old owner's digest during a
// transition, fall back to the backing store and write through), and
// SetActive is cluster.Coordinator.SetActive (finalize a pending
// window, power on growth, snapshot reachable relocation sources,
// flip, arm the TTL deadline). Lockstep conformance between the two
// planes depends on this mirroring.
type Harness struct {
	cfg        HarnessConfig
	eng        *Engine
	replicated *core.Replicated
	hotRings   int
	nodes      []*cacheNode
	events     *telemetry.EventLog

	active int
	trans  *transition
	hot    map[string]struct{}
}

// HarnessConfig configures a Harness. Servers, InitialActive, TTL, and
// DB are required.
type HarnessConfig struct {
	// Servers is the provisioning-order length.
	Servers int
	// InitialActive is the starting active prefix (>= 1).
	InitialActive int
	// TTL is the transition hot-data window in virtual time.
	TTL time.Duration
	// DigestParams sizes each node's counting filter.
	DigestParams bloom.Params
	// DB resolves a key in the backing store. It must be deterministic
	// for replay; the conformance oracle passes its own versioned map.
	DB func(key string) ([]byte, bool)
	// Faults, when set, is consulted for partitions exactly where the
	// live plane consults it (per-operation Decide, digest snapshots,
	// TransitionStarted). Conformance runs use rule-free injectors —
	// partitions via Partition/Heal only — so both planes observe
	// identical schedules; probability rules would advance per-plane
	// match counters differently (live consults on dial/read/write,
	// the DES on get/set).
	Faults *faultinject.Injector
	// Events, when set, receives the transition timeline on the
	// harness's virtual clock.
	Events *telemetry.EventLog
	// UnsafeEarlyPowerOff is a conformance-test hook: shrink
	// transitions power dying servers off at the ownership flip
	// instead of after the TTL window — the exact premature power-off
	// bug Section IV's safety argument rules out. It exists so the
	// checker's probes and shrinker can be validated against a known
	// violation; production configurations never set it.
	UnsafeEarlyPowerOff bool
	// HotReplicas enables hot-key replication: keys promoted via
	// Promote resolve at this replica depth over seeded rings sharing
	// the primary placement, mirroring cluster.Config.HotReplicas
	// (0 or 1 disables).
	HotReplicas int
	// UnsafeSkipFanout is a conformance-test hook: Set writes the
	// primary owner only, leaving a hot key's replicas holding stale
	// copies — the write-fan-out bug the replica invariant forbids.
	// Production configurations never set it.
	UnsafeSkipFanout bool
	// Backend selects the placement geometry (empty = Algorithm 1),
	// mirroring cluster.Config.Backend so both planes route identically
	// under every backend.
	Backend core.BackendKind
}

// NewHarness builds a harness with the initial prefix powered on.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("sim: harness needs at least 1 server, got %d", cfg.Servers)
	}
	if cfg.InitialActive < 1 || cfg.InitialActive > cfg.Servers {
		return nil, fmt.Errorf("sim: harness InitialActive %d out of range 1..%d", cfg.InitialActive, cfg.Servers)
	}
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("sim: harness TTL must be positive")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("sim: harness DB resolver required")
	}
	hotRings := cfg.HotReplicas
	if hotRings < 1 {
		hotRings = 1
	}
	// Ring 0 of a Replicated is the unseeded primary placement, so with
	// HotReplicas disabled this routes exactly like the bare backend.
	replicated, err := core.NewReplicatedBackend(cfg.Backend, cfg.Servers, hotRings)
	if err != nil {
		return nil, err
	}
	h := &Harness{
		cfg:        cfg,
		eng:        NewEngine(),
		replicated: replicated,
		hotRings:   hotRings,
		events:     cfg.Events,
		active:     cfg.InitialActive,
		hot:        make(map[string]struct{}),
	}
	for i := 0; i < cfg.Servers; i++ {
		// Unlimited capacity and no per-item TTL: conformance runs
		// keep eviction out of the picture so the oracle's residency
		// mirror is exact.
		node, err := newCacheNode(h.eng, i, 0, 0, cfg.DigestParams, 1)
		if err != nil {
			return nil, err
		}
		h.nodes = append(h.nodes, node)
	}
	for i := 0; i < cfg.InitialActive; i++ {
		h.nodes[i].state = nodeOn
		h.events.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: i})
	}
	return h, nil
}

// Now returns the harness's virtual time.
func (h *Harness) Now() time.Duration { return h.eng.Now() }

// Active returns the current active-prefix size.
func (h *Harness) Active() int { return h.active }

// Servers returns the provisioning-order length.
func (h *Harness) Servers() int { return len(h.nodes) }

// NodeOn reports whether server i is powered.
func (h *Harness) NodeOn(i int) bool { return h.nodes[i].state == nodeOn }

// InTransition reports whether a smooth-transition window is open, and
// its deadline.
func (h *Harness) InTransition() (open bool, deadline time.Duration) {
	if h.trans == nil {
		return false, 0
	}
	return true, h.trans.deadline
}

// Draining reports that an open transition window is a scale-down: the
// dying servers are still serving hot data for on-demand migration, so
// issuing another scale-down now would cut that short. Provisioning
// policies consult this to gate actuation (provision.State.Draining).
func (h *Harness) Draining() bool {
	return h.trans != nil && h.trans.toN < h.trans.fromN
}

// ResidentKeys returns server i's cached keys, sorted.
func (h *Harness) ResidentKeys(i int) []string {
	keys := h.nodes[i].store.Keys()
	sort.Strings(keys)
	return keys
}

// DigestContains probes server i's live counting filter.
func (h *Harness) DigestContains(i int, key string) bool {
	return h.nodes[i].digest.Contains(key)
}

// reachable reports whether an operation against server i would
// succeed: powered on and not partitioned away.
func (h *Harness) reachable(i int) bool {
	if h.nodes[i].state != nodeOn {
		return false
	}
	if h.cfg.Faults != nil && h.cfg.Faults.Partitioned(i) {
		return false
	}
	return true
}

// Get runs Algorithm 2 for one key, mirroring webtier.Frontend.fetch
// in three phases: probe the key's distinct current owners (primary
// first — the live tier orders by load, but the replica invariant
// makes the answer order-independent); during a transition consult
// each ring's old-owner digest and migrate on demand; otherwise fall
// back to the backing store and write through to every owner. ok is
// false only when the backing store does not know the key.
func (h *Harness) Get(key string) (value []byte, src RequestSource, ok bool) {
	owners := h.owners(key)
	for _, o := range owners {
		if h.reachable(o) {
			if v, hit := h.nodes[o].store.Get(key); hit {
				return v, SourceHit, true
			}
		}
	}
	// Digest consult (Algorithm 2 lines 6-8), ring by ring. The
	// snapshot digests are immutable; a consult against an unreachable
	// old owner degrades to the database, exactly like the live tier's
	// error path.
	if tr := h.trans; tr != nil {
		consulted := make([]int, 0, 4)
		rings := h.ringsFor(key)
		for ring := 0; ring < rings; ring++ {
			owner := h.replicated.OwnerOnRing(key, ring, h.active)
			old := h.replicated.OwnerOnRing(key, ring, tr.fromN)
			if old == owner || tr.digests[old] == nil || !tr.digests[old].Contains(key) {
				continue
			}
			if containsNode(consulted, old) {
				continue
			}
			consulted = append(consulted, old)
			if !h.reachable(old) {
				continue
			}
			if v, hit := h.nodes[old].store.Get(key); hit {
				h.events.Record(telemetry.Event{Kind: telemetry.EventMigrationHit, Node: old})
				// Amortized migration: install on the ring's new owner so
				// the next request hits there. An unreachable new owner
				// leaves the key un-migrated, never wrong.
				if h.reachable(owner) {
					h.nodes[owner].store.Set(key, v, 0)
				}
				return v, SourceMigrated, true
			}
			h.events.Record(telemetry.Event{Kind: telemetry.EventMigrationMiss, Node: old})
		}
	}
	data, found := h.cfg.DB(key)
	if !found {
		return nil, SourceDB, false
	}
	h.fanoutWrite(key, data)
	return data, SourceDB, true
}

// Set installs a new value write-through, mirroring webtier.Update
// (whole objects): every distinct owner gets the value; an unreachable
// owner stays cold, not wrong — but a hot key that missed a copy is
// demoted, because the replica left behind may hold the previous
// value. The backing store is the caller's (the oracle updates its
// versioned map before calling). With the UnsafeSkipFanout hook the
// write lands on the primary only — the fan-out bug the write-fanout
// probe exists to catch.
func (h *Harness) Set(key string, value []byte) {
	if h.cfg.UnsafeSkipFanout {
		owner := h.replicated.OwnerOnRing(key, 0, h.active)
		if h.reachable(owner) {
			h.nodes[owner].store.Set(key, value, 0)
		}
		return
	}
	h.fanoutWrite(key, value)
}

// fanoutWrite stores one key on every distinct owner, mirroring
// webtier storeAll including its auto-demote rule: any failed copy of
// a multi-owner write demotes the key (the stale replica must not keep
// serving as a hot peer).
func (h *Harness) fanoutWrite(key string, value []byte) {
	owners := h.owners(key)
	failed := false
	for _, o := range owners {
		if h.reachable(o) {
			h.nodes[o].store.Set(key, value, 0)
		} else {
			failed = true
		}
	}
	if failed && len(owners) > 1 {
		h.Demote(key)
	}
}

func containsNode(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Crash powers a server off outside any provisioning decision, losing
// its in-memory data — the DES mirror of killing a LocalNode.
func (h *Harness) Crash(server int) {
	if server < 0 || server >= len(h.nodes) {
		return
	}
	if h.nodes[server].state == nodeOn {
		h.nodes[server].powerOff()
	}
}

// SetActive executes one provisioning decision, mirroring
// cluster.Coordinator.SetActive: finalize any pending window first,
// power on growth, snapshot every reachable relocation source's digest,
// flip routing, and arm the TTL deadline (fired by AdvanceClock).
func (h *Harness) SetActive(n int) error {
	if n < 1 || n > len(h.nodes) {
		return fmt.Errorf("sim: harness target %d out of range 1..%d", n, len(h.nodes))
	}
	if n == h.active && h.trans == nil {
		return nil
	}
	h.finalizeTransition()
	from := h.active
	if n == from {
		return nil
	}
	if n > from {
		for i := from; i < n; i++ {
			h.nodes[i].state = nodeOn
			h.events.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: i})
		}
	}
	digests := make([]*bloom.Filter, len(h.nodes))
	lo, hi := n, from // shrink: the dying nodes [n, from) hold the re-mapped keys
	if n > from {
		lo, hi = 0, from // growth: every old-prefix node may hold re-mapped keys
	}
	for i := lo; i < hi; i++ {
		if !h.reachable(i) {
			// The live coordinator's FetchDigest fails here and the
			// node's keys degrade to the database path; mirror that.
			continue
		}
		digests[i] = h.nodes[i].snapshotDigest()
		h.events.Record(telemetry.Event{Kind: telemetry.EventDigestBuild, Node: i})
	}
	h.events.Record(telemetry.Event{Kind: telemetry.EventDigestBroadcast, Node: -1})
	h.trans = &transition{fromN: from, toN: n, digests: digests, deadline: h.eng.Now() + h.cfg.TTL}
	h.active = n
	h.events.Record(telemetry.Event{Kind: telemetry.EventOwnershipFlip, Node: -1, From: from, To: n})
	if h.cfg.Faults != nil {
		h.cfg.Faults.TransitionStarted()
	}
	h.hotSyncAfterFlip()
	if h.cfg.UnsafeEarlyPowerOff && n < from {
		// Conformance-test hook: the premature power-off bug.
		h.finalizeTransition()
	}
	return nil
}

// AdvanceClock moves virtual time forward, firing the transition
// deadline if the skip crosses it. This is the DES mirror of the live
// plane's virtual timer: expiry happens when the schedule advances the
// clock, never behind the explorer's back.
func (h *Harness) AdvanceClock(d time.Duration) {
	if d <= 0 {
		return
	}
	h.eng.Run(h.eng.Now() + d)
	if h.trans != nil && h.eng.Now() >= h.trans.deadline {
		h.finalizeTransition()
	}
}

// finalizeTransition closes the window: dying servers power off (the
// Section IV safety point) and the broadcast digests are discarded.
func (h *Harness) finalizeTransition() {
	if h.trans == nil {
		return
	}
	tr := h.trans
	h.trans = nil
	if tr.toN < tr.fromN {
		for i := tr.toN; i < tr.fromN; i++ {
			if h.nodes[i].state == nodeOn {
				h.nodes[i].powerOff()
			}
			h.events.Record(telemetry.Event{Kind: telemetry.EventPowerOff, Node: i})
		}
	}
	h.events.Record(telemetry.Event{Kind: telemetry.EventTTLExpiry, Node: -1, From: tr.fromN, To: tr.toN})
}
