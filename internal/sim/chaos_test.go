package sim

import (
	"testing"

	"proteus/internal/faultinject"
)

// chaosConfig mirrors the live-plane chaos scenario in the DES: ~1% of
// cache lookups fail and one low-index server (active at every plan
// level) crashes at the first smooth transition, under r=2 replication.
func chaosConfig(t testing.TB, seed int64) (Config, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.New(seed,
		faultinject.Rule{Server: faultinject.AnyServer, Op: faultinject.OpGet, Kind: faultinject.KindError, P: 0.01},
		faultinject.Rule{Server: 2, Op: faultinject.OpTransition, Kind: faultinject.KindCrash, At: 1},
	)
	cfg := testConfig(t, ScenarioProteus)
	cfg.Replicas = 2
	cfg.Faults = inj
	return cfg, inj
}

// The DES plane absorbs the same chaos schedule the TCP plane runs: the
// run completes, replicas serve through the crash, and the injected
// faults show up as extra database load rather than failures.
func TestChaosCrashMidTransitionDES(t *testing.T) {
	cfg, inj := chaosConfig(t, 42)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	crashed := false
	for _, ev := range inj.Events() {
		if ev.Kind == faultinject.KindCrash && ev.Server == 2 {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("crash rule never fired")
	}
	if res.Stats.Requests == 0 || res.Stats.CacheHits == 0 {
		t.Fatalf("degenerate run: %+v", res.Stats)
	}
	if res.Stats.ReplicaHits == 0 {
		t.Fatal("no replica hits; the crash was not absorbed through the rings")
	}

	// The injected get errors and the crash cost cache coverage, which
	// surfaces as database queries — not as lost requests.
	clean := testConfig(t, ScenarioProteus)
	clean.Replicas = 2
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DBQueries <= cleanRes.Stats.DBQueries {
		t.Fatalf("chaos run did not raise DB load: %d vs %d",
			res.Stats.DBQueries, cleanRes.Stats.DBQueries)
	}
}

// Same seed, same virtual-time fault schedule, same measurements.
func TestChaosDeterministicDES(t *testing.T) {
	if testing.Short() {
		t.Skip("double chaos run")
	}
	run := func() (Stats, []faultinject.Event) {
		cfg, inj := chaosConfig(t, 7)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats, inj.Events()
	}
	s1, ev1 := run()
	s2, ev2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across identical seeds:\n%+v\n%+v", s1, s2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("fault schedules diverged: %d vs %d events", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("fault schedule diverged at %d: %v vs %v", i, ev1[i], ev2[i])
		}
	}
}
