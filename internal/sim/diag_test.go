package sim

import (
	"testing"
	"time"
)

// TestDiagnosticsPrint surfaces per-scenario numbers for calibration;
// run with -v to inspect.
func TestDiagnosticsPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostics only")
	}
	for _, sc := range Scenarios() {
		res := runScenario(t, sc)
		var worst time.Duration
		for _, q := range res.Latency.Quantiles(0.999) {
			if q > worst {
				worst = q
			}
		}
		total := res.Latency.Total()
		t.Logf("%-10s req=%-7d hit=%.3f worstP999=%-14v meanP999=%-14v dbQ=%-6d mig=%-5d fp=%-4d trans=%d cacheWh=%.1f totalWh=%.1f",
			sc, res.Stats.Requests, res.Stats.HitRatio(), worst,
			total.Quantile(0.999), res.Stats.DBQueries,
			res.Stats.MigratedOnDemand, res.Stats.DigestFalsePos, res.Stats.Transitions,
			res.Meter.EnergyWh("cache"), res.Meter.TotalEnergyWh())
	}
}
