package sim

import (
	"sort"

	"proteus/internal/telemetry"
)

// Hot-key replication, DES side: the operation-for-operation mirror of
// cluster.Coordinator's hot set (internal/cluster/hotset.go). The
// conformance oracle drives Promote/Demote through explicit schedule
// verbs so both planes change hot state at identical points; lockstep
// equivalence depends on this file and the coordinator agreeing on
// every reachability check and every copy installed.

// ringsFor returns the replica depth key resolves at, mirroring
// Coordinator.RingsFor (the harness's base depth is always 1).
func (h *Harness) ringsFor(key string) int {
	if h.hotRings <= 1 {
		return 1
	}
	if _, ok := h.hot[key]; ok {
		return h.hotRings
	}
	return 1
}

// owners returns the key's distinct current owners at its replica
// depth, primary first.
func (h *Harness) owners(key string) []int {
	return h.replicated.DistinctOwnersN(key, h.active, h.ringsFor(key))
}

// IsHot reports whether the key is in the hot set.
func (h *Harness) IsHot(key string) bool {
	_, ok := h.hot[key]
	return ok
}

// HotKeys returns the hot set, sorted.
func (h *Harness) HotKeys() []string {
	keys := make([]string, 0, len(h.hot))
	for k := range h.hot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NodeValue reads server i's stored value for key directly (probe
// support; no routing, no migration).
func (h *Harness) NodeValue(i int, key string) ([]byte, bool) {
	return h.nodes[i].store.Get(key)
}

// Promote moves a key into the hot set, mirroring Coordinator.Promote:
// every full-depth owner must be reachable (the live plane pings each
// before touching anything — promotion is atomic or a no-op), then the
// primary's state is installed on, or deleted from, every non-primary
// owner, overwriting stale copies from earlier hot eras. Reports
// whether the key is hot on return.
func (h *Harness) Promote(key string) bool {
	if h.hotRings <= 1 {
		return false
	}
	if _, ok := h.hot[key]; ok {
		return true
	}
	if !h.syncHot(key) {
		return false
	}
	h.hot[key] = struct{}{}
	h.events.Record(telemetry.Event{Kind: telemetry.EventHotPromote, Node: h.replicated.OwnerOnRing(key, 0, h.active)})
	return true
}

// Demote removes a key from the hot set, leaving replica copies in
// place (cold reads probe the primary only). Reports whether the key
// was hot.
func (h *Harness) Demote(key string) bool {
	if _, ok := h.hot[key]; !ok {
		return false
	}
	delete(h.hot, key)
	h.events.Record(telemetry.Event{Kind: telemetry.EventHotDemote, Node: h.replicated.OwnerOnRing(key, 0, h.active)})
	return true
}

// syncHot establishes the replica invariant for one key, mirroring
// Coordinator.syncReplicas: all full-depth owners reachable, then the
// primary's state copied onto every non-primary owner.
func (h *Harness) syncHot(key string) bool {
	owners := h.replicated.DistinctOwnersN(key, h.active, h.hotRings)
	for _, o := range owners {
		if !h.reachable(o) {
			return false
		}
	}
	v, hit := h.nodes[owners[0]].store.Get(key)
	for _, o := range owners[1:] {
		if hit {
			h.nodes[o].store.Set(key, v, 0)
		} else {
			h.nodes[o].store.Delete(key)
		}
	}
	return true
}

// hotSyncAfterFlip mirrors Coordinator.hotSyncAfterFlip: after an
// ownership flip, every hot key is re-synced onto its (possibly
// changed) owner set; keys with an unreachable owner are demoted.
func (h *Harness) hotSyncAfterFlip() {
	if h.hotRings <= 1 || len(h.hot) == 0 {
		return
	}
	synced := false
	for _, key := range h.HotKeys() {
		if h.syncHot(key) {
			synced = true
		} else {
			h.Demote(key)
		}
	}
	if synced {
		h.events.Record(telemetry.Event{Kind: telemetry.EventHotSync, Node: -1})
	}
}
