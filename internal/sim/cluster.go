package sim

import (
	"math/rand"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/database"
	"proteus/internal/wiki"
)

// serviceQueue models a component with c parallel executors and FCFS
// queueing in virtual time: a request arriving at `now` starts when the
// earliest executor frees up and holds it for `service`.
type serviceQueue struct {
	freeAt []time.Duration
	busy   time.Duration // total service time executed (for utilisation)
}

func newServiceQueue(concurrency int) *serviceQueue {
	return &serviceQueue{freeAt: make([]time.Duration, concurrency)}
}

// schedule books a job and returns its completion time.
func (q *serviceQueue) schedule(now, service time.Duration) time.Duration {
	best := 0
	for i, f := range q.freeAt {
		if f < q.freeAt[best] {
			best = i
		}
	}
	start := now
	if q.freeAt[best] > start {
		start = q.freeAt[best]
	}
	done := start + service
	q.freeAt[best] = done
	q.busy += service
	return done
}

// takeBusy returns the service time accumulated since the last call —
// the numerator of a utilisation sample.
func (q *serviceQueue) takeBusy() time.Duration {
	b := q.busy
	q.busy = 0
	return b
}

// nodeState is a cache server's power state.
type nodeState int

const (
	nodeOff nodeState = iota
	nodeBooting
	nodeOn
)

// cacheNode is one simulated cache server: a real cache.Cache (LRU +
// TTL under the virtual clock) with the paper's counting Bloom filter
// digest wired to item link/unlink, plus a service-time model.
type cacheNode struct {
	id     int
	store  *cache.Cache
	digest *bloom.CountingFilter
	queue  *serviceQueue
	state  nodeState
}

func newCacheNode(eng *Engine, id int, capacityBytes int64, ttl time.Duration, digestParams bloom.Params, concurrency int) (*cacheNode, error) {
	digest, err := bloom.NewCounting(digestParams)
	if err != nil {
		return nil, err
	}
	n := &cacheNode{id: id, digest: digest, queue: newServiceQueue(concurrency), state: nodeOff}
	n.store = cache.New(cache.Config{
		MaxBytes:   capacityBytes,
		DefaultTTL: ttl,
		Clock:      eng.Clock(),
		OnLink:     func(key string) { n.digest.Insert(key) },
		OnUnlink:   func(key string) { n.digest.Delete(key) },
		// The DES is single-threaded, so sharding buys nothing; one
		// shard keeps the paper's exact global-LRU eviction order in
		// every replay.
		Shards: 1,
	})
	return n, nil
}

// powerOff drops the node's in-memory data — the paper's "if we turn
// off the Memcached servers brutally, we will lose a considerable
// amount of in-cache data".
func (n *cacheNode) powerOff() {
	n.store.FlushAll()
	n.state = nodeOff
}

// snapshotDigest is the transition-start broadcast.
func (n *cacheNode) snapshotDigest() *bloom.Filter {
	return n.digest.Snapshot()
}

// dbModel is the database tier in virtual time: per-shard bounded
// concurrency with FCFS queueing, reusing the real tier's latency
// model. Saturating these queues is what turns a re-mapping storm into
// the paper's Fig. 9 delay spike.
type dbModel struct {
	corpus  *wiki.Corpus
	shards  []*serviceQueue
	latency database.LatencyModel
	rng     *rand.Rand
	queries uint64
}

func newDBModel(corpus *wiki.Corpus, shards, concurrencyPerShard int, latency database.LatencyModel, seed int64) *dbModel {
	m := &dbModel{
		corpus:  corpus,
		shards:  make([]*serviceQueue, shards),
		latency: latency,
		rng:     rand.New(rand.NewSource(seed)),
	}
	for i := range m.shards {
		m.shards[i] = newServiceQueue(concurrencyPerShard)
	}
	return m
}

// fetch books a query for the page and returns its completion time.
func (m *dbModel) fetch(now time.Duration, pageIndex int) time.Duration {
	shard := m.shards[pageIndex%len(m.shards)]
	service := m.latency.ServiceTime(m.corpus.Size(pageIndex), m.rng)
	m.queries++
	return shard.schedule(now, service)
}
