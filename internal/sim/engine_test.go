package sim

import (
	"testing"
	"time"

	"proteus/internal/workload"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3*time.Second, func() { order = append(order, 3) })
	e.At(1*time.Second, func() { order = append(order, 1) })
	e.At(2*time.Second, func() { order = append(order, 2) })
	e.Run(time.Minute)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != time.Minute {
		t.Fatalf("Now = %v, want horizon", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	e.Run(time.Minute)
	for i, got := range order {
		if got != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []time.Duration
	e.At(time.Second, func() {
		e.After(2*time.Second, func() { at = append(at, e.Now()) })
	})
	e.Run(time.Minute)
	if len(at) != 1 || at[0] != 3*time.Second {
		t.Fatalf("nested event at %v", at)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	fired := time.Duration(-1)
	e.At(10*time.Second, func() {
		e.At(time.Second, func() { fired = e.Now() }) // in the past
	})
	e.Run(time.Minute)
	if fired != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamp to 10s", fired)
	}
}

func TestEngineHorizonStopsEvents(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(2*time.Hour, func() { ran = true })
	e.Run(time.Hour)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	if e.Now() != time.Hour {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineClock(t *testing.T) {
	e := NewEngine()
	clock := e.Clock()
	t0 := clock()
	e.At(90*time.Second, func() {})
	e.Run(2 * time.Minute)
	if got := clock().Sub(t0); got != 2*time.Minute {
		t.Fatalf("clock advanced %v, want 2m", got)
	}
}

func TestServiceQueueSingleServer(t *testing.T) {
	q := newServiceQueue(1)
	// Three jobs of 10ms arriving together: completions at 10/20/30ms.
	for i, want := range []time.Duration{10, 20, 30} {
		if got := q.schedule(0, 10*time.Millisecond); got != want*time.Millisecond {
			t.Fatalf("job %d done at %v, want %vms", i, got, want)
		}
	}
	// A job arriving after the backlog drains starts immediately.
	if got := q.schedule(time.Second, 5*time.Millisecond); got != time.Second+5*time.Millisecond {
		t.Fatalf("idle-arrival done at %v", got)
	}
	if got := q.takeBusy(); got != 35*time.Millisecond {
		t.Fatalf("takeBusy = %v, want 35ms", got)
	}
	if got := q.takeBusy(); got != 0 {
		t.Fatalf("second takeBusy = %v, want 0", got)
	}
}

func TestServiceQueueParallelism(t *testing.T) {
	q := newServiceQueue(2)
	// Four 10ms jobs on 2 executors: done at 10,10,20,20.
	done := []time.Duration{
		q.schedule(0, 10*time.Millisecond),
		q.schedule(0, 10*time.Millisecond),
		q.schedule(0, 10*time.Millisecond),
		q.schedule(0, 10*time.Millisecond),
	}
	want := []time.Duration{10, 10, 20, 20}
	for i := range done {
		if done[i] != want[i]*time.Millisecond {
			t.Fatalf("done = %v", done)
		}
	}
}

func TestPlanProvisioningShape(t *testing.T) {
	rate := workload.DefaultDiurnal(200, 24*time.Hour)
	plan := PlanProvisioning(rate, 24*time.Hour, 30*time.Minute, rate.Mean/7.5, 1, 10)
	if len(plan) != 48 {
		t.Fatalf("plan has %d slots, want 48", len(plan))
	}
	min, max := plan[0], plan[0]
	for _, n := range plan {
		if n < 1 || n > 10 {
			t.Fatalf("plan value %d out of range", n)
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max != 10 {
		t.Fatalf("plan never reaches the full fleet: max=%d", max)
	}
	if min > 6 {
		t.Fatalf("plan never scales down: min=%d", min)
	}
	// The peak slot must be where the rate peaks (mid-period).
	if plan[24] < plan[0] {
		t.Fatalf("plan[24]=%d < plan[0]=%d; peak misplaced", plan[24], plan[0])
	}
}
