package sim

import (
	"testing"
	"time"

	"proteus/internal/cluster"
)

// Controller mode: the realized plan must track the diurnal curve and
// stay within bounds, and the run must stay deterministic.
func TestControllerModeTracksLoad(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	ctrl := cluster.NewController(cfg.CacheServers, cfg.PerServerCapacity)
	ctrl.Bound = 300 * time.Millisecond
	ctrl.Reference = 200 * time.Millisecond
	cfg.Controller = ctrl
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slots := int((cfg.Duration + cfg.SlotWidth - 1) / cfg.SlotWidth)
	if len(res.Plan) != slots {
		t.Fatalf("realized plan has %d slots, want %d", len(res.Plan), slots)
	}
	min, max := res.Plan[0], res.Plan[0]
	for _, n := range res.Plan {
		if n < 1 || n > cfg.CacheServers {
			t.Fatalf("plan value %d out of range", n)
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max == min {
		t.Fatalf("controller never changed the fleet: plan=%v", res.Plan)
	}
	// Peak-half slots should average more servers than valley-half.
	half := slots / 2
	sum := func(s []int) int {
		total := 0
		for _, v := range s {
			total += v
		}
		return total
	}
	valley := sum(res.Plan[:half/2]) + sum(res.Plan[slots-half/2:])
	peak := sum(res.Plan[half-half/2 : half+half/2])
	if peak <= valley {
		t.Fatalf("controller plan does not track the curve: peak=%d valley=%d plan=%v",
			peak, valley, res.Plan)
	}
}

func TestControllerModeDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(t, ScenarioProteus)
		ctrl := cluster.NewController(cfg.CacheServers, cfg.PerServerCapacity)
		ctrl.Bound = 300 * time.Millisecond
		ctrl.Reference = 200 * time.Millisecond
		cfg.Controller = ctrl
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("controller runs not deterministic:\n%+v\n%+v", a.Stats, b.Stats)
	}
	for i := range a.Plan {
		if a.Plan[i] != b.Plan[i] {
			t.Fatalf("realized plans differ at slot %d", i)
		}
	}
}

// Digest ablation flag: transitions happen but no migrations do.
func TestDisableDigest(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	cfg.DisableDigest = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Transitions == 0 {
		t.Fatal("no transitions")
	}
	if res.Stats.MigratedOnDemand != 0 {
		t.Fatalf("digestless run migrated %d items", res.Stats.MigratedOnDemand)
	}
	// It must hit the database more than the full Proteus run.
	full, err := Run(testConfig(t, ScenarioProteus))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DBQueries <= full.Stats.DBQueries {
		t.Fatalf("digestless db queries %d not above full %d",
			res.Stats.DBQueries, full.Stats.DBQueries)
	}
}

// clusterControllerForTest builds the standard test controller.
func clusterControllerForTest(cfg Config) *cluster.Controller {
	ctrl := cluster.NewController(cfg.CacheServers, cfg.PerServerCapacity)
	ctrl.Bound = 300 * time.Millisecond
	ctrl.Reference = 200 * time.Millisecond
	return ctrl
}
