package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/database"
	"proteus/internal/faultinject"
	"proteus/internal/metrics"
	"proteus/internal/power"
	"proteus/internal/provision"
	"proteus/internal/telemetry"
	"proteus/internal/wiki"
	"proteus/internal/workload"
)

// Scenario selects the load-distribution + provisioning behaviour
// combination of the paper's Table II.
type Scenario int

const (
	// ScenarioStatic keeps every server on and routes by hash-modulo.
	ScenarioStatic Scenario = iota + 1
	// ScenarioNaive provisions dynamically and routes by hash-modulo.
	ScenarioNaive
	// ScenarioConsistent provisions dynamically and routes with random
	// virtual-node consistent hashing (n^2/2 nodes, as in Fig. 9).
	ScenarioConsistent
	// ScenarioProteus provisions dynamically with the paper's placement
	// algorithm and smooth digest-driven transitions.
	ScenarioProteus
)

func (s Scenario) String() string {
	switch s {
	case ScenarioStatic:
		return "Static"
	case ScenarioNaive:
		return "Naive"
	case ScenarioConsistent:
		return "Consistent"
	case ScenarioProteus:
		return "Proteus"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Scenarios lists all four in the paper's presentation order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioStatic, ScenarioNaive, ScenarioConsistent, ScenarioProteus}
}

// Config parametrises one simulation run. NewConfig supplies the
// paper-flavoured defaults; zero fields are filled in by Run.
type Config struct {
	Scenario Scenario

	// Cluster shape (paper: 10 cache, 10 web, 10 RBE, 7 DB shards).
	CacheServers int
	WebServers   int
	RBEServers   int
	DBShards     int

	// DBConcurrency bounds in-flight queries per shard.
	DBConcurrency int
	// DBLatency models per-query service time.
	DBLatency database.LatencyModel

	// Corpus is the page population (required).
	Corpus *wiki.Corpus
	// CachePagesPerServer sizes each cache in pages.
	CachePagesPerServer int
	// TTL is the hot-data window and the smooth-transition deadline.
	TTL time.Duration
	// BootDelay is the power-on time of a cache server.
	BootDelay time.Duration

	// SlotWidth is the provisioning slot (paper: 30 min).
	SlotWidth time.Duration
	// Duration is the measured experiment length.
	Duration time.Duration
	// Warmup runs traffic before measurement starts (caches fill).
	Warmup time.Duration
	// LatencySlots sets Fig. 9 resolution (paper: 480).
	LatencySlots int

	// Rate is the offered-load curve; Users materialises RBE browsers.
	Rate  workload.Diurnal
	Users *workload.UserPool
	// Trace, when non-empty, replaces the closed-loop RBE population
	// with open-loop replay of these time-ordered events (the paper's
	// trace-driven experiments). Timestamps are absolute over
	// Warmup+Duration: events before Warmup warm the caches without
	// being measured. Rate is still used to derive the provisioning
	// plan unless Plan is given.
	Trace []workload.Event
	// Plan is the per-slot active server count, shared by all dynamic
	// scenarios (nil derives it with PlanProvisioning).
	Plan []int
	// PerServerCapacity (req/s) is used when deriving Plan.
	PerServerCapacity float64
	// Policy, when non-nil, replaces the static Plan with a closed
	// loop: at every slot boundary the next fleet size is decided from
	// the ending slot's measured high-percentile delay and request
	// rate. The realised sizes are reported in Result.Plan. Scale-downs
	// decided while a previous window is still draining are deferred to
	// the next slot (Stats.ScaleDownsDeferred counts them).
	Policy provision.Policy
	// Controller is the legacy closed-loop knob, adapted onto Policy
	// when Policy is nil.
	//
	// Deprecated: set Policy.
	Controller *cluster.Controller
	// ControllerQuantile is the delay percentile fed to the
	// controller (default 0.999).
	ControllerQuantile float64
	// DisableDigest ablates Section IV: transitions still re-route
	// with the Proteus placement, but the web tier has no digests, so
	// every re-mapped key goes straight to the database. Used by the
	// ablation study to separate the placement's contribution from
	// the digest's.
	DisableDigest bool
	// Replicas enables Section III-E replication for the Proteus
	// scenario: r rings share the placement, reads fall through the
	// rings, writes store on every distinct owner (0 or 1 disables).
	Replicas int
	// Backend selects the placement geometry for the Proteus scenario
	// (empty = Algorithm 1); see core.BackendKind.
	Backend core.BackendKind
	// CrashAt, when positive, powers off CrashServer at that offset
	// into the measured run without any transition — an unplanned
	// failure. With replication, surviving copies absorb it.
	CrashAt     time.Duration
	CrashServer int
	// Faults, when non-nil, applies the same rule-based fault schedule
	// the live TCP plane uses: per-operation OpGet/OpSet decisions are
	// consulted in virtual time (errors degrade like a crashed node,
	// delays stretch service time), and OpTransition rules fire from
	// beginTransition so crash/partition ordinals line up across both
	// execution planes.
	Faults *faultinject.Injector

	// Telemetry enables the deterministic tracer and transition-event
	// log: Result.Tracer and Result.Events are populated, driven by the
	// engine's virtual clock and seeded from Seed, so two runs with the
	// same config produce byte-identical trace and event JSON.
	Telemetry bool
	// TraceCapacity bounds the span ring buffer (0 = default).
	TraceCapacity int
	// EventCapacity bounds the event ring buffer (0 = default).
	EventCapacity int

	// DigestParams sizes the per-server counting Bloom filter.
	DigestParams bloom.Params

	// Service model.
	WebOverhead      time.Duration
	CacheRTT         time.Duration
	CacheService     time.Duration
	CacheConcurrency int
	// NominalResponse converts the rate curve into a closed-loop user
	// count (rate = users / (think + response)).
	NominalResponse time.Duration

	// PowerModel is the per-server draw; PowerEvery the PDU sampling
	// period.
	PowerModel power.Model
	PowerEvery time.Duration

	Seed int64
}

// NewConfig returns a configuration mirroring the paper's testbed at a
// laptop-friendly scale: a compressed "day" whose diurnal period equals
// Duration, a 200k-page corpus slice, and a mean offered load of
// meanRPS.
func NewConfig(scenario Scenario, corpus *wiki.Corpus, duration time.Duration, meanRPS float64) Config {
	// Size the database tier relative to the offered load the way a
	// production deployment is sized: ample headroom for the normal
	// cache-miss stream (~5-20% of traffic) but far below the full
	// request rate. A transition that floods the database with
	// re-mapped keys then saturates it — the paper's spike mechanism.
	// With one connection per shard and mild jitter (mean factor 0.75),
	// capacity = shards/(0.75*base) ≈ 0.5*meanRPS.
	dbBase := time.Duration(18.7 * float64(time.Second) / meanRPS)
	return Config{
		Scenario:      scenario,
		CacheServers:  10,
		WebServers:    10,
		RBEServers:    10,
		DBShards:      7,
		DBConcurrency: 1,
		DBLatency: database.LatencyModel{
			Base:       dbBase,
			PerKB:      dbBase / 200,
			JitterMean: 0.5,
		},
		Corpus:              corpus,
		CachePagesPerServer: corpus.Pages() / 16,
		TTL:                 45 * time.Second,
		BootDelay:           10 * time.Second,
		SlotWidth:           duration / 48, // the paper's 48 30-min slots
		Duration:            duration,
		Warmup:              duration / 24,
		LatencySlots:        480,
		Rate:                workload.DefaultDiurnal(meanRPS, duration),
		PerServerCapacity:   meanRPS / 7.5,
		WebOverhead:         800 * time.Microsecond,
		CacheRTT:            300 * time.Microsecond,
		CacheService:        100 * time.Microsecond,
		CacheConcurrency:    8,
		NominalResponse:     20 * time.Millisecond,
		PowerModel:          power.DefaultServer,
		PowerEvery:          power.SampleInterval,
		Seed:                1,
	}
}

func (c *Config) fillDefaults() error {
	if c.Corpus == nil {
		return errors.New("sim: Corpus is required")
	}
	if c.Scenario < ScenarioStatic || c.Scenario > ScenarioProteus {
		return fmt.Errorf("sim: unknown scenario %d", int(c.Scenario))
	}
	if c.CacheServers < 1 || c.Duration <= 0 || c.SlotWidth <= 0 {
		return fmt.Errorf("sim: invalid shape (servers=%d duration=%v slot=%v)",
			c.CacheServers, c.Duration, c.SlotWidth)
	}
	if c.Rate.Mean <= 0 {
		return errors.New("sim: Rate.Mean must be positive")
	}
	if c.DigestParams == (bloom.Params{}) {
		// Size for the per-server page count with ~1e-4 rates (Sec IV-B).
		keys := c.CachePagesPerServer
		if keys < 1024 {
			keys = 1024
		}
		cfg, err := bloom.Optimize(keys, 4, 1e-4, 1e-4)
		if err != nil {
			return fmt.Errorf("sim: digest sizing: %w", err)
		}
		c.DigestParams = cfg.Params(bloom.Saturate)
	}
	if c.Users == nil {
		pool, err := workload.NewUserPool(workload.UserPoolConfig{Corpus: c.Corpus, Seed: c.Seed})
		if err != nil {
			return err
		}
		c.Users = pool
	}
	if c.Plan == nil {
		slots := int((c.Duration + c.SlotWidth - 1) / c.SlotWidth)
		if c.Scenario == ScenarioStatic {
			c.Plan = staticPlan(slots, c.CacheServers)
		} else {
			c.Plan = PlanProvisioning(c.Rate, c.Duration, c.SlotWidth, c.PerServerCapacity, 1, c.CacheServers)
		}
	}
	if c.LatencySlots < 1 {
		c.LatencySlots = 480
	}
	if c.CacheConcurrency < 1 {
		c.CacheConcurrency = 8
	}
	if c.DBConcurrency < 1 {
		c.DBConcurrency = 6
	}
	if c.DBShards < 1 {
		c.DBShards = 7
	}
	if c.DBLatency == (database.LatencyModel{}) {
		c.DBLatency = database.DefaultLatency
	}
	if c.PowerModel == (power.Model{}) {
		c.PowerModel = power.DefaultServer
	}
	if c.PowerEvery <= 0 {
		c.PowerEvery = power.SampleInterval
	}
	if c.NominalResponse <= 0 {
		c.NominalResponse = 20 * time.Millisecond
	}
	if c.ControllerQuantile <= 0 || c.ControllerQuantile > 1 {
		c.ControllerQuantile = 0.999
	}
	return nil
}

func staticPlan(slots, n int) []int {
	plan := make([]int, slots)
	for i := range plan {
		plan[i] = n
	}
	return plan
}

// PlanProvisioning derives the per-slot active server count from the
// offered-load curve, standing in for the paper's feedback loop (whose
// details the paper omits): each slot gets enough servers for its peak
// instantaneous rate at the given per-server capacity. The same plan is
// applied to every dynamic scenario, exactly as the paper applies one
// provisioning result to all four.
func PlanProvisioning(rate workload.Diurnal, duration, slotWidth time.Duration, perServerRPS float64, minServers, maxServers int) []int {
	slots := int((duration + slotWidth - 1) / slotWidth)
	plan := make([]int, slots)
	for s := range plan {
		peak := 0.0
		start := time.Duration(s) * slotWidth
		for i := 0; i <= 10; i++ {
			t := start + time.Duration(i)*slotWidth/10
			if r := rate.Rate(t); r > peak {
				peak = r
			}
		}
		n := int(math.Ceil(peak / perServerRPS))
		if n < minServers {
			n = minServers
		}
		if n > maxServers {
			n = maxServers
		}
		plan[s] = n
	}
	return plan
}

// Stats aggregates run-level counters.
type Stats struct {
	Requests         uint64
	CacheHits        uint64
	ReplicaHits      uint64 // of CacheHits, served by ring > 0
	CacheMisses      uint64
	DBQueries        uint64
	MigratedOnDemand uint64 // items pulled from the old owner (Alg. 2 line 7)
	DigestFalsePos   uint64 // digest said hot, old server missed
	DigestMisses     uint64 // cold or absent per digest -> straight to DB
	Transitions      int
	// ScaleDownsDeferred counts policy scale-downs held back because a
	// previous window was still draining (TTL-aware actuation gate).
	ScaleDownsDeferred uint64
	// MidDrainScaleDowns counts shrink transitions that began while a
	// drain was in progress. The gate makes this impossible for policy
	// runs; the harness asserts it stays zero.
	MidDrainScaleDowns uint64
}

// HitRatio returns cache hits over lookups at the new owner.
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// RequestSource classifies where a simulated request was served from.
type RequestSource int

const (
	// SourceHit is a cache hit on the (new) owner.
	SourceHit RequestSource = iota
	// SourceMigrated is an Algorithm 2 on-demand migration.
	SourceMigrated
	// SourceDB is a database fetch.
	SourceDB
	numSources
)

func (s RequestSource) String() string {
	switch s {
	case SourceHit:
		return "cache-hit"
	case SourceMigrated:
		return "migrated"
	case SourceDB:
		return "database"
	default:
		return fmt.Sprintf("RequestSource(%d)", int(s))
	}
}

// Result carries everything the figures need from one run.
type Result struct {
	Scenario Scenario
	Config   Config
	Plan     []int
	Latency  *metrics.LatencySeries
	Load     *metrics.LoadSeries
	Meter    *power.Meter
	Requests *workload.Counter
	Stats    Stats
	// BySource breaks measured response times down by where the
	// request was served from (spike composition analysis).
	BySource [3]*metrics.Histogram
	// ActivePerSlot records the routing-level active server count in
	// effect at each provisioning slot boundary.
	ActivePerSlot []int
	// Tracer and Events hold the run's deterministic spans and
	// transition timeline; nil unless Config.Telemetry was set.
	Tracer *telemetry.Tracer
	Events *telemetry.EventLog
}

// SourceLatency returns the measured latency histogram for one source.
func (r *Result) SourceLatency(s RequestSource) *metrics.Histogram {
	return r.BySource[s]
}
