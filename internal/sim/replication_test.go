package sim

import (
	"testing"
	"time"
)

func TestReplicatedRunServesFromReplicas(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	cfg.Replicas = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReplicaHits == 0 {
		t.Fatal("replicated run recorded no replica hits")
	}
	if hr := res.Stats.HitRatio(); hr < 0.6 {
		t.Fatalf("replicated hit ratio %.3f too low", hr)
	}
}

func TestUnreplicatedHasNoReplicaHits(t *testing.T) {
	res, err := Run(testConfig(t, ScenarioProteus))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReplicaHits != 0 {
		t.Fatalf("unreplicated run recorded %d replica hits", res.Stats.ReplicaHits)
	}
}

// A mid-run crash without replication produces a sustained database
// load increase; with replication the surviving copies absorb most of
// it.
func TestCrashAbsorbedByReplication(t *testing.T) {
	base := func() Config {
		cfg := testConfig(t, ScenarioProteus)
		cfg.CrashAt = cfg.Duration / 2
		cfg.CrashServer = 2 // low index: active at every plan level
		return cfg
	}
	single, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	cfgRep := base()
	cfgRep.Replicas = 2
	replicated, err := Run(cfgRep)
	if err != nil {
		t.Fatal(err)
	}
	noCrash, err := Run(testConfig(t, ScenarioProteus))
	if err != nil {
		t.Fatal(err)
	}

	if single.Stats.DBQueries <= noCrash.Stats.DBQueries {
		t.Fatalf("crash did not raise DB load: %d vs %d",
			single.Stats.DBQueries, noCrash.Stats.DBQueries)
	}
	crashCost := single.Stats.DBQueries - noCrash.Stats.DBQueries
	var repCost uint64
	if replicated.Stats.DBQueries > noCrash.Stats.DBQueries {
		repCost = replicated.Stats.DBQueries - noCrash.Stats.DBQueries
	}
	if repCost >= crashCost {
		t.Fatalf("replication did not absorb the crash: extra DB queries %d (r=2) vs %d (r=1)",
			repCost, crashCost)
	}
}

func TestCrashOnInactiveServerIsNoop(t *testing.T) {
	cfg := testConfig(t, ScenarioProteus)
	cfg.CrashAt = time.Second
	cfg.CrashServer = cfg.CacheServers - 1 // likely off at the valley start
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedDeterministic(t *testing.T) {
	run := func() Stats {
		cfg := testConfig(t, ScenarioProteus)
		cfg.Replicas = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replicated runs differ:\n%+v\n%+v", a, b)
	}
}
