package sim

import (
	"math/rand"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/core"
	"proteus/internal/faultinject"
	"proteus/internal/hashring"
	"proteus/internal/metrics"
	"proteus/internal/power"
	"proteus/internal/provision"
	"proteus/internal/telemetry"
	"proteus/internal/workload"
)

// Run executes one scenario and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.run()
}

// transition is the Proteus smooth-transition window (Section IV).
type transition struct {
	fromN    int
	toN      int
	digests  []*bloom.Filter // indexed by server id; nil where not snapshotted
	deadline time.Duration
}

type runner struct {
	cfg Config
	eng *Engine
	rng *rand.Rand

	nodes []*cacheNode
	db    *dbModel

	replicated *core.Replicated     // Proteus routing (any backend, Section III-E depth >= 1)
	consistent *hashring.Consistent // Consistent routing

	provisionedN int // plan level currently being executed
	routingN     int // active-prefix size used for routing
	trans        *transition
	provGen      int              // invalidates superseded boot/deadline callbacks
	policy       provision.Policy // closed-loop decisions; nil in plan mode

	users      []*simUser
	aliveUsers int
	nextUserID int

	tracer *telemetry.Tracer
	events *telemetry.EventLog

	latency    *metrics.LatencySeries
	bySource   [3]*metrics.Histogram
	load       *metrics.LoadSeries
	meter      *power.Meter
	reqCounter *workload.Counter
	stats      Stats
	activeLog  []int

	// controller mode: per-slot measurement window
	slotHist     metrics.Histogram
	slotRequests uint64
	realisedPlan []int

	// per-power-sample accounting
	webRequests uint64

	horizon time.Duration // Warmup + Duration
}

type simUser struct {
	user  *workload.User
	alive bool
}

func newRunner(cfg Config) (*runner, error) {
	eng := NewEngine()
	r := &runner{
		cfg:        cfg,
		eng:        eng,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		db:         newDBModel(cfg.Corpus, cfg.DBShards, cfg.DBConcurrency, cfg.DBLatency, cfg.Seed+101),
		latency:    metrics.NewLatencySeries(cfg.Duration, cfg.Duration/time.Duration(cfg.LatencySlots)),
		load:       metrics.NewLoadSeries(cfg.Duration, cfg.SlotWidth, cfg.CacheServers),
		meter:      power.NewMeter(),
		reqCounter: workload.HourlyCounts(cfg.Duration, cfg.Duration/24),
		horizon:    cfg.Warmup + cfg.Duration,
	}
	r.policy = cfg.Policy
	if r.policy == nil && cfg.Controller != nil {
		r.policy = cfg.Controller.Policy()
	}
	for i := range r.bySource {
		r.bySource[i] = &metrics.Histogram{}
	}
	if cfg.Telemetry {
		// Both stores run off the engine clock and the run seed, so the
		// whole observability stream is replay-deterministic.
		r.tracer = telemetry.NewTracer(telemetry.TracerConfig{
			Clock:    eng.Clock(),
			Seed:     cfg.Seed,
			Capacity: cfg.TraceCapacity,
		})
		r.events = telemetry.NewEventLog(telemetry.EventLogConfig{
			Clock:    eng.Now,
			Capacity: cfg.EventCapacity,
		})
	}
	if cfg.Faults != nil {
		// Crash hooks run synchronously inside the engine event that
		// fired them (TransitionStarted from beginTransition), so the
		// power-off lands at a deterministic virtual time.
		cfg.Faults.OnCrash(func(server int) {
			if server >= 0 && server < len(r.nodes) && r.nodes[server].state == nodeOn {
				r.nodes[server].powerOff()
			}
		})
	}

	capacityBytes := int64(cfg.CachePagesPerServer) * (int64(len(cfg.Corpus.Key(cfg.Corpus.Pages()-1))) + 48)
	for i := 0; i < cfg.CacheServers; i++ {
		// Per-item TTL is zero: like memcached, items live until
		// evicted. The config TTL is the hot-data window that bounds
		// the smooth-transition deadline, not an item lifetime.
		node, err := newCacheNode(eng, i, capacityBytes, 0, cfg.DigestParams, cfg.CacheConcurrency)
		if err != nil {
			return nil, err
		}
		r.nodes = append(r.nodes, node)
	}

	switch cfg.Scenario {
	case ScenarioProteus:
		reps := cfg.Replicas
		if reps < 1 {
			reps = 1
		}
		// Ring 0 is the unseeded primary, so with replication disabled
		// this routes exactly like the bare backend.
		rep, err := core.NewReplicatedBackend(cfg.Backend, cfg.CacheServers, reps)
		if err != nil {
			return nil, err
		}
		r.replicated = rep
	case ScenarioConsistent:
		c, err := hashring.NewConsistentHalfSquare(cfg.CacheServers)
		if err != nil {
			return nil, err
		}
		r.consistent = c
	}
	return r, nil
}

// route maps a key to its owner at the given active-prefix size under
// the scenario's scheme.
func (r *runner) route(key string, active int) int {
	switch r.cfg.Scenario {
	case ScenarioProteus:
		return r.replicated.OwnerOnRing(key, 0, active)
	case ScenarioConsistent:
		return r.consistent.Route(key, active)
	default: // Static, Naive: hash + modulo
		return hashring.Naive{}.Route(key, active)
	}
}

// routeRing is route on one replication ring (always ring 0 unless
// Proteus replication is enabled).
func (r *runner) routeRing(key string, ring, active int) int {
	if r.replicated != nil {
		return r.replicated.OwnerOnRing(key, ring, active)
	}
	return r.route(key, active)
}

// rings returns the number of replication rings to read through.
func (r *runner) rings() int {
	if r.replicated != nil {
		return r.replicated.Replicas()
	}
	return 1
}

func (r *runner) run() (*Result, error) {
	// Bring up the initial fleet.
	initial := r.cfg.Plan[0]
	if r.policy != nil {
		r.realisedPlan = append(r.realisedPlan, initial)
	}
	for i := 0; i < initial; i++ {
		r.nodes[i].state = nodeOn
		r.events.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: i})
	}
	r.provisionedN = initial
	r.routingN = initial

	// Slot boundaries (plan applies from Warmup onward; the warmup
	// period runs at Plan[0]).
	slots := len(r.cfg.Plan)
	for s := 1; s < slots; s++ {
		slot := s
		r.eng.At(r.cfg.Warmup+time.Duration(slot)*r.cfg.SlotWidth, func() {
			r.applyPlan(slot)
		})
	}

	// Unplanned failure injection.
	if r.cfg.CrashAt > 0 && r.cfg.CrashServer >= 0 && r.cfg.CrashServer < r.cfg.CacheServers {
		r.eng.At(r.cfg.Warmup+r.cfg.CrashAt, func() {
			node := r.nodes[r.cfg.CrashServer]
			if node.state == nodeOn {
				node.powerOff()
			}
		})
	}

	// Power sampling.
	for t := time.Duration(0); t <= r.horizon; t += r.cfg.PowerEvery {
		at := t
		r.eng.At(at, func() { r.samplePower(at) })
	}

	if len(r.cfg.Trace) > 0 {
		// Open-loop trace replay: arrivals come from the trace, not a
		// closed user loop.
		r.scheduleTraceBatch(0)
	} else {
		// User population control: retarget every slot and at start.
		r.retargetUsers()
		for s := 1; s < slots; s++ {
			slot := s
			r.eng.At(r.cfg.Warmup+time.Duration(slot)*r.cfg.SlotWidth, func() { _ = slot; r.retargetUsers() })
		}
		// Also retarget during warmup-to-measurement handoff.
		r.eng.At(r.cfg.Warmup, r.retargetUsers)
	}

	r.eng.Run(r.horizon)

	r.activeLog = append(r.activeLog, r.routingN)
	plan := r.cfg.Plan
	if r.policy != nil {
		plan = r.realisedPlan
	}
	return &Result{
		Scenario:      r.cfg.Scenario,
		Config:        r.cfg,
		Plan:          plan,
		Latency:       r.latency,
		BySource:      r.bySource,
		Load:          r.load,
		Meter:         r.meter,
		Requests:      r.reqCounter,
		Stats:         r.stats,
		ActivePerSlot: r.activeLog,
		Tracer:        r.tracer,
		Events:        r.events,
	}, nil
}

// draining reports that a scale-down's TTL window is still open: dying
// servers are serving hot data for on-demand migration.
func (r *runner) draining() bool {
	return r.trans != nil && r.trans.toN < r.trans.fromN
}

// applyPlan executes the provisioning decision for a slot boundary.
func (r *runner) applyPlan(slot int) {
	r.activeLog = append(r.activeLog, r.routingN)
	var target int
	if r.policy != nil {
		// Closed loop: decide from the ending slot's measurements, as
		// the paper's feedback experiment does.
		delay := r.slotHist.Quantile(r.cfg.ControllerQuantile)
		rate := float64(r.slotRequests) / r.cfg.SlotWidth.Seconds()
		r.slotHist.Reset()
		r.slotRequests = 0
		draining := r.draining()
		decision := r.policy.Decide(provision.State{
			Slot:         slot,
			Now:          r.eng.Now() - r.cfg.Warmup,
			SlotWidth:    r.cfg.SlotWidth,
			Delay:        delay,
			Rate:         rate,
			Active:       r.provisionedN,
			InTransition: r.trans != nil,
			Draining:     draining,
		})
		target = decision.Servers
		if target < 1 {
			target = 1
		}
		if target > r.cfg.CacheServers {
			target = r.cfg.CacheServers
		}
		// TTL-aware actuation gate: issuing a scale-down while the
		// previous window is still draining would finalize it early and
		// power off servers whose hot data has not finished migrating.
		// Defer the decision to the next slot instead.
		if target < r.provisionedN && draining {
			r.stats.ScaleDownsDeferred++
			target = r.provisionedN
		}
		r.realisedPlan = append(r.realisedPlan, target)
		r.events.Record(telemetry.Event{Kind: telemetry.EventProvisionDecision,
			Node: slot, From: r.provisionedN, To: target})
	} else {
		target = r.cfg.Plan[slot]
	}
	if target == r.provisionedN {
		return
	}
	if target < r.provisionedN && r.draining() {
		// Unreachable for policy runs (the gate above defers); counted
		// so the harness can assert the invariant held across a sweep.
		r.stats.MidDrainScaleDowns++
	}
	// A new decision supersedes any in-flight transition: finalize it
	// first so state is consistent.
	r.finalizeTransition()
	r.provGen++
	gen := r.provGen

	if target > r.provisionedN {
		r.scaleUp(target, gen)
	} else {
		r.scaleDown(target)
	}
	r.provisionedN = target
}

func (r *runner) scaleUp(target, gen int) {
	fromN := r.routingN
	for i := fromN; i < target; i++ {
		r.nodes[i].state = nodeBooting
	}
	r.eng.After(r.cfg.BootDelay, func() {
		if r.provGen != gen {
			return // superseded
		}
		for i := fromN; i < target; i++ {
			r.nodes[i].state = nodeOn
			r.events.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: i})
		}
		switch r.cfg.Scenario {
		case ScenarioProteus:
			r.beginTransition(fromN, target, gen)
		default:
			r.routingN = target // brutal remap
		}
	})
}

func (r *runner) scaleDown(target int) {
	fromN := r.routingN
	switch r.cfg.Scenario {
	case ScenarioProteus:
		// Dying servers keep serving hot data for TTL while requests
		// migrate it on demand (Section IV).
		r.beginTransition(fromN, target, r.provGen)
	default:
		for i := target; i < fromN; i++ {
			r.nodes[i].powerOff()
		}
		r.routingN = target
	}
}

// beginTransition broadcasts digests and switches routing to the new
// prefix; Algorithm 2 covers the window until the deadline.
func (r *runner) beginTransition(fromN, toN, gen int) {
	digests := make([]*bloom.Filter, r.cfg.CacheServers)
	if !r.cfg.DisableDigest {
		for i := 0; i < fromN; i++ {
			if r.nodes[i].state == nodeOn {
				digests[i] = r.nodes[i].snapshotDigest()
				r.events.Record(telemetry.Event{Kind: telemetry.EventDigestBuild, Node: i})
			}
		}
		r.events.Record(telemetry.Event{Kind: telemetry.EventDigestBroadcast, Node: -1})
	}
	r.trans = &transition{fromN: fromN, toN: toN, digests: digests, deadline: r.eng.Now() + r.cfg.TTL}
	r.routingN = toN
	r.stats.Transitions++
	r.events.Record(telemetry.Event{Kind: telemetry.EventOwnershipFlip, Node: -1, From: fromN, To: toN})
	if r.cfg.Faults != nil {
		// Same ordinal as cluster.Coordinator.SetActive: fire after the
		// new routing table is installed, so OpTransition crash and
		// partition rules land mid-transition in both planes.
		r.cfg.Faults.TransitionStarted()
	}
	r.eng.After(r.cfg.TTL, func() {
		if r.provGen != gen || r.trans == nil || r.trans.toN != toN {
			return // superseded
		}
		r.finalizeTransition()
	})
}

// finalizeTransition ends the smooth-transition window: after TTL every
// still-hot item has been migrated on demand, so dying servers are
// safe to power off (Section IV's safety argument).
func (r *runner) finalizeTransition() {
	if r.trans == nil {
		return
	}
	if r.trans.toN < r.trans.fromN {
		for i := r.trans.toN; i < r.trans.fromN; i++ {
			r.nodes[i].powerOff()
			r.events.Record(telemetry.Event{Kind: telemetry.EventPowerOff, Node: i})
		}
	}
	r.events.Record(telemetry.Event{Kind: telemetry.EventTTLExpiry, Node: -1, From: r.trans.fromN, To: r.trans.toN})
	r.trans = nil
}

// traceBatchSize bounds how many trace arrivals sit in the event heap
// at once.
const traceBatchSize = 4096

// scheduleTraceBatch feeds the next slice of open-loop arrivals into
// the engine, rescheduling itself when the batch is drained.
func (r *runner) scheduleTraceBatch(start int) {
	trace := r.cfg.Trace
	end := start + traceBatchSize
	if end > len(trace) {
		end = len(trace)
	}
	for i := start; i < end; i++ {
		ev := trace[i]
		r.eng.At(ev.At, func() {
			issued := r.eng.Now()
			r.startRequest(ev.Key, func(finish time.Duration) {
				if rel := issued - r.cfg.Warmup; rel >= 0 {
					r.latency.Observe(rel, finish-issued)
				}
				if r.policy != nil {
					r.slotHist.Observe(finish - issued)
					r.slotRequests++
				}
			})
		})
	}
	if end < len(trace) {
		// The trace is time-ordered, so scheduling the next batch when
		// the last event of this one fires keeps the heap bounded.
		r.eng.At(trace[end-1].At, func() { r.scheduleTraceBatch(end) })
	}
}

// retargetUsers matches the closed-loop population to the rate curve.
func (r *runner) retargetUsers() {
	t := r.eng.Now() - r.cfg.Warmup
	if t < 0 {
		t = 0
	}
	target := workload.ActiveUsers(r.cfg.Rate.Rate(t), r.cfg.NominalResponse)
	for r.aliveUsers < target {
		r.spawnUser()
	}
	// Excess users are retired lazily: mark newest-first as dead.
	excess := r.aliveUsers - target
	for i := len(r.users) - 1; i >= 0 && excess > 0; i-- {
		if r.users[i].alive {
			r.users[i].alive = false
			r.aliveUsers--
			excess--
		}
	}
}

func (r *runner) spawnUser() {
	u := &simUser{user: r.cfg.Users.User(r.nextUserID), alive: true}
	r.nextUserID++
	r.users = append(r.users, u)
	r.aliveUsers++
	// Desynchronise first requests across one think period.
	delay := time.Duration(r.rng.Int63n(int64(workload.ThinkTime) + 1))
	r.eng.After(delay, func() { r.userTurn(u) })
}

// userTurn issues one request and reschedules the user after think time.
func (r *runner) userTurn(u *simUser) {
	if !u.alive || r.eng.Now() >= r.horizon {
		return
	}
	key := u.user.NextPage()
	issued := r.eng.Now()
	r.startRequest(key, func(finish time.Duration) {
		if rel := issued - r.cfg.Warmup; rel >= 0 {
			r.latency.Observe(rel, finish-issued)
		}
		if r.policy != nil {
			r.slotHist.Observe(finish - issued)
			r.slotRequests++
		}
		r.eng.At(finish+u.user.NextThink(), func() { r.userTurn(u) })
	})
}

// startRequest models Algorithm 2 (data retrieval) in virtual time and
// calls done with the response completion time. With replication the
// rings are read in order; a crashed or powered-off owner degrades to
// the next ring, then to the database.
func (r *runner) startRequest(key string, done func(finish time.Duration)) {
	now := r.eng.Now()
	rel := now - r.cfg.Warmup
	measured := rel >= 0
	if measured {
		r.reqCounter.Observe(rel)
	}
	r.stats.Requests++
	r.webRequests++

	sp := r.tracer.Start("sim.request")
	sp.SetAttr("key", key)
	finishReq := func(src RequestSource, finish time.Duration) {
		sp.SetAttr("source", src.String())
		sp.EndAt(r.eng.Time(finish))
		done(finish)
	}

	t := now + r.cfg.WebOverhead

	primary := r.routeRing(key, 0, r.routingN)
	if measured {
		r.load.Observe(rel, primary)
	}

	var tried [8]int
	nTried := 0
	missCounted := false
	for ring := 0; ring < r.rings(); ring++ {
		owner := r.routeRing(key, ring, r.routingN)
		dup := false
		for i := 0; i < nTried; i++ {
			if tried[i] == owner {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if nTried < len(tried) {
			tried[nTried] = owner
			nTried++
		}
		node := r.nodes[owner]
		if node.state != nodeOn {
			continue // crashed or powered off: fall through
		}
		switch d := r.fault(owner, faultinject.OpGet); d.Kind {
		case faultinject.KindError, faultinject.KindDrop:
			continue // unreachable owner: degrade to the next ring / DB
		case faultinject.KindDelay, faultinject.KindSlowRead:
			t += d.Delay
		}

		// Algorithm 2 line 2: the ring's new owner.
		t = node.queue.schedule(t, r.cfg.CacheService) + r.cfg.CacheRTT
		if _, ok := node.store.Get(key); ok {
			r.stats.CacheHits++
			if ring > 0 {
				r.stats.ReplicaHits++
			}
			if measured {
				r.bySource[SourceHit].Observe(t - now)
			}
			finishReq(SourceHit, t)
			return
		}
		if ring == 0 {
			r.stats.CacheMisses++
			missCounted = true
		}

		// Lines 6-8: during a Proteus transition, consult the ring's
		// old owner's digest before paying the database price.
		if tr := r.trans; tr != nil && r.cfg.Scenario == ScenarioProteus && !r.cfg.DisableDigest {
			oldOwner := r.routeRing(key, ring, tr.fromN)
			if oldOwner != owner && tr.digests[oldOwner] != nil && tr.digests[oldOwner].Contains(key) {
				oldNode := r.nodes[oldOwner]
				oldOK := oldNode.state == nodeOn
				if oldOK {
					switch d := r.fault(oldOwner, faultinject.OpGet); d.Kind {
					case faultinject.KindError, faultinject.KindDrop:
						// Faulted old owner: fall through to the DB path,
						// mirroring the web tier's degradation.
						oldOK = false
					case faultinject.KindDelay, faultinject.KindSlowRead:
						t += d.Delay
					}
				}
				if oldOK {
					t = oldNode.queue.schedule(t, r.cfg.CacheService) + r.cfg.CacheRTT
					if value, ok := oldNode.store.Get(key); ok {
						// Hot data: migrate on demand (line 12 put, then reply).
						r.stats.MigratedOnDemand++
						r.events.Record(telemetry.Event{Kind: telemetry.EventMigrationHit, Node: oldOwner})
						tPut := node.queue.schedule(t, r.cfg.CacheService) + r.cfg.CacheRTT
						if measured {
							r.bySource[SourceMigrated].Observe(tPut - now)
						}
						val, at := value, t
						r.eng.At(at, func() { node.store.Set(key, val, 0) })
						finishReq(SourceMigrated, tPut)
						return
					}
					r.stats.DigestFalsePos++
					r.events.Record(telemetry.Event{Kind: telemetry.EventMigrationMiss, Node: oldOwner})
				}
			} else if ring == 0 {
				r.stats.DigestMisses++
			}
		}
	}
	if !missCounted {
		r.stats.CacheMisses++
	}

	issued := now
	r.finishViaDB(key, t, func(finish time.Duration) {
		if measured {
			r.bySource[SourceDB].Observe(finish - issued)
		}
		finishReq(SourceDB, finish)
	})
}

// finishViaDB fetches from the database tier and writes through to
// every distinct running owner (Algorithm 2 lines 10-12; with
// replication the key regains its full copy set).
func (r *runner) finishViaDB(key string, from time.Duration, done func(time.Duration)) {
	idx, ok := r.cfg.Corpus.Index(key)
	if !ok {
		done(from) // foreign key: nothing to fetch
		return
	}
	r.stats.DBQueries++
	dbDone := r.db.fetch(from, idx)
	finish := dbDone

	owners := r.writeOwners(key)
	for i, owner := range owners {
		node := r.nodes[owner]
		if node.state != nodeOn {
			continue
		}
		at := dbDone
		switch d := r.fault(owner, faultinject.OpSet); d.Kind {
		case faultinject.KindError, faultinject.KindDrop:
			continue // failed write-through: the owner stays cold, not wrong
		case faultinject.KindDelay, faultinject.KindSlowRead:
			at += d.Delay
		}
		setDone := node.queue.schedule(at, r.cfg.CacheService) + r.cfg.CacheRTT
		if i == 0 {
			// The primary write-through is on the response path
			// (Algorithm 2 puts before returning); replicas fill
			// asynchronously.
			finish = setDone
		}
		n := node
		r.eng.At(at, func() {
			if n.state == nodeOn {
				// Values are zero-length in simulation: cache capacity
				// is accounted in pages (key + per-item overhead).
				n.store.Set(key, nil, 0)
			}
		})
	}
	done(finish)
}

// fault consults the injector for one virtual-time operation; the zero
// Decision means proceed.
func (r *runner) fault(server int, op faultinject.Op) faultinject.Decision {
	if r.cfg.Faults == nil {
		return faultinject.Decision{}
	}
	return r.cfg.Faults.Decide(server, op)
}

// writeOwners returns the distinct owners that should store the key at
// the current routing prefix (one per ring).
func (r *runner) writeOwners(key string) []int {
	if r.replicated == nil {
		return []int{r.routeRing(key, 0, r.routingN)}
	}
	return r.replicated.DistinctOwners(key, r.routingN)
}

// samplePower records one PDU sample across the four tiers.
func (r *runner) samplePower(at time.Duration) {
	interval := r.cfg.PowerEvery
	model := r.cfg.PowerModel

	cacheW := 0.0
	for _, n := range r.nodes {
		switch n.state {
		case nodeOff:
			cacheW += model.Watts(false, 0)
		case nodeBooting:
			cacheW += model.Watts(true, 0.5) // boot burn
		default:
			util := float64(n.queue.takeBusy()) / float64(interval) / float64(r.cfg.CacheConcurrency)
			cacheW += model.Watts(true, util)
		}
	}

	dbW := 0.0
	for _, sh := range r.db.shards {
		util := float64(sh.takeBusy()) / float64(interval) / float64(r.cfg.DBConcurrency)
		dbW += model.Watts(true, util)
	}

	// Web and RBE tiers: utilisation follows the request rate.
	reqs := float64(r.webRequests)
	r.webRequests = 0
	perServerRPS := reqs / interval.Seconds() / float64(r.cfg.WebServers)
	webUtil := perServerRPS / 150 // nominal 150 req/s per web server at full tilt
	webW := float64(r.cfg.WebServers) * model.Watts(true, webUtil)
	rbeW := float64(r.cfg.RBEServers) * model.Watts(true, webUtil/2)

	rel := at - r.cfg.Warmup
	if rel < 0 {
		return
	}
	_ = r.meter.Record(rel, map[string]float64{
		"cache": cacheW,
		"db":    dbW,
		"web":   webW,
		"rbe":   rbeW,
	})
}
