package memproto

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Request is one parsed client command.
type Request struct {
	Command Command
	Keys    []string // get/gets key list; single-key commands use Keys[0]
	Flags   uint32   // storage commands
	Exptime int64    // seconds, memcached semantics (0 = never)
	Data    []byte   // storage payload
	CAS     uint64   // cas command token
	Delta   uint64   // incr/decr amount
	NoReply bool
}

// Key returns the first key, or "" for keyless commands.
func (r *Request) Key() string {
	if len(r.Keys) == 0 {
		return ""
	}
	return r.Keys[0]
}

// ReadRequest parses one command from the stream. io.EOF is returned
// unwrapped when the connection closes cleanly between commands.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("%w: empty command line", ErrProtocol)
	}
	switch fields[0] {
	case "get", "gets":
		return parseGet(fields)
	case "set", "add", "replace", "cas", "append", "prepend":
		return parseStore(br, fields)
	case "incr", "decr":
		return parseArith(fields)
	case "delete":
		return parseDelete(fields)
	case "touch":
		return parseTouch(fields)
	case "stats":
		return &Request{Command: CmdStats}, nil
	case "flush_all":
		req := &Request{Command: CmdFlushAll}
		req.NoReply = hasNoReply(fields[1:])
		return req, nil
	case "version":
		return &Request{Command: CmdVersion}, nil
	case "quit":
		return &Request{Command: CmdQuit}, nil
	default:
		return nil, fmt.Errorf("%w: unknown command %q", ErrProtocol, fields[0])
	}
}

func parseGet(fields []string) (*Request, error) {
	cmd := CmdGet
	if fields[0] == "gets" {
		cmd = CmdGets
	}
	if len(fields) < 2 {
		return nil, fmt.Errorf("%w: %s needs at least one key", ErrProtocol, fields[0])
	}
	keys := fields[1:]
	for _, k := range keys {
		if !ValidKey(k) {
			return nil, fmt.Errorf("%w: %q", ErrBadKey, k)
		}
	}
	return &Request{Command: cmd, Keys: keys}, nil
}

func parseStore(br *bufio.Reader, fields []string) (*Request, error) {
	// <cmd> <key> <flags> <exptime> <bytes> [cas] [noreply]
	var cmd Command
	switch fields[0] {
	case "set":
		cmd = CmdSet
	case "add":
		cmd = CmdAdd
	case "replace":
		cmd = CmdReplace
	case "cas":
		cmd = CmdCas
	case "append":
		cmd = CmdAppend
	case "prepend":
		cmd = CmdPrepend
	}
	minFields, maxFields := 5, 6
	if cmd == CmdCas {
		minFields, maxFields = 6, 7
	}
	if len(fields) < minFields || len(fields) > maxFields {
		return nil, fmt.Errorf("%w: bad %s syntax", ErrProtocol, fields[0])
	}
	key := fields[1]
	if !ValidKey(key) {
		return nil, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	flags, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("%w: bad flags %q", ErrProtocol, fields[2])
	}
	exptime, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad exptime %q", ErrProtocol, fields[3])
	}
	size, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil || size < 0 {
		return nil, fmt.Errorf("%w: bad bytes %q", ErrProtocol, fields[4])
	}
	if size > MaxValueLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	var cas uint64
	rest := fields[5:]
	if cmd == CmdCas {
		cas, err = strconv.ParseUint(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad cas token %q", ErrProtocol, fields[5])
		}
		rest = fields[6:]
	}
	noReply := hasNoReply(rest)
	data := make([]byte, size)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("%w: short data block: %v", ErrProtocol, err)
	}
	if err := expectCRLF(br); err != nil {
		return nil, err
	}
	return &Request{
		Command: cmd, Keys: []string{key}, Flags: uint32(flags),
		Exptime: exptime, Data: data, CAS: cas, NoReply: noReply,
	}, nil
}

// parseArith handles incr/decr: <cmd> <key> <delta> [noreply].
func parseArith(fields []string) (*Request, error) {
	if len(fields) < 3 || len(fields) > 4 {
		return nil, fmt.Errorf("%w: bad %s syntax", ErrProtocol, fields[0])
	}
	cmd := CmdIncr
	if fields[0] == "decr" {
		cmd = CmdDecr
	}
	if !ValidKey(fields[1]) {
		return nil, fmt.Errorf("%w: %q", ErrBadKey, fields[1])
	}
	delta, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad delta %q", ErrProtocol, fields[2])
	}
	return &Request{Command: cmd, Keys: []string{fields[1]}, Delta: delta, NoReply: hasNoReply(fields[3:])}, nil
}

func parseDelete(fields []string) (*Request, error) {
	if len(fields) < 2 || len(fields) > 3 {
		return nil, fmt.Errorf("%w: bad delete syntax", ErrProtocol)
	}
	if !ValidKey(fields[1]) {
		return nil, fmt.Errorf("%w: %q", ErrBadKey, fields[1])
	}
	return &Request{Command: CmdDelete, Keys: []string{fields[1]}, NoReply: hasNoReply(fields[2:])}, nil
}

func parseTouch(fields []string) (*Request, error) {
	if len(fields) < 3 || len(fields) > 4 {
		return nil, fmt.Errorf("%w: bad touch syntax", ErrProtocol)
	}
	if !ValidKey(fields[1]) {
		return nil, fmt.Errorf("%w: %q", ErrBadKey, fields[1])
	}
	exptime, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad exptime %q", ErrProtocol, fields[2])
	}
	return &Request{Command: CmdTouch, Keys: []string{fields[1]}, Exptime: exptime, NoReply: hasNoReply(fields[3:])}, nil
}

func hasNoReply(rest []string) bool {
	return len(rest) == 1 && rest[0] == "noreply"
}

// WriteTo encodes the request for the client side of the connection.
func (r *Request) WriteTo(bw *bufio.Writer) error {
	switch r.Command {
	case CmdGet, CmdGets:
		if _, err := bw.WriteString(r.Command.String()); err != nil {
			return err
		}
		for _, k := range r.Keys {
			if !ValidKey(k) {
				return fmt.Errorf("%w: %q", ErrBadKey, k)
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
			if _, err := bw.WriteString(k); err != nil {
				return err
			}
		}
		_, err := bw.WriteString("\r\n")
		return err
	case CmdSet, CmdAdd, CmdReplace, CmdCas, CmdAppend, CmdPrepend:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		if len(r.Data) > MaxValueLen {
			return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(r.Data))
		}
		casField := ""
		if r.Command == CmdCas {
			casField = fmt.Sprintf(" %d", r.CAS)
		}
		suffix := ""
		if r.NoReply {
			suffix = " noreply"
		}
		if _, err := fmt.Fprintf(bw, "%s %s %d %d %d%s%s\r\n",
			r.Command, r.Key(), r.Flags, r.Exptime, len(r.Data), casField, suffix); err != nil {
			return err
		}
		if _, err := bw.Write(r.Data); err != nil {
			return err
		}
		_, err := bw.WriteString("\r\n")
		return err
	case CmdIncr, CmdDecr:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		suffix := ""
		if r.NoReply {
			suffix = " noreply"
		}
		_, err := fmt.Fprintf(bw, "%s %s %d%s\r\n", r.Command, r.Key(), r.Delta, suffix)
		return err
	case CmdDelete:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		suffix := ""
		if r.NoReply {
			suffix = " noreply"
		}
		_, err := fmt.Fprintf(bw, "delete %s%s\r\n", r.Key(), suffix)
		return err
	case CmdTouch:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		suffix := ""
		if r.NoReply {
			suffix = " noreply"
		}
		_, err := fmt.Fprintf(bw, "touch %s %d%s\r\n", r.Key(), r.Exptime, suffix)
		return err
	case CmdStats, CmdFlushAll, CmdVersion, CmdQuit:
		_, err := fmt.Fprintf(bw, "%s\r\n", r.Command)
		return err
	default:
		return fmt.Errorf("%w: cannot encode %v", ErrProtocol, r.Command)
	}
}

// readLine reads one CRLF- (or LF-) terminated line without the
// terminator, rejecting oversized lines.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return "", io.EOF
		}
		return "", fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if len(line) > maxLineLen {
		return "", fmt.Errorf("%w: line too long", ErrProtocol)
	}
	line = strings.TrimRight(line, "\r\n")
	return line, nil
}

func expectCRLF(br *bufio.Reader) error {
	b, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: missing data terminator", ErrProtocol)
	}
	if b == '\r' {
		b, err = br.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: missing data terminator", ErrProtocol)
		}
	}
	if b != '\n' {
		return fmt.Errorf("%w: data block not terminated by CRLF", ErrProtocol)
	}
	return nil
}
