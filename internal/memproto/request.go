package memproto

import (
	"bufio"
	"fmt"
	"io"
)

// Request is one parsed client command.
type Request struct {
	Command Command
	Keys    []string // get/gets key list; single-key commands use Keys[0]
	Flags   uint32   // storage commands
	Exptime int64    // seconds, memcached semantics (0 = never)
	Data    []byte   // storage payload
	CAS     uint64   // cas command token
	Delta   uint64   // incr/decr amount
	NoReply bool
}

// Key returns the first key, or "" for keyless commands.
func (r *Request) Key() string {
	if len(r.Keys) == 0 {
		return ""
	}
	return r.Keys[0]
}

// Parser reads requests from one connection, reusing per-connection
// scratch (the line buffer, the field table, the Request struct and its
// Keys backing array) so steady-state parsing allocates only what the
// caller may retain: the key strings and, for storage commands, the
// freshly allocated Data payload. cacheserver keeps one Parser per
// connection (pooled across connections via sync.Pool).
type Parser struct {
	br     *bufio.Reader
	req    Request
	keys   []string // reused backing array for req.Keys
	fields [][]byte // reused field table, aliasing the reader's buffer
}

// NewParser builds a Parser reading from br. The bufio.Reader's buffer
// must be at least maxLineLen bytes (the bufio.NewReader default) so a
// maximal command line fits without copying.
func NewParser(br *bufio.Reader) *Parser { return &Parser{br: br} }

// Reset rebinds the parser to a new stream, keeping its scratch.
func (p *Parser) Reset(br *bufio.Reader) { p.br = br }

// ReadRequest parses one command from the stream. io.EOF is returned
// unwrapped when the connection closes cleanly between commands. The
// returned Request is freshly allocated and owned by the caller; hot
// server loops use Parser.Next instead to avoid the per-request
// allocations.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	p := &Parser{br: br}
	return p.Next()
}

// Next parses one command. The returned Request points into the
// parser's scratch: it, and its Keys slice, are valid only until the
// following Next call. Data (storage payloads) and the key strings are
// freshly allocated and may be retained.
//
//lint:hotpath per-request parse loop
func (p *Parser) Next() (*Request, error) {
	line, err := p.readLineSlice()
	if err != nil {
		return nil, err
	}
	fields := splitFields(line, p.fields[:0])
	p.fields = fields
	if len(fields) == 0 {
		//lint:allow hotalloc protocol-error paths allocate their message; the steady-state loop never takes them
		return nil, fmt.Errorf("%w: empty command line", ErrProtocol)
	}
	p.req = Request{}
	switch string(fields[0]) {
	case "get", "gets":
		return p.parseGet(fields)
	case "set", "add", "replace", "cas", "append", "prepend":
		//lint:allow hotalloc mutation commands allocate payloads and error text by design; the zero-alloc contract covers retrievals
		return p.parseStore(fields)
	case "incr", "decr":
		//lint:allow hotalloc mutation commands allocate payloads and error text by design; the zero-alloc contract covers retrievals
		return p.parseArith(fields)
	case "delete":
		//lint:allow hotalloc mutation commands allocate payloads and error text by design; the zero-alloc contract covers retrievals
		return p.parseDelete(fields)
	case "touch":
		//lint:allow hotalloc mutation commands allocate payloads and error text by design; the zero-alloc contract covers retrievals
		return p.parseTouch(fields)
	case "stats":
		p.req.Command = CmdStats
		return &p.req, nil
	case "flush_all":
		p.req.Command = CmdFlushAll
		p.req.NoReply = hasNoReply(fields[1:])
		return &p.req, nil
	case "version":
		p.req.Command = CmdVersion
		return &p.req, nil
	case "quit":
		p.req.Command = CmdQuit
		return &p.req, nil
	default:
		//lint:allow hotalloc protocol-error paths allocate their message; the steady-state loop never takes them
		return nil, fmt.Errorf("%w: unknown command %q", ErrProtocol, fields[0])
	}
}

// setKeys fills req.Keys from raw key fields, reusing the backing
// array. Each key string is a fresh allocation (it may be retained as a
// map key by the store).
//
//lint:hotpath key extraction on every retrieval
func (p *Parser) setKeys(raw [][]byte) error {
	p.keys = p.keys[:0]
	for _, f := range raw {
		if !validKeyBytes(f) {
			//lint:allow hotalloc protocol-error paths allocate their message; the steady-state loop never takes them
			return fmt.Errorf("%w: %q", ErrBadKey, f)
		}
		//lint:allow hotalloc key strings are fresh copies by contract (retained as map keys by the store); backing-array growth amortizes to zero
		p.keys = append(p.keys, string(f))
	}
	p.req.Keys = p.keys
	return nil
}

//lint:hotpath GET command parse
func (p *Parser) parseGet(fields [][]byte) (*Request, error) {
	cmd := CmdGet
	if len(fields[0]) == 4 { // "gets"
		cmd = CmdGets
	}
	if len(fields) < 2 {
		//lint:allow hotalloc protocol-error paths allocate their message; the steady-state loop never takes them
		return nil, fmt.Errorf("%w: %s needs at least one key", ErrProtocol, fields[0])
	}
	if err := p.setKeys(fields[1:]); err != nil {
		return nil, err
	}
	p.req.Command = cmd
	return &p.req, nil
}

func (p *Parser) parseStore(fields [][]byte) (*Request, error) {
	// <cmd> <key> <flags> <exptime> <bytes> [cas] [noreply]
	var cmd Command
	switch string(fields[0]) {
	case "set":
		cmd = CmdSet
	case "add":
		cmd = CmdAdd
	case "replace":
		cmd = CmdReplace
	case "cas":
		cmd = CmdCas
	case "append":
		cmd = CmdAppend
	case "prepend":
		cmd = CmdPrepend
	}
	minFields, maxFields := 5, 6
	if cmd == CmdCas {
		minFields, maxFields = 6, 7
	}
	if len(fields) < minFields || len(fields) > maxFields {
		return nil, fmt.Errorf("%w: bad %s syntax", ErrProtocol, fields[0])
	}
	if err := p.setKeys(fields[1:2]); err != nil {
		return nil, err
	}
	flags, ok := parseUintBytes(fields[2], 32)
	if !ok {
		return nil, fmt.Errorf("%w: bad flags %q", ErrProtocol, fields[2])
	}
	exptime, ok := parseIntBytes(fields[3])
	if !ok {
		return nil, fmt.Errorf("%w: bad exptime %q", ErrProtocol, fields[3])
	}
	size, ok := parseIntBytes(fields[4])
	if !ok || size < 0 {
		return nil, fmt.Errorf("%w: bad bytes %q", ErrProtocol, fields[4])
	}
	if size > MaxValueLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	var cas uint64
	rest := fields[5:]
	if cmd == CmdCas {
		cas, ok = parseUintBytes(fields[5], 64)
		if !ok {
			return nil, fmt.Errorf("%w: bad cas token %q", ErrProtocol, fields[5])
		}
		rest = fields[6:]
	}
	noReply := hasNoReply(rest)
	data := make([]byte, size)
	if _, err := io.ReadFull(p.br, data); err != nil {
		return nil, fmt.Errorf("%w: short data block: %v", ErrProtocol, err)
	}
	if err := expectCRLF(p.br); err != nil {
		return nil, err
	}
	p.req.Command = cmd
	p.req.Flags = uint32(flags)
	p.req.Exptime = exptime
	p.req.Data = data
	p.req.CAS = cas
	p.req.NoReply = noReply
	return &p.req, nil
}

// parseArith handles incr/decr: <cmd> <key> <delta> [noreply].
func (p *Parser) parseArith(fields [][]byte) (*Request, error) {
	if len(fields) < 3 || len(fields) > 4 {
		return nil, fmt.Errorf("%w: bad %s syntax", ErrProtocol, fields[0])
	}
	cmd := CmdIncr
	if fields[0][0] == 'd' {
		cmd = CmdDecr
	}
	if err := p.setKeys(fields[1:2]); err != nil {
		return nil, err
	}
	delta, ok := parseUintBytes(fields[2], 64)
	if !ok {
		return nil, fmt.Errorf("%w: bad delta %q", ErrProtocol, fields[2])
	}
	p.req.Command = cmd
	p.req.Delta = delta
	p.req.NoReply = hasNoReply(fields[3:])
	return &p.req, nil
}

func (p *Parser) parseDelete(fields [][]byte) (*Request, error) {
	if len(fields) < 2 || len(fields) > 3 {
		return nil, fmt.Errorf("%w: bad delete syntax", ErrProtocol)
	}
	if err := p.setKeys(fields[1:2]); err != nil {
		return nil, err
	}
	p.req.Command = CmdDelete
	p.req.NoReply = hasNoReply(fields[2:])
	return &p.req, nil
}

func (p *Parser) parseTouch(fields [][]byte) (*Request, error) {
	if len(fields) < 3 || len(fields) > 4 {
		return nil, fmt.Errorf("%w: bad touch syntax", ErrProtocol)
	}
	if err := p.setKeys(fields[1:2]); err != nil {
		return nil, err
	}
	exptime, ok := parseIntBytes(fields[2])
	if !ok {
		return nil, fmt.Errorf("%w: bad exptime %q", ErrProtocol, fields[2])
	}
	p.req.Command = CmdTouch
	p.req.Exptime = exptime
	p.req.NoReply = hasNoReply(fields[3:])
	return &p.req, nil
}

func hasNoReply(rest [][]byte) bool {
	return len(rest) == 1 && string(rest[0]) == "noreply"
}

// readLineSlice reads one CRLF- (or LF-) terminated line without the
// terminator, rejecting oversized lines. The returned slice aliases the
// reader's buffer and is valid only until the next read.
//
//lint:hotpath command-line read on every request
func (p *Parser) readLineSlice() ([]byte, error) {
	line, err := p.br.ReadSlice('\n')
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return nil, io.EOF
		}
		if err == bufio.ErrBufferFull {
			//lint:allow hotalloc protocol-error paths allocate their message; the steady-state loop never takes them
			return nil, fmt.Errorf("%w: line too long", ErrProtocol)
		}
		//lint:allow hotalloc protocol-error paths allocate their message; the steady-state loop never takes them
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if len(line) > maxLineLen {
		//lint:allow hotalloc protocol-error paths allocate their message; the steady-state loop never takes them
		return nil, fmt.Errorf("%w: line too long", ErrProtocol)
	}
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line, nil
}

// splitFields splits a command line into whitespace-separated fields,
// appending into dst (whose backing array is reused call to call). The
// separator set is the ASCII whitespace bytes a command line can
// contain; key validation independently rejects anything at or below
// the space byte.
//
//lint:hotpath field split on every request
func splitFields(line []byte, dst [][]byte) [][]byte {
	start := -1
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '\v', '\f', '\r', '\n':
			if start >= 0 {
				//lint:allow hotalloc appends into a scratch slice whose backing array is reused call to call; growth amortizes to zero
				dst = append(dst, line[start:i])
				start = -1
			}
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		//lint:allow hotalloc appends into a scratch slice whose backing array is reused call to call; growth amortizes to zero
		dst = append(dst, line[start:])
	}
	return dst
}

// validKeyBytes is ValidKey for a raw field.
func validKeyBytes(key []byte) bool {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// parseUintBytes parses an unsigned decimal without allocating,
// rejecting values that overflow the given bit width.
func parseUintBytes(b []byte, bits int) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	max := uint64(1)<<uint(bits) - 1
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (max-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// parseIntBytes parses a signed decimal (optional +/-) without
// allocating, rejecting int64 overflow.
func parseIntBytes(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	limit := uint64(1) << 63 // |math.MinInt64|
	if !neg {
		limit--
	}
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (limit-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// WriteTo encodes the request for the client side of the connection.
// The encoding is allocation-free so pipelined batches (MultiGet) cost
// nothing beyond the buffered bytes.
func (r *Request) WriteTo(bw *bufio.Writer) error {
	switch r.Command {
	case CmdGet, CmdGets:
		if _, err := bw.WriteString(r.Command.String()); err != nil {
			return err
		}
		for _, k := range r.Keys {
			if !ValidKey(k) {
				return fmt.Errorf("%w: %q", ErrBadKey, k)
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
			if _, err := bw.WriteString(k); err != nil {
				return err
			}
		}
		_, err := bw.WriteString("\r\n")
		return err
	case CmdSet, CmdAdd, CmdReplace, CmdCas, CmdAppend, CmdPrepend:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		if len(r.Data) > MaxValueLen {
			return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(r.Data))
		}
		bw.WriteString(r.Command.String())
		bw.WriteByte(' ')
		bw.WriteString(r.Key())
		bw.WriteByte(' ')
		writeUint(bw, uint64(r.Flags))
		bw.WriteByte(' ')
		writeInt(bw, r.Exptime)
		bw.WriteByte(' ')
		writeUint(bw, uint64(len(r.Data)))
		if r.Command == CmdCas {
			bw.WriteByte(' ')
			writeUint(bw, r.CAS)
		}
		if r.NoReply {
			bw.WriteString(" noreply")
		}
		bw.WriteString("\r\n")
		bw.Write(r.Data)
		_, err := bw.WriteString("\r\n")
		return err
	case CmdIncr, CmdDecr:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		bw.WriteString(r.Command.String())
		bw.WriteByte(' ')
		bw.WriteString(r.Key())
		bw.WriteByte(' ')
		writeUint(bw, r.Delta)
		if r.NoReply {
			bw.WriteString(" noreply")
		}
		_, err := bw.WriteString("\r\n")
		return err
	case CmdDelete:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		bw.WriteString("delete ")
		bw.WriteString(r.Key())
		if r.NoReply {
			bw.WriteString(" noreply")
		}
		_, err := bw.WriteString("\r\n")
		return err
	case CmdTouch:
		if !ValidKey(r.Key()) {
			return fmt.Errorf("%w: %q", ErrBadKey, r.Key())
		}
		bw.WriteString("touch ")
		bw.WriteString(r.Key())
		bw.WriteByte(' ')
		writeInt(bw, r.Exptime)
		if r.NoReply {
			bw.WriteString(" noreply")
		}
		_, err := bw.WriteString("\r\n")
		return err
	case CmdStats, CmdFlushAll, CmdVersion, CmdQuit:
		bw.WriteString(r.Command.String())
		_, err := bw.WriteString("\r\n")
		return err
	default:
		return fmt.Errorf("%w: cannot encode %v", ErrProtocol, r.Command)
	}
}

// readLine reads one CRLF- (or LF-) terminated line without the
// terminator, rejecting oversized lines. Client-side response readers
// use it; the server-side Parser uses the alias-returning
// readLineSlice.
func readLine(br *bufio.Reader) (string, error) {
	p := Parser{br: br}
	line, err := p.readLineSlice()
	if err != nil {
		return "", err
	}
	return string(line), nil
}

func expectCRLF(br *bufio.Reader) error {
	b, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: missing data terminator", ErrProtocol)
	}
	if b == '\r' {
		b, err = br.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: missing data terminator", ErrProtocol)
		}
	}
	if b != '\n' {
		return fmt.Errorf("%w: data block not terminated by CRLF", ErrProtocol)
	}
	return nil
}
