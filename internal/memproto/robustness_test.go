package memproto

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: arbitrary byte soup never panics the request parser; it
// either parses or errors.
func TestQuickReadRequestNeverPanics(t *testing.T) {
	prop := func(data []byte) bool {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			_, err := ReadRequest(br)
			if err != nil {
				return true // io.EOF or protocol error both fine
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary byte soup never panics the response readers.
func TestQuickResponseReadersNeverPanic(t *testing.T) {
	prop := func(data []byte) bool {
		if _, err := ReadValues(bufio.NewReader(bytes.NewReader(data))); err == nil {
			// Parsed cleanly — acceptable (e.g. "END\r\n" prefix).
			_ = err
		}
		if _, err := ReadReply(bufio.NewReader(bytes.NewReader(data))); err == nil {
			_ = err
		}
		if _, err := ReadStats(bufio.NewReader(bytes.NewReader(data))); err == nil {
			_ = err
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Mutation fuzzing: take valid command streams and corrupt them; the
// parser must never panic and never mis-frame into an infinite loop.
func TestMutatedCommandStreams(t *testing.T) {
	seeds := []string{
		"get key\r\n",
		"gets a b c\r\n",
		"set k 0 60 5\r\nhello\r\n",
		"cas k 0 0 3 99\r\nabc\r\n",
		"incr n 5\r\n",
		"append k 0 0 2\r\nhi\r\n",
		"delete k noreply\r\n",
		"stats\r\n",
	}
	rng := rand.New(rand.NewSource(99))
	for _, seed := range seeds {
		for trial := 0; trial < 200; trial++ {
			data := []byte(seed)
			for m := 0; m < 1+rng.Intn(3); m++ {
				pos := rng.Intn(len(data))
				switch rng.Intn(3) {
				case 0:
					data[pos] = byte(rng.Intn(256))
				case 1:
					data = append(data[:pos], data[pos+1:]...)
				default:
					data = append(data[:pos], append([]byte{byte(rng.Intn(256))}, data[pos:]...)...)
				}
				if len(data) == 0 {
					data = []byte{'\n'}
				}
			}
			br := bufio.NewReader(bytes.NewReader(data))
			for i := 0; i < 4; i++ {
				if _, err := ReadRequest(br); err != nil {
					break
				}
			}
		}
	}
}

// Interleaved pipelined commands parse in order.
func TestPipelinedStream(t *testing.T) {
	stream := "set a 0 0 1\r\nx\r\nget a\r\nincr n 1\r\ndelete a\r\nquit\r\n"
	br := bufio.NewReader(strings.NewReader(stream))
	want := []Command{CmdSet, CmdGet, CmdIncr, CmdDelete, CmdQuit}
	for i, cmd := range want {
		req, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if req.Command != cmd {
			t.Fatalf("request %d = %v, want %v", i, req.Command, cmd)
		}
	}
	if _, err := ReadRequest(br); err != io.EOF {
		t.Fatalf("trailing read err = %v, want EOF", err)
	}
}

// CAS round trip through the wire format.
func TestCasRoundTrip(t *testing.T) {
	req := &Request{Command: CmdCas, Keys: []string{"k"}, Exptime: 9, Data: []byte("zz"), CAS: 1234567}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := req.WriteTo(bw); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != CmdCas || got.CAS != 1234567 || got.Exptime != 9 || string(got.Data) != "zz" {
		t.Fatalf("round trip = %+v", got)
	}
}

// Incr/decr round trip.
func TestArithRoundTrip(t *testing.T) {
	for _, cmd := range []Command{CmdIncr, CmdDecr} {
		req := &Request{Command: cmd, Keys: []string{"n"}, Delta: 77}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := req.WriteTo(bw); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if got.Command != cmd || got.Delta != 77 {
			t.Fatalf("round trip = %+v", got)
		}
	}
}

// Values with CAS tokens survive the response round trip.
func TestValuesWithCASRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	want := []Value{
		{Key: "a", Data: []byte("1"), CAS: 42, HasCAS: true},
		{Key: "b", Data: []byte("2")},
	}
	for _, v := range want {
		if err := WriteValue(bw, v); err != nil {
			t.Fatal(err)
		}
	}
	WriteEnd(bw)
	bw.Flush()
	got, err := ReadValues(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].HasCAS || got[0].CAS != 42 || got[1].HasCAS {
		t.Fatalf("got %+v", got)
	}
}
