package memproto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func reader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestValidKey(t *testing.T) {
	cases := []struct {
		key  string
		want bool
	}{
		{"page:Main_Page", true},
		{"a", true},
		{strings.Repeat("k", MaxKeyLen), true},
		{strings.Repeat("k", MaxKeyLen+1), false},
		{"", false},
		{"has space", false},
		{"has\ttab", false},
		{"has\nnewline", false},
		{"del\x7f", false},
		{"ctrl\x01", false},
	}
	for _, c := range cases {
		if got := ValidKey(c.key); got != c.want {
			t.Errorf("ValidKey(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestParseGet(t *testing.T) {
	req, err := ReadRequest(reader("get foo\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdGet || req.Key() != "foo" {
		t.Fatalf("req = %+v", req)
	}
	req, err = ReadRequest(reader("gets a b c\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdGets || len(req.Keys) != 3 || req.Keys[2] != "c" {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseSet(t *testing.T) {
	req, err := ReadRequest(reader("set foo 7 300 5\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdSet || req.Key() != "foo" || req.Flags != 7 ||
		req.Exptime != 300 || string(req.Data) != "hello" || req.NoReply {
		t.Fatalf("req = %+v", req)
	}
	req, err = ReadRequest(reader("set foo 0 0 3 noreply\r\nabc\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !req.NoReply {
		t.Fatal("noreply not parsed")
	}
}

func TestParseBinaryValueWithCRLFInside(t *testing.T) {
	payload := "ab\r\ncd"
	req, err := ReadRequest(reader("set k 0 0 6\r\n" + payload + "\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Data) != payload {
		t.Fatalf("data = %q, want %q", req.Data, payload)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus foo\r\n",
		"get\r\n",
		"get bad key with space extra\x01\r\n",
		"set foo 0 0\r\n",
		"set foo x 0 5\r\nhello\r\n",
		"set foo 0 0 -1\r\n",
		"set foo 0 0 5\r\nhi\r\n", // short body
		"set foo 0 0 2\r\nhiX",    // missing CRLF
		"delete\r\n",
		"touch foo\r\n",
		"touch foo abc\r\n",
	}
	for _, in := range cases {
		if _, err := ReadRequest(reader(in)); err == nil {
			t.Errorf("ReadRequest(%q): want error", in)
		}
	}
}

func TestParseCleanEOF(t *testing.T) {
	if _, err := ReadRequest(reader("")); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	_, err := ReadRequest(reader("set k 0 0 999999999\r\n"))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestSimpleCommands(t *testing.T) {
	for in, want := range map[string]Command{
		"stats\r\n":      CmdStats,
		"flush_all\r\n":  CmdFlushAll,
		"version\r\n":    CmdVersion,
		"quit\r\n":       CmdQuit,
		"delete k\r\n":   CmdDelete,
		"touch k 30\r\n": CmdTouch,
	} {
		req, err := ReadRequest(reader(in))
		if err != nil {
			t.Errorf("ReadRequest(%q): %v", in, err)
			continue
		}
		if req.Command != want {
			t.Errorf("ReadRequest(%q) = %v, want %v", in, req.Command, want)
		}
	}
}

// Round trip: client encoding must parse back identically.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Command: CmdGet, Keys: []string{"alpha"}},
		{Command: CmdGets, Keys: []string{"a", "b", "c"}},
		{Command: CmdSet, Keys: []string{"k"}, Flags: 42, Exptime: 60, Data: []byte("payload")},
		{Command: CmdAdd, Keys: []string{"k"}, Data: []byte{}},
		{Command: CmdReplace, Keys: []string{"k"}, Data: []byte("x"), NoReply: true},
		{Command: CmdDelete, Keys: []string{"gone"}},
		{Command: CmdTouch, Keys: []string{"k"}, Exptime: 99},
		{Command: CmdStats},
		{Command: CmdFlushAll},
		{Command: CmdVersion},
		{Command: CmdQuit},
	}
	for _, want := range reqs {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := want.WriteTo(bw); err != nil {
			t.Fatalf("WriteTo(%v): %v", want.Command, err)
		}
		bw.Flush()
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("ReadRequest(%v encoding %q): %v", want.Command, buf.String(), err)
		}
		if got.Command != want.Command || got.Key() != want.Key() ||
			got.Flags != want.Flags || got.Exptime != want.Exptime ||
			!bytes.Equal(got.Data, want.Data) || got.NoReply != want.NoReply {
			t.Fatalf("round trip %v: got %+v want %+v", want.Command, got, want)
		}
	}
}

// Property: any byte payload survives a set round trip.
func TestQuickSetDataRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		if len(data) > MaxValueLen {
			data = data[:MaxValueLen]
		}
		req := &Request{Command: CmdSet, Keys: []string{"k"}, Data: data}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := req.WriteTo(bw); err != nil {
			return false
		}
		bw.Flush()
		got, err := ReadRequest(bufio.NewReader(&buf))
		return err == nil && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValuesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	want := []Value{
		{Key: "a", Flags: 1, Data: []byte("one")},
		{Key: "b", Flags: 0, Data: []byte{}},
		{Key: "c", Flags: 7, Data: []byte("bin\r\ndata")},
	}
	for _, v := range want {
		if err := WriteValue(bw, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteEnd(bw); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, err := ReadValues(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Flags != want[i].Flags || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("value %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReadValuesEmpty(t *testing.T) {
	got, err := ReadValues(reader("END\r\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestReadReplyAndErrors(t *testing.T) {
	if r, err := ReadReply(reader("STORED\r\n")); err != nil || r != ReplyStored {
		t.Fatalf("got %q, %v", r, err)
	}
	_, err := ReadReply(reader("SERVER_ERROR out of memory\r\n"))
	var se *ServerError
	if !errors.As(err, &se) || se.Kind != "SERVER_ERROR" || se.Message != "out of memory" {
		t.Fatalf("err = %v", err)
	}
	_, err = ReadReply(reader("ERROR\r\n"))
	if !errors.As(err, &se) || se.Kind != ReplyError {
		t.Fatalf("err = %v", err)
	}
	_, err = ReadValues(reader("CLIENT_ERROR bad line\r\n"))
	if !errors.As(err, &se) || se.Kind != "CLIENT_ERROR" {
		t.Fatalf("err = %v", err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	want := map[string]string{"curr_items": "10", "get_hits": "99", "version": "proteus-1.0"}
	if err := WriteStats(bw, want); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, err := ReadStats(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("stat %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestCommandString(t *testing.T) {
	if CmdGet.String() != "get" || CmdFlushAll.String() != "flush_all" {
		t.Fatal("command names wrong")
	}
	if s := Command(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown command string = %q", s)
	}
}
