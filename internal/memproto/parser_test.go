package memproto

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// Parser.Next must hand back requests whose scratch is safely reused:
// the Request and Keys slice are invalidated by the next call, but Data
// and the key strings are fresh allocations the caller may keep.
func TestParserPipelinedStream(t *testing.T) {
	var in bytes.Buffer
	in.WriteString("set k1 7 0 3\r\nabc\r\n")
	in.WriteString("get k1 k2 k3\r\n")
	in.WriteString("delete k1 noreply\r\n")
	in.WriteString("incr n 5\r\n")
	p := NewParser(bufio.NewReader(&in))

	req, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdSet || req.Key() != "k1" || req.Flags != 7 || string(req.Data) != "abc" {
		t.Fatalf("set parsed as %+v", req)
	}
	keptKey, keptData := req.Key(), req.Data

	req, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdGet || len(req.Keys) != 3 || req.Keys[2] != "k3" {
		t.Fatalf("get parsed as %+v", req)
	}
	// Values retained from the previous request must be unaffected by
	// the parser reusing its scratch.
	if keptKey != "k1" || string(keptData) != "abc" {
		t.Fatalf("retained key/data corrupted by reuse: %q %q", keptKey, keptData)
	}

	req, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdDelete || !req.NoReply {
		t.Fatalf("delete parsed as %+v", req)
	}

	req, err = p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Command != CmdIncr || req.Delta != 5 {
		t.Fatalf("incr parsed as %+v", req)
	}

	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("end of stream error = %v, want io.EOF", err)
	}
}

// Steady-state parsing of a single-key GET allocates only the key
// string itself (the line buffer, field table and Request are scratch).
func TestParserGetAllocs(t *testing.T) {
	payload := []byte("get somekey\r\n")
	r := bytes.NewReader(payload)
	br := bufio.NewReader(r)
	p := NewParser(br)
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := r.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		br.Reset(r)
		req, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if req.Key() != "somekey" {
			t.Fatalf("parsed key %q", req.Key())
		}
	})
	if allocs > 1 {
		t.Errorf("GET parse allocates %.1f objects/op, want <= 1 (the key string)", allocs)
	}
}

// The numeric field parsers must agree with strconv on bounds.
func TestParseNumericBytes(t *testing.T) {
	if _, ok := parseUintBytes([]byte("4294967295"), 32); !ok {
		t.Error("uint32 max rejected")
	}
	if _, ok := parseUintBytes([]byte("4294967296"), 32); ok {
		t.Error("uint32 overflow accepted")
	}
	if _, ok := parseUintBytes([]byte("18446744073709551615"), 64); !ok {
		t.Error("uint64 max rejected")
	}
	if _, ok := parseUintBytes([]byte("18446744073709551616"), 64); ok {
		t.Error("uint64 overflow accepted")
	}
	if _, ok := parseUintBytes([]byte("-1"), 64); ok {
		t.Error("negative accepted as uint")
	}
	if _, ok := parseUintBytes([]byte(""), 64); ok {
		t.Error("empty accepted as uint")
	}
	if n, ok := parseIntBytes([]byte("-9223372036854775808")); !ok || n != -9223372036854775808 {
		t.Errorf("int64 min = %d, %v", n, ok)
	}
	if _, ok := parseIntBytes([]byte("-9223372036854775809")); ok {
		t.Error("int64 underflow accepted")
	}
	if n, ok := parseIntBytes([]byte("9223372036854775807")); !ok || n != 9223372036854775807 {
		t.Errorf("int64 max = %d, %v", n, ok)
	}
	if _, ok := parseIntBytes([]byte("9223372036854775808")); ok {
		t.Error("int64 overflow accepted")
	}
	if n, ok := parseIntBytes([]byte("+42")); !ok || n != 42 {
		t.Errorf("+42 = %d, %v", n, ok)
	}
	if _, ok := parseIntBytes([]byte("-")); ok {
		t.Error("bare sign accepted")
	}
}
