package memproto

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Server-side response writers.

// WriteValue emits one VALUE block of a retrieval response. When
// v.HasCAS is set the CAS token is appended ("gets" responses).
func WriteValue(bw *bufio.Writer, v Value) error {
	var err error
	if v.HasCAS {
		_, err = fmt.Fprintf(bw, "VALUE %s %d %d %d\r\n", v.Key, v.Flags, len(v.Data), v.CAS)
	} else {
		_, err = fmt.Fprintf(bw, "VALUE %s %d %d\r\n", v.Key, v.Flags, len(v.Data))
	}
	if err != nil {
		return err
	}
	if _, err := bw.Write(v.Data); err != nil {
		return err
	}
	_, err = bw.WriteString("\r\n")
	return err
}

// WriteNumber emits an incr/decr result line.
func WriteNumber(bw *bufio.Writer, n uint64) error {
	_, err := fmt.Fprintf(bw, "%d\r\n", n)
	return err
}

// WriteEnd terminates a retrieval or stats response.
func WriteEnd(bw *bufio.Writer) error {
	_, err := bw.WriteString(ReplyEnd + "\r\n")
	return err
}

// WriteReply emits a single reply line such as STORED or NOT_FOUND.
func WriteReply(bw *bufio.Writer, reply string) error {
	_, err := bw.WriteString(reply + "\r\n")
	return err
}

// WriteStats emits STAT lines (sorted for determinism) followed by END.
func WriteStats(bw *bufio.Writer, stats map[string]string) error {
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(bw, "STAT %s %s\r\n", name, stats[name]); err != nil {
			return err
		}
	}
	return WriteEnd(bw)
}

// WriteClientError emits a CLIENT_ERROR line (bad request syntax).
func WriteClientError(bw *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(bw, "CLIENT_ERROR %s\r\n", msg)
	return err
}

// WriteServerError emits a SERVER_ERROR line (server-side failure).
func WriteServerError(bw *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(bw, "SERVER_ERROR %s\r\n", msg)
	return err
}

// Client-side response readers.

// ServerError is a SERVER_ERROR or CLIENT_ERROR reply surfaced as a Go
// error by the client readers.
type ServerError struct {
	Kind    string // "SERVER_ERROR", "CLIENT_ERROR" or "ERROR"
	Message string
}

func (e *ServerError) Error() string {
	if e.Message == "" {
		return "memproto: " + e.Kind
	}
	return "memproto: " + e.Kind + ": " + e.Message
}

// errorReply converts an error reply line to a *ServerError, or nil if
// the line is not an error reply.
func errorReply(line string) *ServerError {
	switch {
	case line == ReplyError:
		return &ServerError{Kind: ReplyError}
	case strings.HasPrefix(line, "CLIENT_ERROR"):
		return &ServerError{Kind: "CLIENT_ERROR", Message: strings.TrimSpace(strings.TrimPrefix(line, "CLIENT_ERROR"))}
	case strings.HasPrefix(line, "SERVER_ERROR"):
		return &ServerError{Kind: "SERVER_ERROR", Message: strings.TrimSpace(strings.TrimPrefix(line, "SERVER_ERROR"))}
	}
	return nil
}

// ReadValues consumes a retrieval response: zero or more VALUE blocks
// terminated by END.
func ReadValues(br *bufio.Reader) ([]Value, error) {
	var values []Value
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == ReplyEnd {
			return values, nil
		}
		if se := errorReply(line); se != nil {
			return nil, se
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields) > 5 || fields[0] != "VALUE" {
			return nil, fmt.Errorf("%w: unexpected retrieval line %q", ErrProtocol, line)
		}
		flags, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: bad flags in %q", ErrProtocol, line)
		}
		size, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || size < 0 || size > MaxValueLen {
			return nil, fmt.Errorf("%w: bad size in %q", ErrProtocol, line)
		}
		value := Value{Key: fields[1], Flags: uint32(flags)}
		if len(fields) == 5 {
			cas, err := strconv.ParseUint(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad cas in %q", ErrProtocol, line)
			}
			value.CAS, value.HasCAS = cas, true
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("%w: short value body: %v", ErrProtocol, err)
		}
		if err := expectCRLF(br); err != nil {
			return nil, err
		}
		value.Data = data
		values = append(values, value)
	}
}

// ReadReply consumes one reply line (STORED, DELETED, ...), converting
// error replies into *ServerError.
func ReadReply(br *bufio.Reader) (string, error) {
	line, err := readLine(br)
	if err != nil {
		return "", err
	}
	if se := errorReply(line); se != nil {
		return "", se
	}
	return line, nil
}

// ReadStats consumes a stats response into a map.
func ReadStats(br *bufio.Reader) (map[string]string, error) {
	stats := make(map[string]string)
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == ReplyEnd {
			return stats, nil
		}
		if se := errorReply(line); se != nil {
			return nil, se
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("%w: unexpected stats line %q", ErrProtocol, line)
		}
		stats[fields[1]] = fields[2]
	}
}
