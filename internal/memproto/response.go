package memproto

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Server-side response writers.
//
// The hot-path writers (WriteValue, WriteNumber, WriteReply, WriteEnd)
// are allocation-free: numbers are formatted with strconv.AppendUint
// into stack arrays and lines are emitted as a sequence of WriteString
// and Write calls so a GET hit costs zero heap allocations end to end.

// maxDecimalLen is the longest decimal rendering the writers emit
// (math.MinInt64 with its sign).
const maxDecimalLen = 20

// writeUint appends n in decimal without allocating. The digits are
// appended into the writer's own buffer (AvailableBuffer); a stack
// array would escape through the Write call and defeat the zero-alloc
// contract.
//
//lint:hotpath decimal encode on every response
func writeUint(bw *bufio.Writer, n uint64) {
	if bw.Available() < maxDecimalLen {
		// Make room; a short early flush is harmless and its error is
		// sticky — the Write below reports it.
		_ = bw.Flush()
	}
	//lint:allow hotalloc AppendUint writes into the writer's spare capacity (AvailableBuffer); allocation-free once the buffer is sized
	bw.Write(strconv.AppendUint(bw.AvailableBuffer(), n, 10))
}

// writeInt appends n in decimal without allocating.
func writeInt(bw *bufio.Writer, n int64) {
	if bw.Available() < maxDecimalLen {
		_ = bw.Flush() // as in writeUint: sticky error, reported below
	}
	bw.Write(strconv.AppendInt(bw.AvailableBuffer(), n, 10))
}

// WriteValue emits one VALUE block of a retrieval response. When
// v.HasCAS is set the CAS token is appended ("gets" responses).
//
//lint:hotpath VALUE block on every hit
func WriteValue(bw *bufio.Writer, v Value) error {
	bw.WriteString("VALUE ")
	bw.WriteString(v.Key)
	bw.WriteByte(' ')
	writeUint(bw, uint64(v.Flags))
	bw.WriteByte(' ')
	writeUint(bw, uint64(len(v.Data)))
	if v.HasCAS {
		bw.WriteByte(' ')
		writeUint(bw, v.CAS)
	}
	bw.WriteString("\r\n")
	bw.Write(v.Data)
	_, err := bw.WriteString("\r\n")
	return err
}

// WriteNumber emits an incr/decr result line.
func WriteNumber(bw *bufio.Writer, n uint64) error {
	writeUint(bw, n)
	_, err := bw.WriteString("\r\n")
	return err
}

// WriteEnd terminates a retrieval or stats response.
//
//lint:hotpath terminator on every retrieval response
func WriteEnd(bw *bufio.Writer) error {
	_, err := bw.WriteString(ReplyEnd + "\r\n")
	return err
}

// WriteReply emits a single reply line such as STORED or NOT_FOUND.
func WriteReply(bw *bufio.Writer, reply string) error {
	if _, err := bw.WriteString(reply); err != nil {
		return err
	}
	_, err := bw.WriteString("\r\n")
	return err
}

// WriteStats emits STAT lines (sorted for determinism) followed by END.
func WriteStats(bw *bufio.Writer, stats map[string]string) error {
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bw.WriteString("STAT ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(stats[name])
		if _, err := bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	return WriteEnd(bw)
}

// WriteClientError emits a CLIENT_ERROR line (bad request syntax).
func WriteClientError(bw *bufio.Writer, msg string) error {
	bw.WriteString("CLIENT_ERROR ")
	bw.WriteString(msg)
	_, err := bw.WriteString("\r\n")
	return err
}

// WriteServerError emits a SERVER_ERROR line (server-side failure).
func WriteServerError(bw *bufio.Writer, msg string) error {
	bw.WriteString("SERVER_ERROR ")
	bw.WriteString(msg)
	_, err := bw.WriteString("\r\n")
	return err
}

// Client-side response readers.

// ServerError is a SERVER_ERROR or CLIENT_ERROR reply surfaced as a Go
// error by the client readers.
type ServerError struct {
	Kind    string // "SERVER_ERROR", "CLIENT_ERROR" or "ERROR"
	Message string
}

func (e *ServerError) Error() string {
	if e.Message == "" {
		return "memproto: " + e.Kind
	}
	return "memproto: " + e.Kind + ": " + e.Message
}

// errorReply converts an error reply line to a *ServerError, or nil if
// the line is not an error reply.
func errorReply(line string) *ServerError {
	switch {
	case line == ReplyError:
		return &ServerError{Kind: ReplyError}
	case strings.HasPrefix(line, "CLIENT_ERROR"):
		return &ServerError{Kind: "CLIENT_ERROR", Message: strings.TrimSpace(strings.TrimPrefix(line, "CLIENT_ERROR"))}
	case strings.HasPrefix(line, "SERVER_ERROR"):
		return &ServerError{Kind: "SERVER_ERROR", Message: strings.TrimSpace(strings.TrimPrefix(line, "SERVER_ERROR"))}
	}
	return nil
}

// ReadValues consumes a retrieval response: zero or more VALUE blocks
// terminated by END.
func ReadValues(br *bufio.Reader) ([]Value, error) {
	return ReadValuesAppend(br, nil)
}

// ReadValuesAppend is ReadValues appending into dst, so pipelined
// clients can reuse one scratch slice across batches. The Value structs
// are appended to dst's backing array; each Data payload is still a
// fresh allocation (callers retain it).
func ReadValuesAppend(br *bufio.Reader, dst []Value) ([]Value, error) {
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == ReplyEnd {
			return dst, nil
		}
		if se := errorReply(line); se != nil {
			return nil, se
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields) > 5 || fields[0] != "VALUE" {
			return nil, fmt.Errorf("%w: unexpected retrieval line %q", ErrProtocol, line)
		}
		flags, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: bad flags in %q", ErrProtocol, line)
		}
		size, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || size < 0 || size > MaxValueLen {
			return nil, fmt.Errorf("%w: bad size in %q", ErrProtocol, line)
		}
		value := Value{Key: fields[1], Flags: uint32(flags)}
		if len(fields) == 5 {
			cas, err := strconv.ParseUint(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad cas in %q", ErrProtocol, line)
			}
			value.CAS, value.HasCAS = cas, true
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("%w: short value body: %v", ErrProtocol, err)
		}
		if err := expectCRLF(br); err != nil {
			return nil, err
		}
		value.Data = data
		dst = append(dst, value)
	}
}

// ReadReply consumes one reply line (STORED, DELETED, ...), converting
// error replies into *ServerError.
func ReadReply(br *bufio.Reader) (string, error) {
	line, err := readLine(br)
	if err != nil {
		return "", err
	}
	if se := errorReply(line); se != nil {
		return "", se
	}
	return line, nil
}

// ReadStats consumes a stats response into a map.
func ReadStats(br *bufio.Reader) (map[string]string, error) {
	stats := make(map[string]string)
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == ReplyEnd {
			return stats, nil
		}
		if se := errorReply(line); se != nil {
			return nil, se
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("%w: unexpected stats line %q", ErrProtocol, line)
		}
		stats[fields[1]] = fields[2]
	}
}
