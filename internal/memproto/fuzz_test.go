package memproto

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// linesFit reports whether every LF-terminated line of a canonical
// encoding is within maxLineLen. A parsed input line of exactly
// maxLineLen bytes with a bare-LF terminator re-encodes one byte longer
// (CRLF), so the round trip only holds when the canonical form still
// fits. Value bodies containing '\n' can make this spuriously false,
// which merely skips the round trip for that input.
func linesFit(wire []byte) bool {
	for _, line := range bytes.Split(wire, []byte("\n")) {
		if len(line)+1 > maxLineLen {
			return false
		}
	}
	return true
}

// encodeRequest renders a request through WriteTo, failing the fuzz run
// if a successfully parsed request cannot be re-encoded.
func encodeRequest(t *testing.T, req *Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := req.WriteTo(bw); err != nil {
		t.Fatalf("WriteTo failed on parsed request %+v: %v", req, err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseRequest feeds arbitrary bytes to the server-side command
// parser. It must never panic; when it accepts a command, the request
// must respect the protocol limits and the encode→parse→encode cycle
// must reach a byte-identical fixpoint.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"gets alpha beta gamma\r\n",
		"set k 7 30 5\r\nhello\r\n",
		"add k 0 0 0\r\n\r\n",
		"replace k 0 0 3 noreply\r\nabc\r\n",
		"cas k 0 0 2 99\r\nhi\r\n",
		"append k 0 0 1\r\nx\r\n",
		"prepend k 0 0 1\r\ny\r\n",
		"incr counter 5\r\n",
		"decr counter 1 noreply\r\n",
		"delete k\r\n",
		"delete k noreply\r\n",
		"touch k 120\r\n",
		"stats\r\n",
		"flush_all\r\n",
		"version\r\n",
		"quit\r\n",
		// Digest maintenance goes through plain gets on reserved keys.
		"get SET_BLOOM_FILTER\r\n",
		"get BLOOM_FILTER\r\n",
		// Adversarial shapes: truncation, bad sizes, oversized fields.
		"set k 0 0 5\r\nhi\r\n",
		"set k 0 0 99999999999999999999\r\n",
		"set k 0 0 -1\r\nx\r\n",
		"get " + strings.Repeat("k", MaxKeyLen+1) + "\r\n",
		"get\r\n",
		"set k 0 0 1\r\nx",
		"incr k notanumber\r\n",
		"bogus command\r\n",
		"\r\n",
		strings.Repeat("g", maxLineLen+1) + "\r\n",
		"get k\nset k 0 0 1\nx\n",
		"get \x00key\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(in)))
		if err != nil {
			return
		}
		for _, k := range req.Keys {
			if !ValidKey(k) {
				t.Fatalf("parser accepted invalid key %q", k)
			}
		}
		if len(req.Data) > MaxValueLen {
			t.Fatalf("parser accepted %d-byte value", len(req.Data))
		}

		// Encode→parse→encode fixpoint. Struct equality is too strict —
		// the encoder canonicalizes (e.g. drops noreply on flush_all) —
		// but a canonical encoding must survive its own round trip.
		wire := encodeRequest(t, req)
		if !linesFit(wire) {
			return
		}
		req2, err := ReadRequest(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("re-parse of encoded request failed: %v\nwire: %q", err, wire)
		}
		if wire2 := encodeRequest(t, req2); !bytes.Equal(wire, wire2) {
			t.Fatalf("encoding not a fixpoint:\n%q\n%q", wire, wire2)
		}
	})
}

// FuzzParseResponse feeds arbitrary bytes to the three client-side
// response readers. None may panic; parsed retrieval and stats
// responses must survive a re-encode round trip.
func FuzzParseResponse(f *testing.F) {
	seeds := []string{
		"END\r\n",
		"VALUE k 0 5\r\nhello\r\nEND\r\n",
		"VALUE k 7 0\r\n\r\nEND\r\n",
		"VALUE a 0 1 42\r\nx\r\nVALUE b 1 2\r\nyz\r\nEND\r\n",
		"STORED\r\n",
		"NOT_STORED\r\n",
		"DELETED\r\n",
		"NOT_FOUND\r\n",
		"TOUCHED\r\n",
		"OK\r\n",
		"ERROR\r\n",
		"CLIENT_ERROR bad command line format\r\n",
		"SERVER_ERROR out of memory storing object\r\n",
		"STAT pid 1234\r\nSTAT uptime 5\r\nEND\r\n",
		"STAT curr_items 0\r\nEND\r\n",
		// Adversarial shapes: truncated bodies, size lies, bad lines.
		"VALUE k 0 10\r\nshort\r\nEND\r\n",
		"VALUE k 0 99999999999999999999\r\n",
		"VALUE k 0 -3\r\nEND\r\n",
		"VALUE k\r\nEND\r\n",
		"SERVER_ERROR digest snapshot failed\r\nEND\r\n",
		"STAT onlyname\r\nEND\r\n",
		"VALUE k 0 3\r\nEND\r\nEND\r\n",
		"123\r\n",
		"\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		if values, err := ReadValues(bufio.NewReader(bytes.NewReader(in))); err == nil {
			for _, v := range values {
				if len(v.Data) > MaxValueLen {
					t.Fatalf("reader accepted %d-byte value", len(v.Data))
				}
			}
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			for _, v := range values {
				if err := WriteValue(bw, v); err != nil {
					t.Fatal(err)
				}
			}
			if err := WriteEnd(bw); err != nil {
				t.Fatal(err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			if linesFit(buf.Bytes()) {
				again, err := ReadValues(bufio.NewReader(&buf))
				if err != nil {
					t.Fatalf("re-parse of encoded values failed: %v", err)
				}
				if len(again) != len(values) {
					t.Fatalf("round trip changed value count: %d vs %d", len(values), len(again))
				}
				for i := range values {
					if !reflect.DeepEqual(values[i], again[i]) {
						t.Fatalf("value %d changed in round trip:\n%+v\n%+v", i, values[i], again[i])
					}
				}
			}
		}

		// readLine preserves interior carriage returns (only the trailing
		// CRLF is trimmed), so the invariant is newline-freedom only.
		if reply, err := ReadReply(bufio.NewReader(bytes.NewReader(in))); err == nil {
			if strings.Contains(reply, "\n") {
				t.Fatalf("reply line contains newline: %q", reply)
			}
		}

		if stats, err := ReadStats(bufio.NewReader(bytes.NewReader(in))); err == nil {
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			if err := WriteStats(bw, stats); err != nil {
				t.Fatal(err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			if linesFit(buf.Bytes()) {
				again, err := ReadStats(bufio.NewReader(&buf))
				if err != nil {
					t.Fatalf("re-parse of encoded stats failed: %v", err)
				}
				if !reflect.DeepEqual(stats, again) {
					t.Fatalf("stats changed in round trip:\n%v\n%v", stats, again)
				}
			}
		}
	})
}
