// Package memproto implements the memcached text protocol subset that
// Proteus cache servers and clients speak: get/gets, set/add/replace,
// delete, touch, stats, flush_all, version and quit, with the standard
// STORED/NOT_STORED/DELETED/NOT_FOUND/TOUCHED/OK replies and the
// VALUE...END data format. The request and response codecs are shared
// between internal/cacheserver and internal/cacheclient so the wire
// format is defined exactly once.
//
// The paper keeps the protocol untouched and reserves two key names for
// digest maintenance: get("SET_BLOOM_FILTER") snapshots the server's
// counting Bloom filter and get("BLOOM_FILTER") retrieves the snapshot
// bytes as a normal value, so any stock memcached client can fetch a
// digest. Those keys are interpreted by internal/cacheserver, not here.
package memproto

import (
	"errors"
	"fmt"
)

// Command identifies a parsed request type.
type Command int

// Supported commands.
const (
	CmdGet Command = iota + 1
	CmdGets
	CmdSet
	CmdAdd
	CmdReplace
	CmdCas
	CmdAppend
	CmdPrepend
	CmdIncr
	CmdDecr
	CmdDelete
	CmdTouch
	CmdStats
	CmdFlushAll
	CmdVersion
	CmdQuit
)

var commandNames = map[Command]string{
	CmdGet:      "get",
	CmdGets:     "gets",
	CmdSet:      "set",
	CmdAdd:      "add",
	CmdReplace:  "replace",
	CmdCas:      "cas",
	CmdAppend:   "append",
	CmdPrepend:  "prepend",
	CmdIncr:     "incr",
	CmdDecr:     "decr",
	CmdDelete:   "delete",
	CmdTouch:    "touch",
	CmdStats:    "stats",
	CmdFlushAll: "flush_all",
	CmdVersion:  "version",
	CmdQuit:     "quit",
}

func (c Command) String() string {
	if s, ok := commandNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Command(%d)", int(c))
}

// Protocol limits, matching memcached defaults.
const (
	// MaxKeyLen is the longest accepted key (memcached's 250).
	MaxKeyLen = 250
	// MaxValueLen is the largest accepted value (memcached's 1 MB
	// default; Proteus digests of the paper's recommended size fit).
	MaxValueLen = 8 << 20
	// MaxLineLen bounds a command line. Clients batching multi-key
	// gets must split key lists so each line stays within it.
	MaxLineLen = 4096
	maxLineLen = MaxLineLen
)

// Errors shared by the codec.
var (
	// ErrProtocol reports a malformed command or reply line.
	ErrProtocol = errors.New("memproto: protocol error")
	// ErrTooLarge reports a value exceeding MaxValueLen.
	ErrTooLarge = errors.New("memproto: value too large")
	// ErrBadKey reports an invalid key (empty, too long, or containing
	// whitespace/control bytes).
	ErrBadKey = errors.New("memproto: invalid key")
)

// ValidKey reports whether a key is legal on the wire.
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// Value is one VALUE block in a retrieval response. CAS is present
// only in "gets" responses (HasCAS reports it).
type Value struct {
	Key    string
	Flags  uint32
	Data   []byte
	CAS    uint64
	HasCAS bool
}

// Reply lines for storage/management commands.
const (
	ReplyStored    = "STORED"
	ReplyNotStored = "NOT_STORED"
	ReplyDeleted   = "DELETED"
	ReplyNotFound  = "NOT_FOUND"
	ReplyTouched   = "TOUCHED"
	ReplyOK        = "OK"
	ReplyEnd       = "END"
	ReplyError     = "ERROR"
	ReplyExists    = "EXISTS"
)
