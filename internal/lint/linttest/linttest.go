// Package linttest runs an analyzer over fixture packages and checks
// its findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live under <testdata>/src/<importpath>/ and are plain Go
// packages (type-checked for real, against the standard library from
// GOROOT source plus any sibling fixture packages). A line expecting a
// finding carries a comment of the form
//
//	code() // want "regexp"
//
// with one quoted regexp per expected finding on that line. Findings
// suppressed by a well-formed //lint:allow directive are dropped before
// matching, so the allowlist path is testable by writing a fixture line
// with a directive and no want comment — and the converse (a malformed
// directive suppresses nothing) by writing one with both. Malformed-
// directive reporting itself is unit-tested in package analysis.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/callgraph"
	"proteus/internal/lint/loader"
)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's findings against the // want comments in its files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	l := loader.NewSrcRoot(srcRoot)
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(a, l.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		expects, err := parseExpectations(l.Fset, pkg.Files)
		if err != nil {
			t.Errorf("fixture %s: %v", path, err)
			continue
		}
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			if !claim(expects, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected finding: %s (%s)", pos.Filename, pos.Line, d.Message, d.Analyzer)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.raw)
			}
		}
	}
}

// RunProgram loads every fixture package under testdata/src, builds
// one call graph over all of them, runs a whole-program analyzer, and
// checks its findings against the // want comments across every
// fixture file. Unlike Run, expectations and findings are matched
// globally: an interprocedural analyzer may report in any loaded
// package.
func RunProgram(t *testing.T, testdata string, a *callgraph.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	l := loader.NewSrcRoot(srcRoot)
	var pkgs []*loader.Package
	var files []*ast.File
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			return
		}
		pkgs = append(pkgs, pkg)
		files = append(files, pkg.Files...)
	}
	prog, err := callgraph.Build(l.Fset, pkgs)
	if err != nil {
		t.Errorf("building call graph: %v", err)
		return
	}
	diags, _, err := callgraph.RunAll(a, prog)
	if err != nil {
		t.Errorf("running %s: %v", a.Name, err)
		return
	}
	expects, err := parseExpectations(l.Fset, files)
	if err != nil {
		t.Errorf("fixtures %v: %v", pkgPaths, err)
		return
	}
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected finding: %s (%s)", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose
// regexp matches msg, reporting whether one was found.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations extracts // want comments from the fixture files.
func parseExpectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					text, ok = strings.CutPrefix(c.Text, "//want ")
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitQuoted(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				if len(patterns) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no patterns", pos.Filename, pos.Line)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return out, nil
}

// splitQuoted parses a sequence of Go string literals ("..." or `...`)
// separated by spaces.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	return out, nil
}
