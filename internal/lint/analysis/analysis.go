// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The build environment for this repository is intentionally hermetic
// (no module proxy), so the real x/tools framework is unavailable; this
// package mirrors its shape closely enough that the analyzers in
// internal/lint/* could be ported to x/tools drivers by swapping the
// import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages for
	// which it returns true (matched against the package import path).
	// Drivers honour it; test harnesses run the analyzer regardless so
	// fixtures can live under synthetic import paths.
	AppliesTo func(pkgPath string) bool
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ObjectOf is a nil-safe TypesInfo.ObjectOf.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.ObjectOf(id)
}

// TypeOf is a nil-safe TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// Run executes one analyzer over one package and returns its findings
// sorted by position, with //lint:allow-suppressed findings removed.
// Malformed directives suppress nothing; drivers surface them via
// CheckDirectives, once per package.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	kept, _, err := RunAll(a, fset, files, pkg, info)
	return kept, err
}

// RunAll is Run, but additionally returns the findings a //lint:allow
// directive suppressed, so machine-readable drivers (proteuslint -json)
// can report the full picture. Both slices are sorted by position.
func RunAll(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (kept, suppressed []Diagnostic, err error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	kept, suppressed = SuppressSplit(fset, files, pass.diagnostics)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	sort.Slice(suppressed, func(i, j int) bool { return suppressed[i].Pos < suppressed[j].Pos })
	return kept, suppressed, nil
}

// CheckDirectives validates every //lint:allow directive in files,
// reporting malformed ones as diagnostics under the pseudo-analyzer
// "directive": a directive with no analyzer name, one with no recorded
// reason (an allowlist entry without justification is itself a
// finding), and — when known is non-nil — one naming an analyzer that
// does not exist (a typo there would silently suppress nothing).
// Drivers call it once per package, not once per analyzer.
func CheckDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch {
				case d.analyzer == "":
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
						Analyzer: "directive",
					})
				case d.reason == "":
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("//lint:allow %s without a reason: every suppression must record its justification", d.analyzer),
						Analyzer: "directive",
					})
				case known != nil && !known[d.analyzer]:
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q (typo? it suppresses nothing)", d.analyzer),
						Analyzer: "directive",
					})
				}
			}
		}
	}
	return out
}
