package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// src exercises every directive placement: same-line, line-above,
// malformed (no reason, and bare), mismatched analyzer name, and an
// unknown analyzer name (a typo that would silently suppress nothing).
const src = `package p

var s1, s2, s3, s4, s5, s6 int

func f() {
	s1 = 1 //lint:allow demo covered by the integration harness
}

func g() {
	//lint:allow demo covered by the integration harness
	s2 = 2
}

func h() {
	//lint:allow demo
	s3 = 3
}

func i() {
	//lint:allow other different analyzer, must not suppress demo
	s4 = 4
}

func j() {
	//lint:allow
	s5 = 5
}

func k() {
	//lint:allow demmo reason is present but the analyzer name is a typo
	s6 = 6
}
`

func parseSrc(t *testing.T) (*token.FileSet, []*ast.File, []token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var assigns []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			assigns = append(assigns, as.Pos())
		}
		return true
	})
	if len(assigns) != 6 {
		t.Fatalf("fixture has %d assignments, want 6", len(assigns))
	}
	return fset, []*ast.File{f}, assigns
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string
		reason   string
	}{
		{"//lint:allow demo some reason", true, "demo", "some reason"},
		{"//lint:allow demo\ttab separated reason", true, "demo", "tab separated reason"},
		{"//lint:allow demo", true, "demo", ""},
		{"//lint:allow", true, "", ""},
		{"//lint:allowance is a different word", false, "", ""},
		{"// lint:allow demo reason", false, "", ""},
		{"// ordinary comment", false, "", ""},
	}
	for _, c := range cases {
		d, ok := parseDirective(c.text)
		if ok != c.ok || d.analyzer != c.analyzer || d.reason != c.reason {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, d.analyzer, d.reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

func TestSuppress(t *testing.T) {
	fset, files, assigns := parseSrc(t)
	var diags []Diagnostic
	for _, pos := range assigns {
		diags = append(diags, Diagnostic{Pos: pos, Message: "assignment", Analyzer: "demo"})
	}
	kept, suppressed := SuppressSplit(fset, files, diags)
	// s1 (same-line directive) and s2 (line-above directive) are
	// suppressed; s3 (no reason), s4 (other analyzer), s5 (bare), and
	// s6 (unknown analyzer name) stay.
	if len(kept) != 4 {
		t.Fatalf("Suppress kept %d diagnostics, want 4", len(kept))
	}
	wantLines := []int{16, 21, 26, 31}
	for i, d := range kept {
		if line := fset.Position(d.Pos).Line; line != wantLines[i] {
			t.Errorf("kept[%d] at line %d, want %d", i, line, wantLines[i])
		}
	}
	wantSuppressed := []int{6, 11}
	if len(suppressed) != len(wantSuppressed) {
		t.Fatalf("Suppress dropped %d diagnostics, want %d", len(suppressed), len(wantSuppressed))
	}
	for i, d := range suppressed {
		if line := fset.Position(d.Pos).Line; line != wantSuppressed[i] {
			t.Errorf("suppressed[%d] at line %d, want %d", i, line, wantSuppressed[i])
		}
	}
}

func TestCheckDirectives(t *testing.T) {
	fset, files, _ := parseSrc(t)
	known := map[string]bool{"demo": true, "other": true}
	diags := CheckDirectives(fset, files, known)
	// The reasonless directive above s3, the bare one above s5, and the
	// typo'd analyzer name above s6.
	if len(diags) != 3 {
		t.Fatalf("CheckDirectives reported %d, want 3", len(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("diagnostic attributed to %q, want \"directive\"", d.Analyzer)
		}
	}
	wantLines := []int{15, 25, 30}
	wantSubstr := []string{"without a reason", "malformed", "unknown analyzer"}
	for i, d := range diags {
		if line := fset.Position(d.Pos).Line; line != wantLines[i] {
			t.Errorf("malformed directive %d at line %d, want %d", i, line, wantLines[i])
		}
		if !strings.Contains(d.Message, wantSubstr[i]) {
			t.Errorf("directive %d message %q missing %q", i, d.Message, wantSubstr[i])
		}
	}
	// Without a known-analyzer set, name validation is skipped but the
	// reasonless and bare directives still report.
	if got := CheckDirectives(fset, files, nil); len(got) != 2 {
		t.Fatalf("CheckDirectives(nil known) reported %d, want 2", len(got))
	}
}

func TestRunSortsAndSuppresses(t *testing.T) {
	fset, files, assigns := parseSrc(t)
	a := &Analyzer{
		Name: "demo",
		Doc:  "flags every assignment, in reverse order to exercise sorting",
		Run: func(pass *Pass) error {
			for i := len(assigns) - 1; i >= 0; i-- {
				pass.Reportf(assigns[i], "assignment")
			}
			return nil
		},
	}
	diags, err := Run(a, fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Fatalf("Run returned %d diagnostics, want 4", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos > diags[i].Pos {
			t.Errorf("diagnostics not sorted: %v then %v", diags[i-1].Pos, diags[i].Pos)
		}
	}
}
