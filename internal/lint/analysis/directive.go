package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allowlist directive has the form
//
//	//lint:allow <analyzer> <reason...>
//
// and suppresses findings from <analyzer> on the same line or on the
// line immediately below (so the directive may sit on its own line
// above the allowed statement, matching the staticcheck //lint:ignore
// convention). The reason is mandatory: an allowlist entry with no
// recorded justification is itself a finding.
const directivePrefix = "//lint:allow"

type directive struct {
	analyzer string
	reason   string
}

// parseDirective reports whether text is a //lint:allow comment and, if
// so, its parsed fields (which may be empty when malformed).
func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := text[len(directivePrefix):]
	// Require an exact token boundary: "//lint:allowance" is not ours.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return directive{}, false
	}
	fields := strings.Fields(rest)
	var d directive
	if len(fields) > 0 {
		d.analyzer = fields[0]
	}
	if len(fields) > 1 {
		d.reason = strings.Join(fields[1:], " ")
	}
	return d, true
}

// Suppress drops diagnostics covered by a well-formed //lint:allow
// directive for their analyzer, either on the diagnostic's line or on
// the line directly above it.
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	kept, _ := SuppressSplit(fset, files, diags)
	return kept
}

// SuppressSplit partitions diagnostics into those that survive
// //lint:allow filtering and those a well-formed directive suppressed.
func SuppressSplit(fset *token.FileSet, files []*ast.File, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	if len(diags) == 0 {
		return diags, nil
	}
	// allowed maps filename -> line -> set of analyzer names allowed.
	allowed := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok || d.analyzer == "" || d.reason == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := allowed[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					allowed[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = make(map[string]bool)
				}
				byLine[pos.Line][d.analyzer] = true
			}
		}
	}
	if len(allowed) == 0 {
		return diags, nil
	}
	kept = make([]Diagnostic, 0, len(diags))
	for _, dg := range diags {
		pos := fset.Position(dg.Pos)
		byLine := allowed[pos.Filename]
		if byLine[pos.Line][dg.Analyzer] || byLine[pos.Line-1][dg.Analyzer] {
			suppressed = append(suppressed, dg)
			continue
		}
		kept = append(kept, dg)
	}
	return kept, suppressed
}
