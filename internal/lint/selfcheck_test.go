// The selfcheck runs the full analyzer suite — per-package and
// whole-program — over this repository, the same work
// `go run ./cmd/proteuslint ./...` does in CI, and demands a clean
// tree. Reintroducing any forbidden pattern (a wall-clock fallback in
// a replay-critical package, a leaked lock, a lock-order cycle, an
// unjoinable goroutine, an allocation on the annotated hot path) fails
// plain `go test ./...`, not just the lint step.
package lint_test

import (
	"path/filepath"
	"testing"

	"proteus/internal/lint"
)

func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunRepo(root, []string{"./..."}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages < 10 {
		t.Fatalf("expanded to only %d packages; pattern expansion is broken", res.Packages)
	}
	for _, f := range res.Findings {
		if f.Suppressed {
			continue
		}
		t.Errorf("%s: %s (%s)", res.Fset.Position(f.Pos), f.Message, f.Analyzer)
	}
	t.Logf("checked %d packages in %v (%d findings suppressed by //lint:allow)",
		res.Packages, res.Duration, len(res.Findings)-res.Unsuppressed())
}
