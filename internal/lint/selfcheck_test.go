// The selfcheck runs the full analyzer suite over this repository —
// the same work `go run ./cmd/proteuslint ./...` does in CI — and
// demands a clean tree. Reintroducing any forbidden pattern (a wall-
// clock fallback in a replay-critical package, a leaked lock, a
// dropped hot-path error) fails plain `go test ./...`, not just the
// lint step.
package lint_test

import (
	"path/filepath"
	"testing"

	"proteus/internal/lint"
	"proteus/internal/lint/analysis"
	"proteus/internal/lint/loader"
)

func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := loader.NewModule(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("expanded to only %d packages; pattern expansion is broken", len(paths))
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, d := range analysis.CheckDirectives(l.Fset, pkg.Files) {
			t.Errorf("%s: %s", l.Fset.Position(d.Pos), d.Message)
		}
		for _, a := range lint.Analyzers() {
			if a.AppliesTo != nil && !a.AppliesTo(path) {
				continue
			}
			diags, err := analysis.Run(a, l.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s (%s)", l.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
}
