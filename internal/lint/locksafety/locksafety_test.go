package locksafety_test

import (
	"testing"

	"proteus/internal/lint/linttest"
	"proteus/internal/lint/locksafety"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", locksafety.Analyzer, "a")
}
