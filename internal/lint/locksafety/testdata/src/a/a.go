// Package a is the locksafety fixture: the repository's standard lock
// idioms (defer unlock, guard-unlock-return, unlock-before-blocking)
// pass; leaked locks on return paths and blocking under a mutex are
// flagged.
package a

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	addr  string
	conns int
}

// deferOK: every return path releases via defer.
func (s *server) deferOK() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.addr == "" {
		return "unset"
	}
	return s.addr
}

// guardOK: explicit unlock on each path before returning.
func (s *server) guardOK() (string, bool) {
	s.mu.Lock()
	if s.addr == "" {
		s.mu.Unlock()
		return "", false
	}
	addr := s.addr
	s.mu.Unlock()
	return addr, true
}

// leakyReturn holds s.mu across the early return.
func (s *server) leakyReturn(min int) int {
	s.mu.Lock()
	if s.conns < min {
		return 0 // want `return while s\.mu is held`
	}
	n := s.conns
	s.mu.Unlock()
	return n
}

// unlockThenDial releases before the network call — the fix the
// analyzer pushes toward.
func (s *server) unlockThenDial() (net.Conn, error) {
	s.mu.Lock()
	addr := s.addr
	s.mu.Unlock()
	return net.Dial("tcp", addr)
}

// dialUnderLock performs network I/O with the (defer-held) lock.
func (s *server) dialUnderLock() (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.Dial("tcp", s.addr) // want `network I/O call \(net\.Dial\) while s\.mu is held`
}

// readUnderLock blocks on a conn while holding the lock.
func (s *server) readUnderLock(c net.Conn, buf []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Read(buf) // want `network I/O \(Conn\.Read\) while s\.mu is held`
}

// sleepUnderLock stalls every other goroutine contending for s.mu.
func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is held`
	s.mu.Unlock()
}

// sendUnderLock can block forever if the receiver is gone.
func (s *server) sendUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- s.conns // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

// bindUnderLock mirrors cluster.LocalNode.PowerOn: binding under the
// mutex is deliberate, so the site carries a justified directive.
func (s *server) bindUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow locksafety binding under the lock serializes power transitions by design
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return err
	}
	return ln.Close()
}
