// Package locksafety defines an analyzer for the two mutex mistakes
// that have historically produced the worst cache-fleet incidents:
// returning with a mutex still held (missing unlock on an error path)
// and blocking — on the network or a channel — while holding one.
//
// The analysis is a source-order approximation, not a full control-flow
// graph: within one function, Lock/Unlock/return/blocking events are
// ordered by position and replayed. This accepts the repository's
// standard idioms (defer unlock; guard-unlock-return; unlock before a
// blocking call) while catching the plain early-return and
// network-under-lock bugs. Conditional locking across branches can
// misfire; such sites carry a //lint:allow locksafety directive with a
// justification.
package locksafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/lintutil"
)

// Analyzer is the locksafety check.
var Analyzer = &analysis.Analyzer{
	Name: "locksafety",
	Doc:  "flag returns with a mutex held and blocking calls (network, channels, sleeps) made under a mutex",
	Run:  run,
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evDeferUnlock
	evReturn
	evBlocking
)

type event struct {
	pos  token.Pos
	kind eventKind
	key  string // mutex expression, rendered (Lock/Unlock events)
	desc string // human description (blocking events)
}

func run(pass *analysis.Pass) error {
	for _, fn := range lintutil.Functions(pass.Files) {
		checkFunc(pass, fn)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn lintutil.Func) {
	var events []event
	lintutil.InspectShallow(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if key, kind, ok := mutexOp(pass, n.Call); ok && kind == evUnlock {
				events = append(events, event{pos: n.Pos(), kind: evDeferUnlock, key: key})
			}
			// Don't descend: a deferred call runs at exit, not here.
			return false
		case *ast.CallExpr:
			if key, kind, ok := mutexOp(pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: kind, key: key})
				return true
			}
			if desc, ok := blockingCall(pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: desc})
			}
		case *ast.ReturnStmt:
			events = append(events, event{pos: n.Pos(), kind: evReturn})
		case *ast.SendStmt:
			events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: "channel receive"})
			}
		case *ast.SelectStmt:
			events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: "select"})
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]token.Pos{}      // mutexes held at this point (incl. defer-released)
	unsafeRet := map[string]token.Pos{} // held with no deferred unlock: a return here leaks the lock
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[ev.key] = ev.pos
			unsafeRet[ev.key] = ev.pos
		case evDeferUnlock:
			// Still held for the rest of the function, but every
			// return path now releases it.
			delete(unsafeRet, ev.key)
		case evUnlock:
			delete(held, ev.key)
			delete(unsafeRet, ev.key)
		case evReturn:
			for key := range unsafeRet {
				pass.Reportf(ev.pos, "return while %s is held: unlock before returning or use defer %s.Unlock()", key, key)
				// Report once per lock site, not per return.
				delete(unsafeRet, key)
				delete(held, key)
			}
		case evBlocking:
			for key := range held {
				pass.Reportf(ev.pos, "%s while %s is held: release the mutex before blocking", ev.desc, key)
				delete(held, key) // once per lock site
			}
		}
	}
}

// mutexOp recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock calls on a
// sync.Mutex or sync.RWMutex, returning the rendered mutex expression.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key string, kind eventKind, ok bool) {
	recv, acquire, ok := lintutil.MutexOp(pass.TypesInfo, call)
	if !ok {
		return "", 0, false
	}
	kind = evUnlock
	if acquire {
		kind = evLock
	}
	return types.ExprString(recv), kind, true
}

// blockingCall recognizes calls that can block indefinitely; see
// lintutil.BlockingCall (shared with the whole-program lockorder
// analyzer).
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	return lintutil.BlockingCall(pass.TypesInfo, call)
}
