package nodeterminism_test

import (
	"testing"

	"proteus/internal/lint/linttest"
	"proteus/internal/lint/nodeterminism"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", nodeterminism.Analyzer, "a", "loadgen")
}

func TestScope(t *testing.T) {
	applies := nodeterminism.Analyzer.AppliesTo
	for _, p := range []string{
		"proteus/internal/sim",
		"proteus/internal/faultinject",
		"proteus/internal/core",
		"proteus/internal/hashring",
		"proteus/internal/database",
		"proteus/internal/cache",
		"proteus/internal/provision",
		"proteus/internal/loadgen",
	} {
		if !applies(p) {
			t.Errorf("%s should be replay-critical", p)
		}
	}
	for _, p := range []string{
		"proteus/internal/cacheserver",
		"proteus/internal/cacheclient",
		"proteus/internal/cluster",
		"proteus/internal/webtier",
		"proteus/internal/experiments",
		"proteus/cmd/proteusd",
	} {
		if applies(p) {
			t.Errorf("%s is live-plane/harness; the wall clock is its boundary", p)
		}
	}
}
