// Package a is the nodeterminism fixture: wall-clock and global-rand
// uses are flagged; the injected-clock / seeded-generator idiom used by
// internal/sim (cf. sim/cluster.go newDBModel) is accepted.
package a

import (
	"math/rand"
	"time"
)

// Clock mirrors the injected time source used across the repository.
type Clock func() time.Time

// model mirrors internal/sim/cluster.go's dbModel: a seeded generator
// owned by the component, never the global source.
type model struct {
	clock Clock
	rng   *rand.Rand
}

// newModel is the accepted idiom: rand.New(rand.NewSource(seed)).
func newModel(clock Clock, seed int64) *model {
	return &model{clock: clock, rng: rand.New(rand.NewSource(seed))}
}

// jitter draws from the seeded generator — method calls on *rand.Rand
// are fine.
func (m *model) jitter() time.Duration {
	return time.Duration(m.rng.Int63n(1000)) * time.Millisecond
}

// at reads the injected clock — fine.
func (m *model) at() time.Time { return m.clock() }

func badNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// badFallback is the pattern that motivated this analyzer: silently
// defaulting to the wall clock when no Clock is injected. A bare
// reference (no call) must be flagged too.
func badFallback(c Clock) Clock {
	if c == nil {
		c = time.Now // want `time\.Now reads the wall clock`
	}
	return c
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func badSince(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since reads the wall clock`
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
}

func badGlobalInt() int {
	return rand.Intn(10) // want `rand\.Intn uses the process-wide source`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle uses the process-wide source`
}

func badGlobalFloat() float64 {
	return rand.Float64() // want `rand\.Float64 uses the process-wide source`
}

// allowedStartTime shows the directive escape hatch: same-line or
// line-above placement both suppress, and the reason is mandatory.
func allowedStartTime() time.Time {
	//lint:allow nodeterminism boot timestamp is operator-facing reporting, never replayed
	return time.Now()
}

func allowedSameLine() time.Time {
	return time.Now() //lint:allow nodeterminism operator-facing uptime stamp
}

// notSuppressed shows that a directive without a reason suppresses
// nothing: the finding still surfaces.
func notSuppressed() time.Time {
	//lint:allow nodeterminism
	return time.Now() // want `time\.Now reads the wall clock`
}
