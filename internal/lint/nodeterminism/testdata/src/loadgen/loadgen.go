// Package loadgen is the nodeterminism fixture for the open-loop load
// generator's contract: arrival schedules are laid down before the run
// as a pure function of (seed, worker), so per-worker seeded
// generators and an injected run clock are the accepted idiom, while
// wall-clock reads or global-rand draws inside schedule construction
// are exactly the bugs that would break byte-identical schedules.
package loadgen

import (
	"math/rand"
	"time"
)

// Clock mirrors the run clock injected at the command boundary.
type Clock interface {
	Now() time.Duration
	WaitUntil(t time.Duration)
}

// schedule mirrors the per-worker Poisson schedule: a seeded generator
// derived from (seed, worker), never the process-wide source.
type schedule struct {
	rng  *rand.Rand
	next time.Duration
	gap  time.Duration
}

// newSchedule is the accepted idiom: the worker's stream is fixed by
// its seed, so two runs with one seed lay down identical timelines.
func newSchedule(seed int64, worker int, gap time.Duration) *schedule {
	return &schedule{
		rng: rand.New(rand.NewSource(seed ^ int64(worker))),
		gap: gap,
	}
}

// draw advances the timeline from the seeded generator — fine.
func (s *schedule) draw() time.Duration {
	s.next += time.Duration(s.rng.ExpFloat64() * float64(s.gap))
	return s.next
}

// wait blocks on the injected clock — fine; the wall clock stays
// behind the Clock implementation at the command boundary.
func wait(c Clock, t time.Duration) {
	c.WaitUntil(t)
}

// badIntended stamps an arrival with the wall clock: the schedule now
// depends on when the run happened to start, so two runs can never be
// byte-identical.
func badIntended() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// badSelfThrottle re-introduces coordinated omission's cousin: pacing
// with a real sleep instead of the injected clock, unreplayable and
// untestable against a stalled responder.
func badSelfThrottle(gap time.Duration) {
	time.Sleep(gap) // want `time\.Sleep reads the wall clock`
}

// badGap draws inter-arrival gaps from the process-wide source: the
// timeline changes under anything else in the process touching
// math/rand, and seeds stop meaning anything.
func badGap(mean time.Duration) time.Duration {
	return time.Duration(rand.ExpFloat64() * float64(mean)) // want `rand\.ExpFloat64 uses the process-wide source`
}

// badShuffle shuffles a key batch via the global source — same defect
// on the key-choice side.
func badShuffle(keys []string) {
	rand.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] }) // want `rand\.Shuffle uses the process-wide source`
}

// allowedBoundary shows the documented escape hatch for the one place
// a live-plane default is legitimate.
func allowedBoundary() time.Time {
	//lint:allow nodeterminism live-plane boundary: run start stamp for operator logs, never replayed
	return time.Now()
}
