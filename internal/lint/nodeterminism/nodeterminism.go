// Package nodeterminism defines an analyzer enforcing the repository's
// determinism contract: replay-critical packages must draw time from an
// injected Clock and randomness from a seeded *rand.Rand, never from
// the wall clock or the process-wide math/rand source. Event-for-event
// replay of a fault schedule on the simulator and the live plane (PR 1)
// is only sound when every decision in these packages is a pure
// function of injected inputs.
package nodeterminism

import (
	"go/ast"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/lintutil"
)

// ReplayCritical is the set of packages bound by the determinism
// contract. Everything that runs under the discrete-event simulator or
// feeds deterministic placement/replay decisions is listed; the live
// network plane (cacheserver, cacheclient, cluster, webtier) and the
// measurement harness (experiments) are intentionally not, since they
// own the wall-clock boundary.
var ReplayCritical = map[string]bool{
	"proteus/internal/bloom": true,
	"proteus/internal/cache": true,
	"proteus/internal/check": true,
	"proteus/internal/chunk": true,
	// core covers every placement backend (Algorithm 1, pch, jump):
	// routing must replay bit-identically or check artifacts rot.
	"proteus/internal/core":        true,
	"proteus/internal/database":    true,
	"proteus/internal/faultinject": true,
	"proteus/internal/hashring":    true,
	"proteus/internal/hotkey":      true,
	// loadgen schedules arrivals before a run; the schedule must be a
	// pure function of (seed, spec), or the open-loop generator's
	// byte-identical-schedule guarantee (and `make loadgen-smoke`) breaks.
	// The wall clock enters only through the injected Clock at the
	// cmd/proteus-loadgen boundary.
	"proteus/internal/loadgen":   true,
	"proteus/internal/memproto":  true,
	"proteus/internal/metrics":   true,
	"proteus/internal/power":     true,
	"proteus/internal/provision": true,
	"proteus/internal/sim":       true,
	"proteus/internal/telemetry": true,
	"proteus/internal/wiki":      true,
	"proteus/internal/workload":  true,
}

// WallClock lists the time package functions that read or schedule
// against the wall clock. Referencing one (even without calling it,
// e.g. `cfg.Clock = time.Now`) defeats replay. Exported so the
// whole-program transdeterminism analyzer (internal/lint/callgraph)
// shares one source-of-truth table with this direct-use check.
var WallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// GlobalRand lists the math/rand package-level functions backed by the
// shared process-wide source. rand.New, rand.NewSource, and rand.NewZipf
// are absent: constructing a seeded generator is exactly the idiom the
// contract requires.
var GlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

// Analyzer is the nodeterminism check.
var Analyzer = &analysis.Analyzer{
	Name:      "nodeterminism",
	Doc:       "forbid wall-clock time and global math/rand in replay-critical packages; require the injected Clock / seeded *rand.Rand idiom",
	AppliesTo: func(pkgPath string) bool { return ReplayCritical[pkgPath] },
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := lintutil.PkgFuncRef(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && WallClock[name]:
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; replay-critical packages must use the injected Clock", name)
			case pkgPath == "math/rand" && GlobalRand[name]:
				pass.Reportf(sel.Pos(),
					"rand.%s uses the process-wide source; use a seeded generator: rand.New(rand.NewSource(seed))", name)
			}
			return true
		})
	}
	return nil
}
