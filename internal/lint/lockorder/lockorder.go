// Package lockorder defines a whole-program deadlock check over the
// global mutex-acquisition-order graph. Every function's source-order
// lock events (the same linear approximation locksafety uses) are
// replayed with call edges expanded through the call graph: acquiring
// key B — directly or anywhere in a synchronous callee — while key A
// is held adds the order edge A -> B. A cycle in the resulting key
// digraph is a potential deadlock, reported once per cycle with the
// acquisition path of every hop.
//
// Lock keys are instance-insensitive ("cluster.Coordinator.mu" keys on
// the field's owning type, not the instance), so acquiring the same
// key on two *different* instances is deliberately not an ordering
// observation: call-derived self-edges are skipped, trading the rare
// real two-instance deadlock for zero false positives on the common
// lock-two-shards idiom.
//
// The check also reports blocking operations (network I/O, channel
// waits, WaitGroup.Wait, sleeps) reachable through a call made while a
// mutex is held — the interprocedural completion of locksafety's
// direct blocking-under-lock rule.
package lockorder

import (
	"fmt"
	"go/token"
	"sort"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/callgraph"
)

// Analyzer is the lockorder check.
var Analyzer = &callgraph.Analyzer{
	Name: "lockorder",
	Doc:  "detect mutex acquisition-order cycles (potential deadlocks) and blocking calls reachable while a mutex is held, across the whole program",
	Run:  run,
}

// orderEdge is one observation "from held while to acquired", with the
// evidence needed to print the acquisition path.
type orderEdge struct {
	from, to string
	node     *callgraph.Node // function where the ordering was observed
	holdPos  token.Pos       // where from was acquired
	sitePos  token.Pos       // where to was acquired, or the call site
	callee   *callgraph.Node // non-nil when to is acquired through a call
}

func run(prog *callgraph.Program) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	edges := make(map[[2]string][]orderEdge)
	succ := make(map[string]map[string]bool)

	addEdge := func(e orderEdge) {
		key := [2]string{e.from, e.to}
		edges[key] = append(edges[key], e)
		if succ[e.from] == nil {
			succ[e.from] = make(map[string]bool)
		}
		succ[e.from][e.to] = true
	}

	for _, n := range prog.Nodes {
		out = append(out, replay(prog, n, addEdge)...)
	}

	out = append(out, reportCycles(prog, edges, succ)...)
	return out, nil
}

// replay walks one function's source-order lock events, deriving order
// edges and blocking-under-lock findings.
func replay(prog *callgraph.Program, n *callgraph.Node, addEdge func(orderEdge)) []analysis.Diagnostic {
	seq := append([]callgraph.SeqEvent(nil), n.Summary.Seq...)
	sort.Slice(seq, func(i, j int) bool { return seq[i].Pos < seq[j].Pos })

	var out []analysis.Diagnostic
	held := map[string]token.Pos{}
	blockReported := map[string]bool{}
	for _, ev := range seq {
		switch ev.Kind {
		case callgraph.SeqLock:
			for h, pos := range held {
				if h != ev.Key {
					addEdge(orderEdge{from: h, to: ev.Key, node: n, holdPos: pos, sitePos: ev.Pos})
				}
			}
			held[ev.Key] = ev.Pos
		case callgraph.SeqUnlock:
			delete(held, ev.Key)
		case callgraph.SeqDeferUnlock:
			// Held until return; keep it in the held set.
		case callgraph.SeqCall:
			if len(held) == 0 || ev.Edge == nil {
				continue
			}
			for _, callee := range ev.Edge.Callees {
				if callee.Reaches(callgraph.FactBlocking) {
					for h := range held {
						if blockReported[h] {
							continue
						}
						blockReported[h] = true
						out = append(out, analysis.Diagnostic{
							Pos: ev.Pos,
							Message: fmt.Sprintf("call while %s is held reaches a blocking operation: %s; release the mutex first",
								h, prog.FactPathString(callee, callgraph.FactBlocking)),
						})
					}
				}
				for key := range callee.TransLocks() {
					for h, pos := range held {
						if h != key {
							addEdge(orderEdge{from: h, to: key, node: n, holdPos: pos, sitePos: ev.Pos, callee: callee})
						}
					}
				}
			}
		}
	}
	return out
}

// reportCycles finds strongly connected components of the key digraph
// and reports one finding per component, printing the acquisition path
// of every hop of a representative cycle.
func reportCycles(prog *callgraph.Program, edges map[[2]string][]orderEdge, succ map[string]map[string]bool) []analysis.Diagnostic {
	keys := make([]string, 0, len(succ))
	for k := range succ {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	sccs := condense(keys, succ)
	var out []analysis.Diagnostic
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue // self-edges are skipped at derivation time
		}
		sort.Strings(scc)
		cycle := findCycle(scc, succ)
		if cycle == nil {
			continue
		}
		msg := fmt.Sprintf("lock order cycle (potential deadlock) among %d mutexes:", len(scc))
		var pos token.Pos
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			evs := edges[[2]string{from, to}]
			if len(evs) == 0 {
				continue
			}
			sort.Slice(evs, func(a, b int) bool { return evs[a].sitePos < evs[b].sitePos })
			e := evs[0]
			if !pos.IsValid() {
				pos = e.sitePos
			}
			msg += "\n\t" + renderEdge(prog, e)
		}
		out = append(out, analysis.Diagnostic{Pos: pos, Message: msg})
	}
	return out
}

// renderEdge prints one hop's acquisition path.
func renderEdge(prog *callgraph.Program, e orderEdge) string {
	fset := prog.Fset
	if e.callee == nil {
		return fmt.Sprintf("%s holds %s (at %s) and acquires %s at %s",
			e.node.Name, e.from, fset.Position(e.holdPos), e.to, fset.Position(e.sitePos))
	}
	path, acqPos := prog.LockPath(e.callee, e.to)
	chain := callgraph.PathString(path)
	if chain == "" {
		chain = e.callee.Name
	}
	return fmt.Sprintf("%s holds %s (at %s) and calls %s at %s, which acquires %s at %s",
		e.node.Name, e.from, fset.Position(e.holdPos), chain,
		fset.Position(e.sitePos), e.to, fset.Position(acqPos))
}

// condense computes strongly connected components of the key digraph
// (iterative Tarjan).
func condense(keys []string, succ map[string]map[string]bool) [][]string {
	index := make(map[string]int)
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var ws []string
		for w := range succ[v] {
			ws = append(ws, w)
		}
		sort.Strings(ws)
		for _, w := range ws {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	return sccs
}

// findCycle returns a cycle through the lexicographically smallest key
// of an SCC, as an ordered key list (last hop closes back to first).
func findCycle(scc []string, succ map[string]map[string]bool) []string {
	inSCC := make(map[string]bool, len(scc))
	for _, k := range scc {
		inSCC[k] = true
	}
	start := scc[0]
	// BFS from start back to start within the SCC.
	type item struct {
		key  string
		prev int
	}
	queue := []item{{key: start, prev: -1}}
	seen := map[string]bool{}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		var ws []string
		for w := range succ[cur.key] {
			ws = append(ws, w)
		}
		sort.Strings(ws)
		for _, w := range ws {
			if w == start && i > 0 {
				var path []string
				for j := i; j >= 0; j = queue[j].prev {
					path = append([]string{queue[j].key}, path...)
				}
				return path
			}
			if inSCC[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, item{key: w, prev: i})
			}
		}
	}
	return nil
}
