package lockorder_test

import (
	"testing"

	"proteus/internal/lint/linttest"
	"proteus/internal/lint/lockorder"
)

func TestFixtures(t *testing.T) {
	linttest.RunProgram(t, "testdata", lockorder.Analyzer, "a")
}
