// Package a is the lockorder fixture: an AB/BA acquisition cycle
// across two functions is a potential deadlock, as is one closed
// through a call; a call that reaches a blocking operation while a
// mutex is held is flagged separately. Consistent nesting is accepted.
package a

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	ch  = make(chan int)
)

// lockAB and lockBA close the A-B cycle. The finding lands on the
// acquisition completing the lexicographically-first hop.
func lockAB() {
	muA.Lock()
	muB.Lock() // want "lock order cycle \\(potential deadlock\\) among 2 mutexes"
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// lockCviaCall closes a C-D cycle through a callee: the C hop is
// derived from takeD's transitive acquisition.
func lockCviaCall() {
	muC.Lock()
	defer muC.Unlock()
	takeD() // want "lock order cycle \\(potential deadlock\\) among 2 mutexes"
}

func takeD() {
	muD.Lock()
	muD.Unlock()
}

func lockDthenC() {
	muD.Lock()
	muC.Lock()
	muC.Unlock()
	muD.Unlock()
}

// blockHolding calls into a blocking operation while holding a mutex.
func blockHolding() {
	muA.Lock()
	defer muA.Unlock()
	waitForSignal() // want "call while a.muA is held reaches a blocking operation"
}

func waitForSignal() {
	<-ch
}

// nested uses the same A-then-B order as lockAB: consistent nesting
// adds no new edge direction and no new finding.
func nested() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

// release drops the first mutex before taking the second: no edge.
func release() {
	muB.Lock()
	muB.Unlock()
	muA.Lock()
	muA.Unlock()
}
