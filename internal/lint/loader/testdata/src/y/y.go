// Package y is a leaf loader fixture.
package y

const (
	N = 41
	S = " proteus "
)
