// Package x is a loader fixture exercising a fixture-local import (y)
// alongside a standard-library one.
package x

import (
	"strings"

	"y"
)

// V forces both imports to type-check.
var V = len(strings.TrimSpace(y.S)) + y.N
