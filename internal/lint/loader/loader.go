// Package loader parses and type-checks Go packages without any
// dependency outside the standard library, standing in for
// golang.org/x/tools/go/packages in this repository's hermetic build
// environment. Standard-library imports are type-checked from GOROOT
// source via go/importer; intra-module imports are resolved by mapping
// the import path onto the module directory tree.
//
// Two resolution modes exist:
//
//   - NewModule roots resolution at a go.mod: import paths beginning
//     with the module path map to subdirectories (used by the
//     proteuslint driver over this repository).
//   - NewSrcRoot resolves every non-stdlib import path as a directory
//     under a source root, GOPATH-style (used by linttest so analyzer
//     fixtures can live under testdata/src, including stub packages
//     that impersonate module-internal import paths).
//
// Only non-test files are loaded: the determinism and hygiene
// invariants bind production code, while _test.go files may freely use
// wall clocks and global randomness.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // directory the files were read from
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages, memoizing by import path. It is not safe for
// concurrent use.
type Loader struct {
	Fset *token.FileSet

	modPath string // module path ("" in srcRoot mode)
	modRoot string // module root directory
	srcRoot string // fixture source root ("" in module mode)

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// NewModule builds a loader rooted at the go.mod in dir.
func NewModule(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("loader: no module line in %s/go.mod", dir)
	}
	l := newLoader()
	l.modPath = modPath
	l.modRoot = dir
	return l, nil
}

// NewSrcRoot builds a GOPATH-style loader: import path p resolves to
// directory root/p when that directory exists, else to the standard
// library.
func NewSrcRoot(root string) *Loader {
	l := newLoader()
	l.srcRoot = root
	return l
}

// ModulePath returns the module path ("" for srcRoot loaders).
func (l *Loader) ModulePath() string { return l.modPath }

// dirFor maps an import path to a local directory, or "" when the path
// is not local (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	if l.modPath != "" {
		if path == l.modPath {
			return l.modRoot
		}
		if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
			return filepath.Join(l.modRoot, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer so a Loader can be used as the
// type-checker's import resolver for the packages it loads.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the given import path
// (which must be local to the module or source root), returning the
// memoized result on repeat calls.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("loader: %q is not under the loader root", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every buildable non-test .go file in dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// ExpandPatterns resolves command-line package patterns against the
// module. Supported forms: "./...", "./dir/...", "./dir", or a full
// import path inside the module. Returns import paths sorted.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if l.modPath == "" {
		return nil, fmt.Errorf("loader: patterns require a module loader")
	}
	seen := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkPackages(l.modRoot, seen); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(base, "./")))
			if err := l.walkPackages(dir, seen); err != nil {
				return nil, err
			}
		default:
			rel := strings.TrimPrefix(pat, "./")
			path := rel
			if !strings.HasPrefix(rel, l.modPath) {
				path = l.modPath + "/" + filepath.ToSlash(rel)
			}
			if rel == "." {
				path = l.modPath
			}
			seen[path] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// walkPackages adds the import path of every directory under root that
// contains buildable Go files, skipping testdata, hidden, and
// underscore-prefixed directories.
func (l *Loader) walkPackages(root string, seen map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			seen[l.modPath] = true
		} else {
			seen[l.modPath+"/"+filepath.ToSlash(rel)] = true
		}
		return nil
	})
}
