package loader_test

import (
	"path/filepath"
	"strings"
	"testing"

	"proteus/internal/lint/loader"
)

func TestSrcRoot(t *testing.T) {
	l := loader.NewSrcRoot(filepath.Join("testdata", "src"))
	pkg, err := l.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Path() != "x" {
		t.Errorf("package path %q, want \"x\"", pkg.Types.Path())
	}
	if len(pkg.Files) != 1 {
		t.Errorf("loaded %d files, want 1", len(pkg.Files))
	}
	if pkg.Info == nil || len(pkg.Info.Defs) == 0 {
		t.Error("type info not populated")
	}
	again, err := l.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Error("Load is not memoized")
	}
	if _, err := l.Load("does/not/exist"); err == nil {
		t.Error("loading a nonexistent path should fail")
	}
}

func TestModule(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := loader.NewModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "proteus" {
		t.Fatalf("module path %q, want \"proteus\"", l.ModulePath())
	}
	pkg, err := l.Load("proteus/internal/lint/lintutil")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Path() != "proteus/internal/lint/lintutil" {
		t.Errorf("package path %q", pkg.Types.Path())
	}

	paths, err := l.ExpandPatterns([]string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, p := range paths {
		got[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("pattern expansion leaked a testdata package: %s", p)
		}
	}
	for _, want := range []string{
		"proteus/internal/lint",
		"proteus/internal/lint/loader",
		"proteus/internal/lint/nodeterminism",
	} {
		if !got[want] {
			t.Errorf("./internal/lint/... missing %s (got %v)", want, paths)
		}
	}

	single, err := l.ExpandPatterns([]string{"./internal/cache"})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0] != "proteus/internal/cache" {
		t.Errorf("./internal/cache expanded to %v", single)
	}
}
