// Package a is the closecheck fixture: acquired net resources must be
// closed or handed off on every return path. The acquisition error
// guard (`if err != nil { return ... }`) is exempt because the
// resource is nil on that path.
package a

import "net"

func use(c net.Conn) {}

// dialOK: guard-exempt error return, then deferred close.
func dialOK(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	use(conn)
	return nil
}

// dialHandoff: returning the resource transfers ownership.
func dialHandoff(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// dialAsync: a closure capturing the resource owns its cleanup.
func dialAsync(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		defer conn.Close()
		use(conn)
	}()
	return nil
}

// dialLeak: the !ready return sits between acquire and close — the
// classic pool-registration bug.
func dialLeak(addr string, ready bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if !ready {
		return nil // want `return may leak conn: close it or hand it off before every return`
	}
	return conn.Close()
}

// listenLeak: same bug shape for a listener.
func listenLeak(addr string, ok bool) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil // want `return may leak ln: close it or hand it off before every return`
	}
	return ln, nil
}

// sink lets the never-closed case compile (a dead local would be a
// "declared and not used" error).
var sink net.Conn

func dialNeverClosed(addr string) {
	sink, _ = net.Dial("tcp", addr) // want `sink acquired but never closed or handed off`
}

// pinned is deliberately leaked; the site carries a directive.
var pinned net.Conn

func dialPinned(addr string) {
	//lint:allow closecheck held for the process lifetime to keep the NAT mapping warm
	pinned, _ = net.Dial("tcp", addr)
}
