package closecheck_test

import (
	"testing"

	"proteus/internal/lint/closecheck"
	"proteus/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", closecheck.Analyzer, "a")
}
