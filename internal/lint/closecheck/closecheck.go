// Package closecheck defines an analyzer that catches leaked network
// resources: a net.Conn / net.Listener (or other net package closer)
// acquired in a function must, on every path, be closed or handed off
// (returned, stored, passed along, or captured) before the function
// returns. The classic bug it targets is the early error return between
// acquiring a connection and registering it with the pool.
//
// The check is deliberately conservative about ownership transfer: any
// use of the resource other than Close counts as a handoff, so wrappers
// and pools analyze clean. The one sharpening is the standard
// acquisition guard — `c, err := dial(); if err != nil { return err }`
// — whose return is exempt because the resource is nil on that path.
package closecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/lintutil"
)

// Analyzer is the closecheck check.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "net resources must be closed or handed off on every return path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fn := range lintutil.Functions(pass.Files) {
		checkFunc(pass, fn)
	}
	return nil
}

// acquisition is one statement binding a fresh net resource.
type acquisition struct {
	stmt   *ast.AssignStmt
	obj    types.Object // the resource variable
	errObj types.Object // the paired error variable, if any
}

func checkFunc(pass *analysis.Pass, fn lintutil.Func) {
	for _, acq := range findAcquisitions(pass, fn.Body) {
		checkAcquisition(pass, fn, acq)
	}
}

// findAcquisitions returns assignments whose right side is a single
// call and whose left side binds a net-package closer to a local.
func findAcquisitions(pass *analysis.Pass, body *ast.BlockStmt) []acquisition {
	var out []acquisition
	lintutil.InspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if _, isCall := as.Rhs[0].(*ast.CallExpr); !isCall {
			return true
		}
		var acq acquisition
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			switch {
			case isNetCloser(obj.Type()):
				acq.obj = obj
			case lintutil.IsErrorType(obj.Type()):
				acq.errObj = obj
			}
		}
		if acq.obj != nil {
			acq.stmt = as
			out = append(out, acq)
		}
		return true
	})
	return out
}

// isNetCloser reports whether t is a type from package net (or a
// pointer to one) that has a Close method — net.Conn, net.Listener,
// *net.TCPConn, and friends.
func isNetCloser(t types.Type) bool {
	if lintutil.NamedPkgPath(t) != "net" {
		return false
	}
	closer := types.NewMethodSet(t).Lookup(nil, "Close")
	return closer != nil
}

func checkAcquisition(pass *analysis.Pass, fn lintutil.Func, acq acquisition) {
	exemptReturns := guardReturns(pass, fn.Body, acq)

	// Collect, in source order after the acquisition: uses of the
	// resource (a Close, direct or deferred, or any handoff) and
	// return statements.
	var uses []token.Pos
	var returns []*ast.ReturnStmt
	after := acq.stmt.End()
	lintutil.InspectShallow(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure capture: if it mentions the resource, the
			// closure owns cleanup; count as handoff.
			if n.Pos() > after && mentions(pass, n, acq.obj) {
				uses = append(uses, n.Pos())
			}
			return false
		case *ast.Ident:
			if n.Pos() > after && pass.ObjectOf(n) == acq.obj {
				uses = append(uses, n.Pos())
			}
		case *ast.ReturnStmt:
			if n.Pos() > after {
				returns = append(returns, n)
			}
		}
		return true
	})

	if len(uses) == 0 {
		pass.Reportf(acq.stmt.Pos(), "%s acquired but never closed or handed off", acq.obj.Name())
		return
	}
	for _, ret := range returns {
		if exemptReturns[ret] {
			continue
		}
		released := false
		for _, pos := range uses {
			if pos < ret.End() {
				released = true
				break
			}
		}
		if !released {
			pass.Reportf(ret.Pos(), "return may leak %s: close it or hand it off before every return", acq.obj.Name())
			return // one report per acquisition
		}
	}
}

// guardReturns returns the set of return statements inside the
// immediate `if err != nil { ... }` guard following the acquisition,
// where err is the acquisition's error result and the guard body never
// touches the resource (it is nil there).
func guardReturns(pass *analysis.Pass, body *ast.BlockStmt, acq acquisition) map[*ast.ReturnStmt]bool {
	out := map[*ast.ReturnStmt]bool{}
	if acq.errObj == nil {
		return out
	}
	var guard *ast.IfStmt
	scan := func(list []ast.Stmt) {
		for i, st := range list {
			if st != ast.Stmt(acq.stmt) || i+1 >= len(list) {
				continue
			}
			if ifst, ok := list[i+1].(*ast.IfStmt); ok && condTestsErr(pass, ifst.Cond, acq.errObj) {
				guard = ifst
			}
		}
	}
	lintutil.InspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			scan(n.List)
		case *ast.CaseClause:
			scan(n.Body)
		case *ast.CommClause:
			scan(n.Body)
		}
		return true
	})
	if guard == nil || mentions(pass, guard.Body, acq.obj) {
		return out
	}
	ast.Inspect(guard.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			out[ret] = true
		}
		return true
	})
	return out
}

// condTestsErr reports whether cond mentions errObj (e.g. err != nil).
func condTestsErr(pass *analysis.Pass, cond ast.Expr, errObj types.Object) bool {
	return mentions(pass, cond, errObj)
}

// mentions reports whether the subtree references obj.
func mentions(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
