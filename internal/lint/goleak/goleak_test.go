package goleak_test

import (
	"testing"

	"proteus/internal/lint/goleak"
	"proteus/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.RunProgram(t, "testdata", goleak.Analyzer, "a")
}
