// Package goleak defines a whole-program check for unjoinable
// goroutines: a go statement whose spawned function has no reachable
// join or cancellation point — no sync.WaitGroup.Done, no channel
// operation (send, receive, select, close), and no Context.Done/Err —
// can neither be waited for nor told to stop. In a power-proportional
// cache cluster that repeatedly powers servers up and down, such
// goroutines accumulate across transitions and pin resources the
// power manager believes are released.
//
// The reachability search runs over the call graph from the spawned
// function, following synchronous and further go-spawned edges. Calls
// through function values are information-free, so a spawn whose
// target is itself a dynamic value is skipped rather than guessed at.
package goleak

import (
	"proteus/internal/lint/analysis"
	"proteus/internal/lint/callgraph"
)

// Analyzer is the goleak check.
var Analyzer = &callgraph.Analyzer{
	Name: "goleak",
	Doc:  "flag goroutines launched with no reachable join or cancellation path (WaitGroup.Done, channel operation, or Context.Done)",
	Run:  run,
}

func run(prog *callgraph.Program) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	for _, n := range prog.Nodes {
		for _, e := range n.Calls {
			if !e.Go || len(e.Callees) == 0 {
				continue
			}
			joinable := false
			for _, callee := range e.Callees {
				if callee.Reaches(callgraph.FactJoin) {
					joinable = true
					break
				}
			}
			if joinable {
				continue
			}
			target := e.Callees[0].Name
			out = append(out, analysis.Diagnostic{
				Pos: e.Pos,
				Message: "goroutine running " + target + " has no join or cancellation path: " +
					"no WaitGroup.Done, channel operation, or Context.Done is reachable from it",
			})
		}
	}
	return out, nil
}
