// Package a is the goleak fixture: goroutines with no reachable join
// or cancellation point are flagged; channel-connected, WaitGroup-
// tracked, and context-aware spawns are accepted.
package a

import (
	"context"
	"sync"
)

var sink int

// spin has no join or cancellation path at all.
func spin() {
	for i := 0; ; i++ {
		sink = i
	}
}

// sender is joinable through its channel send.
func sender(ch chan int) {
	ch <- 1
}

// tracked reaches sync.WaitGroup.Done one call deep.
func tracked(wg *sync.WaitGroup) {
	finish(wg)
}

func finish(wg *sync.WaitGroup) {
	wg.Done()
}

// watcher is cancellable through ctx.Done.
func watcher(ctx context.Context) {
	<-ctx.Done()
}

func launch(ctx context.Context, wg *sync.WaitGroup, ch chan int, f func()) {
	go spin() // want "goroutine running a.spin has no join or cancellation path"
	go sender(ch)
	go tracked(wg)
	go watcher(ctx)
	go func() { ch <- 2 }()
	go f() // dynamic target: information-free, not guessed at
}
