package metrichygiene_test

import (
	"testing"

	"proteus/internal/lint/linttest"
	"proteus/internal/lint/metrichygiene"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", metrichygiene.Analyzer, "a")
}
