// Package metrichygiene defines an analyzer guarding the two metric
// conventions the evaluation pipeline depends on:
//
//  1. Counter fields of a mutex-guarded struct are mutated only while
//     that struct's mutex is held (in source order within the
//     function), inside a method whose name ends in "Locked" (the
//     repository's convention for lock-already-held helpers), or via
//     sync/atomic types. A torn counter silently corrupts the hit-rate
//     and load-balance numbers the experiments report.
//  2. Package-level metric objects (types from proteus/internal/
//     metrics) are wired up at init time — declaration initializers or
//     init() — never reassigned at steady state, where a swap would
//     race with concurrent observers and drop samples.
package metrichygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/lintutil"
)

// metricsPkgs are the import paths whose types count as metric objects
// for rule 2: the raw measurement package and the telemetry registry
// layered on top of it. Fixtures stub the same paths under testdata/src.
var metricsPkgs = map[string]bool{
	"proteus/internal/metrics":   true,
	"proteus/internal/telemetry": true,
}

// Analyzer is the metrichygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "metrichygiene",
	Doc:  "counters of mutex-guarded structs must be mutated under that mutex (or in *Locked helpers); package-level metrics are init-time only",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fn := range lintutil.Functions(pass.Files) {
		checkCounters(pass, fn)
	}
	checkRegistrations(pass)
	return nil
}

// checkCounters enforces rule 1 within one function.
func checkCounters(pass *analysis.Pass, fn lintutil.Func) {
	if len(fn.Name) > 6 && fn.Name[len(fn.Name)-6:] == "Locked" {
		return // lock-already-held helper by convention
	}
	// lockedRoots maps the rendered root expression of every mutex
	// Lock'ed earlier in the function (source order) to its position.
	type mutation struct {
		pos  token.Pos
		root types.Object
		expr string
	}
	var mutations []mutation
	locked := map[types.Object][]token.Pos{}
	lintutil.InspectShallow(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, name, ok := lintutil.MethodCall(pass.TypesInfo, n); ok &&
				(name == "Lock" || name == "RLock") && lintutil.IsMutex(pass.TypeOf(recv)) {
				if root := rootObj(pass, recv); root != nil {
					locked[root] = append(locked[root], n.Pos())
				}
			}
		case *ast.IncDecStmt:
			if m, ok := counterMutation(pass, n.X); ok {
				mutations = append(mutations, mutation{pos: n.Pos(), root: m, expr: types.ExprString(n.X)})
			}
		case *ast.AssignStmt:
			// Only read-modify-write forms: a racy += tears the
			// counter, while plain = is construction-time wiring.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				for _, lhs := range n.Lhs {
					if m, ok := counterMutation(pass, lhs); ok {
						mutations = append(mutations, mutation{pos: n.Pos(), root: m, expr: types.ExprString(lhs)})
					}
				}
			}
		}
		return true
	})
	for _, m := range mutations {
		held := false
		for _, pos := range locked[m.root] {
			if pos < m.pos {
				held = true
				break
			}
		}
		if !held {
			pass.Reportf(m.pos,
				"counter %s mutated without holding %s's mutex; lock it, use an atomic, or do this in a *Locked helper",
				m.expr, m.root.Name())
		}
	}
}

// counterMutation reports whether target is an integer field reached
// through a struct that carries a mutex, returning the root object.
func counterMutation(pass *analysis.Pass, target ast.Expr) (types.Object, bool) {
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	t := pass.TypeOf(target)
	if t == nil {
		return nil, false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil, false
	}
	root := rootObj(pass, sel)
	if root == nil {
		return nil, false
	}
	// The guarding mutex may sit on the root struct or on any struct
	// along the selector chain (c.stats.Hits guarded by c.mu).
	if lintutil.MutexField(root.Type()) == "" && !chainHasMutex(pass, sel) {
		return nil, false
	}
	return root, true
}

// chainHasMutex walks the selector chain checking each intermediate
// struct for a mutex field.
func chainHasMutex(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	for {
		if lintutil.MutexField(pass.TypeOf(sel.X)) != "" {
			return true
		}
		next, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		sel = next
	}
}

// rootObj resolves the object at the base of a selector chain, skipping
// package qualifiers.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id := lintutil.RootIdent(e)
	if id == nil {
		return nil
	}
	obj := pass.ObjectOf(id)
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return nil
	}
	return obj
}

// checkRegistrations enforces rule 2: assignments to package-level
// variables of metrics types outside declaration/init().
func checkRegistrations(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || as.Tok != token.ASSIGN {
					return true
				}
				for _, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj, ok := pass.ObjectOf(id).(*types.Var)
					if !ok || obj.Parent() != pass.Pkg.Scope() {
						continue
					}
					if metricsPkgs[lintutil.NamedPkgPath(obj.Type())] {
						pass.Reportf(id.Pos(),
							"package-level metric %s reassigned outside init-time; register metrics in var declarations or init()", id.Name)
					}
				}
				return true
			})
		}
	}
}
