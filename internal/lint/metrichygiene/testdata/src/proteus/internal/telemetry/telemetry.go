// Package telemetry is a fixture stub standing in for the repository's
// proteus/internal/telemetry package: the metrichygiene analyzer keys
// on this import path when checking init-time registration of registry
// objects and instrument vecs.
package telemetry

// Registry mimics the labeled metric registry.
type Registry struct{}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

// CounterVec mimics a counter family handle.
type CounterVec struct{}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }

// Counter mimics one labeled counter.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }
