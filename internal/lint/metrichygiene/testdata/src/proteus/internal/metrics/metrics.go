// Package metrics is a fixture stub standing in for the repository's
// proteus/internal/metrics package: the metrichygiene analyzer keys on
// this import path when checking init-time registration.
package metrics

// Histogram mimics a metric sink.
type Histogram struct {
	total uint64
}

// New returns an empty Histogram.
func New() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.total++ }
