// Package a is the metrichygiene fixture: counters of mutex-guarded
// structs must be mutated under the mutex (or in *Locked helpers, or
// via atomics), and package-level metric objects are wired at init
// time only.
package a

import (
	"sync"
	"sync/atomic"

	"proteus/internal/metrics"
	"proteus/internal/telemetry"
)

type stats struct {
	mu    sync.Mutex
	hits  int
	bytes int
}

// hit mutates under the lock — accepted.
func (s *stats) hit() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

// miss forgets the lock: a racy increment tears the counter.
func (s *stats) miss() {
	s.hits++ // want `counter s\.hits mutated without holding s's mutex`
}

// addBytes: op-assign is the same read-modify-write hazard.
func (s *stats) addBytes(n int) {
	s.bytes += n // want `counter s\.bytes mutated without holding s's mutex`
}

// bumpLocked follows the lock-already-held naming convention — accepted.
func (s *stats) bumpLocked() {
	s.hits++
}

// atomicStats shows the lock-free alternative the analyzer points at.
type atomicStats struct {
	mu   sync.Mutex
	hits atomic.Uint64
}

func (a *atomicStats) hit() {
	a.hits.Add(1)
}

// cache guards a nested counter struct with its own mutex.
type counters struct {
	gets int
}

type cache struct {
	mu    sync.Mutex
	stats counters
}

func (c *cache) get() {
	c.mu.Lock()
	c.stats.gets++
	c.mu.Unlock()
}

func (c *cache) getRacy() {
	c.stats.gets++ // want `counter c\.stats\.gets mutated without holding c's mutex`
}

// The sharded-cache idiom: per-shard counters live behind the shard's
// own mutex, while cross-shard totals use atomics so readers never take
// all the locks.
type shard struct {
	mu        sync.Mutex
	liveBytes int
}

type sharded struct {
	shards []shard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// touch mutates the shard counter under that shard's lock and the
// global tally through an atomic — both accepted.
func (c *sharded) touch(i, n int) {
	s := &c.shards[i]
	s.mu.Lock()
	s.liveBytes += n
	s.mu.Unlock()
	c.hits.Add(1)
}

// touchRacy reaches into a shard without its lock.
func (c *sharded) touchRacy(i, n int) {
	s := &c.shards[i]
	s.liveBytes += n // want `counter s\.liveBytes mutated without holding s's mutex`
	c.misses.Add(1)
}

// evictLocked follows the lock-held naming convention — accepted even
// though the lock is taken by the caller.
func (c *sharded) evictLocked(i, n int) {
	c.shards[i].liveBytes -= n
}

// hist is registered in its declaration — accepted.
var hist = metrics.New()

// lateHist is registered in init() — accepted.
var lateHist *metrics.Histogram

func init() {
	lateHist = metrics.New()
}

// rewire swaps a live metric at steady state: concurrent observers
// lose samples.
func rewire() {
	lateHist = metrics.New() // want `package-level metric lateHist reassigned outside init-time`
}

// resetForBench is a justified steady-state swap; callers serialize.
func resetForBench() {
	//lint:allow metrichygiene bench harness reset; no concurrent observers while swapping
	lateHist = metrics.New()
}

func observe(v float64) {
	hist.Observe(v)
	lateHist.Observe(v)
}

// The telemetry registry idiom: the registry and its instrument vecs
// are package-level, wired in the declaration or init(), and only
// observed afterwards.
var reg = telemetry.NewRegistry()

var requests *telemetry.CounterVec

func init() {
	requests = reg.Counter("proteus_requests_total", "requests", "result")
}

func handle() {
	requests.With("ok").Inc()
}

// swapRegistry replaces the live registry at steady state: every vec
// handed out so far silently detaches from export.
func swapRegistry() {
	reg = telemetry.NewRegistry() // want `package-level metric reg reassigned outside init-time`
}

// swapVec rewires a live instrument vec — same hazard.
func swapVec() {
	requests = reg.Counter("proteus_requests_total", "requests", "result") // want `package-level metric requests reassigned outside init-time`
}
