// Package generics is the call-graph fixture for type-parameterized
// code: instantiated generic calls (explicit and inferred), methods on
// generic types, method values, and method expressions. The resolver
// must fold every instantiation onto the declared origin — never
// panicking on, or silently dropping, a generic call site.
package generics

// Set is a generic type whose method is reached through several call
// shapes below.
type Set[T comparable] struct {
	items map[T]struct{}
}

// NewSet allocates: the fact must propagate through instantiated calls.
func NewSet[T comparable]() *Set[T] {
	return &Set[T]{items: make(map[T]struct{})}
}

// Add inserts v.
func (s *Set[T]) Add(v T) {
	s.items[v] = struct{}{}
}

// Clone allocates behind an inferred instantiation.
func Clone[S ~[]E, E any](s S) S {
	out := make(S, len(s))
	copy(out, s)
	return out
}

// Apply calls through a function-typed parameter: a dynamic edge
// inside a generic function.
func Apply[T any](f func(T) T, v T) T {
	return f(v)
}

// UseExplicit instantiates explicitly and calls an instantiated method.
func UseExplicit() *Set[int] {
	s := NewSet[int]()
	s.Add(1)
	return s
}

// UseInferred lets the checker infer the instantiation.
func UseInferred(xs []string) []string {
	return Clone(xs)
}

// UseMethodValue binds a method value and calls through it: the bind
// is a closure allocation, the call a dynamic edge.
func UseMethodValue(s *Set[string]) func(string) {
	add := s.Add
	add("x")
	return add
}

// UseMethodExpr calls through a method expression, which resolves
// statically like a direct call.
func UseMethodExpr(s *Set[int]) {
	(*Set[int]).Add(s, 2)
}

// UseApply exercises a generic function receiving a function literal.
func UseApply() int {
	return Apply(func(x int) int { return x + 1 }, 3)
}
