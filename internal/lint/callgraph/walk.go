package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"proteus/internal/lint/lintutil"
	"proteus/internal/lint/nodeterminism"
)

// allocFuncs lists standard-library package functions that allocate on
// every call. The table is deliberately small and obvious: hotalloc is
// a budget check for annotated hot paths, not an escape analysis.
var allocFuncs = map[string]map[string]bool{
	"fmt": {
		"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
		"Appendf": true, "Append": true, "Appendln": true,
	},
	"strings": {
		"Join": true, "Repeat": true, "Split": true, "SplitN": true,
		"SplitAfter": true, "Fields": true, "Replace": true,
		"ReplaceAll": true, "ToUpper": true, "ToLower": true, "Map": true,
		"Clone": true, "Concat": true,
	},
	"bytes": {
		"Join": true, "Repeat": true, "Split": true, "SplitN": true,
		"Fields": true, "Clone": true, "NewBuffer": true,
		"NewBufferString": true, "NewReader": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "Unquote": true,
		"AppendInt": true, "AppendUint": true, "AppendFloat": true,
		"AppendQuote": true,
	},
	"errors": {"New": true, "Join": true},
	"io":     {"ReadAll": true},
	"sort":   {}, // boxing of the any argument is caught separately
}

// walkNode performs the single shallow pass over a node's body that
// collects call edges, direct facts, lock acquisitions, and the
// source-order event sequence. Nested function literals are separate
// nodes and are skipped (lintutil.InspectShallow), except that the
// literal itself records a closure-allocation fact here.
func (p *Program) walkNode(n *Node) {
	info := n.Pkg.Info
	goCalls := make(map[*ast.CallExpr]bool)
	deferCalls := make(map[*ast.CallExpr]bool)
	cmpConv := make(map[*ast.CallExpr]bool)
	results := n.resultTuple()

	// markCmpConv records a conversion consumed directly as a switch
	// tag or equality operand; string(b) in that position compares the
	// bytes in place without allocating (a compiler guarantee).
	markCmpConv := func(e ast.Expr) {
		for {
			pe, ok := e.(*ast.ParenExpr)
			if !ok {
				break
			}
			e = pe.X
		}
		if c, ok := e.(*ast.CallExpr); ok {
			cmpConv[c] = true
		}
	}

	// Tentative map-order facts; discarded if the function sorts.
	var mapOrder []Fact
	sawSort := false

	addFact := func(pos token.Pos, kind FactKind, desc string) {
		n.Summary.Facts = append(n.Summary.Facts, Fact{Pos: pos, Kind: kind, Desc: desc})
		n.direct[kind] = true
	}

	lintutil.InspectShallow(n.body(), func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			goCalls[node.Call] = true
		case *ast.DeferStmt:
			deferCalls[node.Call] = true
		case *ast.FuncLit:
			addFact(node.Pos(), FactAlloc, "function literal (closure allocation)")
		case *ast.SwitchStmt:
			if node.Tag != nil {
				markCmpConv(node.Tag)
			}
		case *ast.CallExpr:
			p.visitCall(n, node, goCalls[node], deferCalls[node], cmpConv[node], addFact)
		case *ast.SendStmt:
			addFact(node.Pos(), FactBlocking, "channel send")
			addFact(node.Pos(), FactJoin, "channel send")
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				addFact(node.Pos(), FactBlocking, "channel receive")
				addFact(node.Pos(), FactJoin, "channel receive")
			}
		case *ast.SelectStmt:
			addFact(node.Pos(), FactBlocking, "select")
			addFact(node.Pos(), FactJoin, "select")
		case *ast.RangeStmt:
			if f, ok := mapOrderEscape(info, node); ok {
				mapOrder = append(mapOrder, f)
			}
		case *ast.BinaryExpr:
			if node.Op == token.EQL || node.Op == token.NEQ {
				markCmpConv(node.X)
				markCmpConv(node.Y)
			}
			// Runtime string concatenation allocates; constant-folded
			// concatenation does not.
			if node.Op == token.ADD {
				if t := info.TypeOf(node); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := info.Types[node]; !ok || tv.Value == nil {
							addFact(node.Pos(), FactAlloc, "string concatenation")
						}
					}
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(node); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					addFact(node.Pos(), FactAlloc, "map literal")
				case *types.Slice:
					addFact(node.Pos(), FactAlloc, "slice literal")
				}
			}
		case *ast.AssignStmt:
			boxingInAssign(info, node, addFact)
		case *ast.ValueSpec:
			boxingInValueSpec(info, node, addFact)
		case *ast.ReturnStmt:
			boxingInReturn(info, node, results, addFact)
		}
		// Track sort usage anywhere in the function: a function that
		// sorts its output has handled map iteration order.
		if call, ok := node.(*ast.CallExpr); ok {
			if pkgPath, _, ok := lintutil.PkgFuncRef(info, call.Fun); ok && (pkgPath == "sort" || pkgPath == "slices") {
				sawSort = true
			}
		}
		return true
	})

	if !sawSort {
		for _, f := range mapOrder {
			n.Summary.Facts = append(n.Summary.Facts, f)
			n.direct[FactMapOrder] = true
		}
	}
}

// visitCall resolves one call expression: records the edge, the
// source-order event, and any facts the call implies.
func (p *Program) visitCall(n *Node, call *ast.CallExpr, isGo, isDefer, cmpConv bool, addFact func(token.Pos, FactKind, string)) {
	info := n.Pkg.Info

	// Mutex operations become lock events, not call edges.
	if recv, acquire, ok := lintutil.MutexOp(info, call); ok {
		key := p.lockKey(n, recv)
		kind := SeqUnlock
		if acquire {
			kind = SeqLock
			n.Summary.Acquires = append(n.Summary.Acquires, LockSite{Pos: call.Pos(), Key: key})
		} else if isDefer {
			kind = SeqDeferUnlock
		}
		n.Summary.Seq = append(n.Summary.Seq, SeqEvent{Pos: call.Pos(), Kind: kind, Key: key})
		return
	}

	// Type conversions: flag the allocating string<->[]byte/[]rune
	// pairs; other conversions are free.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if desc, ok := allocConversion(info, call, tv.Type); ok {
			// string(b) as a switch tag or equality operand is
			// allocation-free; the byte-to-string copy is elided.
			toString := false
			if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
				toString = true
			}
			if !(cmpConv && toString) {
				addFact(call.Pos(), FactAlloc, desc)
			}
		}
		return
	}

	// Builtins.
	if id, ok := calleeIdent(call.Fun); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				addFact(call.Pos(), FactAlloc, "make")
			case "new":
				addFact(call.Pos(), FactAlloc, "new")
			case "append":
				addFact(call.Pos(), FactAlloc, "append (may grow)")
			case "close":
				addFact(call.Pos(), FactJoin, "channel close")
			}
			return
		}
	}

	// Package-level function references: stdlib facts or module edges.
	if pkgPath, name, ok := lintutil.PkgFuncRef(info, call.Fun); ok {
		switch {
		case pkgPath == "time" && nodeterminism.WallClock[name]:
			addFact(call.Pos(), FactWallClock, "time."+name)
		case pkgPath == "math/rand" && nodeterminism.GlobalRand[name]:
			addFact(call.Pos(), FactGlobalRand, "rand."+name)
		}
		if byName, ok := allocFuncs[pkgPath]; ok && byName[name] {
			addFact(call.Pos(), FactAlloc, pkgPath+"."+name)
		}
	}
	if desc, ok := lintutil.BlockingCall(info, call); ok {
		addFact(call.Pos(), FactBlocking, desc)
		if desc == "sync.WaitGroup.Wait" {
			addFact(call.Pos(), FactJoin, desc)
		}
	}
	if recv, name, ok := lintutil.MethodCall(info, call); ok {
		// Context.Done/Err participate in cancellation protocols.
		if name == "Done" || name == "Err" {
			if t := info.TypeOf(recv); t != nil &&
				lintutil.NamedPkgPath(t) == "context" && lintutil.NamedName(t) == "Context" {
				addFact(call.Pos(), FactJoin, "context.Context."+name)
			}
		}
		if name == "Done" {
			if t := info.TypeOf(recv); lintutil.NamedPkgPath(t) == "sync" && lintutil.NamedName(t) == "WaitGroup" {
				addFact(call.Pos(), FactJoin, "sync.WaitGroup.Done")
			}
		}
	}

	boxingInArgs(info, call, addFact)

	edge := p.resolveEdge(n, call, isGo, isDefer)
	if edge != nil {
		n.Calls = append(n.Calls, edge)
		if !isGo && !isDefer {
			n.Summary.Seq = append(n.Summary.Seq, SeqEvent{Pos: call.Pos(), Kind: SeqCall, Edge: edge})
		}
	}
}

// calleeIdent unwraps parens and generic instantiation indexes to the
// base identifier of a call's function expression.
func calleeIdent(fun ast.Expr) (*ast.Ident, bool) {
	for {
		switch e := fun.(type) {
		case *ast.ParenExpr:
			fun = e.X
		case *ast.IndexExpr:
			fun = e.X
		case *ast.IndexListExpr:
			fun = e.X
		case *ast.Ident:
			return e, true
		default:
			return nil, false
		}
	}
}

// calleeSelector likewise unwraps to a selector expression.
func calleeSelector(fun ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch e := fun.(type) {
		case *ast.ParenExpr:
			fun = e.X
		case *ast.IndexExpr:
			fun = e.X
		case *ast.IndexListExpr:
			fun = e.X
		case *ast.SelectorExpr:
			return e, true
		default:
			return nil, false
		}
	}
}

// resolveEdge resolves a call expression's callees. Nil means the call
// carries no interprocedural information (stdlib static call).
func (p *Program) resolveEdge(n *Node, call *ast.CallExpr, isGo, isDefer bool) *Edge {
	info := n.Pkg.Info
	edge := &Edge{Pos: call.Pos(), Call: call, Go: isGo, Deferred: isDefer}

	// Immediately-invoked (or spawned) function literal.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		if target := p.byLit[lit]; target != nil {
			edge.Callees = []*Node{target}
			return edge
		}
		edge.Dynamic = true
		return edge
	}

	// Plain identifier: package function or function-typed variable.
	if id, ok := calleeIdent(call.Fun); ok {
		switch obj := info.Uses[id].(type) {
		case *types.Func:
			if target := p.NodeOf(obj); target != nil {
				edge.Callees = []*Node{target}
				return edge
			}
			return nil // stdlib or bodyless declaration
		case *types.Var:
			edge.Dynamic = true // call through a function value
			return edge
		}
		return nil
	}

	sel, ok := calleeSelector(call.Fun)
	if !ok {
		// f()() and friends: a call of a call's result.
		edge.Dynamic = true
		return edge
	}

	// Qualified package function: pkg.F(...).
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			switch obj := info.Uses[sel.Sel].(type) {
			case *types.Func:
				if target := p.NodeOf(obj); target != nil {
					edge.Callees = []*Node{target}
					return edge
				}
				return nil
			case *types.Var:
				edge.Dynamic = true // package-level function variable
				return edge
			}
			return nil
		}
	}

	selection, ok := info.Selections[sel]
	if !ok {
		// Selector without a selection entry: qualified reference
		// already handled above, anything else is information-free.
		return nil
	}
	switch selection.Kind() {
	case types.FieldVal:
		edge.Dynamic = true // call through a function-typed field
		return edge
	case types.MethodExpr:
		// T.M(recv, ...): resolves statically like a direct call.
		if obj, ok := selection.Obj().(*types.Func); ok {
			if target := p.NodeOf(obj); target != nil {
				edge.Callees = []*Node{target}
				return edge
			}
		}
		return nil
	}

	// Method value call: recv.M(...).
	obj, ok := selection.Obj().(*types.Func)
	if !ok {
		edge.Dynamic = true
		return edge
	}
	recvType := selection.Recv()
	if iface, ok := recvType.Underlying().(*types.Interface); ok {
		edge.Iface = true
		edge.Callees = p.chaCandidates(obj.Name(), iface)
		if len(edge.Callees) == 0 {
			// No module implementation: the dynamic target is outside
			// the program (or nonexistent); treat as information-free.
			return nil
		}
		return edge
	}
	if target := p.NodeOf(obj); target != nil {
		edge.Callees = []*Node{target}
		return edge
	}
	return nil // stdlib method
}

// chaCandidates returns every module method named name whose receiver
// type (or its pointer) implements iface.
func (p *Program) chaCandidates(name string, iface *types.Interface) []*Node {
	var out []*Node
	for _, m := range p.methods[name] {
		sig, ok := m.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		if types.Implements(recv, iface) {
			out = append(out, m)
			continue
		}
		if _, isPtr := recv.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(recv), iface) {
				out = append(out, m)
			}
		}
	}
	return out
}

// lockKey canonicalizes a mutex expression to an instance-insensitive
// key. Struct fields key on the owning named type
// ("cluster.Coordinator.mu"), package-level variables on the package
// ("cache.initMu"), and locals/parameters on the enclosing function
// (they cannot participate in cross-function ordering).
func (p *Program) lockKey(n *Node, recv ast.Expr) string {
	info := n.Pkg.Info
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if t := info.TypeOf(e.X); t != nil {
			base := lintutil.Deref(t)
			if named, ok := base.(*types.Named); ok && named.Obj().Pkg() != nil {
				return fmt.Sprintf("%s.%s.%s",
					pkgBase(named.Obj().Pkg().Path()), named.Obj().Name(), e.Sel.Name)
			}
		}
		// Qualified package-level var: pkg.Mu.
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return fmt.Sprintf("%s.%s", pkgBase(pn.Imported().Path()), e.Sel.Name)
			}
		}
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return fmt.Sprintf("%s.%s", pkgBase(v.Pkg().Path()), e.Name)
			}
		}
	}
	// Local, parameter, or unrecognized shape: scope to this function.
	return fmt.Sprintf("%s:%s", n.Name, types.ExprString(recv))
}

// mapOrderEscape reports whether a range over a map appends into a
// slice (iteration order escaping into data), returning a tentative
// fact. Counting, summing, or rebuilding a map are order-insensitive
// and not flagged.
func mapOrderEscape(info *types.Info, rng *ast.RangeStmt) (Fact, bool) {
	t := info.TypeOf(rng.X)
	if t == nil {
		return Fact{}, false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return Fact{}, false
	}
	found := Fact{}
	ok := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || ok {
			return !ok
		}
		if id, isID := call.Fun.(*ast.Ident); isID {
			if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "append" {
				found = Fact{
					Pos:  call.Pos(),
					Kind: FactMapOrder,
					Desc: "map iteration order escapes into a slice (append inside range over map)",
				}
				ok = true
				return false
			}
		}
		return true
	})
	return found, ok
}

// allocConversion reports whether a conversion allocates: the
// string<->[]byte and string<->[]rune pairs copy their operand.
func allocConversion(info *types.Info, call *ast.CallExpr, target types.Type) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return "", false
	}
	tDesc, tOK := stringOrByteSlice(target)
	sDesc, sOK := stringOrByteSlice(src)
	if tOK && sOK && tDesc != sDesc {
		return fmt.Sprintf("%s(%s) conversion copies", tDesc, sDesc), true
	}
	return "", false
}

// stringOrByteSlice classifies t as "string", "[]byte", or "[]rune".
func stringOrByteSlice(t types.Type) (string, bool) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return "string", true
		}
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			switch b.Kind() {
			case types.Uint8: // byte
				return "[]byte", true
			case types.Int32: // rune
				return "[]rune", true
			}
		}
	}
	return "", false
}

// isPointerShaped reports whether converting t to an interface is
// allocation-free (the value is a single pointer word).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// boxes reports whether assigning an expression of type src to a
// destination of type dst boxes a non-pointer-shaped value into an
// interface (one heap allocation).
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false // interface-to-interface: no allocation
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !isPointerShaped(src)
}

// boxingInArgs flags the first argument boxed into an interface
// parameter at a call site.
func boxingInArgs(info *types.Info, call *ast.CallExpr, addFact func(token.Pos, FactKind, string)) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsValue() || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	if call.Ellipsis.IsValid() {
		return // s... spreads an existing slice; no per-element boxing here
	}
	for i, arg := range call.Args {
		var paramType types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				paramType = s.Elem()
			}
		} else if i < params.Len() {
			paramType = params.At(i).Type()
		}
		if boxes(paramType, info.TypeOf(arg)) {
			addFact(arg.Pos(), FactAlloc, "interface boxing at call argument")
			return
		}
	}
}

// boxingInAssign flags values boxed into interface-typed destinations.
func boxingInAssign(info *types.Info, as *ast.AssignStmt, addFact func(token.Pos, FactKind, string)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if boxes(info.TypeOf(as.Lhs[i]), info.TypeOf(as.Rhs[i])) {
			addFact(as.Rhs[i].Pos(), FactAlloc, "interface boxing at assignment")
			return
		}
	}
}

// boxingInValueSpec flags var declarations that box.
func boxingInValueSpec(info *types.Info, spec *ast.ValueSpec, addFact func(token.Pos, FactKind, string)) {
	if len(spec.Names) != len(spec.Values) {
		return
	}
	for i, name := range spec.Names {
		obj := info.ObjectOf(name)
		if obj == nil {
			continue
		}
		if boxes(obj.Type(), info.TypeOf(spec.Values[i])) {
			addFact(spec.Values[i].Pos(), FactAlloc, "interface boxing at declaration")
			return
		}
	}
}

// boxingInReturn flags concrete values boxed into interface results.
func boxingInReturn(info *types.Info, ret *ast.ReturnStmt, results *types.Tuple, addFact func(token.Pos, FactKind, string)) {
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, res := range ret.Results {
		if boxes(results.At(i).Type(), info.TypeOf(res)) {
			addFact(res.Pos(), FactAlloc, "interface boxing at return")
			return
		}
	}
}
