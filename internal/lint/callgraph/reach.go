package callgraph

import (
	"fmt"
	"go/token"
	"strings"
)

// propagate computes each node's transitive fact closure and lock-key
// closure by fixpoint iteration. The graphs involved are small (one
// node per function in the module), so a simple sweep-until-stable
// converges in a handful of passes and needs no SCC condensation.
//
// Rules:
//   - Facts flow caller <- callee across every resolved edge,
//     including go-spawned and deferred calls (work a function starts
//     still happens on its behalf). Dynamic edges contribute nothing.
//   - FactAlloc does not flow out of a //lint:hotpath function: an
//     annotated callee is a trusted boundary whose allocations are
//     its own findings, not its callers'.
//   - Lock keys flow only across synchronous edges (go-spawned
//     goroutines do not hold their locks on the spawner's path).
func (p *Program) propagate() {
	for _, n := range p.Nodes {
		copy(n.trans[:], n.direct[:])
		for _, a := range n.Summary.Acquires {
			n.locks[a.Key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.Nodes {
			for _, e := range n.Calls {
				for _, callee := range e.Callees {
					for k := FactKind(0); k < numFactKinds; k++ {
						if k == FactAlloc && callee.Hotpath {
							continue
						}
						if callee.trans[k] && !n.trans[k] {
							n.trans[k] = true
							changed = true
						}
					}
					if e.Go {
						continue
					}
					for key := range callee.locks {
						if !n.locks[key] {
							n.locks[key] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// FactPath returns a shortest call chain from start to a function with
// a direct fact of the given kind, and that fact. The chain includes
// start and the fact-bearing function. Nil when start does not reach
// kind.
func (p *Program) FactPath(start *Node, kind FactKind) ([]*Node, *Fact) {
	if !start.trans[kind] {
		return nil, nil
	}
	type item struct {
		n    *Node
		prev int
	}
	queue := []item{{n: start, prev: -1}}
	seen := map[*Node]bool{start: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if cur.n.direct[kind] {
			var path []*Node
			for j := i; j >= 0; j = queue[j].prev {
				path = append([]*Node{queue[j].n}, path...)
			}
			for fi := range cur.n.Summary.Facts {
				if cur.n.Summary.Facts[fi].Kind == kind {
					return path, &cur.n.Summary.Facts[fi]
				}
			}
			return path, nil
		}
		for _, e := range cur.n.Calls {
			for _, callee := range e.Callees {
				if kind == FactAlloc && callee.Hotpath {
					continue
				}
				if !seen[callee] && callee.trans[kind] {
					seen[callee] = true
					queue = append(queue, item{n: callee, prev: i})
				}
			}
		}
	}
	return nil, nil
}

// LockPath returns a shortest synchronous call chain from start to a
// function that directly acquires key, and the acquisition site.
func (p *Program) LockPath(start *Node, key string) ([]*Node, token.Pos) {
	type item struct {
		n    *Node
		prev int
	}
	queue := []item{{n: start, prev: -1}}
	seen := map[*Node]bool{start: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		for _, a := range cur.n.Summary.Acquires {
			if a.Key == key {
				var path []*Node
				for j := i; j >= 0; j = queue[j].prev {
					path = append([]*Node{queue[j].n}, path...)
				}
				return path, a.Pos
			}
		}
		for _, e := range cur.n.Calls {
			if e.Go {
				continue
			}
			for _, callee := range e.Callees {
				if !seen[callee] && callee.locks[key] {
					seen[callee] = true
					queue = append(queue, item{n: callee, prev: i})
				}
			}
		}
	}
	return nil, token.NoPos
}

// PathString renders a call chain for diagnostics: "a -> b -> c".
func PathString(path []*Node) string {
	names := make([]string, len(path))
	for i, n := range path {
		names[i] = n.Name
	}
	return strings.Join(names, " -> ")
}

// FactPathString renders the evidence chain for a transitive fact,
// ending with the direct fact's description and position:
// "a -> b -> c (time.Now at file.go:12)".
func (p *Program) FactPathString(start *Node, kind FactKind) string {
	path, fact := p.FactPath(start, kind)
	if len(path) == 0 {
		return ""
	}
	s := PathString(path)
	if fact != nil {
		s += fmt.Sprintf(" (%s at %s)", fact.Desc, p.Fset.Position(fact.Pos))
	}
	return s
}
