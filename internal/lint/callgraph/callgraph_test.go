package callgraph_test

import (
	"testing"

	"proteus/internal/lint/callgraph"
	"proteus/internal/lint/loader"
)

// buildFixture type-checks the generics fixture and builds its call
// graph; the resolver must not panic on instantiated generic code.
func buildFixture(t *testing.T) *callgraph.Program {
	t.Helper()
	l := loader.NewSrcRoot("testdata/src")
	pkg, err := l.Load("generics")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	prog, err := callgraph.Build(l.Fset, []*loader.Package{pkg})
	if err != nil {
		t.Fatalf("building call graph: %v", err)
	}
	return prog
}

func nodeByName(t *testing.T, prog *callgraph.Program, name string) *callgraph.Node {
	t.Helper()
	var found *callgraph.Node
	for _, n := range prog.Nodes {
		if n.Name == name {
			if found != nil {
				t.Fatalf("two nodes named %s: instantiations were not folded onto the origin", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

// callsTo reports whether n has a resolved static edge to name.
func callsTo(n *callgraph.Node, name string) bool {
	for _, e := range n.Calls {
		for _, c := range e.Callees {
			if c.Name == name {
				return true
			}
		}
	}
	return false
}

// hasDynamic reports whether n records an information-free call.
func hasDynamic(n *callgraph.Node) bool {
	for _, e := range n.Calls {
		if e.Dynamic {
			return true
		}
	}
	return false
}

func TestGenericCallsResolveToOrigin(t *testing.T) {
	prog := buildFixture(t)

	explicit := nodeByName(t, prog, "generics.UseExplicit")
	if !callsTo(explicit, "generics.NewSet") {
		t.Errorf("UseExplicit: explicit instantiation NewSet[int]() was not resolved")
	}
	if !callsTo(explicit, "generics.Set.Add") {
		t.Errorf("UseExplicit: instantiated method call s.Add was not resolved")
	}

	inferred := nodeByName(t, prog, "generics.UseInferred")
	if !callsTo(inferred, "generics.Clone") {
		t.Errorf("UseInferred: inferred instantiation Clone(xs) was not resolved")
	}
	if !inferred.Reaches(callgraph.FactAlloc) {
		t.Errorf("UseInferred: Clone's allocation did not propagate through the instantiated call")
	}

	expr := nodeByName(t, prog, "generics.UseMethodExpr")
	if !callsTo(expr, "generics.Set.Add") {
		t.Errorf("UseMethodExpr: method expression (*Set[int]).Add was not resolved")
	}

	// nodeByName itself fails if Set[int].Add and Set[string].Add
	// produced distinct nodes.
	nodeByName(t, prog, "generics.Set.Add")
}

func TestMethodValueIsDynamic(t *testing.T) {
	prog := buildFixture(t)
	mv := nodeByName(t, prog, "generics.UseMethodValue")
	if !hasDynamic(mv) {
		t.Errorf("UseMethodValue: call through a bound method value should be a dynamic edge")
	}
	if callsTo(mv, "generics.Set.Add") {
		t.Errorf("UseMethodValue: a method value call must not claim a static callee")
	}
}

func TestGenericFunctionWithFuncLit(t *testing.T) {
	prog := buildFixture(t)
	ua := nodeByName(t, prog, "generics.UseApply")
	if !callsTo(ua, "generics.Apply") {
		t.Errorf("UseApply: call to generic Apply was not resolved")
	}
	apply := nodeByName(t, prog, "generics.Apply")
	if !hasDynamic(apply) {
		t.Errorf("Apply: call through the function-typed parameter should be dynamic")
	}
}
