// Package callgraph builds a whole-program call graph over the
// packages loaded by internal/lint/loader, with one summary of
// analysis-relevant facts per function. It is the engine behind the
// interprocedural proteuslint analyzers (transdeterminism, lockorder,
// goleak, hotalloc): each of those is a thin pass over the resolved
// Program rather than an AST walk of its own.
//
// Call resolution is CHA-style (class hierarchy analysis):
//
//   - Direct calls to module functions and methods resolve to exactly
//     one callee, including instantiated generics (resolved through
//     types.Func.Origin, so Set[int].Add and Set[string].Add share the
//     generic declaration's node).
//   - Interface method calls resolve conservatively to every module
//     method whose receiver type implements the interface.
//   - Calls through function values (and method values) are recorded
//     as Dynamic edges with no callees; analyzers treat them as
//     information-free rather than guessing.
//   - Calls into the standard library produce no edges; their effects
//     are captured as per-function facts from curated tables (wall
//     clock, global rand, blocking I/O, allocation).
//
// Facts propagate bottom-up to a transitive closure by fixpoint
// iteration (the graph is small; no SCC condensation is needed), and
// FactPath/LockPath reconstruct shortest evidence chains on demand so
// diagnostics can print how a hot function reaches an allocation or a
// lock acquisition.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"proteus/internal/lint/loader"
)

// HotpathDirective marks a function whose doc comment opts it into the
// hotalloc allocation budget: //lint:hotpath [description].
const HotpathDirective = "//lint:hotpath"

// FactKind classifies one analysis-relevant behaviour of a function.
type FactKind int

const (
	// FactWallClock: reads the wall clock (time.Now, time.Sleep, ...).
	FactWallClock FactKind = iota
	// FactGlobalRand: draws from the process-wide math/rand source.
	FactGlobalRand
	// FactMapOrder: iteration order of a Go map escapes into a slice
	// that is not subsequently sorted.
	FactMapOrder
	// FactAlloc: a static allocation site (make, append growth,
	// string<->[]byte conversion, closure, interface boxing, ...).
	FactAlloc
	// FactBlocking: can block indefinitely (network I/O, channel
	// operations, WaitGroup.Wait, time.Sleep).
	FactBlocking
	// FactJoin: participates in a goroutine join or cancellation
	// protocol (WaitGroup.Done, any channel operation or close,
	// Context.Done/Err).
	FactJoin

	numFactKinds
)

// String names the fact kind for diagnostics.
func (k FactKind) String() string {
	switch k {
	case FactWallClock:
		return "wall-clock"
	case FactGlobalRand:
		return "global-rand"
	case FactMapOrder:
		return "map-order"
	case FactAlloc:
		return "allocation"
	case FactBlocking:
		return "blocking"
	case FactJoin:
		return "join"
	}
	return fmt.Sprintf("FactKind(%d)", int(k))
}

// Fact is one directly-observed behaviour at a position.
type Fact struct {
	Pos  token.Pos
	Kind FactKind
	Desc string // human description, e.g. "time.Now" or "append (may grow)"
}

// LockSite is one direct mutex acquisition.
type LockSite struct {
	Pos token.Pos
	Key string // canonical lock key, e.g. "cluster.Coordinator.mu"
}

// SeqKind classifies one event in a function's linear source-order
// replay (the same approximation locksafety uses intraprocedurally).
type SeqKind int

const (
	SeqLock SeqKind = iota
	SeqUnlock
	SeqDeferUnlock
	SeqCall
)

// SeqEvent is one lock-relevant event in source order.
type SeqEvent struct {
	Pos  token.Pos
	Kind SeqKind
	Key  string // lock key (SeqLock/SeqUnlock/SeqDeferUnlock)
	Edge *Edge  // resolved call (SeqCall)
}

// Summary holds the directly-observed facts of one function.
type Summary struct {
	Facts    []Fact
	Acquires []LockSite
	Seq      []SeqEvent
}

// Edge is one call site and its resolved callees.
type Edge struct {
	Pos      token.Pos
	Call     *ast.CallExpr
	Callees  []*Node
	Dynamic  bool // through a function or method value; callees unknown
	Iface    bool // interface method call (Callees are CHA candidates)
	Go       bool // spawned with a go statement
	Deferred bool // inside a defer statement
}

// Node is one function in the program: a declaration or a literal.
type Node struct {
	Pkg     *loader.Package
	Obj     *types.Func   // declared object; nil for literals
	Decl    *ast.FuncDecl // nil for literals
	Lit     *ast.FuncLit  // nil for declarations
	Name    string        // e.g. "cluster.Coordinator.SetActive", "cache.hashKey$1"
	Hotpath bool          // carries the //lint:hotpath directive
	Calls   []*Edge
	Summary Summary

	direct [numFactKinds]bool
	trans  [numFactKinds]bool
	locks  map[string]bool // transitive closure of acquired lock keys
}

// HasFact reports whether the function itself exhibits kind.
func (n *Node) HasFact(kind FactKind) bool { return n.direct[kind] }

// Reaches reports whether the function or anything it (transitively)
// calls exhibits kind.
func (n *Node) Reaches(kind FactKind) bool { return n.trans[kind] }

// TransLocks returns the set of lock keys the function or its
// transitive callees acquire (go-spawned work excluded: locks taken by
// a spawned goroutine are not held on the spawner's path).
func (n *Node) TransLocks() map[string]bool { return n.locks }

// Pos returns the declaration position of the function.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// Program is the resolved whole-program call graph.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*loader.Package
	Nodes []*Node

	byObj   map[*types.Func]*Node
	byLit   map[*ast.FuncLit]*Node
	methods map[string][]*Node // module methods indexed by name (CHA candidates)
}

// NodeOf returns the node for a declared function object, resolving
// generic instantiations to their origin declaration. Nil when the
// object is not a module function with a body.
func (p *Program) NodeOf(obj *types.Func) *Node {
	if obj == nil {
		return nil
	}
	return p.byObj[obj.Origin()]
}

// Build constructs and resolves the call graph over pkgs.
func Build(fset *token.FileSet, pkgs []*loader.Package) (*Program, error) {
	p := &Program{
		Fset:    fset,
		Pkgs:    pkgs,
		byObj:   make(map[*types.Func]*Node),
		byLit:   make(map[*ast.FuncLit]*Node),
		methods: make(map[string][]*Node),
	}
	for _, pkg := range pkgs {
		p.collectNodes(pkg)
	}
	for _, n := range p.Nodes {
		p.walkNode(n)
	}
	p.propagate()
	return p, nil
}

// pkgBase returns the final element of an import path: the display
// package name used in lock keys and node names.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// collectNodes creates one node per function declaration and per
// function literal in pkg, in source order.
func (p *Program) collectNodes(pkg *loader.Package) {
	base := pkgBase(pkg.Path)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			n := &Node{
				Pkg:     pkg,
				Obj:     obj,
				Decl:    fd,
				Name:    declName(base, fd, obj),
				Hotpath: hasHotpathDirective(fd.Doc),
				locks:   make(map[string]bool),
			}
			p.Nodes = append(p.Nodes, n)
			if obj != nil {
				p.byObj[obj] = n
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					p.methods[obj.Name()] = append(p.methods[obj.Name()], n)
				}
			}
			// Function literals nested in this declaration become
			// their own nodes so control-flow facts stay per-function.
			litIndex := 0
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				lit, ok := node.(*ast.FuncLit)
				if !ok {
					return true
				}
				litIndex++
				ln := &Node{
					Pkg:   pkg,
					Lit:   lit,
					Name:  fmt.Sprintf("%s$%d", n.Name, litIndex),
					locks: make(map[string]bool),
				}
				p.Nodes = append(p.Nodes, ln)
				p.byLit[lit] = ln
				return true
			})
		}
	}
}

// declName renders a stable display name for a declaration.
func declName(base string, fd *ast.FuncDecl, obj *types.Func) string {
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return fmt.Sprintf("%s.%s.%s", base, named.Obj().Name(), obj.Name())
			}
		}
	}
	return fmt.Sprintf("%s.%s", base, fd.Name.Name)
}

// hasHotpathDirective reports whether a doc comment carries
// //lint:hotpath.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

// body returns the statement block a node analyzes.
func (n *Node) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// resultTuple returns the declared result types of the node's
// signature, for boxing detection at return statements.
func (n *Node) resultTuple() *types.Tuple {
	if n.Obj != nil {
		if sig, ok := n.Obj.Type().(*types.Signature); ok {
			return sig.Results()
		}
		return nil
	}
	if n.Lit != nil {
		if sig, ok := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature); ok {
			return sig.Results()
		}
	}
	return nil
}
