package callgraph

import (
	"fmt"
	"go/ast"
	"sort"

	"proteus/internal/lint/analysis"
)

// Analyzer is a whole-program check: unlike analysis.Analyzer, which
// sees one package at a time, its Run receives the resolved call graph
// of every loaded package and may reason across package boundaries.
// Diagnostics are still attributed to the per-position //lint:allow
// suppression machinery of the per-package framework.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It shares a namespace with per-package analyzers.
	Name string
	// Doc is a one-paragraph description of the check.
	Doc string
	// Run inspects the program and returns raw findings; the driver
	// sorts them and applies //lint:allow suppression.
	Run func(prog *Program) ([]analysis.Diagnostic, error)
}

// RunAll executes a whole-program analyzer over prog and partitions
// its findings into kept and //lint:allow-suppressed, both sorted by
// position. Directives from every loaded file apply, so a suppression
// sits next to the reported site regardless of which package the
// analyzer reasoned from.
func RunAll(a *Analyzer, prog *Program) (kept, suppressed []analysis.Diagnostic, err error) {
	diags, err := a.Run(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	for i := range diags {
		if diags[i].Analyzer == "" {
			diags[i].Analyzer = a.Name
		}
	}
	var files []*ast.File
	for _, pkg := range prog.Pkgs {
		files = append(files, pkg.Files...)
	}
	kept, suppressed = analysis.SuppressSplit(prog.Fset, files, diags)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	sort.Slice(suppressed, func(i, j int) bool { return suppressed[i].Pos < suppressed[j].Pos })
	return kept, suppressed, nil
}
