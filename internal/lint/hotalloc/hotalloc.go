// Package hotalloc defines the allocation-budget check for functions
// annotated //lint:hotpath. The serving hot path (protocol parse,
// shard lookup, response write) was made allocation-free in PR 4;
// this analyzer keeps it that way statically instead of relying on
// allocs-per-op benchmarks alone.
//
// In an annotated function it flags every static allocation site —
// make/new, append growth, string<->[]byte conversions, string
// concatenation, map/slice literals, closures, and interface boxing
// at calls, assignments, and returns — plus any call to an
// *unannotated* module function that transitively allocates, printing
// the call chain to the allocation. Annotated callees are trusted
// boundaries: their allocations are their own findings, so a hot
// chain is annotated function by function and each link is checked
// exactly once.
package hotalloc

import (
	"proteus/internal/lint/analysis"
	"proteus/internal/lint/callgraph"
)

// Analyzer is the hotalloc check.
var Analyzer = &callgraph.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid static allocation sites in //lint:hotpath functions, including allocations reached through calls to unannotated functions",
	Run:  run,
}

func run(prog *callgraph.Program) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	for _, n := range prog.Nodes {
		if !n.Hotpath {
			continue
		}
		for _, f := range n.Summary.Facts {
			if f.Kind == callgraph.FactAlloc {
				out = append(out, analysis.Diagnostic{
					Pos:     f.Pos,
					Message: "allocation in hot path: " + f.Desc,
				})
			}
		}
		for _, e := range n.Calls {
			if e.Go {
				// Spawned work runs off the latency path; the closure
				// allocation itself was already flagged above.
				continue
			}
			for _, callee := range e.Callees {
				if callee.Hotpath || !callee.Reaches(callgraph.FactAlloc) {
					continue
				}
				out = append(out, analysis.Diagnostic{
					Pos:     e.Pos,
					Message: "call allocates in hot path: " + prog.FactPathString(callee, callgraph.FactAlloc),
				})
				break // one finding per call site
			}
		}
	}
	return out, nil
}
