package hotalloc_test

import (
	"testing"

	"proteus/internal/lint/hotalloc"
	"proteus/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.RunProgram(t, "testdata", hotalloc.Analyzer, "a")
}
