// Package a is the hotalloc fixture: annotated hot-path functions must
// be allocation-free. Direct sites (make, conversions, boxing,
// closures) are flagged, as are calls to unannotated functions that
// transitively allocate; annotated callees are trusted boundaries, and
// unannotated functions may allocate freely.
package a

var sink any

//lint:hotpath boxing seeded bug
func boxy(n int) {
	sink = n // want "allocation in hot path: interface boxing at assignment"
}

//lint:hotpath direct-site seeded bugs
func alloky(s string) []byte {
	buf := make([]byte, 8)   // want "allocation in hot path: make"
	b := []byte(s)           // want `allocation in hot path: \[\]byte\(string\) conversion copies`
	return append(buf, b...) // want `allocation in hot path: append \(may grow\)`
}

//lint:hotpath transitive seeded bug
func chatty() string {
	return describe(7) // want "call allocates in hot path: a.describe"
}

func describe(n int) string {
	out := make([]byte, 0, 4)
	for ; n > 0; n /= 10 {
		out = append(out, byte('0'+n%10))
	}
	return string(out)
}

//lint:hotpath clean fast path
func clean(buf []byte, n int) int {
	total := 0
	for _, b := range buf {
		total += int(b) * n
	}
	return total
}

// cleanCaller trusts its annotated callee: alloky's allocations are
// alloky's findings, reported exactly once.
//
//lint:hotpath trusted annotated callee
func cleanCaller(s string) int {
	return len(alloky(s))
}

//lint:hotpath suppressed by an allow directive
func allowed() []int {
	//lint:allow hotalloc fixture exercises the suppression path
	return make([]int, 4)
}

// free is unannotated: it allocates without findings.
func free() []string {
	return []string{"x", "y"}
}

// comparisons do not allocate: string(b) as a switch tag or equality
// operand compares in place.
//
//lint:hotpath conversion in comparison context
func dispatch(cmd []byte) int {
	if string(cmd) == "get" {
		return 1
	}
	switch string(cmd) {
	case "set":
		return 2
	default:
		return 0
	}
}
