// Package lintutil holds the small AST/type-inspection helpers shared
// by the proteuslint analyzers.
package lintutil

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Func is one analyzable function: a declaration or a function
// literal. Analyzers treat each independently so control-flow facts
// (returns, deferred calls) do not leak across closure boundaries.
type Func struct {
	Name string // declared name, or "" for literals
	Body *ast.BlockStmt
}

// Functions yields every function declaration and literal in files.
func Functions(files []*ast.File) []Func {
	var out []Func
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, Func{Name: n.Name.Name, Body: n.Body})
				}
			case *ast.FuncLit:
				out = append(out, Func{Body: n.Body})
			}
			return true
		})
	}
	return out
}

// InspectShallow walks the statements of body like ast.Inspect but does
// not descend into nested function literals, so per-function analyses
// see only their own control flow. The function literal node itself is
// still visited (a closure mentioning a variable counts as a use).
func InspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n)
			return false
		}
		return fn(n)
	})
}

// PkgFuncRef reports whether e is a reference to a function (or other
// object) selected from an imported package, returning the package path
// and object name.
func PkgFuncRef(info *types.Info, e ast.Expr) (pkgPath, name string, ok bool) {
	sel, okSel := e.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPN := info.ObjectOf(id).(*types.PkgName)
	if !okPN {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// Deref removes one level of pointer indirection.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedPkgPath returns the package path of t's (possibly
// pointer-wrapped) named type, or "" when t is unnamed or universe-
// scoped (e.g. error).
func NamedPkgPath(t types.Type) string {
	if t == nil {
		return ""
	}
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return ""
	}
	if n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// NamedName returns the bare name of t's (possibly pointer-wrapped)
// named type, or "".
func NamedName(t types.Type) string {
	if t == nil {
		return ""
	}
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return ""
	}
	return n.Obj().Name()
}

// IsMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func IsMutex(t types.Type) bool {
	if NamedPkgPath(t) != "sync" {
		return false
	}
	name := NamedName(t)
	return name == "Mutex" || name == "RWMutex"
}

// MutexField returns the name of the first sync.Mutex/RWMutex field of
// t's underlying struct (looking through pointers and named types), or
// "" when there is none.
func MutexField(t types.Type) string {
	st, ok := Deref(t).Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if IsMutex(f.Type()) {
			return f.Name()
		}
	}
	return ""
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// ResultTypes returns the flattened result types of a call expression.
func ResultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

// RootIdent returns the identifier at the base of a selector chain
// (a.b.c -> a), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// MethodCall decomposes a call of the form recv.Name(...) where recv is
// a value (not a package), returning the receiver expression and
// method name.
func MethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return nil, "", false
	}
	if id, okID := sel.X.(*ast.Ident); okID {
		if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
			return nil, "", false
		}
	}
	return sel.X, sel.Sel.Name, true
}

// typeOf is a nil-safe info.TypeOf.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if info == nil {
		return nil
	}
	return info.TypeOf(e)
}

// MutexOp recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock calls on a
// sync.Mutex or sync.RWMutex, returning the receiver expression and
// whether the operation acquires (Lock/RLock) or releases.
func MutexOp(info *types.Info, call *ast.CallExpr) (recv ast.Expr, acquire bool, ok bool) {
	recv, name, ok := MethodCall(info, call)
	if !ok {
		return nil, false, false
	}
	switch name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil, false, false
	}
	if !IsMutex(typeOf(info, recv)) {
		return nil, false, false
	}
	return recv, acquire, true
}

// blockingNetMethods are the methods on net types that can block
// indefinitely. Getters (Addr, LocalAddr, ...) and deadline setters are
// deliberately absent: calling them under a mutex is fine.
var blockingNetMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "Close": true,
	"ReadFrom": true, "WriteTo": true, "AcceptTCP": true,
}

// BlockingCall recognizes calls that can block indefinitely: dialing,
// listening, and name resolution in package net (and net/http requests),
// blocking methods on net types, time.Sleep, and sync.WaitGroup.Wait.
// The returned string is a human description of the blocking operation.
func BlockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if pkgPath, name, ok := PkgFuncRef(info, call.Fun); ok {
		switch {
		case pkgPath == "net" && (strings.HasPrefix(name, "Dial") ||
			strings.HasPrefix(name, "Listen") || strings.HasPrefix(name, "Lookup")):
			return fmt.Sprintf("network I/O call (net.%s)", name), true
		case pkgPath == "net/http" && (name == "Get" || name == "Post" || name == "Head" || name == "PostForm"):
			return fmt.Sprintf("network I/O call (http.%s)", name), true
		case pkgPath == "time" && name == "Sleep":
			return "time.Sleep", true
		}
		return "", false
	}
	recv, name, ok := MethodCall(info, call)
	if !ok {
		return "", false
	}
	recvType := typeOf(info, recv)
	switch NamedPkgPath(recvType) {
	case "net", "net/http":
		if blockingNetMethods[name] || name == "Do" || name == "RoundTrip" {
			return fmt.Sprintf("network I/O (%s.%s)", NamedName(recvType), name), true
		}
	case "sync":
		if NamedName(recvType) == "WaitGroup" && name == "Wait" {
			return "sync.WaitGroup.Wait", true
		}
	}
	return "", false
}
