// Package lint assembles the proteuslint analyzer suite. The analyzers
// encode the repository's standing invariants:
//
//   - determinism: replay-critical packages take time and randomness
//     only by injection (nodeterminism), and do not reach
//     nondeterminism through calls into unconstrained packages or
//     depend on map iteration order (transdeterminism),
//   - locking: no lock-leaking returns, no blocking under a mutex
//     (locksafety), counter mutations stay under their mutex
//     (metrichygiene), and the global mutex-acquisition-order graph is
//     acyclic with no blocking reachable under a lock (lockorder),
//   - resource hygiene: connections are closed or handed off on every
//     path (closecheck), hot-path errors are never silently dropped
//     (errdrop), and every goroutine has a join or cancellation path
//     (goleak),
//   - performance: functions annotated //lint:hotpath have no static
//     allocation sites, directly or through calls (hotalloc).
//
// The first group of checks is per-package (analysis.Analyzer); the
// interprocedural ones (transdeterminism, lockorder, goleak, hotalloc)
// run over the whole-program call graph (callgraph.Analyzer).
//
// Run the suite with `go run ./cmd/proteuslint ./...` (or `make lint`).
// Suppress an individual finding with a justified directive:
//
//	//lint:allow <analyzer> <reason>
//
// placed on, or directly above, the offending line. Directives without
// a reason — or naming an analyzer that does not exist — are
// themselves findings.
package lint

import (
	"proteus/internal/lint/analysis"
	"proteus/internal/lint/callgraph"
	"proteus/internal/lint/closecheck"
	"proteus/internal/lint/errdrop"
	"proteus/internal/lint/goleak"
	"proteus/internal/lint/hotalloc"
	"proteus/internal/lint/lockorder"
	"proteus/internal/lint/locksafety"
	"proteus/internal/lint/metrichygiene"
	"proteus/internal/lint/nodeterminism"
	"proteus/internal/lint/transdeterminism"
)

// Analyzers returns the per-package proteuslint suite in reporting
// order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		locksafety.Analyzer,
		closecheck.Analyzer,
		errdrop.Analyzer,
		metrichygiene.Analyzer,
	}
}

// GlobalAnalyzers returns the whole-program suite, run once over the
// resolved call graph of every loaded package.
func GlobalAnalyzers() []*callgraph.Analyzer {
	return []*callgraph.Analyzer{
		transdeterminism.Analyzer,
		lockorder.Analyzer,
		goleak.Analyzer,
		hotalloc.Analyzer,
	}
}

// KnownAnalyzers returns the set of valid analyzer names for
// //lint:allow validation.
func KnownAnalyzers() map[string]bool {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range GlobalAnalyzers() {
		known[a.Name] = true
	}
	return known
}
