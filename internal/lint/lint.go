// Package lint assembles the proteuslint analyzer suite. The analyzers
// encode the repository's three standing invariants:
//
//   - determinism: replay-critical packages take time and randomness
//     only by injection (nodeterminism),
//   - locking: no lock-leaking returns, no blocking under a mutex
//     (locksafety), and counter mutations stay under their mutex
//     (metrichygiene),
//   - resource hygiene: connections are closed or handed off on every
//     path (closecheck) and hot-path errors are never silently dropped
//     (errdrop).
//
// Run the suite with `go run ./cmd/proteuslint ./...` (or `make lint`).
// Suppress an individual finding with a justified directive:
//
//	//lint:allow <analyzer> <reason>
//
// placed on, or directly above, the offending line. Directives without
// a reason are themselves findings.
package lint

import (
	"proteus/internal/lint/analysis"
	"proteus/internal/lint/closecheck"
	"proteus/internal/lint/errdrop"
	"proteus/internal/lint/locksafety"
	"proteus/internal/lint/metrichygiene"
	"proteus/internal/lint/nodeterminism"
)

// Analyzers returns the full proteuslint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		locksafety.Analyzer,
		closecheck.Analyzer,
		errdrop.Analyzer,
		metrichygiene.Analyzer,
	}
}
