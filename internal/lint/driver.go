package lint

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/callgraph"
	"proteus/internal/lint/loader"
)

// Finding is one diagnostic with its suppression status: a finding a
// //lint:allow directive covered is still reported to machine-readable
// consumers (proteuslint -json) but does not fail the run.
type Finding struct {
	analysis.Diagnostic
	Suppressed bool
}

// Result is the outcome of one whole-repository run.
type Result struct {
	Fset     *token.FileSet
	Findings []Finding // sorted by position; suppressed and kept interleaved
	Packages int
	Duration time.Duration
}

// Unsuppressed counts the findings that survive //lint:allow
// filtering — the number that determines exit status.
func (r *Result) Unsuppressed() int {
	n := 0
	for _, f := range r.Findings {
		if !f.Suppressed {
			n++
		}
	}
	return n
}

// RunRepo loads the module rooted at root, expands patterns, and runs
// the full analyzer suite: directive validation and the per-package
// analyzers on each package, then the whole-program analyzers over the
// resolved call graph of everything loaded. It is the single driver
// shared by cmd/proteuslint, the lint selfcheck test, and the
// lint_selfcheck benchmark entry.
//
// progress, when non-nil, receives one line per package as it loads.
func RunRepo(root string, patterns []string, progress io.Writer) (*Result, error) {
	start := time.Now()
	l, err := loader.NewModule(root)
	if err != nil {
		return nil, err
	}
	paths, err := l.ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	known := KnownAnalyzers()
	res := &Result{Fset: l.Fset, Packages: len(paths)}
	var pkgs []*loader.Package
	for _, path := range paths {
		if progress != nil {
			fmt.Fprintln(progress, "checking", path)
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		for _, d := range analysis.CheckDirectives(l.Fset, pkg.Files, known) {
			res.Findings = append(res.Findings, Finding{Diagnostic: d})
		}
		for _, a := range Analyzers() {
			if a.AppliesTo != nil && !a.AppliesTo(path) {
				continue
			}
			kept, suppressed, err := analysis.RunAll(a, l.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				return nil, err
			}
			for _, d := range kept {
				res.Findings = append(res.Findings, Finding{Diagnostic: d})
			}
			for _, d := range suppressed {
				res.Findings = append(res.Findings, Finding{Diagnostic: d, Suppressed: true})
			}
		}
	}
	prog, err := callgraph.Build(l.Fset, pkgs)
	if err != nil {
		return nil, err
	}
	for _, a := range GlobalAnalyzers() {
		kept, suppressed, err := callgraph.RunAll(a, prog)
		if err != nil {
			return nil, err
		}
		for _, d := range kept {
			res.Findings = append(res.Findings, Finding{Diagnostic: d})
		}
		for _, d := range suppressed {
			res.Findings = append(res.Findings, Finding{Diagnostic: d, Suppressed: true})
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool { return res.Findings[i].Pos < res.Findings[j].Pos })
	res.Duration = time.Since(start)
	return res, nil
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
