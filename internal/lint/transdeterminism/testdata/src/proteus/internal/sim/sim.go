// Package sim impersonates the replay-critical simulator package: the
// transdeterminism analyzer must flag calls that leave the determinism
// contract and reach nondeterminism in unconstrained helpers, plus
// map-iteration-order escapes observed directly here.
package sim

import (
	"sort"

	"helper"
)

// tick launders the wall clock through an unconstrained package — the
// loophole the per-package nodeterminism check cannot see.
func tick() int64 {
	return helper.Stamp() // want "call from replay-critical sim.tick reaches wall-clock nondeterminism: helper.Stamp"
}

// choose reaches the global rand source two calls deep.
func choose(n int) int {
	return helper.Pick(n) // want "call from replay-critical sim.choose reaches global-rand nondeterminism: helper.Pick -> helper.pick"
}

// keysOf lets map iteration order escape into a slice.
func keysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration order escapes into a slice"
	}
	return out
}

// sortedKeysOf sorts before use: the escape is neutralized.
func sortedKeysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// scale calls a deterministic helper — no finding.
func scale(n int) int {
	return helper.Double(n)
}

// within stays inside the replay-critical set; its callee is bound by
// the contract itself (nodeterminism's job), so no finding here.
func within() int64 {
	return tick()
}
