// Package helper is an unconstrained utility package: it may touch the
// wall clock and the global rand source freely. The transdeterminism
// fixture's replay-critical package calls into it.
package helper

import (
	"math/rand"
	"time"
)

// Stamp leaks the wall clock to its caller.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Pick leaks the global math/rand source, one call deep.
func Pick(n int) int {
	return pick(n)
}

func pick(n int) int {
	return rand.Intn(n)
}

// Double is deterministic; calls to it from critical code are fine.
func Double(n int) int {
	return 2 * n
}
