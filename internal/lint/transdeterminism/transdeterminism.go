// Package transdeterminism defines the whole-program extension of the
// nodeterminism check: a replay-critical package must not reach the
// wall clock, the global math/rand source, or map-iteration-order
// dependence *through calls* into packages outside the determinism
// contract. Direct uses inside critical packages are nodeterminism's
// job (and stay reported there, once); this analyzer closes the
// loophole where a critical package launders nondeterminism through a
// helper in an unconstrained package.
//
// It additionally reports map-iteration-order escapes observed
// directly in critical packages — a nondeterminism source the
// per-package check does not model, since recognizing it needs the
// sort-usage heuristic shared with the call-graph summaries.
package transdeterminism

import (
	"proteus/internal/lint/analysis"
	"proteus/internal/lint/callgraph"
	"proteus/internal/lint/nodeterminism"
)

// Analyzer is the transdeterminism check.
var Analyzer = &callgraph.Analyzer{
	Name: "transdeterminism",
	Doc:  "forbid replay-critical packages from reaching wall-clock time, global math/rand, or map-iteration-order dependence through calls into unconstrained packages",
	Run:  run,
}

// escapeKinds are the nondeterminism sources this analyzer traces.
var escapeKinds = []callgraph.FactKind{
	callgraph.FactWallClock,
	callgraph.FactGlobalRand,
	callgraph.FactMapOrder,
}

func run(prog *callgraph.Program) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { out = append(out, d) }
	for _, n := range prog.Nodes {
		if !nodeterminism.ReplayCritical[n.Pkg.Path] {
			continue
		}
		// Direct map-order escapes in the critical function itself.
		for _, f := range n.Summary.Facts {
			if f.Kind == callgraph.FactMapOrder {
				report(analysis.Diagnostic{
					Pos:     f.Pos,
					Message: f.Desc + "; sort before use or iterate a deterministic key slice",
				})
			}
		}
		// Escapes through calls that leave the replay-critical set.
		for _, e := range n.Calls {
			for _, kind := range escapeKinds {
				for _, callee := range e.Callees {
					if nodeterminism.ReplayCritical[callee.Pkg.Path] {
						// The callee is bound by the contract itself:
						// direct uses are nodeterminism findings there,
						// and its own outward calls are checked at its
						// own edges. Reporting here would double up.
						continue
					}
					if !callee.Reaches(kind) {
						continue
					}
					report(analysis.Diagnostic{
						Pos: e.Pos,
						Message: "call from replay-critical " + n.Name + " reaches " +
							kind.String() + " nondeterminism: " + prog.FactPathString(callee, kind),
					})
					break // one finding per kind per call site
				}
			}
		}
	}
	return out, nil
}
