package transdeterminism_test

import (
	"testing"

	"proteus/internal/lint/linttest"
	"proteus/internal/lint/transdeterminism"
)

func TestFixtures(t *testing.T) {
	linttest.RunProgram(t, "testdata", transdeterminism.Analyzer,
		"helper", "proteus/internal/sim")
}
