// Package a is the errdrop fixture: silently discarded errors are
// flagged; explicit blanks, sticky-error writers, and deferred calls
// are accepted.
package a

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// dropInStmt: the Fprintf error vanishes invisibly.
func dropInStmt(w io.Writer, p []byte) {
	fmt.Fprintf(w, "len=%d\n", len(p)) // want `error result discarded; handle it or assign to _ explicitly`
}

// mixedBlank keeps the count but hides the error.
func mixedBlank(w io.Writer, p []byte) int {
	n, _ := w.Write(p) // want `error result blanked in mixed assignment; handle it`
	return n
}

// allBlank is the explicit, greppable acknowledgment — accepted.
func allBlank(w io.Writer, p []byte) {
	_, _ = w.Write(p)
}

// explicitBlank: a lone `_ =` is visibly deliberate — accepted.
func explicitBlank(c io.Closer) {
	_ = c.Close()
}

// buffered: bufio's sticky error model exempts intermediate writes,
// but Flush is where the error surfaces and must be checked.
func buffered(w io.Writer, p []byte) {
	bw := bufio.NewWriter(w)
	bw.Write(p)
	bw.Flush() // want `error result discarded; handle it or assign to _ explicitly`
}

// sticky: bytes.Buffer writes cannot fail — accepted.
func sticky(p []byte) string {
	var buf bytes.Buffer
	buf.Write(p)
	return buf.String()
}

// deferred errors are unobtainable — accepted.
func deferred(c io.Closer) {
	defer c.Close()
}

// printed: fmt printers to stdout are diagnostics, not protocol data.
func printed(p []byte) {
	fmt.Println(len(p))
}

// allowed: a justified drop carries a directive instead of a blank.
func allowed(w io.Writer, p []byte) {
	w.Write(p) //lint:allow errdrop best-effort trailer; the response is already committed
}
