package errdrop_test

import (
	"testing"

	"proteus/internal/lint/errdrop"
	"proteus/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata", errdrop.Analyzer, "a")
}

func TestScope(t *testing.T) {
	applies := errdrop.Analyzer.AppliesTo
	for _, p := range []string{
		"proteus/internal/cache",
		"proteus/internal/cacheclient",
		"proteus/internal/cacheserver",
		"proteus/internal/database",
		"proteus/internal/memproto",
		"proteus/internal/webtier",
	} {
		if !applies(p) {
			t.Errorf("%s is a hot path; errdrop should apply", p)
		}
	}
	for _, p := range []string{
		"proteus/internal/sim",
		"proteus/internal/experiments",
		"proteus/internal/lint/errdrop",
	} {
		if applies(p) {
			t.Errorf("%s is off the hot path; errdrop should not apply", p)
		}
	}
}
