// Package errdrop defines an analyzer that forbids silently discarded
// error results on the cache/DB/protocol hot paths — stricter than `go
// vet`, which only checks a fixed list of stdlib functions. Two forms
// are flagged:
//
//	f()         // statement position: the error vanishes invisibly
//	v, _ := f() // mixed assignment blanking only the error
//
// A lone explicit blank (`_ = f()`) is accepted: it is greppable and
// visibly deliberate. Deferred and `go` calls are exempt (their errors
// are unobtainable), as are loggers, fmt printers, and the
// sticky-error writers (bytes.Buffer, strings.Builder, and bufio.Writer
// short of Flush) whose write errors are checked once at the end.
package errdrop

import (
	"go/ast"

	"proteus/internal/lint/analysis"
	"proteus/internal/lint/lintutil"
)

// hotPath lists the packages where a dropped error can silently corrupt
// a response or strand a resource.
var hotPath = map[string]bool{
	"proteus/internal/cache":       true,
	"proteus/internal/cacheclient": true,
	"proteus/internal/cacheserver": true,
	"proteus/internal/cluster":     true,
	"proteus/internal/database":    true,
	"proteus/internal/memproto":    true,
	"proteus/internal/webtier":     true,
}

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name:      "errdrop",
	Doc:       "forbid discarded error results on cache/DB/proto hot paths (stricter than go vet)",
	AppliesTo: func(pkgPath string) bool { return hotPath[pkgPath] },
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return false // errors from these calls are unobtainable
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkStmtCall(pass, call)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkStmtCall flags a call in statement position whose last result is
// an error, unless the callee is exempt.
func checkStmtCall(pass *analysis.Pass, call *ast.CallExpr) {
	results := lintutil.ResultTypes(pass.TypesInfo, call)
	if len(results) == 0 || !lintutil.IsErrorType(results[len(results)-1]) {
		return
	}
	if exempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error result discarded; handle it or assign to _ explicitly")
}

// checkAssign flags mixed assignments that blank an error position
// while keeping other results, e.g. `n, _ := w.Write(p)`.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	results := lintutil.ResultTypes(pass.TypesInfo, call)
	if len(results) != len(as.Lhs) {
		return
	}
	if exempt(pass, call) {
		return
	}
	// An all-blank assignment (`_, _ = w.Write(p)`) is the explicit,
	// greppable acknowledgment — only mixed blanking is flagged.
	allBlank := true
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			allBlank = false
			break
		}
	}
	if allBlank {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if ok && id.Name == "_" && lintutil.IsErrorType(results[i]) {
			pass.Reportf(id.Pos(), "error result blanked in mixed assignment; handle it")
		}
	}
}

// exempt reports whether the callee's dropped error is acceptable.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	if pkgPath, name, ok := lintutil.PkgFuncRef(pass.TypesInfo, call.Fun); ok {
		// fmt.Print* to stdout: diagnostics, not protocol data.
		if pkgPath == "fmt" && (name == "Print" || name == "Println" || name == "Printf") {
			return true
		}
		return false
	}
	recv, name, ok := lintutil.MethodCall(pass.TypesInfo, call)
	if !ok {
		return false
	}
	recvType := pass.TypeOf(recv)
	switch lintutil.NamedPkgPath(recvType) {
	case "log":
		return true // (*log.Logger).Printf and friends return nothing anyway
	case "hash":
		return true // hash.Hash.Write is documented to never fail
	case "bytes", "strings":
		// bytes.Buffer / strings.Builder writes cannot fail.
		n := lintutil.NamedName(recvType)
		return n == "Buffer" || n == "Builder"
	case "bufio":
		// Sticky error model: intermediate writes may be unchecked as
		// long as Flush is checked — so Flush itself is never exempt.
		return lintutil.NamedName(recvType) == "Writer" && name != "Flush"
	}
	return false
}
