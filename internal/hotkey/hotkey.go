// Package hotkey detects the hottest keys of a Zipf-skewed workload
// online and carries the machinery around replicating them: a
// space-saving top-k sketch (Metwally et al., "Efficient Computation of
// Frequent and Top-k Elements in Data Streams"), a promotion tracker
// with hysteresis so keys do not flap in and out of the hot set, and a
// compact wire digest of the promoted set for cluster-wide broadcast.
//
// Algorithm 1 balances the key *space* per active prefix, but a Zipf
// head still concentrates *load* on whichever server owns the hottest
// keys (the Fig. 5 min/max ratios never reach 1.0). DistCache-style
// replication of just the head restores balance at a cost of R-1 extra
// copies per hot key; this package decides, deterministically, which
// keys earn those copies.
//
// Everything here is a pure function of the observation stream: no wall
// clock, no global randomness. The package is on the replay-critical
// list of the nodeterminism lint, and the conformance harness depends
// on that.
package hotkey

import "sort"

// Entry is one tracked counter of the sketch.
type Entry struct {
	// Key is the tracked key.
	Key string
	// Count is the estimated observation count (an overestimate:
	// true count <= Count <= true count + Err).
	Count uint64
	// Err is the maximum overestimation, inherited from the counter
	// that was evicted to make room for this key.
	Err uint64
}

// slot is a heap node: Entry plus the insertion sequence used to break
// count ties deterministically (older slots evict first).
type slot struct {
	Entry
	seq uint64
}

// Sketch is a space-saving top-k summary. It tracks at most Capacity
// counters; when a new key arrives with all counters in use, the
// minimum counter is reassigned to it (count' = min+1, err = min),
// which guarantees any key with true frequency > min is tracked.
//
// A Sketch is not safe for concurrent use; Tracker adds the lock.
type Sketch struct {
	capacity int
	pos      map[string]int // key -> index into heap
	heap     []slot         // min-heap by (Count, seq)
	seq      uint64
}

// NewSketch builds a sketch tracking up to capacity counters
// (capacity < 1 is treated as 1).
func NewSketch(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	return &Sketch{
		capacity: capacity,
		pos:      make(map[string]int, capacity),
		heap:     make([]slot, 0, capacity),
	}
}

// Capacity returns the counter budget.
func (s *Sketch) Capacity() int { return s.capacity }

// Len returns the number of keys currently tracked.
func (s *Sketch) Len() int { return len(s.heap) }

// Observe records one occurrence of key.
func (s *Sketch) Observe(key string) { s.ObserveN(key, 1) }

// ObserveN records n occurrences of key. n = 0 is a no-op.
func (s *Sketch) ObserveN(key string, n uint64) {
	if n == 0 {
		return
	}
	if i, ok := s.pos[key]; ok {
		s.heap[i].Count += n
		s.down(i)
		return
	}
	if len(s.heap) < s.capacity {
		s.seq++
		s.heap = append(s.heap, slot{Entry: Entry{Key: key, Count: n}, seq: s.seq})
		i := len(s.heap) - 1
		s.pos[key] = i
		s.up(i)
		return
	}
	// Space-saving eviction: the minimum counter becomes the new key's,
	// carrying its old count as the error bound.
	min := &s.heap[0]
	delete(s.pos, min.Key)
	s.seq++
	min.Err = min.Count
	min.Count += n
	min.Key = key
	min.seq = s.seq
	s.pos[key] = 0
	s.down(0)
}

// Count returns the estimate for key: est is an overestimate of the
// true count by at most err. tracked is false when the key holds no
// counter (its true count is then at most the current minimum).
func (s *Sketch) Count(key string) (est, err uint64, tracked bool) {
	i, ok := s.pos[key]
	if !ok {
		return 0, 0, false
	}
	return s.heap[i].Count, s.heap[i].Err, true
}

// Min returns the smallest tracked count (0 when empty): an upper bound
// on the true count of every untracked key.
func (s *Sketch) Min() uint64 {
	if len(s.heap) == 0 {
		return 0
	}
	return s.heap[0].Count
}

// Top returns the k largest counters, ordered by descending count with
// key as the deterministic tie-break. k <= 0 or k > Len returns all.
func (s *Sketch) Top(k int) []Entry {
	out := make([]Entry, len(s.heap))
	for i, sl := range s.heap {
		out[i] = sl.Entry
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Decay halves every counter (and its error bound), dropping counters
// that reach zero. Halving is monotone, so the heap order is preserved
// except for emptied slots; the tracker calls this at window
// boundaries to age out yesterday's hot set.
func (s *Sketch) Decay() {
	kept := s.heap[:0]
	for _, sl := range s.heap {
		sl.Count /= 2
		sl.Err /= 2
		if sl.Count == 0 {
			delete(s.pos, sl.Key)
			continue
		}
		kept = append(kept, sl)
	}
	s.heap = kept
	// Compaction may have broken the heap shape; rebuild and reindex.
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.down(i)
	}
	for i, sl := range s.heap {
		s.pos[sl.Key] = i
	}
}

// Reset drops every counter.
func (s *Sketch) Reset() {
	s.heap = s.heap[:0]
	s.pos = make(map[string]int, s.capacity)
	s.seq = 0
}

func (s *Sketch) less(i, j int) bool {
	if s.heap[i].Count != s.heap[j].Count {
		return s.heap[i].Count < s.heap[j].Count
	}
	return s.heap[i].seq < s.heap[j].seq
}

func (s *Sketch) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i].Key] = i
	s.pos[s.heap[j].Key] = j
}

func (s *Sketch) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Sketch) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}
