package hotkey

import "sort"

// TrackerConfig tunes the promotion policy. The zero value of every
// field selects a usable default.
type TrackerConfig struct {
	// Capacity is the sketch counter budget (default 128). It should be
	// several times MaxHot so the sketch's error bound stays well below
	// the promotion threshold.
	Capacity int
	// MaxHot bounds the promoted set (default 16): replication costs
	// R-1 copies per hot key, so the set must stay small.
	MaxHot int
	// Window is the number of observations per decision epoch
	// (default 4096). Promotions and demotions happen only at window
	// boundaries; between them the hot set is stable.
	Window uint64
	// PromoteShare is the minimum share of a window's observations a
	// key needs to be promoted (default 0.01, i.e. 1%).
	PromoteShare float64
	// DemoteShare is the hysteresis floor: a promoted key is demoted
	// only when its share falls below this (default PromoteShare/2).
	// Keeping DemoteShare < PromoteShare prevents a key sitting at the
	// threshold from flapping every window.
	DemoteShare float64
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.Capacity < 1 {
		c.Capacity = 128
	}
	if c.MaxHot < 1 {
		c.MaxHot = 16
	}
	if c.Window == 0 {
		c.Window = 4096
	}
	if c.PromoteShare <= 0 {
		c.PromoteShare = 0.01
	}
	if c.DemoteShare <= 0 {
		c.DemoteShare = c.PromoteShare / 2
	}
	return c
}

// Change is one hot-set transition decided at a window boundary.
type Change struct {
	Key string
	// Promote is true for a promotion, false for a demotion.
	Promote bool
}

// Tracker feeds an observation stream through a space-saving sketch and
// maintains the promoted hot set with hysteresis. Decisions are a pure
// function of the observation sequence: same stream, same promotions.
type Tracker struct {
	cfg    TrackerConfig
	sketch *Sketch
	hot    map[string]bool
	seen   uint64 // observations in the current window
	total  uint64 // decayed observation total, aged with the sketch
}

// NewTracker builds a tracker. The caller provides locking when sharing
// it across goroutines (the cluster coordinator wraps it in its own
// mutex).
func NewTracker(cfg TrackerConfig) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{
		cfg:    cfg,
		sketch: NewSketch(cfg.Capacity),
		hot:    make(map[string]bool),
	}
}

// Observe records one request for key. At window boundaries it returns
// the promotions and demotions decided for the next window (sorted by
// key, promotions first); otherwise it returns nil.
func (t *Tracker) Observe(key string) []Change {
	t.sketch.Observe(key)
	t.seen++
	t.total++
	if t.seen < t.cfg.Window {
		return nil
	}
	t.seen = 0
	changes := t.decide()
	// Age the sketch so a cooling key's share actually falls: without
	// decay, counts only grow and demotion would never trigger.
	t.sketch.Decay()
	t.total /= 2
	return changes
}

// decide recomputes the hot set from the sketch at a window boundary.
func (t *Tracker) decide() []Change {
	var changes []Change
	total := float64(t.total)
	if total == 0 {
		return nil
	}

	// Demotions first: a key leaves when its guaranteed share
	// (estimate minus error bound) can no longer clear the hysteresis
	// floor, or when it lost its counter entirely.
	for _, key := range sortedKeys(t.hot) {
		est, err, tracked := t.sketch.Count(key)
		if tracked && float64(est-err)/total >= t.cfg.DemoteShare {
			continue
		}
		delete(t.hot, key)
		changes = append(changes, Change{Key: key, Promote: false})
	}

	// Promotions: the top counters whose guaranteed count clears the
	// promotion threshold, best first, up to the MaxHot budget.
	budget := t.cfg.MaxHot - len(t.hot)
	for _, e := range t.sketch.Top(0) {
		if budget <= 0 {
			break
		}
		if t.hot[e.Key] {
			continue
		}
		if float64(e.Count-e.Err)/total < t.cfg.PromoteShare {
			break // Top is sorted; nothing below clears the bar either.
		}
		t.hot[e.Key] = true
		changes = append(changes, Change{Key: e.Key, Promote: true})
		budget--
	}

	sort.Slice(changes, func(i, j int) bool {
		if changes[i].Promote != changes[j].Promote {
			return changes[i].Promote
		}
		return changes[i].Key < changes[j].Key
	})
	return changes
}

// Hot reports whether key is currently promoted.
func (t *Tracker) Hot(key string) bool { return t.hot[key] }

// HotKeys returns the promoted set, sorted.
func (t *Tracker) HotKeys() []string { return sortedKeys(t.hot) }

// Reset drops all state (sketch, hot set, window position).
func (t *Tracker) Reset() {
	t.sketch.Reset()
	t.hot = make(map[string]bool)
	t.seen = 0
	t.total = 0
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
