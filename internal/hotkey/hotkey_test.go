package hotkey

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"proteus/internal/workload"
)

// exactCounts replays a stream into a plain map, the ground truth the
// sketch approximates.
func exactCounts(stream []string) map[string]uint64 {
	m := make(map[string]uint64)
	for _, k := range stream {
		m[k]++
	}
	return m
}

// exactTop returns the k keys with the highest true counts, ties broken
// by key to match Sketch.Top.
func exactTop(counts map[string]uint64, k int) []string {
	type kc struct {
		key string
		n   uint64
	}
	all := make([]kc, 0, len(counts))
	for key, n := range counts {
		all = append(all, kc{key, n})
	}
	// Deterministic selection sort order: count desc, key asc.
	for i := 0; i < len(all); i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].n > all[best].n || (all[j].n == all[best].n && all[j].key < all[best].key) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].key
	}
	return out
}

func zipfStream(t *testing.T, seed int64, s float64, keys, n int) []string {
	t.Helper()
	z, err := workload.NewZipf(rand.New(rand.NewSource(seed)), s, keys)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]string, n)
	for i := range stream {
		stream[i] = fmt.Sprintf("k%04d", z.Next())
	}
	return stream
}

// The sketch's core guarantee: every tracked estimate brackets the true
// count (true <= est <= true + err), and any untracked key's true count
// is at most the sketch minimum.
func TestSketchErrorBounds(t *testing.T) {
	for _, s := range []float64{0.7, 0.99, 1.2} {
		s := s
		t.Run(fmt.Sprintf("zipf_%.2f", s), func(t *testing.T) {
			stream := zipfStream(t, 42, s, 1000, 50000)
			truth := exactCounts(stream)
			sk := NewSketch(64)
			for _, k := range stream {
				sk.Observe(k)
			}
			min := sk.Min()
			for key, true_ := range truth {
				est, errB, tracked := sk.Count(key)
				if !tracked {
					if true_ > min {
						t.Fatalf("untracked key %s has true count %d > sketch min %d", key, true_, min)
					}
					continue
				}
				if est < true_ {
					t.Fatalf("key %s: estimate %d below true count %d", key, est, true_)
				}
				if est-errB > true_ {
					t.Fatalf("key %s: guaranteed count %d exceeds true count %d", key, est-errB, true_)
				}
			}
		})
	}
}

// Recall/precision of the sketch's top-k against exact counts across
// the Zipf exponents the paper's workloads span. The head of a Zipf
// distribution is exactly what space-saving is built to capture; demand
// high recall for the top 10 with a modest counter budget.
func TestSketchTopKRecall(t *testing.T) {
	for _, tc := range []struct {
		s         float64
		minRecall float64
	}{
		{0.7, 0.7}, // near-uniform: the "head" barely exists
		{0.99, 0.9},
		{1.2, 1.0},
	} {
		tc := tc
		t.Run(fmt.Sprintf("zipf_%.2f", tc.s), func(t *testing.T) {
			const topK = 10
			stream := zipfStream(t, 7, tc.s, 2000, 100000)
			truth := exactCounts(stream)
			sk := NewSketch(128)
			for _, k := range stream {
				sk.Observe(k)
			}
			want := exactTop(truth, topK)
			got := sk.Top(topK)
			gotSet := make(map[string]bool, len(got))
			for _, e := range got {
				gotSet[e.Key] = true
			}
			hits := 0
			for _, k := range want {
				if gotSet[k] {
					hits++
				}
			}
			recall := float64(hits) / float64(len(want))
			if recall < tc.minRecall {
				t.Fatalf("top-%d recall %.2f below %.2f (s=%.2f)", topK, recall, tc.minRecall, tc.s)
			}
		})
	}
}

// Adversarial rotating hot set: the hot keys change every phase. The
// sketch must track the *current* phase's head (space-saving recycles
// the minimum counter, so stale hot keys age out), and the tracker's
// decayed windows must follow the rotation.
func TestSketchRotatingHotSet(t *testing.T) {
	const (
		phases    = 5
		perPhase  = 20000
		hotPerPh  = 4
		coldSpace = 500
	)
	rng := rand.New(rand.NewSource(99))
	sk := NewSketch(64)
	for phase := 0; phase < phases; phase++ {
		for i := 0; i < perPhase; i++ {
			if rng.Intn(100) < 60 { // 60% of traffic on this phase's hot keys
				sk.Observe(fmt.Sprintf("hot-p%d-%d", phase, rng.Intn(hotPerPh)))
			} else {
				sk.Observe(fmt.Sprintf("cold-%d", rng.Intn(coldSpace)))
			}
		}
	}
	// After the final phase, its hot keys must dominate the sketch top.
	top := sk.Top(hotPerPh)
	for _, e := range top {
		var phase, idx int
		if _, err := fmt.Sscanf(e.Key, "hot-p%d-%d", &phase, &idx); err != nil {
			t.Fatalf("top entry %q is not a hot key", e.Key)
		}
		if phase != phases-1 {
			t.Fatalf("top entry %q is from stale phase %d", e.Key, phase)
		}
	}
}

// Seeded determinism per the nodeterminism lint contract: the same
// stream produces bit-identical sketches and tracker decisions.
func TestSketchDeterministic(t *testing.T) {
	run := func() ([]Entry, []Change) {
		stream := zipfStream(t, 1234, 0.99, 500, 30000)
		sk := NewSketch(32)
		tr := NewTracker(TrackerConfig{Capacity: 32, MaxHot: 4, Window: 1000})
		var changes []Change
		for _, k := range stream {
			sk.Observe(k)
			changes = append(changes, tr.Observe(k)...)
		}
		return sk.Top(0), changes
	}
	t1, c1 := run()
	t2, c2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("sketch tops differ between identical runs:\n%v\n%v", t1, t2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("tracker decisions differ between identical runs:\n%v\n%v", c1, c2)
	}
}

func TestSketchDecayAndReset(t *testing.T) {
	sk := NewSketch(8)
	sk.ObserveN("a", 10)
	sk.ObserveN("b", 3)
	sk.ObserveN("c", 1)
	sk.Decay()
	if est, _, ok := sk.Count("a"); !ok || est != 5 {
		t.Fatalf("a after decay: est=%d ok=%v, want 5", est, ok)
	}
	if _, _, ok := sk.Count("c"); ok {
		t.Fatal("c should age out at count 1/2 = 0")
	}
	if sk.Len() != 2 {
		t.Fatalf("len %d after decay, want 2", sk.Len())
	}
	sk.Reset()
	if sk.Len() != 0 || sk.Min() != 0 {
		t.Fatal("reset did not empty the sketch")
	}
}

// Promotion needs a sustained share; demotion waits for the hysteresis
// floor. A key oscillating between the two thresholds must not flap.
func TestTrackerHysteresis(t *testing.T) {
	tr := NewTracker(TrackerConfig{
		Capacity:     32,
		MaxHot:       4,
		Window:       1000,
		PromoteShare: 0.10,
		DemoteShare:  0.04,
	})
	feed := func(hotEvery int) []Change {
		var out []Change
		for i := 0; i < 1000; i++ {
			k := fmt.Sprintf("cold-%d", i%100)
			if hotEvery > 0 && i%hotEvery == 0 {
				k = "hot"
			}
			out = append(out, tr.Observe(k)...)
		}
		return out
	}
	// Window 1: 20% share -> promoted.
	ch := feed(5)
	if len(ch) != 1 || !ch[0].Promote || ch[0].Key != "hot" {
		t.Fatalf("window 1 changes %v, want promote hot", ch)
	}
	if !tr.Hot("hot") {
		t.Fatal("hot not promoted")
	}
	// Window 2: share drops to ~6% — between the thresholds, so the key
	// must stay promoted (hysteresis).
	if ch := feed(16); len(ch) != 0 {
		t.Fatalf("window 2 changes %v, want none (hysteresis)", ch)
	}
	if !tr.Hot("hot") {
		t.Fatal("hot demoted inside the hysteresis band")
	}
	// Windows 3-4: the key goes fully cold; decay drags its share below
	// the floor and it is demoted.
	feed(0)
	feed(0)
	if tr.Hot("hot") {
		t.Fatal("cold key still promoted after two cold windows")
	}
}

func TestTrackerMaxHotBudget(t *testing.T) {
	tr := NewTracker(TrackerConfig{Capacity: 64, MaxHot: 2, Window: 900, PromoteShare: 0.05})
	// Three keys each take ~33% of the window; only MaxHot may promote.
	for i := 0; i < 3000; i++ {
		tr.Observe(fmt.Sprintf("h%d", i%3))
	}
	if n := len(tr.HotKeys()); n > 2 {
		t.Fatalf("%d keys promoted, budget is 2", n)
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := NewDigest(7, 3, []string{"b", "a", "b", "zz"})
	if !reflect.DeepEqual(d.Keys, []string{"a", "b", "zz"}) {
		t.Fatalf("NewDigest did not canonicalise: %v", d.Keys)
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDigest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip: got %+v want %+v", got, d)
	}
	if !got.Contains("zz") || got.Contains("c") {
		t.Fatal("Contains wrong after decode")
	}
	enc2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("encoding is not canonical")
	}
}

func TestDigestDecodeRejects(t *testing.T) {
	good, err := NewDigest(1, 2, []string{"a", "b"}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string][]byte{
		"empty":        nil,
		"bad magic":    []byte("NOPE\x00"),
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte{}, good...), 0),
		"unsorted":     mustEncodeRaw(t, 1, 2, []string{"b", "a"}),
		"duplicate":    mustEncodeRaw(t, 1, 2, []string{"a", "a"}),
		"count>bytes":  []byte(digestMagic + "\x01\x02\xff\xff\xff\x7f"),
		"huge replica": []byte(digestMagic + "\x01\xff\x01\x00"),
	} {
		if _, err := DecodeDigest(b); err == nil {
			t.Fatalf("%s: decode accepted invalid input", name)
		}
	}
}

// mustEncodeRaw builds a wire image bypassing Encode's sorted-key
// check, to prove the decoder enforces it independently.
func mustEncodeRaw(t *testing.T, epoch uint64, replicas int, keys []string) []byte {
	t.Helper()
	buf := []byte(digestMagic)
	buf = append(buf, byte(epoch), byte(replicas), byte(len(keys)))
	for _, k := range keys {
		buf = append(buf, byte(len(k)))
		buf = append(buf, k...)
	}
	return buf
}
