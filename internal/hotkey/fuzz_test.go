package hotkey

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDigestRoundTrip throws arbitrary bytes at the digest decoder. Any
// input it accepts must re-encode to a byte-identical image (the wire
// form is canonical) and decode again to an equal value; everything
// else must be rejected without panicking.
func FuzzDigestRoundTrip(f *testing.F) {
	seed := func(epoch uint64, replicas int, keys ...string) {
		b, err := NewDigest(epoch, replicas, keys).Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(0, 0)
	seed(1, 2, "a")
	seed(7, 3, "k001", "k002", "k047")
	seed(1<<40, 64, "a", "b", "c", "d", "e", "f", "g", "h")
	f.Add([]byte(digestMagic))
	f.Add([]byte("PHK1\x05\x02\x02\x01a\x01b"))
	f.Add([]byte("not a digest"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDigest(data)
		if err != nil {
			return
		}
		enc, err := d.Encode()
		if err != nil {
			t.Fatalf("decoded digest failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical image:\n in %x\nout %x", data, enc)
		}
		d2, err := DecodeDigest(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round trip changed value: %+v vs %+v", d, d2)
		}
		for _, k := range d.Keys {
			if !d.Contains(k) {
				t.Fatalf("digest does not contain its own key %q", k)
			}
		}
	})
}
