package hotkey

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Digest is the broadcast form of a promoted hot set: which keys are
// replicated, at what factor, as of which hot-set epoch. Web servers
// apply the digest atomically — a key routes to its replica set exactly
// when the digest says so, which is what keeps every front end's
// routing view identical (the same property the placement table gives
// cold keys).
//
// Keys are kept sorted and unique; the wire form is canonical, so two
// digests are equal iff their encodings are byte-identical.
type Digest struct {
	// Epoch is a monotone hot-set version; receivers discard digests
	// older than the one they hold.
	Epoch uint64
	// Replicas is the replica-set size R for every promoted key.
	Replicas int
	// Keys is the promoted set, sorted and without duplicates.
	Keys []string
}

// digestMagic versions the wire form; decoders reject unknown magics.
const digestMagic = "PHK1"

// Wire-form sanity bounds: a digest describes a deliberately small hot
// set, so anything past these limits is corruption, not data.
const (
	maxDigestReplicas = 64
	maxDigestKeys     = 1 << 20
	maxDigestKeyLen   = 1 << 16
)

// NewDigest builds a canonical digest: keys are copied, sorted, and
// deduplicated.
func NewDigest(epoch uint64, replicas int, keys []string) *Digest {
	sorted := make([]string, len(keys))
	copy(sorted, keys)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for _, k := range sorted {
		if len(uniq) > 0 && uniq[len(uniq)-1] == k {
			continue
		}
		uniq = append(uniq, k)
	}
	return &Digest{Epoch: epoch, Replicas: replicas, Keys: uniq}
}

// Encode serialises the digest: magic, then uvarint epoch, replica
// count, key count, and length-prefixed keys in sorted order.
func (d *Digest) Encode() ([]byte, error) {
	if d.Replicas < 0 || d.Replicas > maxDigestReplicas {
		return nil, fmt.Errorf("hotkey: replicas %d out of range 0..%d", d.Replicas, maxDigestReplicas)
	}
	if len(d.Keys) > maxDigestKeys {
		return nil, fmt.Errorf("hotkey: %d keys exceeds limit %d", len(d.Keys), maxDigestKeys)
	}
	buf := make([]byte, 0, len(digestMagic)+3*binary.MaxVarintLen64+len(d.Keys)*8)
	buf = append(buf, digestMagic...)
	buf = binary.AppendUvarint(buf, d.Epoch)
	buf = binary.AppendUvarint(buf, uint64(d.Replicas))
	buf = binary.AppendUvarint(buf, uint64(len(d.Keys)))
	prev := ""
	for i, k := range d.Keys {
		if len(k) > maxDigestKeyLen {
			return nil, fmt.Errorf("hotkey: key %d length %d exceeds limit %d", i, len(k), maxDigestKeyLen)
		}
		if i > 0 && k <= prev {
			return nil, errors.New("hotkey: keys not strictly sorted")
		}
		prev = k
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	return buf, nil
}

// uvarint is binary.Uvarint restricted to minimal encodings: a padded
// varint (redundant zero continuation byte) would make two wire images
// decode to one value, breaking the canonical-form guarantee.
func uvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n > 1 && b[n-1] == 0 {
		return 0, 0
	}
	return v, n
}

// DecodeDigest parses a digest, validating the magic, bounds, and the
// strictly-sorted key order (the canonical form Encode produces).
func DecodeDigest(b []byte) (*Digest, error) {
	if len(b) < len(digestMagic) || string(b[:len(digestMagic)]) != digestMagic {
		return nil, errors.New("hotkey: bad digest magic")
	}
	b = b[len(digestMagic):]
	epoch, n := uvarint(b)
	if n <= 0 {
		return nil, errors.New("hotkey: truncated epoch")
	}
	b = b[n:]
	replicas, n := uvarint(b)
	if n <= 0 || replicas > maxDigestReplicas {
		return nil, errors.New("hotkey: bad replica count")
	}
	b = b[n:]
	count, n := uvarint(b)
	if n <= 0 || count > maxDigestKeys {
		return nil, errors.New("hotkey: bad key count")
	}
	b = b[n:]
	if count > uint64(len(b)) { // each key costs >= 1 byte on the wire
		return nil, errors.New("hotkey: key count exceeds payload")
	}
	keys := make([]string, 0, count)
	prev := ""
	for i := uint64(0); i < count; i++ {
		klen, n := uvarint(b)
		if n <= 0 || klen > maxDigestKeyLen || klen > uint64(len(b[n:])) {
			return nil, fmt.Errorf("hotkey: bad length for key %d", i)
		}
		b = b[n:]
		k := string(b[:klen])
		b = b[klen:]
		if i > 0 && k <= prev {
			return nil, errors.New("hotkey: keys not strictly sorted")
		}
		prev = k
		keys = append(keys, k)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("hotkey: %d trailing bytes", len(b))
	}
	return &Digest{Epoch: epoch, Replicas: int(replicas), Keys: keys}, nil
}

// Contains reports whether key is in the digest (binary search; keys
// are sorted).
func (d *Digest) Contains(key string) bool {
	i := sort.SearchStrings(d.Keys, key)
	return i < len(d.Keys) && d.Keys[i] == key
}
