package workload

import (
	"fmt"
	"math/rand"
	"time"

	"proteus/internal/wiki"
)

// UserPool generates the paper's RBE user population deterministically:
// user i always receives the same independent, Zipf-weighted page set,
// so closed-loop experiments are reproducible across scenarios (every
// scenario sees exactly the same users).
type UserPool struct {
	corpus       *wiki.Corpus
	pagesPerUser int
	alpha        float64
	seed         int64
	// sessionMean parametrises the exponential session durations.
	sessionMean time.Duration
	// cdf caches the shared Zipf CDF (lazily built; pools are
	// materialised before any concurrent use).
	cdf []float64
}

// UserPoolConfig configures a pool.
type UserPoolConfig struct {
	Corpus       *wiki.Corpus
	PagesPerUser int     // 0 selects the paper's 50
	ZipfAlpha    float64 // 0 selects DefaultZipfAlpha
	Seed         int64
	SessionMean  time.Duration // 0 selects 10 minutes
}

// NewUserPool builds a pool.
func NewUserPool(cfg UserPoolConfig) (*UserPool, error) {
	if cfg.Corpus == nil {
		return nil, fmt.Errorf("workload: user pool needs a corpus")
	}
	if cfg.PagesPerUser == 0 {
		cfg.PagesPerUser = PagesPerUser
	}
	if cfg.PagesPerUser < 1 {
		return nil, fmt.Errorf("workload: PagesPerUser must be >= 1, got %d", cfg.PagesPerUser)
	}
	if cfg.ZipfAlpha == 0 {
		cfg.ZipfAlpha = DefaultZipfAlpha
	}
	if cfg.SessionMean == 0 {
		cfg.SessionMean = 10 * time.Minute
	}
	return &UserPool{
		corpus:       cfg.Corpus,
		pagesPerUser: cfg.PagesPerUser,
		alpha:        cfg.ZipfAlpha,
		seed:         cfg.Seed,
		sessionMean:  cfg.SessionMean,
	}, nil
}

// User is one emulated browser.
type User struct {
	ID    int
	Pages []string // the independent working set
	rng   *rand.Rand
}

// User materialises user id. The same id always yields the same pages.
func (p *UserPool) User(id int) *User {
	rng := rand.New(rand.NewSource(p.seed ^ int64(id)*0x9e3779b9))
	// Per-user Zipf sampling over the full corpus: popular pages appear
	// in many users' sets, giving the cluster-level Zipf mixture.
	pages := make([]string, 0, p.pagesPerUser)
	seen := make(map[int]bool, p.pagesPerUser)
	zipf := p.userZipf(rng)
	for len(pages) < p.pagesPerUser {
		idx := zipf.Next()
		if seen[idx] {
			// Rejection keeps sets duplicate-free; fall back to uniform
			// when the head of the distribution is exhausted.
			idx = rng.Intn(p.corpus.Pages())
			if seen[idx] {
				continue
			}
		}
		seen[idx] = true
		pages = append(pages, p.corpus.Key(idx))
	}
	return &User{ID: id, Pages: pages, rng: rng}
}

// poolZipf is shared across User calls; the CDF is identical for every
// user so it is computed once.
func (p *UserPool) userZipf(rng *rand.Rand) *Zipf {
	p.initCDF()
	return &Zipf{rng: rng, cdf: p.cdf}
}

func (p *UserPool) initCDF() {
	if p.cdf != nil {
		return
	}
	z, err := NewZipf(rand.New(rand.NewSource(0)), p.alpha, p.corpus.Pages())
	if err != nil {
		panic(err) // unreachable: config validated in NewUserPool
	}
	p.cdf = z.cdf
}

// NextPage picks the user's next request target (uniform over the
// user's own set, per the paper: "the user thread will choose one page
// from her page set").
func (u *User) NextPage() string {
	return u.Pages[u.rng.Intn(len(u.Pages))]
}

// NextThink returns the user's think time before the next request. The
// paper fixes it at 0.5 s.
func (u *User) NextThink() time.Duration { return ThinkTime }

// SessionDuration draws an exponential session length with the pool's
// mean ("the user session duration follows exponential distribution").
func (p *UserPool) SessionDuration(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(p.sessionMean))
}

// ActiveUsers converts a target request rate into a concurrent user
// count using the closed-loop identity rate = users / (think + mean
// response time).
func ActiveUsers(rate float64, meanResponse time.Duration) int {
	cycle := ThinkTime + meanResponse
	n := int(rate * cycle.Seconds())
	if n < 1 {
		n = 1
	}
	return n
}
