package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"proteus/internal/wiki"
)

func testCorpus(t testing.TB, pages int) *wiki.Corpus {
	t.Helper()
	c, err := wiki.New(pages, 256)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDiurnalShape(t *testing.T) {
	d := DefaultDiurnal(100, 24*time.Hour)
	peak, valley := d.Peak(), d.Valley()
	if r := peak / valley; math.Abs(r-2.0) > 1e-9 {
		t.Fatalf("peak/valley = %g, want 2.0", r)
	}
	if got := d.Rate(d.PeakAt); math.Abs(got-peak) > 1e-9 {
		t.Fatalf("Rate(peak time) = %g, want %g", got, peak)
	}
	trough := d.PeakAt + d.Period/2
	if got := d.Rate(trough); math.Abs(got-valley) > 1e-9 {
		t.Fatalf("Rate(trough) = %g, want %g", got, valley)
	}
	// Mean over one period is close to Mean.
	sum := 0.0
	const steps = 1000
	for i := 0; i < steps; i++ {
		sum += d.Rate(time.Duration(i) * d.Period / steps)
	}
	if mean := sum / steps; math.Abs(mean-100) > 0.5 {
		t.Fatalf("mean rate %g, want ≈100", mean)
	}
}

func TestDiurnalSurge(t *testing.T) {
	d := DefaultDiurnal(100, 24*time.Hour)
	d.SurgeAt = 6 * time.Hour
	d.SurgeDuration = 2 * time.Hour
	d.SurgeFactor = 3

	base := d.Base()
	if base.Rate(7*time.Hour) != DefaultDiurnal(100, 24*time.Hour).Rate(7*time.Hour) {
		t.Fatal("Base() did not strip the surge")
	}
	// Outside the window the surge is invisible.
	for _, at := range []time.Duration{0, 5 * time.Hour, 9 * time.Hour, 20 * time.Hour} {
		if got, want := d.Rate(at), base.Rate(at); got != want {
			t.Fatalf("Rate(%v) = %g, want %g (outside surge)", at, got, want)
		}
	}
	// The surge midpoint multiplies the base rate by the full factor,
	// the edges by nothing, and everything stays under Peak().
	mid := d.SurgeAt + d.SurgeDuration/2
	if got, want := d.Rate(mid), 3*base.Rate(mid); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Rate(midpoint) = %g, want %g", got, want)
	}
	if got, want := d.Rate(d.SurgeAt), base.Rate(d.SurgeAt); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Rate(surge start) = %g, want %g", got, want)
	}
	for ti := 0; ti <= 240; ti++ {
		at := time.Duration(ti) * 6 * time.Minute
		if got := d.Rate(at); got > d.Peak()+1e-9 {
			t.Fatalf("Rate(%v) = %g exceeds Peak() = %g", at, got, d.Peak())
		}
	}
	if d.Peak() <= base.Peak() {
		t.Fatalf("surged Peak() %g not above base %g", d.Peak(), base.Peak())
	}
}

func TestDiurnalFlat(t *testing.T) {
	d := Diurnal{Mean: 50, PeakToValley: 1, Period: time.Hour}
	for _, frac := range []int{0, 1, 2, 3} {
		if got := d.Rate(time.Duration(frac) * 15 * time.Minute); got != 50 {
			t.Fatalf("flat rate = %g at %d", got, frac)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 0.8, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(rng, -1, 10); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z, err := NewZipf(rng, 0.8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	counts := make([]int, z.N())
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate, and the top-100 mass must exceed the
	// uniform share by a wide margin.
	if counts[0] < counts[100] {
		t.Fatal("rank 0 not more popular than rank 100")
	}
	top := 0
	for _, c := range counts[:100] {
		top += c
	}
	if frac := float64(top) / draws; frac < 0.10 {
		t.Fatalf("top-100 mass = %.3f, want >= 0.10 (uniform would be 0.01)", frac)
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z, err := NewZipf(rng, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform zipf rank %d count %d, want ≈1000", r, c)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	corpus := testCorpus(t, 10)
	bad := []GenConfig{
		{Duration: 0, Rate: DefaultDiurnal(10, time.Hour), Corpus: corpus},
		{Duration: time.Hour, Rate: Diurnal{}, Corpus: corpus},
		{Duration: time.Hour, Rate: DefaultDiurnal(10, time.Hour)},
	}
	for i, cfg := range bad {
		if err := Generate(cfg, func(Event) bool { return true }); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateRateAndOrder(t *testing.T) {
	corpus := testCorpus(t, 1000)
	cfg := GenConfig{
		Duration: time.Hour,
		Rate:     DefaultDiurnal(50, time.Hour),
		Corpus:   corpus,
		Seed:     42,
	}
	var events []Event
	if err := Generate(cfg, func(e Event) bool {
		events = append(events, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := 50 * 3600.0
	if got := float64(len(events)); math.Abs(got-want) > 0.05*want {
		t.Fatalf("generated %d events, want ≈%g", len(events), want)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of order")
		}
	}
	// The first half-period around the peak must carry more traffic
	// than the valley half.
	counter := HourlyCounts(time.Hour, 15*time.Minute)
	for _, e := range events {
		counter.Observe(e.At)
	}
	counts := counter.Counts()
	peakHalf := counts[1] + counts[2] // PeakAt = period/2
	valleyHalf := counts[0] + counts[3]
	if float64(peakHalf) < 1.4*float64(valleyHalf) {
		t.Fatalf("diurnal shape missing: peak half %d vs valley half %d", peakHalf, valleyHalf)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	corpus := testCorpus(t, 100)
	cfg := GenConfig{Duration: time.Minute, Rate: DefaultDiurnal(100, time.Minute), Corpus: corpus, Seed: 9}
	run := func() []Event {
		var out []Event
		if err := Generate(cfg, func(e Event) bool { out = append(out, e); return true }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateEarlyStop(t *testing.T) {
	corpus := testCorpus(t, 100)
	cfg := GenConfig{Duration: time.Hour, Rate: DefaultDiurnal(1000, time.Hour), Corpus: corpus}
	n := 0
	if err := Generate(cfg, func(Event) bool {
		n++
		return n < 10
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("emit called %d times, want 10", n)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0, Key: "page:0"},
		{At: 1500 * time.Millisecond, Key: "page:42"},
		{At: 3 * time.Hour, Key: "page:99"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := ReadTrace(&buf, func(e Event) bool { got = append(got, e); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i].Key != events[i].Key {
			t.Fatalf("event %d key = %q, want %q", i, got[i].Key, events[i].Key)
		}
		if d := got[i].At - events[i].At; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("event %d time %v, want %v", i, got[i].At, events[i].At)
		}
	}
}

func TestReadTraceSkipsCommentsAndRejectsGarbage(t *testing.T) {
	in := "# comment\n\n1.0 page:1\n"
	n := 0
	if err := ReadTrace(bytes.NewBufferString(in), func(Event) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("parsed %d events, want 1", n)
	}
	for _, bad := range []string{"nokey\n", "x page:1\n", "-1.0 page:1\n", "1.0  \n"} {
		if err := ReadTrace(bytes.NewBufferString(bad), func(Event) bool { return true }); err == nil {
			t.Errorf("ReadTrace(%q) accepted", bad)
		}
	}
}

func TestUserPoolDeterministicSets(t *testing.T) {
	corpus := testCorpus(t, 10000)
	pool, err := NewUserPool(UserPoolConfig{Corpus: corpus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := pool.User(17)
	b := pool.User(17)
	if len(a.Pages) != PagesPerUser {
		t.Fatalf("user has %d pages, want %d", len(a.Pages), PagesPerUser)
	}
	for i := range a.Pages {
		if a.Pages[i] != b.Pages[i] {
			t.Fatal("user page set not deterministic")
		}
	}
	seen := map[string]bool{}
	for _, p := range a.Pages {
		if seen[p] {
			t.Fatalf("duplicate page %s in user set", p)
		}
		seen[p] = true
	}
	c := pool.User(18)
	same := 0
	for _, p := range c.Pages {
		if seen[p] {
			same++
		}
	}
	if same == PagesPerUser {
		t.Fatal("two users share an identical page set")
	}
}

func TestUserNextPageFromOwnSet(t *testing.T) {
	corpus := testCorpus(t, 1000)
	pool, err := NewUserPool(UserPoolConfig{Corpus: corpus, PagesPerUser: 5})
	if err != nil {
		t.Fatal(err)
	}
	u := pool.User(1)
	inSet := map[string]bool{}
	for _, p := range u.Pages {
		inSet[p] = true
	}
	for i := 0; i < 100; i++ {
		if !inSet[u.NextPage()] {
			t.Fatal("NextPage left the user's set")
		}
	}
	if u.NextThink() != ThinkTime {
		t.Fatalf("think time = %v", u.NextThink())
	}
}

func TestActiveUsers(t *testing.T) {
	// 100 req/s with 0.5s think and 0.1s response needs 60 users.
	if got := ActiveUsers(100, 100*time.Millisecond); got != 60 {
		t.Fatalf("ActiveUsers = %d, want 60", got)
	}
	if got := ActiveUsers(0.1, 0); got != 1 {
		t.Fatalf("ActiveUsers floor = %d, want 1", got)
	}
}

func TestSessionDurationExponential(t *testing.T) {
	corpus := testCorpus(t, 100)
	pool, err := NewUserPool(UserPoolConfig{Corpus: corpus, SessionMean: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += pool.SessionDuration(rng)
	}
	mean := sum / n
	if mean < 55*time.Second || mean > 65*time.Second {
		t.Fatalf("session mean = %v, want ≈1m", mean)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(rng, 0.8, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkGenerate(b *testing.B) {
	corpus, err := wiki.New(100000, 256)
	if err != nil {
		b.Fatal(err)
	}
	cfg := GenConfig{Duration: time.Minute, Rate: DefaultDiurnal(1000, time.Minute), Corpus: corpus}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := Generate(cfg, func(Event) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
