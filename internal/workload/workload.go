// Package workload reproduces the paper's two workload sources:
//
//   - A Wikipedia-trace-shaped open-loop request stream (Fig. 4): a
//     diurnal rate curve whose peak is about twice its valley, with
//     Zipf-distributed page popularity. The paper replays the public
//     wikibench trace; we synthesise a stream with the same statistical
//     structure and support the same timestamped-key text format for
//     replaying captured traces.
//   - The RBE (remote browser emulator) closed-loop user model used for
//     the response-time experiments: independent users with a fixed
//     0.5 s think time, each owning an independent 50-page working set,
//     with the active user count following the diurnal curve.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"proteus/internal/wiki"
)

// DefaultZipfAlpha is the popularity skew used when none is given;
// studies of the Wikipedia trace report a Zipf exponent around 0.8.
const DefaultZipfAlpha = 0.8

// ThinkTime is the paper's per-user think time.
const ThinkTime = 500 * time.Millisecond

// PagesPerUser is the paper's per-user working set ("each user has an
// independent page set of 50 pages").
const PagesPerUser = 50

// Diurnal is the time-varying request rate model. The paper's Fig. 4
// trace oscillates daily with peak ≈ 2× valley.
type Diurnal struct {
	// Mean is the average rate in requests per second.
	Mean float64
	// PeakToValley is the peak:valley ratio (the paper observes ≈2).
	PeakToValley float64
	// Period is the cycle length (24h in the paper; compressed runs
	// use shorter periods).
	Period time.Duration
	// PeakAt positions the peak within the cycle.
	PeakAt time.Duration
	// Noise adds deterministic per-window rate jitter (relative, e.g.
	// 0.1 = ±10%), mimicking the raggedness of the real Wikipedia
	// curve. 0 disables. The jitter is a pure function of the window
	// index, so all consumers see the same curve.
	Noise float64
	// NoiseWindow is the jitter granularity (default Period/96).
	NoiseWindow time.Duration

	// SurgeAt, SurgeDuration and SurgeFactor superimpose a flash crowd:
	// a rate multiplier ramping linearly from 1 up to SurgeFactor and
	// back over [SurgeAt, SurgeAt+SurgeDuration]. SurgeFactor <= 1 or
	// SurgeDuration <= 0 disables it. Unlike the diurnal swing, the
	// surge is a one-off — an open-loop plan derived from Base() does
	// not anticipate it, which is exactly the forecast-miss scenario
	// feedback provisioning exists for.
	SurgeAt       time.Duration
	SurgeDuration time.Duration
	SurgeFactor   float64
}

// DefaultDiurnal returns the paper-shaped curve for the given mean rate
// and period.
func DefaultDiurnal(mean float64, period time.Duration) Diurnal {
	return Diurnal{Mean: mean, PeakToValley: 2.0, Period: period, PeakAt: period / 2}
}

// amplitude converts the peak:valley ratio to a relative sine
// amplitude: (1+a)/(1-a) = r  =>  a = (r-1)/(r+1).
func (d Diurnal) amplitude() float64 {
	r := d.PeakToValley
	if r <= 1 {
		return 0
	}
	return (r - 1) / (r + 1)
}

// Rate returns the instantaneous rate (requests/second) at time t,
// including any flash-crowd surge.
func (d Diurnal) Rate(t time.Duration) float64 {
	rate := d.baseRate(t) * d.surge(t)
	if rate < 0 {
		rate = 0
	}
	return rate
}

// baseRate is the diurnal curve without the surge.
func (d Diurnal) baseRate(t time.Duration) float64 {
	if d.Period <= 0 {
		return d.Mean
	}
	phase := 2 * math.Pi * float64(t-d.PeakAt) / float64(d.Period)
	rate := d.Mean * (1 + d.amplitude()*math.Cos(phase))
	if d.Noise > 0 {
		rate *= 1 + d.Noise*d.jitter(t)
	}
	return rate
}

// Base returns the curve with the flash-crowd surge stripped: what a
// forecaster extrapolating the diurnal pattern would predict. Plans
// derived from Base miss the surge on purpose.
func (d Diurnal) Base() Diurnal {
	d.SurgeFactor = 0
	d.SurgeAt = 0
	d.SurgeDuration = 0
	return d
}

// surge returns the flash-crowd multiplier at time t: a triangular ramp
// peaking at SurgeFactor midway through the surge window, 1 elsewhere.
func (d Diurnal) surge(t time.Duration) float64 {
	if d.SurgeFactor <= 1 || d.SurgeDuration <= 0 {
		return 1
	}
	off := t - d.SurgeAt
	if off < 0 || off > d.SurgeDuration {
		return 1
	}
	half := float64(d.SurgeDuration) / 2
	dist := math.Abs(float64(off) - half)
	return 1 + (d.SurgeFactor-1)*(1-dist/half)
}

// jitter returns a deterministic value in [-1, 1) for t's noise window.
func (d Diurnal) jitter(t time.Duration) float64 {
	window := d.NoiseWindow
	if window <= 0 {
		window = d.Period / 96
	}
	if window <= 0 {
		return 0
	}
	idx := uint64(t / window)
	h := idx * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return float64(h&0xffffffff)/float64(1<<31) - 1
}

// Peak returns the maximum instantaneous rate (excluding noise
// excursions, which are bounded by the Noise fraction), including the
// flash-crowd surge's worst case.
func (d Diurnal) Peak() float64 {
	peak := d.Mean * (1 + d.amplitude()) * (1 + d.Noise)
	if d.SurgeFactor > 1 && d.SurgeDuration > 0 {
		peak *= d.SurgeFactor
	}
	return peak
}

// Valley returns the minimum instantaneous rate.
func (d Diurnal) Valley() float64 { return d.Mean * (1 - d.amplitude()) }

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^alpha. Unlike math/rand's Zipf it supports alpha <= 1 (the
// Wikipedia regime) by precomputing the CDF.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a sampler over n ranks with the given skew.
func NewZipf(rng *rand.Rand, alpha float64, n int) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs n >= 1, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("workload: zipf alpha must be >= 0, got %g", alpha)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// Next draws a rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the rank count.
func (z *Zipf) N() int { return len(z.cdf) }

// Event is one trace record: a request for Key at experiment-relative
// time At (the wikibench trace's timestamp + URL pair).
type Event struct {
	At  time.Duration
	Key string
}

// GenConfig configures trace synthesis.
type GenConfig struct {
	// Duration is the trace length.
	Duration time.Duration
	// Rate is the arrival rate curve.
	Rate Diurnal
	// Corpus supplies the key population.
	Corpus *wiki.Corpus
	// ZipfAlpha is the popularity skew (0 selects DefaultZipfAlpha;
	// use a negative value for uniform popularity).
	ZipfAlpha float64
	// Seed makes the trace reproducible.
	Seed int64
}

// Generate synthesises a trace as a non-homogeneous Poisson process
// (thinning against the curve's peak rate), invoking emit for each
// event in time order. Generation stops early if emit returns false.
func Generate(cfg GenConfig, emit func(Event) bool) error {
	if cfg.Duration <= 0 {
		return fmt.Errorf("workload: duration must be positive, got %v", cfg.Duration)
	}
	if cfg.Corpus == nil {
		return fmt.Errorf("workload: corpus is required")
	}
	if cfg.Rate.Mean <= 0 {
		return fmt.Errorf("workload: mean rate must be positive, got %g", cfg.Rate.Mean)
	}
	alpha := cfg.ZipfAlpha
	if alpha == 0 {
		alpha = DefaultZipfAlpha
	}
	if alpha < 0 {
		alpha = 0 // uniform
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf, err := NewZipf(rng, alpha, cfg.Corpus.Pages())
	if err != nil {
		return err
	}
	peak := cfg.Rate.Peak()
	t := time.Duration(0)
	for {
		// Exponential inter-arrival at the peak rate...
		t += time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
		if t >= cfg.Duration {
			return nil
		}
		// ...thinned down to the instantaneous rate.
		if rng.Float64()*peak > cfg.Rate.Rate(t) {
			continue
		}
		if !emit(Event{At: t, Key: cfg.Corpus.Key(zipf.Next())}) {
			return nil
		}
	}
}

// HourlyCounts buckets events into fixed windows and returns the count
// per window — the Fig. 4 "requests per 1-hour window" curve.
func HourlyCounts(duration, window time.Duration) *Counter {
	n := int((duration + window - 1) / window)
	if n < 1 {
		n = 1
	}
	return &Counter{window: window, counts: make([]uint64, n)}
}

// Counter counts events per fixed time window.
type Counter struct {
	window time.Duration
	counts []uint64
}

// Observe counts one event at time t.
func (c *Counter) Observe(t time.Duration) {
	i := int(t / c.window)
	if i < 0 {
		i = 0
	}
	if i >= len(c.counts) {
		i = len(c.counts) - 1
	}
	c.counts[i]++
}

// Counts returns the per-window totals.
func (c *Counter) Counts() []uint64 { return append([]uint64(nil), c.counts...) }

// Window returns the bucket width.
func (c *Counter) Window() time.Duration { return c.window }
