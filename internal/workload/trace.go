package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// This file implements the on-disk trace format, a minimal analogue of
// the wikibench trace the paper replays: one request per line,
// "<seconds-since-start> <key>", e.g. "37.254193 page:1234".

// WriteTrace streams events to w in the text format.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if err := WriteTraceEvent(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTraceEvent writes a single record.
func WriteTraceEvent(w io.Writer, e Event) error {
	_, err := fmt.Fprintf(w, "%.6f %s\n", e.At.Seconds(), e.Key)
	return err
}

// ReadTrace parses records from r in order, invoking emit for each.
// Parsing stops early if emit returns false. Blank lines and lines
// starting with '#' are skipped.
func ReadTrace(r io.Reader, emit func(Event) bool) error {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sep := strings.IndexByte(line, ' ')
		if sep < 0 {
			return fmt.Errorf("workload: trace line %d: missing key: %q", lineNo, line)
		}
		secs, err := strconv.ParseFloat(line[:sep], 64)
		if err != nil || secs < 0 {
			return fmt.Errorf("workload: trace line %d: bad timestamp %q", lineNo, line[:sep])
		}
		key := strings.TrimSpace(line[sep+1:])
		if key == "" {
			return fmt.Errorf("workload: trace line %d: empty key", lineNo)
		}
		if !emit(Event{At: time.Duration(secs * float64(time.Second)), Key: key}) {
			return nil
		}
	}
	return br.Err()
}
