package workload

import (
	"math"
	"testing"
	"time"
)

func TestDiurnalNoiseDeterministicAndBounded(t *testing.T) {
	d := DefaultDiurnal(100, 24*time.Hour)
	d.Noise = 0.15
	for i := 0; i < 500; i++ {
		at := time.Duration(i) * 3 * time.Minute
		a, b := d.Rate(at), d.Rate(at)
		if a != b {
			t.Fatalf("noisy rate not deterministic at %v", at)
		}
		clean := DefaultDiurnal(100, 24*time.Hour).Rate(at)
		if a < clean*0.84 || a > clean*1.16 {
			t.Fatalf("noise excursion out of bounds at %v: %g vs clean %g", at, a, clean)
		}
	}
}

func TestDiurnalNoiseVariesAcrossWindows(t *testing.T) {
	d := DefaultDiurnal(100, 24*time.Hour)
	d.Noise = 0.15
	d.NoiseWindow = 10 * time.Minute
	distinct := map[int64]bool{}
	for i := 0; i < 24; i++ {
		at := time.Duration(i) * 10 * time.Minute
		ratio := d.Rate(at) / DefaultDiurnal(100, 24*time.Hour).Rate(at)
		distinct[int64(ratio*1e6)] = true
	}
	if len(distinct) < 12 {
		t.Fatalf("only %d distinct noise levels over 24 windows", len(distinct))
	}
}

func TestDiurnalNoiseMeanPreserved(t *testing.T) {
	d := DefaultDiurnal(100, 24*time.Hour)
	d.Noise = 0.2
	sum := 0.0
	const steps = 5000
	for i := 0; i < steps; i++ {
		sum += d.Rate(time.Duration(i) * d.Period / steps)
	}
	if mean := sum / steps; math.Abs(mean-100) > 3 {
		t.Fatalf("noisy mean = %g, want ≈100", mean)
	}
}

func TestDiurnalNoiseNeverNegative(t *testing.T) {
	d := Diurnal{Mean: 1, PeakToValley: 10, Period: time.Hour, Noise: 0.9}
	for i := 0; i < 1000; i++ {
		if r := d.Rate(time.Duration(i) * time.Minute); r < 0 {
			t.Fatalf("negative rate %g", r)
		}
	}
}

func TestGenerateWithNoise(t *testing.T) {
	corpus := testCorpus(t, 500)
	rate := DefaultDiurnal(100, time.Hour)
	rate.Noise = 0.2
	n := 0
	err := Generate(GenConfig{
		Duration: time.Hour,
		Rate:     rate,
		Corpus:   corpus,
		Seed:     3,
	}, func(Event) bool { n++; return true })
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * 3600
	if math.Abs(float64(n-want)) > 0.1*float64(want) {
		t.Fatalf("generated %d events, want ≈%d", n, want)
	}
}
