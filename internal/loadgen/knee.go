package loadgen

import (
	"time"
)

// SweepPoint is one offered-rate measurement in a saturation sweep.
type SweepPoint struct {
	Offered  float64 // scheduled arrivals per second
	Achieved float64 // issued operations per second
	Errors   uint64
	P50      time.Duration
	P99      time.Duration
	P999     time.Duration
	Mean     time.Duration
}

// FindKnee locates the throughput-vs-p99 knee in a sweep ordered by
// ascending offered rate: the index of the highest-rate point that
// still *keeps up* — p99 within p99Bound, zero-or-tolerated errors
// absorbed by the caller, and achieved throughput at least minGoodput
// of offered (a generator that cannot drain its own schedule is past
// saturation no matter what the histogram says). An isolated earlier
// violation (a GC pause landing in one measurement window on a shared
// runner) does not truncate the knee: genuine saturation keeps every
// later point over the bound, so the last good point is the robust
// estimate. Returns -1 when no point is under the knee.
func FindKnee(points []SweepPoint, p99Bound time.Duration, minGoodput float64) int {
	knee := -1
	for i, p := range points {
		if p99Bound > 0 && p.P99 > p99Bound {
			continue
		}
		if minGoodput > 0 && p.Offered > 0 && p.Achieved < minGoodput*p.Offered {
			continue
		}
		knee = i
	}
	return knee
}

// SweepPointFromResult condenses a run into a sweep row.
func SweepPointFromResult(offered float64, duration time.Duration, res *Result) SweepPoint {
	achieved := 0.0
	if duration > 0 {
		achieved = float64(res.Issued) / duration.Seconds()
	}
	return SweepPoint{
		Offered:  offered,
		Achieved: achieved,
		Errors:   res.Errors,
		P50:      res.Hist.Quantile(0.5),
		P99:      res.Hist.Quantile(0.99),
		P999:     res.Hist.Quantile(0.999),
		Mean:     res.Hist.Mean(),
	}
}
