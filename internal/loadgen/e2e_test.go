package loadgen_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/database"
	"proteus/internal/loadgen"
	"proteus/internal/testutil/clustertest"
	"proteus/internal/webtier"
	"proteus/internal/wiki"
)

// wallClock mirrors the command's live-plane clock; tests are outside
// the determinism lint's scope, and an e2e run is exactly the wall
// clock's legitimate boundary.
type wallClock struct{ start time.Time }

func (c *wallClock) Now() time.Duration { return time.Since(c.start) }
func (c *wallClock) WaitUntil(t time.Duration) {
	if d := t - c.Now(); d > 0 {
		time.Sleep(d)
	}
}

// TestOpenLoopAcrossTransitions is the end-to-end battery: a
// clustertest live plane behind the real web-tier HTTP surface takes
// open-loop load while the active-server count flips n→n+1 and then
// back n+1→n mid-run. The client must see zero errors — Proteus
// transitions are supposed to be invisible — and the worst
// flip-window interval p99 must stay within a stated multiple of the
// pre-flip baseline, with latency charged from intended start so the
// flip cannot hide behind generator back-off. Runs under -race in CI.
func TestOpenLoopAcrossTransitions(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e load test")
	}
	env := clustertest.Start(t, clustertest.Opts{
		Nodes:         4,
		InitialActive: 3,
		TTL:           time.Minute,
	})
	corpus, err := wiki.New(2000, wiki.DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Instant DB sleeps: the e2e battery measures transition behaviour,
	// not the modelled MySQL tail, and must stay fast under -race.
	db, err := database.New(database.Config{Shards: 3, Corpus: corpus, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	front, err := webtier.New(webtier.Config{Coordinator: env.Coord, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(front)
	defer srv.Close()

	client := srv.Client()
	client.Timeout = 5 * time.Second
	do := func(op loadgen.Op) error {
		switch op.Kind {
		case loadgen.OpGet:
			return httpGet(client, srv.URL+"/page/"+url.PathEscape(op.Keys[0]))
		case loadgen.OpSet:
			body, ok := corpus.PageByKey(op.Keys[0])
			if !ok {
				return fmt.Errorf("key %q not in corpus", op.Keys[0])
			}
			req, err := http.NewRequest(http.MethodPut, srv.URL+"/page/"+url.PathEscape(op.Keys[0]), bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			if resp.StatusCode/100 != 2 {
				return fmt.Errorf("PUT: %s", resp.Status)
			}
			return nil
		case loadgen.OpMultiGet:
			return httpGet(client, srv.URL+"/pages?keys="+url.QueryEscape(strings.Join(op.Keys, ",")))
		}
		return fmt.Errorf("unknown kind %v", op.Kind)
	}

	const interval = 300 * time.Millisecond
	clock := &wallClock{start: time.Now()}
	cfg := loadgen.Config{
		Workers:   4,
		Duration:  2400 * time.Millisecond,
		Arrivals:  loadgen.Poisson{Rate: 300},
		Keys:      corpus,
		ZipfAlpha: 0.99,
		Seed:      11,
		Interval:  interval,
		Clock:     clock,
		Do:        do,
	}
	r, err := loadgen.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Scale up at 0.8s (3→4), back down at 1.6s (4→3), both while the
	// generator keeps its fixed arrival timeline.
	flips := []struct {
		at time.Duration
		n  int
	}{{800 * time.Millisecond, 4}, {1600 * time.Millisecond, 3}}
	var flipErrs atomic.Uint64
	go func() {
		for _, f := range flips {
			if d := f.at - clock.Now(); d > 0 {
				time.Sleep(d)
			}
			if err := env.Coord.SetActive(f.n); err != nil {
				flipErrs.Add(1)
			}
		}
	}()

	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := flipErrs.Load(); n > 0 {
		t.Fatalf("%d SetActive call(s) failed", n)
	}
	if got := env.Coord.Active(); got != 3 {
		t.Fatalf("active count after both flips: %d, want 3", got)
	}
	if res.Errors != 0 {
		t.Fatalf("client saw %d errors across the transitions, want 0", res.Errors)
	}
	if res.Issued < res.Scheduled/2 {
		t.Fatalf("issued only %d of %d scheduled ops", res.Issued, res.Scheduled)
	}

	// Baseline: median interval p99 strictly before the first flip,
	// skipping the cold-cache interval 0. Bound: no flip-window interval
	// p99 beyond maxRatio× the baseline (floored at 1ms so a
	// microsecond-fast baseline doesn't make scheduler noise a failure).
	const maxRatio = 50.0
	var pre []time.Duration
	for _, iv := range res.Intervals {
		if iv.Start == 0 || iv.Start+interval > flips[0].at {
			continue
		}
		if iv.Hist.Count() > 0 {
			pre = append(pre, iv.Hist.Quantile(0.99))
		}
	}
	if len(pre) == 0 {
		t.Fatal("no pre-flip intervals to baseline against")
	}
	baseline := pre[len(pre)/2]
	if floor := time.Millisecond; baseline < floor {
		baseline = floor
	}
	for _, f := range flips {
		for _, iv := range res.Intervals {
			if iv.Start+interval <= f.at || iv.Start > f.at+3*interval || iv.Hist.Count() == 0 {
				continue
			}
			p99 := iv.Hist.Quantile(0.99)
			if ratio := float64(p99) / float64(baseline); ratio > maxRatio {
				t.Errorf("flip at %v to %d: interval %v p99 %v is %.1fx the %v baseline (bound %.0fx)",
					f.at, f.n, iv.Start, p99, ratio, baseline, maxRatio)
			}
		}
	}
}

func httpGet(client *http.Client, u string) error {
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET: %s", resp.Status)
	}
	return nil
}
