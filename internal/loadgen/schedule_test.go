package loadgen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"proteus/internal/wiki"
	"proteus/internal/workload"
)

func testKeys(t *testing.T, n int) *wiki.Corpus {
	t.Helper()
	c, err := wiki.New(n, 64)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	return c
}

func testTrace(t *testing.T, mean float64, dur time.Duration) []workload.Event {
	t.Helper()
	corpus := testKeys(t, 512)
	var events []workload.Event
	err := workload.Generate(workload.GenConfig{
		Duration: dur,
		Rate:     workload.DefaultDiurnal(mean, dur),
		Corpus:   corpus,
		Seed:     7,
	}, func(e workload.Event) bool {
		events = append(events, e)
		return true
	})
	if err != nil {
		t.Fatalf("trace gen: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace gen produced no events")
	}
	return events
}

// TestConstantGrid pins the constant schedule: the union over workers
// is an exact 1/Rate grid, strided so worker w owns arrivals w,
// w+total, ….
func TestConstantGrid(t *testing.T) {
	spec := Constant{Rate: 100}
	var all []time.Duration
	const workers = 4
	for w := 0; w < workers; w++ {
		s, err := spec.Worker(1, w, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			at, ok := s.Next()
			if !ok {
				t.Fatal("constant schedule is unbounded")
			}
			all = append(all, at)
			want := time.Duration(float64(w+i*workers) * float64(10*time.Millisecond))
			if diff := at - want; diff < -time.Microsecond || diff > time.Microsecond {
				t.Fatalf("worker %d arrival %d: got %v want %v", w, i, at, want)
			}
		}
	}
	if len(all) != 20 {
		t.Fatalf("got %d arrivals", len(all))
	}
}

// TestPoissonRate checks the aggregate empirical rate across workers
// stays near the configured rate (law of large numbers tolerance).
func TestPoissonRate(t *testing.T) {
	const rate, workers = 500.0, 8
	const horizon = 20 * time.Second
	spec := Poisson{Rate: rate}
	count := 0
	for w := 0; w < workers; w++ {
		s, err := spec.Worker(42, w, workers)
		if err != nil {
			t.Fatal(err)
		}
		for {
			at, ok := s.Next()
			if !ok || at >= horizon {
				break
			}
			count++
		}
	}
	got := float64(count) / horizon.Seconds()
	if math.Abs(got-rate)/rate > 0.05 {
		t.Fatalf("empirical rate %.1f/s, want %.1f/s ±5%%", got, rate)
	}
}

// TestTraceSpeedup pins the replay transform: trace time T arrives at
// run time T/speedup, order preserved, events strided across workers.
func TestTraceSpeedup(t *testing.T) {
	events := testTrace(t, 200, 10*time.Second)
	spec := Trace{Events: events, Speedup: 20}
	const workers = 3
	seen := 0
	for w := 0; w < workers; w++ {
		s, err := spec.Worker(1, w, workers)
		if err != nil {
			t.Fatal(err)
		}
		idx := w
		for {
			at, ok := s.Next()
			if !ok {
				break
			}
			want := time.Duration(float64(events[idx].At) / 20)
			if at != want {
				t.Fatalf("worker %d event %d: got %v want %v", w, idx, at, want)
			}
			idx += workers
			seen++
		}
	}
	if seen != len(events) {
		t.Fatalf("replayed %d of %d events", seen, len(events))
	}
}

// TestScheduleDeterminism is the seed contract: one (config, seed)
// yields one schedule, byte for byte; a different seed yields a
// different one.
func TestScheduleDeterminism(t *testing.T) {
	corpus := testKeys(t, 1024)
	events := testTrace(t, 300, 5*time.Second)
	for _, tc := range []struct {
		name string
		spec ArrivalSpec
	}{
		{"constant", Constant{Rate: 200}},
		{"poisson", Poisson{Rate: 200}},
		{"trace", Trace{Events: events, Speedup: 10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Workers:   4,
				Duration:  500 * time.Millisecond,
				Arrivals:  tc.spec,
				Mix:       DefaultMix(),
				Keys:      corpus,
				ZipfAlpha: 0.99,
				Seed:      11,
			}
			a, err := ScheduleOps(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ScheduleOps(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different schedules")
			}
			if len(a) == 0 {
				t.Fatal("empty schedule")
			}
			cfg.Seed = 12
			c, err := ScheduleOps(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a, c) {
				t.Fatal("different seeds produced identical schedules")
			}
		})
	}
}

// TestMixProportions checks the op generator realises the configured
// mix and that MultiGet batches are duplicate-free.
func TestMixProportions(t *testing.T) {
	corpus := testKeys(t, 4096)
	cfg := Config{
		Workers:   2,
		Duration:  10 * time.Second,
		Arrivals:  Constant{Rate: 1000},
		Mix:       Mix{Get: 0.6, Set: 0.3, MultiGet: 0.1, MultiGetKeys: 4},
		Keys:      corpus,
		ZipfAlpha: 0.99,
		Seed:      5,
	}
	ops, err := ScheduleOps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gets, sets, mgets int
	for _, op := range ops {
		switch op.Kind {
		case OpGet:
			gets++
			if len(op.Keys) != 1 {
				t.Fatalf("get with %d keys", len(op.Keys))
			}
		case OpSet:
			sets++
		case OpMultiGet:
			mgets++
			if len(op.Keys) != 4 {
				t.Fatalf("mget with %d keys, want 4", len(op.Keys))
			}
			seen := map[string]bool{}
			for _, k := range op.Keys {
				if seen[k] {
					t.Fatalf("duplicate key %q in mget batch", k)
				}
				seen[k] = true
			}
		}
	}
	total := float64(len(ops))
	for _, check := range []struct {
		name string
		got  float64
		want float64
	}{
		{"get", float64(gets) / total, 0.6},
		{"set", float64(sets) / total, 0.3},
		{"mget", float64(mgets) / total, 0.1},
	} {
		if math.Abs(check.got-check.want) > 0.02 {
			t.Errorf("%s share %.3f, want %.2f ±0.02", check.name, check.got, check.want)
		}
	}
}

// TestFindKnee pins the knee definition on a synthetic sweep.
func TestFindKnee(t *testing.T) {
	pts := []SweepPoint{
		{Offered: 100, Achieved: 100, P99: 2 * time.Millisecond},
		{Offered: 200, Achieved: 199, P99: 3 * time.Millisecond},
		{Offered: 400, Achieved: 398, P99: 8 * time.Millisecond},
		{Offered: 800, Achieved: 640, P99: 120 * time.Millisecond}, // goodput collapse
		{Offered: 1600, Achieved: 700, P99: 900 * time.Millisecond},
	}
	if got := FindKnee(pts, 50*time.Millisecond, 0.9); got != 2 {
		t.Fatalf("knee index %d, want 2", got)
	}
	if got := FindKnee(pts, time.Microsecond, 0.9); got != -1 {
		t.Fatalf("knee index %d, want -1 when every point is saturated", got)
	}
	// p99 alone admits the 4th point? No: bound excludes it, but with a
	// huge bound the goodput clause still stops the knee at index 2.
	if got := FindKnee(pts, time.Hour, 0.9); got != 2 {
		t.Fatalf("knee index %d, want 2 via the goodput clause", got)
	}
	// An isolated mid-sweep blip (GC pause in one window) must not
	// truncate the knee when every later point is healthy again.
	blip := []SweepPoint{
		{Offered: 100, Achieved: 100, P99: 2 * time.Millisecond},
		{Offered: 200, Achieved: 200, P99: 120 * time.Millisecond}, // noise
		{Offered: 400, Achieved: 399, P99: 3 * time.Millisecond},
		{Offered: 800, Achieved: 797, P99: 9 * time.Millisecond},
	}
	if got := FindKnee(blip, 50*time.Millisecond, 0.9); got != 3 {
		t.Fatalf("knee index %d, want 3 (isolated blip ignored)", got)
	}
}
