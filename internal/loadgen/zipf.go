package loadgen

import (
	"fmt"
	"math"
	"sort"
)

// newCDF precomputes the Zipf CDF over n ranks with skew alpha — the
// same construction as workload.NewZipf, rebuilt here so the sampler
// can be shared read-only across workers while each worker draws with
// its own seeded generator (workload.Zipf binds one generator at
// construction).
func newCDF(alpha float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("loadgen: zipf needs n >= 1, got %d", n)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf, nil
}

func searchFloat64s(cdf []float64, u float64) int {
	return sort.SearchFloat64s(cdf, u)
}
