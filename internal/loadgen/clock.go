package loadgen

import (
	"sync"
	"time"
)

// ManualClock is a virtual Clock for deterministic tests: WaitUntil
// jumps time forward to the target instead of sleeping, and Advance
// models time spent inside an operation (a service time or a stall).
// There is no background goroutine — time moves only when the worker
// waits or the responder advances — which makes it exact for
// single-worker runs: the sequence of Now values is a pure function of
// the schedule and the injected service times. Multi-worker virtual
// runs need real coordination between issuers and belong to the
// discrete-event simulator, not this clock.
type ManualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now implements Clock.
func (c *ManualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// WaitUntil implements Clock: virtual time jumps to t when t is in the
// future and is untouched when the worker is already late — exactly
// the open-loop contract (a late worker issues immediately).
func (c *ManualClock) WaitUntil(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Advance moves virtual time forward by d (a responder modelling
// service time or a stall calls this from inside Config.Do).
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
}
