// Package loadgen is the open-loop load-generation core of the live
// plane's saturation study: arrival times are laid down on a fixed
// timeline *before* the run, independent of response completion, and
// every request's latency is measured from its scheduled (intended)
// start rather than its actual send time.
//
// The distinction is the whole point. A closed-loop generator (the
// paper's RBE users, cmd/proteus-loadgen -mode rbe) waits for each
// response before issuing the next request, so when the system stalls
// the generator stalls with it and the stall never shows up as
// latency — the coordinated-omission artifact. The paper's central
// claim (Figs. 6–7: scale transitions cause no response-time spike) is
// exactly a claim about what happens during stalls, so measuring it
// honestly requires open-loop arrivals: if the cluster freezes for a
// second, every request scheduled inside that second is charged the
// freeze, whether or not a connection was free to carry it.
//
// The package is replay-critical (see DESIGN.md §6): all randomness
// comes from per-worker seeded generators derived from one seed, and
// all time flows through an injected Clock. One seed therefore yields
// one byte-identical schedule, diffable across runs and machines; the
// wall clock enters only at the cmd/proteus-loadgen boundary.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"proteus/internal/metrics"
)

// OpKind is the operation mix dimension.
type OpKind uint8

const (
	// OpGet fetches one page.
	OpGet OpKind = iota
	// OpSet overwrites one page.
	OpSet
	// OpMultiGet fetches a batch of pages in one exchange.
	OpMultiGet
)

// String names the kind for schedule dumps and CSV rows.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpMultiGet:
		return "mget"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one scheduled request: worker w's seq'th arrival, due at
// Intended on the run's timeline.
type Op struct {
	Worker   int
	Seq      int
	Kind     OpKind
	Keys     []string
	Intended time.Duration
}

// Mix is the operation mix. Weights are relative; they need not sum
// to 1. A zero Mix selects pure GETs.
type Mix struct {
	Get, Set, MultiGet float64
	// MultiGetKeys is the batch size for OpMultiGet (default 8).
	MultiGetKeys int
}

// DefaultMix mirrors a read-heavy memcached tier: 90% GET, 5% SET,
// 5% 8-key MultiGet.
func DefaultMix() Mix { return Mix{Get: 0.90, Set: 0.05, MultiGet: 0.05, MultiGetKeys: 8} }

func (m Mix) normalized() (Mix, error) {
	if m.Get < 0 || m.Set < 0 || m.MultiGet < 0 {
		return m, fmt.Errorf("loadgen: negative mix weight %+v", m)
	}
	total := m.Get + m.Set + m.MultiGet
	if total == 0 {
		m.Get, total = 1, 1
	}
	m.Get /= total
	m.Set /= total
	m.MultiGet /= total
	if m.MultiGetKeys == 0 {
		m.MultiGetKeys = 8
	}
	if m.MultiGetKeys < 1 {
		return m, fmt.Errorf("loadgen: MultiGetKeys must be >= 1, got %d", m.MultiGetKeys)
	}
	return m, nil
}

// Clock is the injected time source. On the live plane it is run-
// relative wall time (cmd/proteus-loadgen); in tests it is a
// ManualClock. Now and WaitUntil may be called concurrently from every
// worker goroutine.
type Clock interface {
	// Now returns the elapsed run time.
	Now() time.Duration
	// WaitUntil blocks until Now() >= t (returning immediately when t
	// has already passed).
	WaitUntil(t time.Duration)
}

// Config configures a Runner.
type Config struct {
	// Workers is the number of concurrent connections/issuers
	// (default 1). The offered rate is split across workers; a worker
	// only delays an arrival when its *own* previous request is still
	// in flight, and that delay is charged to the arrival (see
	// DESIGN.md §14).
	Workers int
	// Duration bounds the schedule: arrivals at or past Duration are
	// not issued.
	Duration time.Duration
	// Arrivals selects the arrival process (required).
	Arrivals ArrivalSpec
	// Mix is the operation mix (zero value = pure GET).
	Mix Mix
	// Keys supplies the key population (required): Key(i) for
	// i in [0, N()).
	Keys KeySpace
	// ZipfAlpha skews key popularity (0 = uniform).
	ZipfAlpha float64
	// Seed derives every per-worker generator.
	Seed int64
	// Interval is the reporting bucket width for per-interval
	// percentiles (default 1s of run time).
	Interval time.Duration
	// Clock is the injected time source (required).
	Clock Clock
	// Do issues one operation and reports whether it succeeded. It is
	// called concurrently from Workers goroutines.
	Do func(op Op) error
}

// KeySpace abstracts the key population (wiki.Corpus satisfies it).
type KeySpace interface {
	Pages() int
	Key(i int) string
}

func (c Config) validate() (Config, error) {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("loadgen: Workers must be >= 1, got %d", c.Workers)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: Duration must be positive, got %v", c.Duration)
	}
	if c.Arrivals == nil {
		return c, fmt.Errorf("loadgen: Arrivals is required")
	}
	if c.Keys == nil || c.Keys.Pages() < 1 {
		return c, fmt.Errorf("loadgen: Keys is required and must be non-empty")
	}
	if c.ZipfAlpha < 0 {
		return c, fmt.Errorf("loadgen: ZipfAlpha must be >= 0, got %g", c.ZipfAlpha)
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Clock == nil {
		return c, fmt.Errorf("loadgen: Clock is required")
	}
	var err error
	c.Mix, err = c.Mix.normalized()
	return c, err
}

// workerSeed derives worker w's generator seed. The multiplier
// decorrelates adjacent worker streams (same idiom as
// workload.UserPool).
func workerSeed(seed int64, w int, stream int64) int64 {
	h := uint64(seed) ^ uint64(w+1)*0x9e3779b97f4a7c15 ^ uint64(stream)*0x2545f4914f6cdd1d
	return int64(h)
}

// opGen draws a worker's operation sequence: kind from the mix, keys
// from the shared-CDF Zipf with the worker's own generator.
type opGen struct {
	mix  Mix
	rng  *rand.Rand
	zipf *zipfShared
	keys KeySpace
}

func (g *opGen) next(worker, seq int, at time.Duration) Op {
	op := Op{Worker: worker, Seq: seq, Intended: at}
	u := g.rng.Float64()
	switch {
	case u < g.mix.Get:
		op.Kind = OpGet
		op.Keys = []string{g.keys.Key(g.zipf.next(g.rng))}
	case u < g.mix.Get+g.mix.Set:
		op.Kind = OpSet
		op.Keys = []string{g.keys.Key(g.zipf.next(g.rng))}
	default:
		op.Kind = OpMultiGet
		keys := make([]string, 0, g.mix.MultiGetKeys)
		seen := make(map[int]bool, g.mix.MultiGetKeys)
		for len(keys) < g.mix.MultiGetKeys {
			idx := g.zipf.next(g.rng)
			if seen[idx] {
				idx = g.rng.Intn(g.keys.Pages())
				if seen[idx] {
					continue
				}
			}
			seen[idx] = true
			keys = append(keys, g.keys.Key(idx))
		}
		op.Keys = keys
	}
	return op
}

// zipfShared shares one CDF across workers (it depends only on alpha
// and the population) while each worker draws with its own generator.
type zipfShared struct {
	cdf []float64 // nil = uniform
	n   int
}

func newZipfShared(alpha float64, n int) (*zipfShared, error) {
	if alpha == 0 {
		return &zipfShared{n: n}, nil
	}
	// Reuse workload's CDF construction via a throwaway sampler; only
	// the CDF is kept, so the generator seed is irrelevant.
	z, err := newCDF(alpha, n)
	if err != nil {
		return nil, err
	}
	return &zipfShared{cdf: z, n: n}, nil
}

func (z *zipfShared) next(rng *rand.Rand) int {
	if z.cdf == nil {
		return rng.Intn(z.n)
	}
	u := rng.Float64()
	return searchFloat64s(z.cdf, u)
}

// Result is a completed run's measurements. All latencies are
// intended-start latencies.
type Result struct {
	// Scheduled counts arrivals laid down inside Duration; Issued
	// counts those actually sent (== Scheduled unless the run was
	// interrupted); Errors counts failed operations.
	Scheduled, Issued, Errors uint64
	// Hist aggregates every intended-start latency.
	Hist metrics.Histogram
	// Intervals buckets latencies by *intended* start time, so a
	// stalled request degrades the interval it was scheduled in, not
	// the interval the system got around to serving it.
	Intervals []Interval
	// MaxLag is the largest observed gap between an arrival's intended
	// and actual issue time — how far the generator itself fell behind
	// schedule (0 on a healthy open-loop run).
	MaxLag time.Duration
}

// Interval is one reporting bucket.
type Interval struct {
	Start  time.Duration
	Hist   metrics.Histogram
	Errors uint64
}

// Runner executes an open-loop run.
type Runner struct {
	cfg Config
}

// NewRunner validates cfg.
func NewRunner(cfg Config) (*Runner, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg}, nil
}

// workerState is one issuer's private measurement state, merged after
// the run so recording is lock-free and deterministic.
type workerState struct {
	hist      metrics.Histogram
	intervals []Interval
	scheduled uint64
	issued    uint64
	errors    uint64
	maxLag    time.Duration
}

func (w *workerState) record(cfg *Config, op Op, lat time.Duration, err error) {
	w.hist.Observe(lat)
	idx := int(op.Intended / cfg.Interval)
	for len(w.intervals) <= idx {
		w.intervals = append(w.intervals, Interval{
			Start: time.Duration(len(w.intervals)) * cfg.Interval,
		})
	}
	w.intervals[idx].Hist.Observe(lat)
	if err != nil {
		w.errors++
		w.intervals[idx].Errors++
	}
}

// Run issues the full schedule and returns the merged measurements.
// Each worker walks its own arrival sequence: it waits until an
// arrival's intended time, issues the operation, and records
// completion − intended as the latency. When the previous operation
// overran the next intended time, the next operation is issued
// immediately and still measured from its intended time — the overrun
// is charged to it, never omitted.
func (r *Runner) Run() (*Result, error) {
	cfg := r.cfg
	states := make([]workerState, cfg.Workers)
	// One CDF shared by every worker: it depends only on the skew and
	// the population, and draws go through per-worker generators.
	zipf, err := newZipfShared(cfg.ZipfAlpha, cfg.Keys.Pages())
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		sched, err := cfg.Arrivals.Worker(cfg.Seed, w, cfg.Workers)
		if err != nil {
			return nil, err
		}
		gen := &opGen{
			mix:  cfg.Mix,
			rng:  rand.New(rand.NewSource(workerSeed(cfg.Seed, w, 2))),
			zipf: zipf,
			keys: cfg.Keys,
		}
		wg.Add(1)
		go func(w int, sched Schedule, gen *opGen) {
			defer wg.Done()
			st := &states[w]
			for seq := 0; ; seq++ {
				at, ok := sched.Next()
				if !ok || at >= cfg.Duration {
					return
				}
				op := gen.next(w, seq, at)
				st.scheduled++
				// The injected Clock is this package's sanctioned time
				// boundary: the schedule itself is pure (seed, spec);
				// only pacing and latency measurement touch the clock,
				// and tests inject ManualClock for exact replay.
				//lint:allow transdeterminism injected Clock boundary; the cmd-side implementation is the live plane's wall clock on purpose
				cfg.Clock.WaitUntil(op.Intended)
				//lint:allow transdeterminism injected Clock boundary; the cmd-side implementation is the live plane's wall clock on purpose
				if lag := cfg.Clock.Now() - op.Intended; lag > st.maxLag {
					st.maxLag = lag
				}
				err := cfg.Do(op)
				//lint:allow transdeterminism injected Clock boundary; the cmd-side implementation is the live plane's wall clock on purpose
				lat := cfg.Clock.Now() - op.Intended
				st.issued++
				st.record(&cfg, op, lat, err)
			}
		}(w, sched, gen)
	}
	wg.Wait()
	res := &Result{}
	for i := range states {
		st := &states[i]
		res.Scheduled += st.scheduled
		res.Issued += st.issued
		res.Errors += st.errors
		if st.maxLag > res.MaxLag {
			res.MaxLag = st.maxLag
		}
		res.Hist.Merge(&st.hist)
		for len(res.Intervals) < len(st.intervals) {
			res.Intervals = append(res.Intervals, Interval{
				Start: time.Duration(len(res.Intervals)) * cfg.Interval,
			})
		}
		for j := range st.intervals {
			res.Intervals[j].Hist.Merge(&st.intervals[j].Hist)
			res.Intervals[j].Errors += st.intervals[j].Errors
		}
	}
	return res, nil
}

// ScheduleOps materialises the full schedule without issuing anything:
// every worker's operation sequence inside Duration, in worker order.
// Two calls with one Config are byte-identical when printed — the
// determinism artifact `make loadgen-smoke` diffs.
func ScheduleOps(cfg Config) ([]Op, error) {
	// A nil Clock/Do is fine for schedule-only materialisation.
	if cfg.Clock == nil {
		cfg.Clock = nopClock{}
	}
	if cfg.Do == nil {
		cfg.Do = func(Op) error { return nil }
	}
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	zipf, err := newZipfShared(cfg.ZipfAlpha, cfg.Keys.Pages())
	if err != nil {
		return nil, err
	}
	var ops []Op
	for w := 0; w < cfg.Workers; w++ {
		sched, err := cfg.Arrivals.Worker(cfg.Seed, w, cfg.Workers)
		if err != nil {
			return nil, err
		}
		gen := &opGen{
			mix:  cfg.Mix,
			rng:  rand.New(rand.NewSource(workerSeed(cfg.Seed, w, 2))),
			zipf: zipf,
			keys: cfg.Keys,
		}
		for seq := 0; ; seq++ {
			at, ok := sched.Next()
			if !ok || at >= cfg.Duration {
				break
			}
			ops = append(ops, gen.next(w, seq, at))
		}
	}
	return ops, nil
}

type nopClock struct{}

func (nopClock) Now() time.Duration      { return 0 }
func (nopClock) WaitUntil(time.Duration) {}
