package loadgen

import (
	"fmt"
	"math/rand"
	"time"

	"proteus/internal/workload"
)

// Schedule is one worker's arrival sequence: monotone non-decreasing
// intended start times on the run timeline. Next returns false when
// the sequence is exhausted (unbounded schedules never do — the runner
// cuts them at Config.Duration).
type Schedule interface {
	Next() (time.Duration, bool)
}

// ArrivalSpec builds per-worker schedules. The spec describes the
// *aggregate* arrival process; Worker(seed, w, total) returns worker
// w's share such that the union over workers realises the aggregate.
type ArrivalSpec interface {
	// Worker derives worker w's schedule from the run seed.
	Worker(seed int64, w, total int) (Schedule, error)
	// String names the spec for schedule dumps.
	String() string
}

// Constant is a deterministic constant-rate process: aggregate
// arrivals at exactly Rate per second, strided across workers (worker
// w takes arrivals w, w+total, w+2·total, …), so the global timeline
// is an even grid regardless of the worker count.
type Constant struct {
	Rate float64 // aggregate arrivals per second
}

func (c Constant) String() string { return fmt.Sprintf("constant(%g/s)", c.Rate) }

// Worker implements ArrivalSpec.
func (c Constant) Worker(seed int64, w, total int) (Schedule, error) {
	if c.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: constant rate must be positive, got %g", c.Rate)
	}
	if total < 1 || w < 0 || w >= total {
		return nil, fmt.Errorf("loadgen: bad worker %d of %d", w, total)
	}
	gap := float64(time.Second) / c.Rate
	return &constantSchedule{gap: gap, next: float64(w) * gap, stride: float64(total) * gap}, nil
}

type constantSchedule struct {
	gap, next, stride float64
}

func (s *constantSchedule) Next() (time.Duration, bool) {
	at := time.Duration(s.next)
	s.next += s.stride
	return at, true
}

// Poisson is a homogeneous Poisson process at the aggregate Rate.
// Each worker draws an independent Poisson stream at Rate/total from
// its own seeded generator; by superposition the aggregate is Poisson
// at Rate, and each worker's schedule is a pure function of
// (seed, w, total).
type Poisson struct {
	Rate float64 // aggregate arrivals per second
}

func (p Poisson) String() string { return fmt.Sprintf("poisson(%g/s)", p.Rate) }

// Worker implements ArrivalSpec.
func (p Poisson) Worker(seed int64, w, total int) (Schedule, error) {
	if p.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: poisson rate must be positive, got %g", p.Rate)
	}
	if total < 1 || w < 0 || w >= total {
		return nil, fmt.Errorf("loadgen: bad worker %d of %d", w, total)
	}
	return &poissonSchedule{
		rng:  rand.New(rand.NewSource(workerSeed(seed, w, 1))),
		rate: p.Rate / float64(total),
	}, nil
}

type poissonSchedule struct {
	rng  *rand.Rand
	rate float64
	at   float64 // nanoseconds
}

func (s *poissonSchedule) Next() (time.Duration, bool) {
	s.at += s.rng.ExpFloat64() / s.rate * float64(time.Second)
	return time.Duration(s.at), true
}

// Trace replays a recorded timeline (the wikibench-format diurnal
// trace, workload.Event timestamps) at Speedup× real time: an event at
// trace time T arrives at run time T/Speedup. Events are strided
// round-robin across workers in timestamp order. The trace contributes
// the arrival *timeline* (its diurnal shape and burstiness); key
// popularity still comes from the configured mix and Zipf skew, so
// every schedule kind flows through one deterministic op generator.
type Trace struct {
	Events  []workload.Event
	Speedup float64 // > 0; 1 replays in real time
}

func (t Trace) String() string {
	return fmt.Sprintf("trace(%d events, %gx)", len(t.Events), t.Speedup)
}

// Worker implements ArrivalSpec.
func (t Trace) Worker(seed int64, w, total int) (Schedule, error) {
	if t.Speedup <= 0 {
		return nil, fmt.Errorf("loadgen: trace speedup must be positive, got %g", t.Speedup)
	}
	if total < 1 || w < 0 || w >= total {
		return nil, fmt.Errorf("loadgen: bad worker %d of %d", w, total)
	}
	if len(t.Events) == 0 {
		return nil, fmt.Errorf("loadgen: trace has no events")
	}
	for i := 1; i < len(t.Events); i++ {
		if t.Events[i].At < t.Events[i-1].At {
			return nil, fmt.Errorf("loadgen: trace timestamps not monotone at event %d", i)
		}
	}
	return &traceSchedule{events: t.Events, idx: w, stride: total, speedup: t.Speedup}, nil
}

type traceSchedule struct {
	events  []workload.Event
	idx     int
	stride  int
	speedup float64
}

func (s *traceSchedule) Next() (time.Duration, bool) {
	if s.idx >= len(s.events) {
		return 0, false
	}
	at := time.Duration(float64(s.events[s.idx].At) / s.speedup)
	s.idx += s.stride
	return at, true
}
