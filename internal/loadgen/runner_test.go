package loadgen

import (
	"testing"
	"time"
)

// TestNoCoordinatedOmission is the package's reason to exist, pinned
// table-driven over every schedule kind: with a virtual clock and a
// responder that stalls mid-run, (1) every arrival keeps its scheduled
// intended-start timestamp — the stall does not push later arrivals'
// intended times — and (2) the stall is charged to the latency of every
// request it delays, computed against an exact single-worker oracle.
//
// A closed-loop generator fails both: arrivals after the stall shift
// later (so their recorded latency looks healthy), and the stalled
// period simply issues fewer requests — coordinated omission.
func TestNoCoordinatedOmission(t *testing.T) {
	corpus := testKeys(t, 256)
	const dur = time.Second
	events := testTrace(t, 100, 10*time.Second)
	for _, tc := range []struct {
		name string
		spec ArrivalSpec
	}{
		{"constant", Constant{Rate: 10}},
		{"poisson", Poisson{Rate: 10}},
		{"trace", Trace{Events: events, Speedup: 10}}, // ~10/s at 10x
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Workers:   1,
				Duration:  dur,
				Arrivals:  tc.spec,
				Keys:      corpus,
				ZipfAlpha: 0.8,
				Seed:      3,
				Interval:  100 * time.Millisecond,
			}
			// The schedule as laid down before the run: the reference
			// for intended-start immutability.
			want, err := ScheduleOps(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) < 5 {
				t.Fatalf("schedule too short (%d ops) to stall meaningfully", len(want))
			}
			stallSeq := 2
			const stall = 350 * time.Millisecond
			const service = time.Millisecond
			serviceFor := func(seq int) time.Duration {
				if seq == stallSeq {
					return stall
				}
				return service
			}

			// Exact single-worker oracle: walk the schedule charging
			// each op completion − intended.
			var (
				oracleNow time.Duration
				oracleSum time.Duration
				oracleMax time.Duration
				oracleLat []time.Duration
			)
			for seq, op := range want {
				if op.Intended > oracleNow {
					oracleNow = op.Intended
				}
				oracleNow += serviceFor(seq)
				lat := oracleNow - op.Intended
				oracleLat = append(oracleLat, lat)
				oracleSum += lat
				if lat > oracleMax {
					oracleMax = lat
				}
			}

			clock := &ManualClock{}
			var got []Op
			cfg.Clock = clock
			cfg.Do = func(op Op) error {
				got = append(got, op)
				clock.Advance(serviceFor(op.Seq))
				return nil
			}
			r, err := NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}

			// (1) Intended-start immutability: the issued ops carry
			// exactly the pre-run schedule's timestamps, stall or not.
			if len(got) != len(want) {
				t.Fatalf("issued %d ops, schedule has %d", len(got), len(want))
			}
			for i := range got {
				if got[i].Intended != want[i].Intended {
					t.Fatalf("op %d intended drifted: issued at schedule says %v, run used %v",
						i, want[i].Intended, got[i].Intended)
				}
			}

			// (2) The stall is charged: recorded latencies equal the
			// oracle exactly (sum, max, count are exact in the
			// histogram; bucketed quantiles are checked via the count
			// of delayed requests).
			if res.Hist.Count() != uint64(len(want)) {
				t.Fatalf("recorded %d samples, want %d", res.Hist.Count(), len(want))
			}
			if res.Hist.Sum() != oracleSum {
				t.Fatalf("latency sum %v, oracle %v — stall not fully charged", res.Hist.Sum(), oracleSum)
			}
			if res.Hist.Max() != oracleMax {
				t.Fatalf("latency max %v, oracle %v", res.Hist.Max(), oracleMax)
			}
			delayed := 0
			for _, lat := range oracleLat {
				if lat >= 10*service {
					delayed++
				}
			}
			if delayed < 2 {
				t.Fatalf("oracle says only %d delayed requests; stall placement broken", delayed)
			}
			// The generator itself fell behind by the stall minus the
			// inter-arrival slack — MaxLag must be positive, proving
			// requests were issued late yet charged from intended time.
			if res.MaxLag <= 0 {
				t.Fatal("MaxLag is zero: the stall never delayed an issue, test is vacuous")
			}

			// (3) Interval accounting: the delayed requests land in the
			// buckets of their *intended* starts. The oracle says
			// exactly which intended times carry a delayed latency;
			// an interval may only show one when the oracle placed a
			// delayed request inside it.
			delayedIn := map[int]bool{}
			for seq, lat := range oracleLat {
				if lat >= 10*service {
					delayedIn[int(want[seq].Intended/cfg.Interval)] = true
				}
			}
			for i, iv := range res.Intervals {
				// An interval whose max exceeds the threshold contains
				// at least one delayed request.
				if iv.Hist.Count() > 0 && iv.Hist.Max() >= 10*service && !delayedIn[i] {
					t.Fatalf("delayed latency recorded in interval starting %v; the oracle placed none there",
						iv.Start)
				}
			}
			if res.Errors != 0 {
				t.Fatalf("unexpected errors: %d", res.Errors)
			}
		})
	}
}

// TestRunnerMultiWorkerMerge checks the merged result across workers:
// counts add up and per-interval histograms cover every scheduled op.
func TestRunnerMultiWorkerMerge(t *testing.T) {
	corpus := testKeys(t, 256)
	clock := &ManualClock{}
	cfg := Config{
		Workers:  4,
		Duration: 2 * time.Second,
		Arrivals: Constant{Rate: 100},
		Keys:     corpus,
		Seed:     9,
		Interval: 500 * time.Millisecond,
		Clock:    clock,
		Do:       func(Op) error { return nil },
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 200 || res.Issued != 200 {
		t.Fatalf("scheduled %d issued %d, want 200/200", res.Scheduled, res.Issued)
	}
	var inIntervals uint64
	for _, iv := range res.Intervals {
		inIntervals += iv.Hist.Count()
	}
	if inIntervals != res.Hist.Count() || inIntervals != 200 {
		t.Fatalf("interval samples %d, total %d, want 200", inIntervals, res.Hist.Count())
	}
	if len(res.Intervals) != 4 {
		t.Fatalf("got %d intervals, want 4", len(res.Intervals))
	}
}

// TestRunnerErrorsCharged checks failed ops count as errors in both the
// aggregate and their intended interval.
func TestRunnerErrorsCharged(t *testing.T) {
	corpus := testKeys(t, 64)
	clock := &ManualClock{}
	fail := map[int]bool{3: true, 7: true}
	cfg := Config{
		Workers:  1,
		Duration: time.Second,
		Arrivals: Constant{Rate: 10},
		Keys:     corpus,
		Seed:     1,
		Interval: 100 * time.Millisecond,
		Clock:    clock,
		Do: func(op Op) error {
			if fail[op.Seq] {
				return errFail
			}
			return nil
		},
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 2 {
		t.Fatalf("errors %d, want 2", res.Errors)
	}
	var ivErrs uint64
	for _, iv := range res.Intervals {
		ivErrs += iv.Errors
	}
	if ivErrs != 2 {
		t.Fatalf("interval errors %d, want 2", ivErrs)
	}
}

var errFail = workloadError("injected failure")

type workloadError string

func (e workloadError) Error() string { return string(e) }
