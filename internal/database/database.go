// Package database simulates the paper's backing store tier: 7 MySQL
// servers holding non-overlapping shards of the Wikipedia dump. Pages
// are served from the synthetic wiki corpus; what this package models
// faithfully is the tier's *performance envelope* — a per-request cost
// one to two orders of magnitude above a cache hit, and bounded
// per-shard concurrency so that a re-mapping storm (the paper's Naive
// transition) drives queueing delay through the roof. That overload
// behaviour is exactly what produces the Fig. 9 delay spikes.
package database

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"proteus/internal/wiki"
)

// ErrNotFound reports a key outside the corpus.
var ErrNotFound = errors.New("database: key not found")

// LatencyModel describes per-query service time: Base plus PerKB
// proportional cost, multiplied by an exponential jitter factor with
// the given mean (1.0 disables jitter).
type LatencyModel struct {
	Base       time.Duration
	PerKB      time.Duration
	JitterMean float64
}

// DefaultLatency approximates the paper's MySQL lookups (three index
// lookups plus a text read from disk).
var DefaultLatency = LatencyModel{
	Base:       12 * time.Millisecond,
	PerKB:      500 * time.Microsecond,
	JitterMean: 1.0,
}

// ServiceTime draws a service time for a page of the given size using
// the provided RNG (nil disables jitter).
func (m LatencyModel) ServiceTime(size int, rng *rand.Rand) time.Duration {
	d := m.Base + time.Duration(size)*m.PerKB/1024
	if rng != nil && m.JitterMean > 0 {
		d = time.Duration(float64(d) * (0.5 + m.JitterMean*rng.ExpFloat64()/2))
	}
	return d
}

// Config configures the tier.
type Config struct {
	// Shards is the number of database servers (the paper uses 7).
	Shards int
	// Corpus supplies page bodies; required.
	Corpus *wiki.Corpus
	// Latency models per-query service time; zero value selects
	// DefaultLatency.
	Latency LatencyModel
	// ConcurrencyPerShard bounds in-flight queries per shard (the
	// paper's InnoDB thread pool); excess queries queue. Default 8.
	ConcurrencyPerShard int
	// Sleep suspends the calling goroutine for the modelled service
	// time; nil uses time.Sleep. Tests inject instant sleeps; the
	// discrete-event simulator bypasses this package entirely and
	// reuses only the LatencyModel.
	Sleep func(time.Duration)
}

// Stats is a snapshot of tier counters.
type Stats struct {
	Queries   uint64
	NotFound  uint64
	BytesRead uint64
	// MaxQueueDepth is the high-water mark of queries waiting (not
	// yet executing) across all shards.
	MaxQueueDepth int
}

// DB is the sharded store. It is safe for concurrent use; Get blocks
// for the modelled service time.
type DB struct {
	cfg    Config
	shards []*shard

	mu    sync.Mutex
	stats Stats
}

type shard struct {
	sem     chan struct{}
	mu      sync.Mutex
	waiting int
	rng     *rand.Rand
}

// New builds the tier.
func New(cfg Config) (*DB, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("database: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Corpus == nil {
		return nil, errors.New("database: corpus is required")
	}
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = DefaultLatency
	}
	if cfg.ConcurrencyPerShard == 0 {
		cfg.ConcurrencyPerShard = 8
	}
	if cfg.ConcurrencyPerShard < 1 {
		return nil, fmt.Errorf("database: ConcurrencyPerShard must be >= 1, got %d", cfg.ConcurrencyPerShard)
	}
	if cfg.Sleep == nil {
		//lint:allow nodeterminism live-tier default at the wall-clock boundary; the DES never calls Sleep (it reuses LatencyModel, which is pure given its seeded rng)
		cfg.Sleep = time.Sleep
	}
	db := &DB{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range db.shards {
		db.shards[i] = &shard{
			sem: make(chan struct{}, cfg.ConcurrencyPerShard),
			rng: rand.New(rand.NewSource(int64(i) + 1)),
		}
	}
	return db, nil
}

// Shards returns the shard count.
func (db *DB) Shards() int { return len(db.shards) }

// ShardFor returns the shard index that stores the key. Pages are
// horizontally partitioned by index, mirroring the paper's 7
// non-overlapping MySQL shards.
func (db *DB) ShardFor(key string) (int, error) {
	i, ok := db.cfg.Corpus.Index(key)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return i % len(db.shards), nil
}

// Get fetches a page, blocking for the shard's queueing plus service
// time.
func (db *DB) Get(key string) ([]byte, error) {
	idx, ok := db.cfg.Corpus.Index(key)
	if !ok {
		db.mu.Lock()
		db.stats.NotFound++
		db.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	sh := db.shards[idx%len(db.shards)]

	sh.mu.Lock()
	sh.waiting++
	waiting := sh.waiting
	sh.mu.Unlock()
	db.mu.Lock()
	if waiting > db.stats.MaxQueueDepth {
		db.stats.MaxQueueDepth = waiting
	}
	db.mu.Unlock()

	sh.sem <- struct{}{} // acquire a connection slot
	sh.mu.Lock()
	sh.waiting--
	service := db.cfg.Latency.ServiceTime(db.cfg.Corpus.Size(idx), sh.rng)
	sh.mu.Unlock()

	db.cfg.Sleep(service)
	body := db.cfg.Corpus.Page(idx)
	<-sh.sem

	db.mu.Lock()
	db.stats.Queries++
	db.stats.BytesRead += uint64(len(body))
	db.mu.Unlock()
	return body, nil
}

// Stats returns a snapshot of tier counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}
