package database

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/wiki"
)

func testCorpus(t *testing.T, pages int) *wiki.Corpus {
	t.Helper()
	c, err := wiki.New(pages, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func instantDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	corpus := testCorpus(t, 10)
	if _, err := New(Config{Shards: 0, Corpus: corpus}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := New(Config{Shards: 7}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := New(Config{Shards: 7, Corpus: corpus, ConcurrencyPerShard: -1}); err == nil {
		t.Error("negative concurrency accepted")
	}
}

func TestGetReturnsCorpusPage(t *testing.T) {
	corpus := testCorpus(t, 100)
	db := instantDB(t, Config{Shards: 7, Corpus: corpus})
	for i := 0; i < 100; i += 13 {
		body, err := db.Get(corpus.Key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, corpus.Page(i)) {
			t.Fatalf("page %d body mismatch", i)
		}
	}
	st := db.Stats()
	if st.Queries != 8 || st.BytesRead == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetNotFound(t *testing.T) {
	db := instantDB(t, Config{Shards: 3, Corpus: testCorpus(t, 10)})
	_, err := db.Get("page:99999")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if db.Stats().NotFound != 1 {
		t.Fatal("NotFound not counted")
	}
}

func TestShardForPartitions(t *testing.T) {
	corpus := testCorpus(t, 700)
	db := instantDB(t, Config{Shards: 7, Corpus: corpus})
	counts := make([]int, 7)
	for i := 0; i < 700; i++ {
		s, err := db.ShardFor(corpus.Key(i))
		if err != nil {
			t.Fatal(err)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c != 100 {
			t.Fatalf("shard %d holds %d pages, want 100", s, c)
		}
	}
	if _, err := db.ShardFor("bogus"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ShardFor(bogus) err = %v", err)
	}
}

func TestServiceTimeModel(t *testing.T) {
	m := LatencyModel{Base: 10 * time.Millisecond, PerKB: time.Millisecond}
	if got := m.ServiceTime(2048, nil); got != 12*time.Millisecond {
		t.Fatalf("ServiceTime(2KB) = %v, want 12ms", got)
	}
	if got := m.ServiceTime(0, nil); got != 10*time.Millisecond {
		t.Fatalf("ServiceTime(0) = %v, want 10ms", got)
	}
}

// Concurrency beyond the per-shard bound must queue: with 1-deep
// concurrency and a 20ms service time, 4 concurrent queries to the
// same shard take >= ~80ms total.
func TestPerShardConcurrencyBound(t *testing.T) {
	corpus := testCorpus(t, 4)
	var inFlight, maxInFlight int32
	db, err := New(Config{
		Shards:              1,
		Corpus:              corpus,
		ConcurrencyPerShard: 1,
		Latency:             LatencyModel{Base: 5 * time.Millisecond},
		Sleep: func(d time.Duration) {
			cur := atomic.AddInt32(&inFlight, 1)
			for {
				old := atomic.LoadInt32(&maxInFlight)
				if cur <= old || atomic.CompareAndSwapInt32(&maxInFlight, old, cur) {
					break
				}
			}
			time.Sleep(d)
			atomic.AddInt32(&inFlight, -1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := db.Get(corpus.Key(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := atomic.LoadInt32(&maxInFlight); got != 1 {
		t.Fatalf("max in-flight = %d, want 1 (bounded)", got)
	}
	if db.Stats().MaxQueueDepth < 2 {
		t.Fatalf("MaxQueueDepth = %d, want >= 2", db.Stats().MaxQueueDepth)
	}
}

func TestConcurrentGets(t *testing.T) {
	corpus := testCorpus(t, 1000)
	db := instantDB(t, Config{Shards: 7, Corpus: corpus})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < 1000; i += 8 {
				if _, err := db.Get(corpus.Key(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := db.Stats().Queries; got != 1000 {
		t.Fatalf("Queries = %d, want 1000", got)
	}
}
