// Package livestack brings up a self-contained live-plane stack on one
// machine: N in-process cache servers (real TCP loopback listeners,
// exactly what proteusd runs), a coordinator over them, a web tier,
// and an HTTP front end with the same /page, /pages and /admin/active
// surface as proteus-web. Load generators and benchmarks drive it over
// loopback HTTP, so every byte crosses real sockets twice (client→web,
// web→cache) — the full stack a saturation knee characterises.
//
// It is live-plane plumbing, deliberately outside the determinism
// contract: real listeners, real wall-clock TTLs.
package livestack

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/cluster"
	"proteus/internal/database"
	"proteus/internal/webtier"
	"proteus/internal/wiki"
)

// Config sizes the stack. CorpusPages is required; Active == 0
// activates all Nodes; TTL defaults to a minute.
type Config struct {
	Nodes       int
	Active      int
	CorpusPages int
	TTL         time.Duration
	// NodeCacheBytes caps each server's cache (default 64 MiB).
	NodeCacheBytes int64
}

// Stack is a running live-plane stack.
type Stack struct {
	Coord  *cluster.Coordinator
	Front  *webtier.Frontend
	Corpus *wiki.Corpus
	URL    string

	locals []*cluster.LocalNode
	ln     net.Listener
	srv    *http.Server
}

// Start brings up the stack.
func Start(cfg Config) (*Stack, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("livestack needs at least 1 server, got %d", cfg.Nodes)
	}
	if cfg.Active == 0 {
		cfg.Active = cfg.Nodes
	}
	if cfg.Active < 1 || cfg.Active > cfg.Nodes {
		return nil, fmt.Errorf("active %d out of range [1, %d]", cfg.Active, cfg.Nodes)
	}
	if cfg.TTL <= 0 {
		cfg.TTL = time.Minute
	}
	if cfg.NodeCacheBytes == 0 {
		cfg.NodeCacheBytes = 64 << 20
	}
	corpus, err := wiki.New(cfg.CorpusPages, wiki.DefaultPageSize)
	if err != nil {
		return nil, fmt.Errorf("corpus: %v", err)
	}
	db, err := database.New(database.Config{Shards: 7, Corpus: corpus})
	if err != nil {
		return nil, fmt.Errorf("database: %v", err)
	}
	nodes := make([]cluster.Node, cfg.Nodes)
	locals := make([]*cluster.LocalNode, cfg.Nodes)
	for i := range nodes {
		locals[i] = cluster.NewLocalNode(
			cache.Config{MaxBytes: cfg.NodeCacheBytes},
			bloom.Params{Counters: 1 << 18, CounterBits: 4, Hashes: 4, Mode: bloom.Saturate},
		)
		nodes[i] = locals[i]
	}
	coord, err := cluster.New(cluster.Config{
		Nodes:         nodes,
		InitialActive: cfg.Active,
		TTL:           cfg.TTL,
	})
	if err != nil {
		return nil, fmt.Errorf("coordinator: %v", err)
	}
	front, err := webtier.New(webtier.Config{Coordinator: coord, DB: db})
	if err != nil {
		coord.Close()
		return nil, fmt.Errorf("frontend: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		return nil, fmt.Errorf("listen: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/page/", front)
	mux.Handle("/pages", front)
	mux.Handle("/stats", front)
	mux.HandleFunc("/admin/active", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			fmt.Fprintf(w, "%d\n", coord.Active())
			return
		}
		var target int
		if _, err := fmt.Sscanf(r.URL.Query().Get("n"), "%d", &target); err != nil {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if err := coord.SetActive(target); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(w, "active %d\n", coord.Active())
	})
	srv := &http.Server{Handler: mux}
	//lint:allow goleak the HTTP server goroutine lives until Close, which unblocks Serve
	go func() { _ = srv.Serve(ln) }()
	return &Stack{
		Coord:  coord,
		Front:  front,
		Corpus: corpus,
		URL:    "http://" + ln.Addr().String(),
		locals: locals,
		ln:     ln,
		srv:    srv,
	}, nil
}

// Prewarm fetches every corpus page once through the web tier with the
// given concurrency, so the whole corpus lands in the active caches
// before a measurement starts. Saturation sweeps call this first:
// without it the modelled DB miss latency (~12 ms) dominates the p99
// of every early sweep point and the knee measures cache-fill, not the
// stack.
func (s *Stack) Prewarm(concurrency int) error {
	if concurrency < 1 {
		concurrency = 1
	}
	n := s.Corpus.Pages()
	errs := make(chan error, concurrency)
	for w := 0; w < concurrency; w++ {
		go func(w int) {
			for i := w; i < n; i += concurrency {
				if _, _, err := s.Front.Fetch(s.Corpus.Key(i)); err != nil {
					errs <- fmt.Errorf("prewarm %s: %w", s.Corpus.Key(i), err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < concurrency; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// Close tears the stack down: HTTP front end, coordinator, nodes.
func (s *Stack) Close() {
	_ = s.srv.Close()
	s.Coord.Close()
	for _, l := range s.locals {
		_ = l.PowerOff()
	}
}
