package bloom

import (
	"errors"
	"fmt"
)

// OverflowMode selects how counters behave at their 2^b-1 maximum.
type OverflowMode int

const (
	// Saturate freezes a counter at max once reached: further inserts
	// and deletes leave it untouched. A saturated counter can cause a
	// lingering false positive but never a false negative; this is the
	// safe production default.
	Saturate OverflowMode = iota + 1
	// Wrap lets counters wrap modulo 2^b, reproducing the failure mode
	// the paper analyses (overflow then underflow => false negatives,
	// Fig. 8). Use for experiments only.
	Wrap
)

func (m OverflowMode) String() string {
	switch m {
	case Saturate:
		return "saturate"
	case Wrap:
		return "wrap"
	default:
		return fmt.Sprintf("OverflowMode(%d)", int(m))
	}
}

// Params configures a counting filter. The symbols match Table I of the
// paper: h hash functions, l counters of b bits each.
type Params struct {
	Counters    int          // l: number of counters
	CounterBits int          // b: bits per counter, 1..16
	Hashes      int          // h: number of hash functions
	Mode        OverflowMode // counter overflow policy; default Saturate
}

func (p Params) validate() error {
	if p.Counters < 1 {
		return fmt.Errorf("bloom: Counters must be >= 1, got %d", p.Counters)
	}
	if p.CounterBits < 1 || p.CounterBits > 16 {
		return fmt.Errorf("bloom: CounterBits must be in 1..16, got %d", p.CounterBits)
	}
	if p.Hashes < 1 || p.Hashes > 32 {
		return fmt.Errorf("bloom: Hashes must be in 1..32, got %d", p.Hashes)
	}
	return nil
}

// MemoryBytes returns the counter-array footprint of this configuration,
// the quantity the Section IV-B optimizer minimises (l*b bits).
func (p Params) MemoryBytes() int {
	return (p.Counters*p.CounterBits + 7) / 8
}

// CountingFilter is a counting Bloom filter with packed b-bit counters.
// It is not safe for concurrent use; the cache server serialises access
// under its own lock.
type CountingFilter struct {
	params    Params
	words     []uint64
	max       uint32 // 2^b - 1
	keys      int    // net inserts - deletes
	saturated int    // counters frozen at max (Saturate mode)
	wrapped   int    // overflow events (Wrap mode)
}

// NewCounting builds an empty counting filter.
func NewCounting(p Params) (*CountingFilter, error) {
	if p.Mode == 0 {
		p.Mode = Saturate
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.Mode != Saturate && p.Mode != Wrap {
		return nil, fmt.Errorf("bloom: unknown overflow mode %d", p.Mode)
	}
	bits := p.Counters * p.CounterBits
	return &CountingFilter{
		params: p,
		words:  make([]uint64, (bits+63)/64),
		max:    uint32(1)<<p.CounterBits - 1,
	}, nil
}

// Params returns the filter's configuration.
func (f *CountingFilter) Params() Params { return f.params }

// Keys returns the net number of inserted keys.
func (f *CountingFilter) Keys() int { return f.keys }

// SaturatedCounters reports how many counters are frozen at max
// (Saturate mode only).
func (f *CountingFilter) SaturatedCounters() int { return f.saturated }

// Overflows reports how many counter overflow events occurred (Wrap
// mode only).
func (f *CountingFilter) Overflows() int { return f.wrapped }

// counter returns the value of counter i.
func (f *CountingFilter) counter(i int) uint32 {
	b := f.params.CounterBits
	bit := i * b
	word, off := bit/64, uint(bit%64)
	v := f.words[word] >> off
	if off+uint(b) > 64 {
		v |= f.words[word+1] << (64 - off)
	}
	return uint32(v) & f.max
}

// setCounter stores v into counter i.
func (f *CountingFilter) setCounter(i int, v uint32) {
	b := f.params.CounterBits
	bit := i * b
	word, off := bit/64, uint(bit%64)
	mask := uint64(f.max) << off
	f.words[word] = f.words[word]&^mask | uint64(v)<<off
	if off+uint(b) > 64 {
		spill := uint(b) - (64 - off)
		mask := uint64(f.max) >> (uint(b) - spill)
		f.words[word+1] = f.words[word+1]&^mask | uint64(v)>>(uint(b)-spill)
	}
}

// indexes computes the h counter indexes for a key via double hashing.
func (f *CountingFilter) indexes(key string, out []int) []int {
	h1 := mixA(key)
	h2 := mixB(key) | 1 // odd stride visits all counters
	l := uint64(f.params.Counters)
	for i := 0; i < f.params.Hashes; i++ {
		out = append(out, int((h1+uint64(i)*h2)%l))
	}
	return out
}

// Insert records one key occurrence.
func (f *CountingFilter) Insert(key string) {
	var buf [32]int
	for _, idx := range f.indexes(key, buf[:0]) {
		v := f.counter(idx)
		switch {
		case v < f.max:
			f.setCounter(idx, v+1)
		case f.params.Mode == Saturate:
			// frozen; first time reaching max already counted below
		case f.params.Mode == Wrap:
			f.setCounter(idx, 0)
			f.wrapped++
		}
		if v == f.max-1 && f.params.Mode == Saturate {
			f.saturated++
		}
	}
	f.keys++
}

// Delete removes one key occurrence. The caller must only delete keys it
// previously inserted (the cache guarantees this; see package doc).
func (f *CountingFilter) Delete(key string) {
	var buf [32]int
	for _, idx := range f.indexes(key, buf[:0]) {
		v := f.counter(idx)
		switch {
		case v == f.max && f.params.Mode == Saturate:
			// frozen forever
		case v > 0:
			f.setCounter(idx, v-1)
		case f.params.Mode == Wrap:
			f.setCounter(idx, f.max) // underflow
		}
	}
	f.keys--
}

// Contains answers the membership query: true means "possibly present"
// (false positives possible), false means "definitely absent" unless a
// Wrap-mode counter underflowed (false negatives, Fig. 8).
func (f *CountingFilter) Contains(key string) bool {
	var buf [32]int
	for _, idx := range f.indexes(key, buf[:0]) {
		if f.counter(idx) == 0 {
			return false
		}
	}
	return true
}

// Reset clears all counters.
func (f *CountingFilter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.keys, f.saturated, f.wrapped = 0, 0, 0
}

// Snapshot converts the counters into the plain presence bitmap that the
// paper broadcasts to web servers ("take a snapshot of current Bloom
// filter bit array"). The bitmap shares the filter's l and h.
func (f *CountingFilter) Snapshot() *Filter {
	s := newFilterRaw(f.params.Counters, f.params.Hashes)
	for i := 0; i < f.params.Counters; i++ {
		if f.counter(i) != 0 {
			s.setBit(i)
		}
	}
	return s
}

// ErrShortBuffer is returned when decoding truncated filter bytes.
var ErrShortBuffer = errors.New("bloom: short buffer")

const (
	bloomSeedA = 0x8e5beadf0a3c11d7
	bloomSeedB = 0x2545f4914f6cdd1d
)

func mixA(key string) uint64 { return mix(fnv(key) ^ bloomSeedA) }
func mixB(key string) uint64 { return mix(fnv(key) ^ bloomSeedB) }

func fnv(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
