package bloom

import (
	"fmt"
	"math"
)

// This file implements Section IV-B of the paper: choosing the number of
// counters l and the counter width b that minimise memory (l*b bits)
// subject to false-positive and false-negative rate bounds, for a given
// expected key count κ and hash count h.

// FalsePositiveRate is Eq. 4: the probability that a membership query
// for an absent key answers "yes", after κ keys have been inserted into
// l counters with h hash functions.
func FalsePositiveRate(l, h, keys int) float64 {
	if l <= 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(keys)*float64(h)/float64(l)), float64(h))
}

// FalseNegativeBound is Eq. 5: an upper bound on the probability that
// any counter exceeds the 2^b-1 maximum (the union bound
// l * (e*κ*h / (2^b * l))^(2^b)), which is the only source of false
// negatives in Proteus.
func FalseNegativeBound(l, b, h, keys int) float64 {
	if l <= 0 || b <= 0 {
		return 1
	}
	cap2b := math.Pow(2, float64(b))
	base := math.E * float64(keys) * float64(h) / (cap2b * float64(l))
	return float64(l) * math.Pow(base, cap2b)
}

// Config is an optimizer result.
type Config struct {
	Counters    int // l
	CounterBits int // b
	Hashes      int // h (input, echoed for convenience)
	Keys        int // κ (input, echoed for convenience)
}

// MemoryBytes is the counter-array footprint of the configuration.
func (c Config) MemoryBytes() int { return (c.Counters*c.CounterBits + 7) / 8 }

// Params converts the configuration into counting-filter parameters.
func (c Config) Params(mode OverflowMode) Params {
	return Params{Counters: c.Counters, CounterBits: c.CounterBits, Hashes: c.Hashes, Mode: mode}
}

// maxCounterBits bounds the enumeration of b; the paper notes b "is an
// integer with a very small range".
const maxCounterBits = 16

// Optimize returns the memory-minimal (l, b) meeting the bounds, per
// Eq. 10: the optimum is reached at the smallest l satisfying the
// false-positive constraint, l = -κh / ln(1 - pp^(1/h)), after which b
// is the smallest counter width whose Eq. 5 bound meets pn (the paper
// enumerates b rather than evaluating the Lambert-W closed form, and so
// do we; see ClosedFormCounterBits for the analytic value).
func Optimize(keys, h int, pp, pn float64) (Config, error) {
	if keys < 1 || h < 1 {
		return Config{}, fmt.Errorf("bloom: need keys>=1 and h>=1, got κ=%d h=%d", keys, h)
	}
	if pp <= 0 || pp >= 1 || pn <= 0 || pn >= 1 {
		return Config{}, fmt.Errorf("bloom: rate bounds must be in (0,1), got pp=%g pn=%g", pp, pn)
	}
	l := MinCounters(keys, h, pp)
	for b := 1; b <= maxCounterBits; b++ {
		if FalseNegativeBound(l, b, h, keys) <= pn {
			return Config{Counters: l, CounterBits: b, Hashes: h, Keys: keys}, nil
		}
	}
	return Config{}, fmt.Errorf("bloom: no counter width <= %d bits meets pn=%g with l=%d", maxCounterBits, pn, l)
}

// MinCounters returns the smallest l whose Eq. 4 false-positive rate is
// within pp (the first half of Eq. 10).
func MinCounters(keys, h int, pp float64) int {
	l := -float64(keys) * float64(h) / math.Log(1-math.Pow(pp, 1/float64(h)))
	return int(math.Ceil(l))
}

// ClosedFormCounterBits evaluates the paper's Lambert-W closed form for
// b (Eq. 10): with β = eκh/l and γ = pn/l, b = log2(β e^{W(ln(1/γ)/β)})
// — the real solution of the Eq. 5 bound holding with equality. The
// returned float is rounded up by Optimize's integer enumeration.
func ClosedFormCounterBits(l, h, keys int, pn float64) float64 {
	beta := math.E * float64(keys) * float64(h) / float64(l)
	gamma := pn / float64(l)
	// Solve l*(β/2^b)^(2^b) = pn. Let y = 2^b/β: y*ln(y) = ln(1/γ)/β,
	// so y = exp(W(ln(1/γ)/β)) and 2^b = β*e^{W(...)}.
	w := LambertW(math.Log(1/gamma) / beta)
	return math.Log2(beta * math.Exp(w))
}

// LambertW computes the principal branch W0 of the Lambert W function
// (the inverse of x*e^x) for x >= -1/e, via Halley iteration.
func LambertW(x float64) float64 {
	if x < -1/math.E {
		return math.NaN()
	}
	// Initial guess.
	var w float64
	switch {
	case x > math.E:
		w = math.Log(x) - math.Log(math.Log(x))
	case x > 0:
		w = x / math.E
	default:
		w = x * math.E / (1 + math.E)
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			break
		}
		d := ew*(w+1) - (w+2)*f/(2*w+2)
		next := w - f/d
		if math.Abs(next-w) <= 1e-14*(1+math.Abs(next)) {
			w = next
			break
		}
		w = next
	}
	return w
}
