package bloom

import (
	"encoding/binary"
	"fmt"
)

// Filter is the plain (non-counting) Bloom filter bitmap broadcast to
// web servers as a cache server's content digest. It supports only
// queries and decoding; mutation happens on the counting filter that the
// snapshot was taken from. Filter is immutable after construction and
// safe for concurrent readers.
type Filter struct {
	bits   int
	hashes int
	words  []uint64
}

// filterMagic guards the wire encoding ("PBF1": Proteus Bloom Filter).
const filterMagic = 0x50424631

func newFilterRaw(bits, hashes int) *Filter {
	return &Filter{bits: bits, hashes: hashes, words: make([]uint64, (bits+63)/64)}
}

// Bits returns the bitmap length l.
func (f *Filter) Bits() int { return f.bits }

// Hashes returns the number of hash functions h.
func (f *Filter) Hashes() int { return f.hashes }

func (f *Filter) setBit(i int) { f.words[i/64] |= 1 << uint(i%64) }

func (f *Filter) bit(i int) bool { return f.words[i/64]>>uint(i%64)&1 == 1 }

// Contains reports whether the key is possibly present in the digest.
func (f *Filter) Contains(key string) bool {
	h1 := mixA(key)
	h2 := mixB(key) | 1
	l := uint64(f.bits)
	for i := 0; i < f.hashes; i++ {
		if !f.bit(int((h1 + uint64(i)*h2) % l)) {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits, a load indicator for the
// digest (the expected false-positive rate is FillRatio^h).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.words {
		set += popcount(w)
	}
	return float64(set) / float64(f.bits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// MarshalBinary encodes the digest for broadcast: a 16-byte header
// (magic, l, h) followed by the bitmap words in little-endian order.
// A digest of the paper's recommended size encodes to a few hundred KB.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 16+8*len(f.words))
	binary.LittleEndian.PutUint32(out[0:], filterMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(f.hashes))
	binary.LittleEndian.PutUint64(out[8:], uint64(f.bits))
	for i, w := range f.words {
		binary.LittleEndian.PutUint64(out[16+8*i:], w)
	}
	return out, nil
}

// UnmarshalFilter decodes a broadcast digest.
func UnmarshalFilter(data []byte) (*Filter, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortBuffer, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != filterMagic {
		return nil, fmt.Errorf("bloom: bad digest magic %#x", binary.LittleEndian.Uint32(data[0:]))
	}
	hashes := int(binary.LittleEndian.Uint32(data[4:]))
	bits := int(binary.LittleEndian.Uint64(data[8:]))
	if hashes < 1 || hashes > 32 || bits < 1 {
		return nil, fmt.Errorf("bloom: bad digest header (l=%d h=%d)", bits, hashes)
	}
	nWords := (bits + 63) / 64
	if len(data) < 16+8*nWords {
		return nil, fmt.Errorf("%w: want %d bytes, have %d", ErrShortBuffer, 16+8*nWords, len(data))
	}
	f := newFilterRaw(bits, hashes)
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint64(data[16+8*i:])
	}
	return f, nil
}
