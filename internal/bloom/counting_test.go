package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCounting(t testing.TB, p Params) *CountingFilter {
	t.Helper()
	f, err := NewCounting(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func key(i int) string { return fmt.Sprintf("page:%d", i) }

func TestNewCountingValidation(t *testing.T) {
	bad := []Params{
		{Counters: 0, CounterBits: 4, Hashes: 4},
		{Counters: 100, CounterBits: 0, Hashes: 4},
		{Counters: 100, CounterBits: 17, Hashes: 4},
		{Counters: 100, CounterBits: 4, Hashes: 0},
		{Counters: 100, CounterBits: 4, Hashes: 33},
	}
	for _, p := range bad {
		if _, err := NewCounting(p); err == nil {
			t.Errorf("NewCounting(%+v): want error", p)
		}
	}
	if _, err := NewCounting(Params{Counters: 100, CounterBits: 4, Hashes: 4, Mode: OverflowMode(9)}); err == nil {
		t.Error("unknown overflow mode accepted")
	}
}

func TestDefaultModeIsSaturate(t *testing.T) {
	f := mustCounting(t, Params{Counters: 64, CounterBits: 4, Hashes: 2})
	if f.Params().Mode != Saturate {
		t.Errorf("default mode = %v, want Saturate", f.Params().Mode)
	}
}

func TestInsertContainsDelete(t *testing.T) {
	f := mustCounting(t, Params{Counters: 1 << 14, CounterBits: 4, Hashes: 4})
	const n = 1000
	for i := 0; i < n; i++ {
		f.Insert(key(i))
	}
	if f.Keys() != n {
		t.Fatalf("Keys = %d, want %d", f.Keys(), n)
	}
	for i := 0; i < n; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("inserted key %d reported absent (false negative without deletions)", i)
		}
	}
	for i := 0; i < n; i += 2 {
		f.Delete(key(i))
	}
	for i := 1; i < n; i += 2 {
		if !f.Contains(key(i)) {
			t.Fatalf("remaining key %d reported absent after unrelated deletions", i)
		}
	}
	if f.Keys() != n/2 {
		t.Fatalf("Keys = %d after deletions, want %d", f.Keys(), n/2)
	}
}

func TestDeleteAllEmptiesFilter(t *testing.T) {
	f := mustCounting(t, Params{Counters: 1 << 12, CounterBits: 4, Hashes: 3})
	const n = 300
	for i := 0; i < n; i++ {
		f.Insert(key(i))
	}
	for i := 0; i < n; i++ {
		f.Delete(key(i))
	}
	for i := range f.words {
		if f.words[i] != 0 {
			t.Fatalf("word %d nonzero after deleting every key", i)
		}
	}
}

func TestFalsePositiveRateNearEq4(t *testing.T) {
	p := Params{Counters: 1 << 15, CounterBits: 4, Hashes: 4}
	f := mustCounting(t, p)
	const inserted = 8192
	for i := 0; i < inserted; i++ {
		f.Insert(key(i))
	}
	const probes = 40000
	fp := 0
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("absent:%d", i)) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := FalsePositiveRate(p.Counters, p.Hashes, inserted)
	if got > want*2+0.005 || got < want/4 {
		t.Errorf("measured FP rate %.5f, Eq.4 predicts %.5f", got, want)
	}
}

func TestWrapModeCanFalseNegative(t *testing.T) {
	// 1-bit counters with wrap: two inserts overflow to 0 and membership
	// of the co-located key is lost.
	f := mustCounting(t, Params{Counters: 64, CounterBits: 1, Hashes: 1, Mode: Wrap})
	for i := 0; i < 500; i++ {
		f.Insert(key(i))
	}
	fn := 0
	for i := 0; i < 500; i++ {
		if !f.Contains(key(i)) {
			fn++
		}
	}
	if fn == 0 {
		t.Error("wrap mode with tiny counters produced no false negatives; expected overflow losses")
	}
	if f.Overflows() == 0 {
		t.Error("Overflows() = 0 after guaranteed overflow churn")
	}
}

func TestSaturateModeNeverFalseNegative(t *testing.T) {
	f := mustCounting(t, Params{Counters: 64, CounterBits: 1, Hashes: 1, Mode: Saturate})
	const n = 500
	for i := 0; i < n; i++ {
		f.Insert(key(i))
	}
	// Delete a disjoint set that was also inserted, then check survivors.
	for i := n / 2; i < n; i++ {
		f.Delete(key(i))
	}
	for i := 0; i < n/2; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("saturate mode lost key %d", i)
		}
	}
	if f.SaturatedCounters() == 0 {
		t.Error("SaturatedCounters() = 0 despite forced saturation")
	}
}

func TestResetClears(t *testing.T) {
	f := mustCounting(t, Params{Counters: 256, CounterBits: 4, Hashes: 4})
	for i := 0; i < 100; i++ {
		f.Insert(key(i))
	}
	f.Reset()
	if f.Keys() != 0 {
		t.Errorf("Keys = %d after Reset", f.Keys())
	}
	for i := 0; i < 100; i++ {
		if f.Contains(key(i)) {
			t.Fatalf("key %d present after Reset", i)
		}
	}
}

// Packed counters that straddle 64-bit word boundaries must round-trip.
func TestCounterPackingAcrossWords(t *testing.T) {
	for _, b := range []int{1, 3, 4, 5, 7, 11, 12, 13, 16} {
		f := mustCounting(t, Params{Counters: 200, CounterBits: b, Hashes: 1})
		rng := rand.New(rand.NewSource(int64(b)))
		want := make([]uint32, 200)
		for i := range want {
			want[i] = rng.Uint32() & f.max
			f.setCounter(i, want[i])
		}
		for i := range want {
			if got := f.counter(i); got != want[i] {
				t.Fatalf("b=%d: counter %d = %d, want %d", b, i, got, want[i])
			}
		}
	}
}

// Property: in saturate mode, any interleaving of inserts and matched
// deletes keeps all never-deleted keys visible.
func TestQuickNoFalseNegativesSaturate(t *testing.T) {
	prop := func(ops []uint16, seed int64) bool {
		f, err := NewCounting(Params{Counters: 512, CounterBits: 3, Hashes: 3, Mode: Saturate})
		if err != nil {
			return false
		}
		live := map[string]bool{}
		for _, op := range ops {
			k := key(int(op % 128))
			if live[k] {
				f.Delete(k)
				delete(live, k)
			} else {
				f.Insert(k)
				live[k] = true
			}
		}
		for k := range live {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotMatchesCountingMembership(t *testing.T) {
	f := mustCounting(t, Params{Counters: 1 << 13, CounterBits: 4, Hashes: 4})
	for i := 0; i < 2000; i++ {
		f.Insert(key(i))
	}
	snap := f.Snapshot()
	for i := 0; i < 2000; i++ {
		if !snap.Contains(key(i)) {
			t.Fatalf("snapshot lost key %d", i)
		}
	}
	// Snapshot must agree with counting filter on arbitrary probes.
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("probe:%d", i)
		if snap.Contains(k) != f.Contains(k) {
			t.Fatalf("snapshot and counting filter disagree on %q", k)
		}
	}
}

func BenchmarkCountingInsert(b *testing.B) {
	f, err := NewCounting(Params{Counters: 1 << 19, CounterBits: 4, Hashes: 4})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(keys[i%len(keys)])
	}
}

func BenchmarkCountingContains(b *testing.B) {
	f, err := NewCounting(Params{Counters: 1 << 19, CounterBits: 4, Hashes: 4})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = key(i)
		f.Insert(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(keys[i%len(keys)])
	}
}
