// Package bloom implements the counting Bloom filter digest that Proteus
// embeds in every cache server (Section IV of the paper), the plain
// bitmap snapshot that is broadcast to the web tier at the start of a
// provisioning transition, and the Section IV-B optimizer that picks the
// memory-minimal (l, b) counter configuration for target false-positive
// and false-negative rates.
//
// The counting filter tracks the set of keys currently resident in one
// cache server: the cache inserts a key when an item is linked and
// deletes it when the item is unlinked, so the filter is exactly
// consistent with cache contents (deletion of an absent key never
// happens, which is why counter overflow is the only source of false
// negatives — the property the paper's Eq. 5 analysis relies on).
package bloom
