package bloom

import (
	"math"
	"testing"
)

func TestLambertWIdentity(t *testing.T) {
	for _, x := range []float64{-0.3, -0.1, 0, 0.5, 1, 2, 10, 100, 1e6} {
		w := LambertW(x)
		if got := w * math.Exp(w); math.Abs(got-x) > 1e-9*(1+math.Abs(x)) {
			t.Errorf("W(%g)=%g but W*e^W=%g", x, w, got)
		}
	}
	if !math.IsNaN(LambertW(-1)) {
		t.Error("LambertW(-1) should be NaN (below branch point)")
	}
	if got := LambertW(math.E); math.Abs(got-1) > 1e-12 {
		t.Errorf("W(e) = %g, want 1", got)
	}
}

func TestFalsePositiveRateMonotone(t *testing.T) {
	// More counters => lower FP rate; more keys => higher FP rate.
	if FalsePositiveRate(1<<16, 4, 10000) >= FalsePositiveRate(1<<14, 4, 10000) {
		t.Error("FP rate not decreasing in l")
	}
	if FalsePositiveRate(1<<16, 4, 20000) <= FalsePositiveRate(1<<16, 4, 10000) {
		t.Error("FP rate not increasing in κ")
	}
}

func TestFalseNegativeBoundMonotoneInB(t *testing.T) {
	prev := math.Inf(1)
	for b := 1; b <= 8; b++ {
		cur := FalseNegativeBound(400000, b, 4, 10000)
		if cur == 0 {
			break // underflowed to exactly zero; trivially still decreasing
		}
		if cur >= prev {
			t.Fatalf("FN bound not decreasing at b=%d: %g >= %g", b, cur, prev)
		}
		prev = cur
	}
}

// The paper's worked example: κ=10^4, h=4, pp=pn=10^-4 gives roughly
// l=4x10^5, b=3 (~150 KB).
func TestOptimizePaperExample(t *testing.T) {
	cfg, err := Optimize(10000, 4, 1e-4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Counters < 350000 || cfg.Counters > 420000 {
		t.Errorf("l = %d, paper says ≈4x10^5", cfg.Counters)
	}
	if cfg.CounterBits != 3 {
		t.Errorf("b = %d, paper says 3", cfg.CounterBits)
	}
	mem := cfg.MemoryBytes()
	if mem < 120<<10 || mem > 180<<10 {
		t.Errorf("memory = %d bytes, paper says ≈150 KB", mem)
	}
	// The produced config must actually satisfy both bounds.
	if fp := FalsePositiveRate(cfg.Counters, cfg.Hashes, cfg.Keys); fp > 1e-4 {
		t.Errorf("config FP rate %g exceeds bound", fp)
	}
	if fn := FalseNegativeBound(cfg.Counters, cfg.CounterBits, cfg.Hashes, cfg.Keys); fn > 1e-4 {
		t.Errorf("config FN bound %g exceeds bound", fn)
	}
}

func TestOptimizeChoosesMinimalB(t *testing.T) {
	cfg, err := Optimize(10000, 4, 1e-4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CounterBits > 1 {
		below := FalseNegativeBound(cfg.Counters, cfg.CounterBits-1, cfg.Hashes, cfg.Keys)
		if below <= 1e-4 {
			t.Errorf("b-1=%d already satisfies pn (%g); Optimize not minimal", cfg.CounterBits-1, below)
		}
	}
}

func TestClosedFormMatchesEnumeration(t *testing.T) {
	// ceil of the analytic b must equal the enumerated minimal b.
	for _, tc := range []struct {
		keys int
		pp   float64
		pn   float64
	}{
		{10000, 1e-4, 1e-4},
		{100000, 1e-3, 1e-6},
		{2560000, 1e-4, 1e-4}, // paper's per-server hot-page count
	} {
		cfg, err := Optimize(tc.keys, 4, tc.pp, tc.pn)
		if err != nil {
			t.Fatalf("Optimize(%+v): %v", tc, err)
		}
		analytic := ClosedFormCounterBits(cfg.Counters, 4, tc.keys, tc.pn)
		if int(math.Ceil(analytic)) != cfg.CounterBits {
			t.Errorf("κ=%d: closed form b=%.3f (ceil %d), enumeration picked %d",
				tc.keys, analytic, int(math.Ceil(analytic)), cfg.CounterBits)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	cases := []struct {
		keys, h int
		pp, pn  float64
	}{
		{0, 4, 1e-4, 1e-4},
		{100, 0, 1e-4, 1e-4},
		{100, 4, 0, 1e-4},
		{100, 4, 1e-4, 1},
		{100, 4, 2, 1e-4},
	}
	for _, c := range cases {
		if _, err := Optimize(c.keys, c.h, c.pp, c.pn); err == nil {
			t.Errorf("Optimize(%+v): want error", c)
		}
	}
}

func TestMinCountersSatisfiesBound(t *testing.T) {
	for _, keys := range []int{100, 10000, 1000000} {
		for _, pp := range []float64{1e-2, 1e-4, 1e-6} {
			l := MinCounters(keys, 4, pp)
			if got := FalsePositiveRate(l, 4, keys); got > pp*1.001 {
				t.Errorf("κ=%d pp=%g: l=%d gives FP %g", keys, pp, l, got)
			}
			// One fewer counter must (approximately) break the bound:
			// the bound is tight at the returned l.
			if l > 1 {
				if got := FalsePositiveRate(l-1000, 4, keys); keys > 1000 && got < pp {
					t.Errorf("κ=%d pp=%g: l=%d is far from minimal (l-1000 gives %g)", keys, pp, l, got)
				}
			}
		}
	}
}
