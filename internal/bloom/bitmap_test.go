package bloom

import (
	"fmt"
	"testing"
)

func TestFilterMarshalRoundTrip(t *testing.T) {
	f := mustCounting(t, Params{Counters: 4000, CounterBits: 4, Hashes: 4})
	for i := 0; i < 800; i++ {
		f.Insert(key(i))
	}
	snap := f.Snapshot()
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalFilter(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bits() != snap.Bits() || back.Hashes() != snap.Hashes() {
		t.Fatalf("header mismatch: got (l=%d h=%d) want (l=%d h=%d)",
			back.Bits(), back.Hashes(), snap.Bits(), snap.Hashes())
	}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k%d", i)
		if back.Contains(k) != snap.Contains(k) {
			t.Fatalf("decoded digest disagrees on %q", k)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 16),                 // zero magic
		append(mustDigest(t), 0x00)[:17], // truncated body
	}
	for i, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("case %d: UnmarshalFilter accepted invalid input", i)
		}
	}
}

func mustDigest(t *testing.T) []byte {
	t.Helper()
	f := mustCounting(t, Params{Counters: 100, CounterBits: 2, Hashes: 2})
	f.Insert("a")
	data, err := f.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFillRatio(t *testing.T) {
	f := mustCounting(t, Params{Counters: 1024, CounterBits: 4, Hashes: 1})
	if r := f.Snapshot().FillRatio(); r != 0 {
		t.Fatalf("empty filter FillRatio = %g", r)
	}
	for i := 0; i < 200; i++ {
		f.Insert(key(i))
	}
	r := f.Snapshot().FillRatio()
	if r <= 0 || r > 200.0/1024 {
		t.Fatalf("FillRatio = %g, want in (0, %g]", r, 200.0/1024)
	}
}

func TestDigestSizeMatchesPaperScale(t *testing.T) {
	// The paper's recommended setting: 512 KB digest per server.
	f := mustCounting(t, Params{Counters: 512 * 1024 * 8, CounterBits: 4, Hashes: 4})
	data, err := f.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wantBits := 512 * 1024 * 8
	if got := len(data); got != 16+wantBits/8 {
		t.Fatalf("snapshot broadcast size = %d bytes, want %d", got, 16+wantBits/8)
	}
}
