package bloom_test

import (
	"fmt"

	"proteus/internal/bloom"
)

// The Section IV-B optimizer: the paper's worked example.
func ExampleOptimize() {
	cfg, err := bloom.Optimize(10000, 4, 1e-4, 1e-4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("l=%d b=%d memory=%dKB\n", cfg.Counters, cfg.CounterBits, cfg.MemoryBytes()/1024)
	// Output:
	// l=379649 b=3 memory=139KB
}

// A counting filter tracks cache residency exactly: inserts on item
// link, deletes on unlink, membership queries in between.
func ExampleCountingFilter() {
	f, err := bloom.NewCounting(bloom.Params{Counters: 1 << 16, CounterBits: 4, Hashes: 4})
	if err != nil {
		panic(err)
	}
	f.Insert("page:42")
	fmt.Println(f.Contains("page:42"))
	f.Delete("page:42")
	fmt.Println(f.Contains("page:42"))
	// Output:
	// true
	// false
}
