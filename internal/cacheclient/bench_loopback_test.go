package cacheclient

import (
	"fmt"
	"net"
	"testing"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cacheserver"
)

// Loopback round-trip benchmarks: the pipelined MultiGet pays one
// write+flush and N streamed reads per batch, so fetching 16 keys
// should cost far less than 16 serial Get round trips. Run both to see
// the ratio on the current host:
//
//	go test -run '^$' -bench 'Loopback' -benchmem ./internal/cacheclient
func benchClient(b *testing.B, nkeys int) (*Client, []string) {
	b.Helper()
	srv, err := cacheserver.New(cacheserver.Config{
		Digest: bloom.Params{Counters: 1 << 14, CounterBits: 4, Hashes: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })
	keys := make([]string, nkeys)
	value := make([]byte, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench:%d", i)
		srv.Cache().Set(keys[i], value, 0)
	}
	c := New(ln.Addr().String(), WithTimeout(2*time.Second))
	b.Cleanup(c.Close)
	return c, keys
}

func BenchmarkGetLoopback(b *testing.B) {
	c, keys := benchClient(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Get(keys[i%len(keys)]); err != nil || !ok {
			b.Fatalf("Get = %v, %v", ok, err)
		}
	}
}

// Serial control for MultiGet16: the same 16 keys, one round trip each.
func BenchmarkGet16SerialLoopback(b *testing.B) {
	c, keys := benchClient(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			if _, ok, err := c.Get(k); err != nil || !ok {
				b.Fatalf("Get = %v, %v", ok, err)
			}
		}
	}
}

func BenchmarkMultiGet16Loopback(b *testing.B) {
	c, keys := benchClient(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := c.MultiGet(keys...)
		if err != nil || len(m) != len(keys) {
			b.Fatalf("MultiGet = %d keys, %v", len(m), err)
		}
	}
}
