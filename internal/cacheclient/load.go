package cacheclient

import (
	"math"
	"sync/atomic"
	"time"
)

// Load estimation for replica routing. The web tier's
// power-of-two-choices picks, among a hot key's replica owners, the
// client that looks least loaded *right now*. "Load" here is the
// classic latency-weighted outstanding-request product: the number of
// in-flight operations on this client times its exponentially-weighted
// moving average of recent operation latency. Both inputs are cheap
// atomics maintained on every exchange, so the hot read path pays two
// atomic adds and no locks.

// ewmaAlpha weights the newest latency sample: high enough to follow a
// server that suddenly degrades, low enough not to flap on one slow op.
const ewmaAlpha = 0.2

// loadMeter carries the per-client load signals.
type loadMeter struct {
	inflight atomic.Int64
	ewma     atomic.Uint64 // math.Float64bits of the latency EWMA, in seconds
}

func (m *loadMeter) begin() time.Time {
	m.inflight.Add(1)
	return time.Now()
}

func (m *loadMeter) end(start time.Time) {
	m.inflight.Add(-1)
	sample := time.Since(start).Seconds()
	if sample < 0 {
		sample = 0
	}
	for {
		old := m.ewma.Load()
		prev := math.Float64frombits(old)
		next := sample
		if old != 0 {
			next = prev + ewmaAlpha*(sample-prev)
		}
		if m.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// InFlight returns the number of operations currently outstanding on
// this client.
func (c *Client) InFlight() int {
	return int(c.load.inflight.Load())
}

// EWMALatency returns the exponentially-weighted moving average of
// operation latency (0 before the first completed operation).
func (c *Client) EWMALatency() time.Duration {
	return time.Duration(math.Float64frombits(c.load.ewma.Load()) * float64(time.Second))
}

// LoadEstimate scores this client for two-choices routing: lower is
// better. It is (in-flight + 1) x EWMA latency in seconds, i.e. the
// expected time a new request would wait behind the current queue. A
// client with no latency history scores 0, so fresh replicas attract
// traffic until they have a track record; callers break ties
// deterministically (the web tier prefers the primary).
func (c *Client) LoadEstimate() float64 {
	ewma := math.Float64frombits(c.load.ewma.Load())
	return float64(c.load.inflight.Load()+1) * ewma
}
