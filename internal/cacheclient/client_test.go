package cacheclient

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestDialFailure(t *testing.T) {
	c := New("127.0.0.1:1", WithTimeout(200*time.Millisecond)) // port 1: refused
	defer c.Close()
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("Get against dead server succeeded")
	}
}

func TestClosedClient(t *testing.T) {
	c := New("127.0.0.1:1")
	c.Close()
	c.Close() // idempotent
	if _, _, err := c.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := c.Set("k", nil, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMultiGetEmptyKeys(t *testing.T) {
	c := New("127.0.0.1:1")
	defer c.Close()
	got, err := c.MultiGet()
	if err != nil || len(got) != 0 {
		t.Fatalf("MultiGet() = %v, %v", got, err)
	}
}

// A slow fake server that accepts but never answers: the pool must
// bound concurrent connections and operations must time out rather
// than hang.
func TestPoolBoundsConnectionsAndTimesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	accepted := 0
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			accepted++
			mu.Unlock()
			defer conn.Close()
			// Never respond; just hold the connection.
		}
	}()

	// Retries are disabled so the accepted-connection count measures
	// pool bounding alone.
	c := New(ln.Addr().String(), WithMaxConns(2), WithTimeout(300*time.Millisecond), WithMaxRetries(0))
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Get("k"); err == nil {
				t.Error("Get against mute server succeeded")
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if accepted > 6 {
		t.Fatalf("server accepted %d conns; pool failed to bound per-wave dials", accepted)
	}
}

// A fake server returning a protocol error reply must not poison the
// pooled connection: the next request on the same connection works.
func TestErrorReplyKeepsConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		for i := 0; ; i++ {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			if i == 0 {
				fmt.Fprintf(conn, "SERVER_ERROR simulated\r\n")
			} else {
				fmt.Fprintf(conn, "END\r\n")
			}
		}
	}()

	c := New(ln.Addr().String(), WithMaxConns(1), WithTimeout(time.Second))
	defer c.Close()
	if _, _, err := c.Get("first"); err == nil {
		t.Fatal("expected SERVER_ERROR")
	}
	if _, ok, err := c.Get("second"); err != nil || ok {
		t.Fatalf("second Get on same conn: ok=%v err=%v", ok, err)
	}
}
