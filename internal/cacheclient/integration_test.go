package cacheclient

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cacheserver"
)

// startServer boots a real cache server for in-package client coverage.
func startServer(t *testing.T) *Client {
	t.Helper()
	srv, err := cacheserver.New(cacheserver.Config{
		Digest: bloom.Params{Counters: 1 << 14, CounterBits: 4, Hashes: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	c := New(ln.Addr().String(), WithTimeout(2*time.Second), WithMaxConns(3))
	t.Cleanup(c.Close)
	return c
}

func TestClientFullSurface(t *testing.T) {
	c := startServer(t)

	// Storage commands.
	if err := c.Set("k", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Add("k", []byte("nope"), 0); err != nil || stored {
		t.Fatalf("Add = %v,%v", stored, err)
	}
	if stored, err := c.Add("k2", []byte("v2"), 0); err != nil || !stored {
		t.Fatalf("Add = %v,%v", stored, err)
	}
	if stored, err := c.Replace("k", []byte("v1b"), 0); err != nil || !stored {
		t.Fatalf("Replace = %v,%v", stored, err)
	}
	if stored, err := c.Replace("ghost", []byte("x"), 0); err != nil || stored {
		t.Fatalf("Replace(ghost) = %v,%v", stored, err)
	}

	// Retrieval.
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v1b" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	multi, err := c.MultiGet("k", "k2", "ghost")
	if err != nil || len(multi) != 2 {
		t.Fatalf("MultiGet = %v,%v", multi, err)
	}

	// CAS.
	cv, ok, err := c.Gets("k")
	if err != nil || !ok || cv.CAS == 0 {
		t.Fatalf("Gets = %+v,%v,%v", cv, ok, err)
	}
	if st, err := c.CompareAndSwap("k", []byte("v1c"), 0, cv.CAS); err != nil || st != CASStored {
		t.Fatalf("CAS = %v,%v", st, err)
	}
	if st, err := c.CompareAndSwap("k", []byte("v1d"), 0, cv.CAS); err != nil || st != CASExists {
		t.Fatalf("stale CAS = %v,%v", st, err)
	}

	// Arithmetic.
	if err := c.Set("n", []byte("5"), 0); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Increment("n", 3); err != nil || !found || v != 8 {
		t.Fatalf("Increment = %d,%v,%v", v, found, err)
	}
	if v, found, err := c.Decrement("n", 10); err != nil || !found || v != 0 {
		t.Fatalf("Decrement = %d,%v,%v", v, found, err)
	}

	// Concatenation.
	if stored, err := c.Append("k2", []byte("!")); err != nil || !stored {
		t.Fatalf("Append = %v,%v", stored, err)
	}
	if stored, err := c.Prepend("k2", []byte("~")); err != nil || !stored {
		t.Fatalf("Prepend = %v,%v", stored, err)
	}
	v, _, _ = c.Get("k2")
	if string(v) != "~v2!" {
		t.Fatalf("k2 = %q", v)
	}

	// Touch / Delete.
	if touched, err := c.Touch("k", 3600); err != nil || !touched {
		t.Fatalf("Touch = %v,%v", touched, err)
	}
	if deleted, err := c.Delete("k"); err != nil || !deleted {
		t.Fatalf("Delete = %v,%v", deleted, err)
	}

	// Admin.
	stats, err := c.Stats()
	if err != nil || stats["cmd_set"] == "" {
		t.Fatalf("Stats = %v,%v", stats, err)
	}
	version, err := c.Version()
	if err != nil || !strings.HasPrefix(version, "VERSION") {
		t.Fatalf("Version = %q,%v", version, err)
	}

	// Digest.
	digest, err := c.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	if !digest.Contains("k2") {
		t.Fatal("digest lost k2")
	}

	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("k2"); ok {
		t.Fatal("k2 survived FlushAll")
	}
}

func TestClientLargeValue(t *testing.T) {
	c := startServer(t)
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := c.Set("big", big, 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("big")
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("large value round trip failed: ok=%v err=%v len=%d", ok, err, len(v))
	}
}

func TestClientBadKeyRejectedLocally(t *testing.T) {
	c := startServer(t)
	if err := c.Set("bad key", []byte("v"), 0); err == nil {
		t.Fatal("key with space accepted")
	}
	if _, _, err := c.Get(""); err == nil {
		t.Fatal("empty key accepted")
	}
}

// The retry path: a server restart invalidates pooled connections; the
// next operation must transparently succeed on a fresh dial.
func TestClientRetriesStalePooledConn(t *testing.T) {
	srv, err := cacheserver.New(cacheserver.Config{
		Digest: bloom.Params{Counters: 1 << 12, CounterBits: 4, Hashes: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c := New(addr, WithMaxConns(1), WithTimeout(2*time.Second))
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}

	// Restart the server on the same port: the pooled conn is dead.
	srv.Close()
	<-done
	srv2, err := cacheserver.New(cacheserver.Config{
		Digest: bloom.Params{Counters: 1 << 12, CounterBits: 4, Hashes: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ln2) }()
	t.Cleanup(func() {
		srv2.Close()
		<-done2
	})

	// Must succeed via the retry, not error.
	if err := c.Set("k2", []byte("v2"), 0); err != nil {
		t.Fatalf("Set after server restart: %v", err)
	}
	if _, ok, err := c.Get("k2"); err != nil || !ok {
		t.Fatalf("Get after restart: ok=%v err=%v", ok, err)
	}
}
