package cacheclient

import (
	"testing"
	"time"
)

func TestLoadMeterEWMA(t *testing.T) {
	var m loadMeter
	if got := m.inflight.Load(); got != 0 {
		t.Fatalf("fresh meter in-flight %d", got)
	}
	start := m.begin()
	if got := m.inflight.Load(); got != 1 {
		t.Fatalf("in-flight during op %d, want 1", got)
	}
	m.end(start)
	if got := m.inflight.Load(); got != 0 {
		t.Fatalf("in-flight after op %d, want 0", got)
	}
	if m.ewma.Load() == 0 {
		t.Fatal("EWMA not seeded by first sample")
	}
}

func TestLoadEstimateOrdersByLatency(t *testing.T) {
	fast, slow := New("fast:0"), New("slow:0")
	defer fast.Close()
	defer slow.Close()
	// Seed the EWMAs directly through the meter: a real exchange would
	// need a live server, and the scoring math is what is under test.
	seed := func(c *Client, d time.Duration) {
		start := time.Now().Add(-d)
		c.load.inflight.Add(1) // balance the Add(-1) in end
		c.load.end(start)
	}
	seed(fast, time.Millisecond)
	seed(slow, 80*time.Millisecond)
	if fast.LoadEstimate() >= slow.LoadEstimate() {
		t.Fatalf("fast client scored %.6f >= slow %.6f", fast.LoadEstimate(), slow.LoadEstimate())
	}
	if fast.EWMALatency() <= 0 || slow.EWMALatency() < 40*time.Millisecond {
		t.Fatalf("EWMAs off: fast %v slow %v", fast.EWMALatency(), slow.EWMALatency())
	}
	// Queue depth scales the score: the fast client with enough
	// outstanding ops loses to the idle slow one.
	fast.load.inflight.Add(1000)
	defer fast.load.inflight.Add(-1000)
	if fast.LoadEstimate() <= slow.LoadEstimate() {
		t.Fatalf("deep queue not reflected: fast %.6f slow %.6f", fast.LoadEstimate(), slow.LoadEstimate())
	}
}

func TestLoadEstimateFreshClientIsZero(t *testing.T) {
	c := New("fresh:0")
	defer c.Close()
	if c.LoadEstimate() != 0 {
		t.Fatalf("fresh client scored %.6f, want 0", c.LoadEstimate())
	}
	if c.InFlight() != 0 || c.EWMALatency() != 0 {
		t.Fatal("fresh client has nonzero signals")
	}
}
