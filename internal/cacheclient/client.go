// Package cacheclient is the memcached-protocol client used by the web
// tier to talk to Proteus cache servers. It keeps a bounded pool of TCP
// connections per server (the role Apache Commons Pool plays in the
// paper's Java servlets) and adds the digest-fetch convenience built on
// the paper's reserved SET_BLOOM_FILTER / BLOOM_FILTER keys.
package cacheclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/memproto"
)

// ErrClosed is returned by calls made after Close.
var ErrClosed = errors.New("cacheclient: client closed")

// Option customises a Client.
type Option func(*Client)

// WithMaxConns bounds the connection pool (default 4).
func WithMaxConns(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxConns = n
		}
	}
}

// WithTimeout sets both dial and per-operation I/O deadlines
// (default 5s).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// Client is a pooled connection to one cache server. It is safe for
// concurrent use.
type Client struct {
	addr     string
	maxConns int
	timeout  time.Duration

	pool   chan *conn
	tokens chan struct{} // limits total live connections
	closed chan struct{}
}

type conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// New builds a client for the server at addr.
func New(addr string, opts ...Option) *Client {
	c := &Client{addr: addr, maxConns: 4, timeout: 5 * time.Second, closed: make(chan struct{})}
	for _, opt := range opts {
		opt(c)
	}
	c.pool = make(chan *conn, c.maxConns)
	c.tokens = make(chan struct{}, c.maxConns)
	for i := 0; i < c.maxConns; i++ {
		c.tokens <- struct{}{}
	}
	return c
}

// Addr returns the server address this client targets.
func (c *Client) Addr() string { return c.addr }

// Close releases all pooled connections. In-flight calls may still
// complete; subsequent calls fail with ErrClosed.
func (c *Client) Close() {
	select {
	case <-c.closed:
		return
	default:
	}
	close(c.closed)
	for {
		select {
		case cn := <-c.pool:
			cn.nc.Close()
		default:
			return
		}
	}
}

// getConn returns a connection and whether it came from the pool (a
// pooled connection may have been closed by a server power cycle, so
// its first use is retried).
func (c *Client) getConn() (*conn, bool, error) {
	select {
	case <-c.closed:
		return nil, false, ErrClosed
	default:
	}
	select {
	case cn := <-c.pool:
		return cn, true, nil
	case <-c.tokens:
		nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
		if err != nil {
			c.tokens <- struct{}{}
			return nil, false, fmt.Errorf("cacheclient: dial %s: %w", c.addr, err)
		}
		return &conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, false, nil
	case <-c.closed:
		return nil, false, ErrClosed
	}
}

func (c *Client) putConn(cn *conn, broken bool) {
	if broken {
		cn.nc.Close()
		c.tokens <- struct{}{}
		return
	}
	select {
	case <-c.closed:
		cn.nc.Close()
		c.tokens <- struct{}{}
	case c.pool <- cn:
	}
}

// roundTrip sends one request and parses the reply with fn. A
// transport failure on a pooled connection (e.g. the server was power
// cycled since the connection was cached) is retried once on a fresh
// connection, the standard memcached-client behaviour.
func (c *Client) roundTrip(req *memproto.Request, fn func(*bufio.Reader) error) error {
	for attempt := 0; ; attempt++ {
		pooled, err := c.roundTripOnce(req, fn)
		if err == nil {
			return nil
		}
		var se *memproto.ServerError
		if errors.As(err, &se) || errors.Is(err, ErrClosed) {
			return err // protocol-level or terminal: no retry
		}
		if !pooled || attempt > 0 {
			return err
		}
		// Stale pooled connection: retry once on a fresh dial.
	}
}

func (c *Client) roundTripOnce(req *memproto.Request, fn func(*bufio.Reader) error) (pooled bool, err error) {
	cn, pooled, err := c.getConn()
	if err != nil {
		return pooled, err
	}
	broken := true
	defer func() { c.putConn(cn, broken) }()

	deadline := time.Now().Add(c.timeout)
	if err := cn.nc.SetDeadline(deadline); err != nil {
		return pooled, fmt.Errorf("cacheclient: set deadline: %w", err)
	}
	if err := req.WriteTo(cn.bw); err != nil {
		return pooled, err
	}
	if err := cn.bw.Flush(); err != nil {
		return pooled, fmt.Errorf("cacheclient: flush: %w", err)
	}
	if req.NoReply {
		broken = false
		return pooled, nil
	}
	if err := fn(cn.br); err != nil {
		// Protocol-level error replies leave the stream aligned.
		var se *memproto.ServerError
		if errors.As(err, &se) {
			broken = false
		}
		return pooled, err
	}
	broken = false
	return pooled, nil
}

// Get fetches one key; ok reports residency.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	req := &memproto.Request{Command: memproto.CmdGet, Keys: []string{key}}
	err = c.roundTrip(req, func(br *bufio.Reader) error {
		values, err := memproto.ReadValues(br)
		if err != nil {
			return err
		}
		if len(values) > 0 {
			value, ok = values[0].Data, true
		}
		return nil
	})
	return value, ok, err
}

// MultiGet fetches several keys at once, returning the resident subset.
func (c *Client) MultiGet(keys ...string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	req := &memproto.Request{Command: memproto.CmdGet, Keys: keys}
	out := make(map[string][]byte, len(keys))
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		values, err := memproto.ReadValues(br)
		if err != nil {
			return err
		}
		for _, v := range values {
			out[v.Key] = v.Data
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Set stores a value with an expiry in seconds (0 = server default).
func (c *Client) Set(key string, value []byte, exptime int64) error {
	req := &memproto.Request{Command: memproto.CmdSet, Keys: []string{key}, Exptime: exptime, Data: value}
	return c.expectReply(req, memproto.ReplyStored)
}

// Add stores only if absent, reporting whether it stored.
func (c *Client) Add(key string, value []byte, exptime int64) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdAdd, Keys: []string{key}, Exptime: exptime, Data: value}
	return c.storedReply(req)
}

// Replace stores only if present, reporting whether it stored.
func (c *Client) Replace(key string, value []byte, exptime int64) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdReplace, Keys: []string{key}, Exptime: exptime, Data: value}
	return c.storedReply(req)
}

// Delete removes a key, reporting whether it was resident.
func (c *Client) Delete(key string) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdDelete, Keys: []string{key}}
	var deleted bool
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		deleted = reply == memproto.ReplyDeleted
		return nil
	})
	return deleted, err
}

// Touch refreshes a key's TTL, reporting whether it was resident.
func (c *Client) Touch(key string, exptime int64) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdTouch, Keys: []string{key}, Exptime: exptime}
	var touched bool
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		touched = reply == memproto.ReplyTouched
		return nil
	})
	return touched, err
}

// Stats fetches the server's stats map.
func (c *Client) Stats() (map[string]string, error) {
	req := &memproto.Request{Command: memproto.CmdStats}
	var stats map[string]string
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		var err error
		stats, err = memproto.ReadStats(br)
		return err
	})
	return stats, err
}

// FlushAll clears the server.
func (c *Client) FlushAll() error {
	req := &memproto.Request{Command: memproto.CmdFlushAll}
	return c.expectReply(req, memproto.ReplyOK)
}

// Version returns the server version string.
func (c *Client) Version() (string, error) {
	req := &memproto.Request{Command: memproto.CmdVersion}
	var version string
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		version = reply
		return nil
	})
	return version, err
}

// FetchDigest snapshots and downloads the server's Bloom filter digest,
// exactly as the paper's web servers do at the start of a transition:
// get(SET_BLOOM_FILTER) then get(BLOOM_FILTER).
func (c *Client) FetchDigest() (*bloom.Filter, error) {
	if _, _, err := c.Get("SET_BLOOM_FILTER"); err != nil {
		return nil, fmt.Errorf("cacheclient: snapshot digest: %w", err)
	}
	data, ok, err := c.Get("BLOOM_FILTER")
	if err != nil {
		return nil, fmt.Errorf("cacheclient: fetch digest: %w", err)
	}
	if !ok {
		return nil, errors.New("cacheclient: server returned no digest")
	}
	return bloom.UnmarshalFilter(data)
}

func (c *Client) expectReply(req *memproto.Request, want string) error {
	return c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		if reply != want {
			return fmt.Errorf("cacheclient: unexpected reply %q (want %q)", reply, want)
		}
		return nil
	})
}

func (c *Client) storedReply(req *memproto.Request) (bool, error) {
	var stored bool
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		stored = reply == memproto.ReplyStored
		return nil
	})
	return stored, err
}
