// Package cacheclient is the memcached-protocol client used by the web
// tier to talk to Proteus cache servers. It keeps a bounded pool of TCP
// connections per server (the role Apache Commons Pool plays in the
// paper's Java servlets) and adds the digest-fetch convenience built on
// the paper's reserved SET_BLOOM_FILTER / BLOOM_FILTER keys.
package cacheclient

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/memproto"
	"proteus/internal/telemetry"
)

// ErrClosed is returned by calls made after Close.
var ErrClosed = errors.New("cacheclient: client closed")

// ErrCircuitOpen is returned without touching the network while the
// per-server circuit breaker is open: the server failed repeatedly and
// is being given a cooldown before the next probe. Callers (the web
// tier) treat it like any transport error — skip to the next replica
// ring or the database — but pay no dial or timeout cost, which is what
// keeps a dead server from inflating tail latency.
var ErrCircuitOpen = errors.New("cacheclient: circuit open")

// DialFunc dials one cache server; installable for fault injection and
// custom transports.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// DefaultMaxConns is the connection-pool bound used when WithMaxConns
// is not given. 16 comes from the A-series throughput sweep
// (EXPERIMENTS.md): with the sharded server, loopback GET throughput
// scales with client connections up to roughly the server's shard
// count (DefaultShards = 16) and is flat beyond it, while 4 connections
// — the old default, matching the paper's Apache Commons Pool sizing —
// left the server's shards idle and capped a single web tier at ~4
// in-flight requests per cache node.
const DefaultMaxConns = 16

// Option customises a Client.
type Option func(*Client)

// WithMaxConns bounds the connection pool (default DefaultMaxConns).
func WithMaxConns(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxConns = n
		}
	}
}

// WithTimeout sets both dial and per-operation I/O deadlines
// (default 5s).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithDialer replaces the TCP dialer (default net.DialTimeout). The
// fault injector's Injector.Dial slots in here.
func WithDialer(dial DialFunc) Option {
	return func(c *Client) {
		if dial != nil {
			c.dial = dial
		}
	}
}

// WithMaxRetries bounds transport-error retries per operation beyond
// the free immediate retry a stale pooled connection gets (default 2;
// 0 disables). Protocol-level error replies are never retried.
func WithMaxRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.maxRetries = n
		}
	}
}

// WithBackoff sets the exponential backoff window between retries:
// the k-th retry sleeps base<<k capped at max, jittered to 50-100% of
// that value (defaults 2ms..100ms).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoffBase = base
		}
		if max >= base {
			c.backoffMax = max
		}
	}
}

// WithBreaker configures the circuit breaker: after threshold
// consecutive transport failures the breaker opens for cooldown, during
// which every call fails fast with ErrCircuitOpen; the first call after
// cooldown is a single probe that closes the breaker on success.
// threshold <= 0 disables the breaker. Defaults: 8 failures, 250ms.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		c.breaker.threshold = threshold
		if cooldown > 0 {
			c.breaker.cooldown = cooldown
		}
	}
}

// WithJitterSeed seeds the backoff jitter RNG for deterministic retry
// schedules in tests. The default seed is derived from the server
// address, so a fleet of clients jitters decorrelated but reproducibly.
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.jitterSeed = &seed }
}

// WithSleep replaces the backoff sleeper (tests pass a no-op or a
// recorder; default time.Sleep).
func WithSleep(sleep func(time.Duration)) Option {
	return func(c *Client) {
		if sleep != nil {
			c.sleep = sleep
		}
	}
}

// WithTelemetry registers the client's instruments on reg: per-op
// latency and outcome counts, retry totals, and circuit-breaker state,
// all labeled with the server address. A nil registry leaves the
// client uninstrumented at zero cost.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *Client) {
		if reg == nil {
			return
		}
		c.tel = &clientTelemetry{
			ops: reg.Counter("proteus_client_ops_total",
				"client operations by op and result", "addr", "op", "result"),
			latency: reg.Histogram("proteus_client_op_seconds",
				"client operation latency", "addr", "op"),
			retries: reg.Counter("proteus_client_retries_total",
				"operation retries (stale-connection and backoff)", "addr").With(c.addr),
			breakerOpens: reg.Counter("proteus_client_breaker_opens_total",
				"times the circuit breaker opened", "addr").With(c.addr),
			breakerOpen: reg.Gauge("proteus_client_breaker_open",
				"1 while the circuit breaker is open", "addr").With(c.addr),
			multigetBatches: reg.Counter("proteus_client_multiget_batches_total",
				"pipelined multi-get batches sent", "addr").With(c.addr),
			multigetKeys: reg.Counter("proteus_client_multiget_keys_total",
				"keys requested across multi-get batches (ratio to batches = mean batch size)", "addr").With(c.addr),
			multigetDups: reg.Counter("proteus_client_multiget_dup_keys_total",
				"duplicate keys deduplicated before send", "addr").With(c.addr),
		}
	}
}

// clientTelemetry holds the per-client instrument handles. All fields
// are wired once in WithTelemetry; the zero cost of a nil receiver is
// a single branch in roundTrip.
type clientTelemetry struct {
	ops             *telemetry.CounterVec
	latency         *telemetry.HistogramVec
	retries         *telemetry.Counter
	breakerOpens    *telemetry.Counter
	breakerOpen     *telemetry.Gauge
	multigetBatches *telemetry.Counter
	multigetKeys    *telemetry.Counter
	multigetDups    *telemetry.Counter
}

// result buckets an operation error into a label value.
func opResult(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrCircuitOpen):
		return "circuit_open"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		var se *memproto.ServerError
		if errors.As(err, &se) {
			return "server_error"
		}
		return "transport"
	}
}

// Client is a pooled connection to one cache server. It is safe for
// concurrent use.
type Client struct {
	addr        string
	maxConns    int
	timeout     time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration
	dial        DialFunc
	sleep       func(time.Duration)
	jitterSeed  *int64

	jmu  sync.Mutex
	jrng *rand.Rand

	tel  *clientTelemetry
	load loadMeter

	breaker breaker

	pool   chan *conn
	tokens chan struct{} // limits total live connections
	closed chan struct{}
}

type conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// breaker is a per-server circuit breaker. It trips after threshold
// consecutive transport failures, fails fast for cooldown, then lets a
// single probe through (half-open) to test recovery.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

// allow reports whether a call may proceed; ErrCircuitOpen otherwise.
func (b *breaker) allow() error {
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return nil
	}
	if b.now().Before(b.openUntil) {
		return ErrCircuitOpen
	}
	if b.probing {
		return ErrCircuitOpen // one half-open probe at a time
	}
	b.probing = true
	return nil
}

func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records one transport failure; the bool reports whether this
// failure opened (or re-opened) the breaker.
func (b *breaker) failure() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.fails >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}

// New builds a client for the server at addr.
func New(addr string, opts ...Option) *Client {
	c := &Client{
		addr:        addr,
		maxConns:    DefaultMaxConns,
		timeout:     5 * time.Second,
		maxRetries:  2,
		backoffBase: 2 * time.Millisecond,
		backoffMax:  100 * time.Millisecond,
		sleep:       time.Sleep,
		closed:      make(chan struct{}),
		breaker:     breaker{threshold: 8, cooldown: 250 * time.Millisecond, now: time.Now},
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.dial == nil {
		c.dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	seed := addrSeed(addr)
	if c.jitterSeed != nil {
		seed = *c.jitterSeed
	}
	c.jrng = rand.New(rand.NewSource(seed))
	c.pool = make(chan *conn, c.maxConns)
	c.tokens = make(chan struct{}, c.maxConns)
	for i := 0; i < c.maxConns; i++ {
		c.tokens <- struct{}{}
	}
	return c
}

// addrSeed derives a stable per-address jitter seed, so retries are
// reproducible yet decorrelated across a fleet of clients.
func addrSeed(addr string) int64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return int64(h.Sum64())
}

// Addr returns the server address this client targets.
func (c *Client) Addr() string { return c.addr }

// Close releases all pooled connections. In-flight calls may still
// complete; subsequent calls fail with ErrClosed.
func (c *Client) Close() {
	select {
	case <-c.closed:
		return
	default:
	}
	close(c.closed)
	for {
		select {
		case cn := <-c.pool:
			_ = cn.nc.Close() // pool drain is best-effort
		default:
			return
		}
	}
}

// getConn returns a connection and whether it came from the pool (a
// pooled connection may have been closed by a server power cycle, so
// its first use is retried).
func (c *Client) getConn() (*conn, bool, error) {
	select {
	case <-c.closed:
		return nil, false, ErrClosed
	default:
	}
	// Prefer a warm pooled connection over dialing: with a pool larger
	// than the steady-state demand the tokens channel never drains, and
	// letting select choose randomly between the two arms would both
	// waste dials and make the operation sequence nondeterministic
	// (the chaos tests replay fault schedules by op ordinal).
	select {
	case cn := <-c.pool:
		return cn, true, nil
	default:
	}
	select {
	case cn := <-c.pool:
		return cn, true, nil
	case <-c.tokens:
		nc, err := c.dial(c.addr, c.timeout)
		if err != nil {
			c.tokens <- struct{}{}
			return nil, false, fmt.Errorf("cacheclient: dial %s: %w", c.addr, err)
		}
		return &conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, false, nil
	case <-c.closed:
		return nil, false, ErrClosed
	}
}

// evictPool discards every idle pooled connection. Called when the
// circuit breaker opens: pooled connections to a failing server are
// almost certainly dead, and holding them would waste the first call
// after recovery on a stale-connection retry.
func (c *Client) evictPool() {
	for {
		select {
		case cn := <-c.pool:
			_ = cn.nc.Close() // already presumed dead by the breaker
			c.tokens <- struct{}{}
		default:
			return
		}
	}
}

func (c *Client) putConn(cn *conn, broken bool) {
	if broken {
		_ = cn.nc.Close() // the transport error already surfaced to the caller
		c.tokens <- struct{}{}
		return
	}
	select {
	case <-c.closed:
		_ = cn.nc.Close() // client shut down; nothing to report to
		c.tokens <- struct{}{}
	case c.pool <- cn:
	}
}

// roundTrip sends one request and parses the reply with fn; see
// exchange for the retry/breaker discipline.
func (c *Client) roundTrip(req *memproto.Request, fn func(*bufio.Reader) error) error {
	read := fn
	if req.NoReply {
		read = nil
	}
	return c.exchange(req.Command.String(), req.WriteTo, read)
}

// exchange performs one buffered write (which may carry several
// pipelined requests) followed by read, riding out transport faults:
//
//   - a stale pooled connection (e.g. the server was power cycled since
//     the connection was cached) gets one free immediate retry on a
//     fresh dial, the standard memcached-client behaviour;
//   - further transport failures retry up to maxRetries times with
//     jittered exponential backoff — the whole pipelined exchange is
//     the retry unit, so a mid-batch failure re-sends the batch;
//   - the circuit breaker fails fast with ErrCircuitOpen while the
//     server is in cooldown, and evicts the (dead) pooled connections
//     when it opens.
//
// A nil read means no reply is expected (noreply requests).
// Protocol-level error replies and ErrClosed are terminal: the server
// answered (or the client is gone), so retrying cannot help.
func (c *Client) exchange(op string, write func(*bufio.Writer) error, read func(*bufio.Reader) error) error {
	start := c.load.begin()
	err := c.doExchange(write, read)
	c.load.end(start)
	if c.tel != nil {
		c.tel.latency.With(c.addr, op).Observe(time.Since(start))
		c.tel.ops.With(c.addr, op, opResult(err)).Inc()
	}
	return err
}

func (c *Client) doExchange(write func(*bufio.Writer) error, read func(*bufio.Reader) error) error {
	freeRetry := true
	for attempt := 0; ; attempt++ {
		if err := c.breaker.allow(); err != nil {
			return err
		}
		pooled, err := c.exchangeOnce(write, read)
		if err == nil {
			c.breaker.success()
			if c.tel != nil {
				c.tel.breakerOpen.Set(0)
			}
			return nil
		}
		var se *memproto.ServerError
		if errors.As(err, &se) || errors.Is(err, ErrClosed) {
			return err // protocol-level or terminal: no retry
		}
		if c.breaker.failure() {
			c.evictPool()
			if c.tel != nil {
				c.tel.breakerOpens.Inc()
				c.tel.breakerOpen.Set(1)
			}
		}
		if pooled && freeRetry {
			// Stale pooled connection: retry immediately on a fresh
			// dial without consuming the retry budget.
			freeRetry = false
			attempt--
			if c.tel != nil {
				c.tel.retries.Inc()
			}
			continue
		}
		if attempt >= c.maxRetries {
			return err
		}
		if c.tel != nil {
			c.tel.retries.Inc()
		}
		c.sleep(c.backoff(attempt))
	}
}

// backoff returns the sleep before retry attempt k (0-based): an
// exponentially growing window, jittered to 50-100% so synchronized
// clients decorrelate.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.backoffBase
	for i := 0; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	c.jmu.Lock()
	j := c.jrng.Int63n(half + 1)
	c.jmu.Unlock()
	return d/2 + time.Duration(j)
}

func (c *Client) exchangeOnce(write func(*bufio.Writer) error, read func(*bufio.Reader) error) (pooled bool, err error) {
	cn, pooled, err := c.getConn()
	if err != nil {
		return pooled, err
	}
	broken := true
	defer func() { c.putConn(cn, broken) }()

	deadline := time.Now().Add(c.timeout)
	if err := cn.nc.SetDeadline(deadline); err != nil {
		return pooled, fmt.Errorf("cacheclient: set deadline: %w", err)
	}
	if err := write(cn.bw); err != nil {
		return pooled, err
	}
	if err := cn.bw.Flush(); err != nil {
		return pooled, fmt.Errorf("cacheclient: flush: %w", err)
	}
	if read == nil {
		broken = false
		return pooled, nil
	}
	if err := read(cn.br); err != nil {
		// A protocol-level error reply normally leaves the stream
		// aligned, so the connection is reusable — but only if nothing
		// is left buffered. A reply like "SERVER_ERROR ...\r\nEND\r\n"
		// (a per-key failure inside a multi-line response) aborts fn at
		// the error line with the trailing END unread; returning that
		// connection to the pool would serve the leftover bytes as the
		// next request's response. Discard unless the buffer is clean.
		var se *memproto.ServerError
		if errors.As(err, &se) && cn.br.Buffered() == 0 {
			broken = false
		}
		return pooled, err
	}
	// Defensive: a fully parsed response must consume exactly the
	// buffered bytes; anything left means the reader lost alignment.
	broken = cn.br.Buffered() != 0
	return pooled, nil
}

// Get fetches one key; ok reports residency.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	req := &memproto.Request{Command: memproto.CmdGet, Keys: []string{key}}
	err = c.roundTrip(req, func(br *bufio.Reader) error {
		values, err := memproto.ReadValues(br)
		if err != nil {
			return err
		}
		if len(values) > 0 {
			value, ok = values[0].Data, true
		}
		return nil
	})
	return value, ok, err
}

// MultiGet fetches several keys in one pipelined exchange, returning
// the resident subset. Keys are deduplicated before sending (callers
// with repeated keys — e.g. a page whose assets share a chunk — cost
// one fetch per distinct key) and split into as many `get` lines as the
// protocol's line limit requires; all lines go out in a single buffered
// write and the responses are streamed back in order, so the exchange
// costs one network round trip regardless of batch count. The whole
// pipeline is the retry/breaker unit: a transport fault anywhere
// re-sends every batch on a fresh connection.
func (c *Client) MultiGet(keys ...string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	uniq, dups := dedupeKeys(keys)
	batches := batchKeys(uniq)
	if c.tel != nil {
		c.tel.multigetBatches.Add(uint64(len(batches)))
		c.tel.multigetKeys.Add(uint64(len(uniq)))
		if dups > 0 {
			c.tel.multigetDups.Add(uint64(dups))
		}
	}
	out := make(map[string][]byte, len(uniq))
	err := c.exchange("get_multi", func(bw *bufio.Writer) error {
		for _, batch := range batches {
			req := memproto.Request{Command: memproto.CmdGet, Keys: batch}
			if err := req.WriteTo(bw); err != nil {
				return err
			}
		}
		return nil
	}, func(br *bufio.Reader) error {
		var scratch []memproto.Value
		for range batches {
			values, err := memproto.ReadValuesAppend(br, scratch[:0])
			if err != nil {
				return err
			}
			for _, v := range values {
				out[v.Key] = v.Data
			}
			scratch = values
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// dedupeKeys drops repeated keys, preserving first-occurrence order,
// and reports how many duplicates were dropped. The common all-unique
// case returns the input slice unchanged (no copy).
func dedupeKeys(keys []string) ([]string, int) {
	seen := make(map[string]struct{}, len(keys))
	for i, k := range keys {
		if _, dup := seen[k]; dup {
			// First duplicate found: copy the unique prefix and filter
			// the rest.
			uniq := append([]string(nil), keys[:i]...)
			for _, k := range keys[i:] {
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					uniq = append(uniq, k)
				}
			}
			return uniq, len(keys) - len(uniq)
		}
		seen[k] = struct{}{}
	}
	return keys, 0
}

// batchKeys splits keys into per-line batches so each encoded
// "get k1 k2 ...\r\n" stays within the protocol line limit. A single
// batch covers ~450 keys of typical length, so most calls stay at one.
func batchKeys(keys []string) [][]string {
	const maxLine = memproto.MaxLineLen - len("get\r\n")
	batches := make([][]string, 0, 1)
	start, lineLen := 0, 0
	for i, k := range keys {
		need := 1 + len(k) // separating space + key
		if lineLen+need > maxLine && i > start {
			batches = append(batches, keys[start:i])
			start, lineLen = i, 0
		}
		lineLen += need
	}
	return append(batches, keys[start:])
}

// Set stores a value with an expiry in seconds (0 = server default).
func (c *Client) Set(key string, value []byte, exptime int64) error {
	req := &memproto.Request{Command: memproto.CmdSet, Keys: []string{key}, Exptime: exptime, Data: value}
	return c.expectReply(req, memproto.ReplyStored)
}

// Add stores only if absent, reporting whether it stored.
func (c *Client) Add(key string, value []byte, exptime int64) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdAdd, Keys: []string{key}, Exptime: exptime, Data: value}
	return c.storedReply(req)
}

// Replace stores only if present, reporting whether it stored.
func (c *Client) Replace(key string, value []byte, exptime int64) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdReplace, Keys: []string{key}, Exptime: exptime, Data: value}
	return c.storedReply(req)
}

// Delete removes a key, reporting whether it was resident.
func (c *Client) Delete(key string) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdDelete, Keys: []string{key}}
	var deleted bool
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		deleted = reply == memproto.ReplyDeleted
		return nil
	})
	return deleted, err
}

// Touch refreshes a key's TTL, reporting whether it was resident.
func (c *Client) Touch(key string, exptime int64) (bool, error) {
	req := &memproto.Request{Command: memproto.CmdTouch, Keys: []string{key}, Exptime: exptime}
	var touched bool
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		touched = reply == memproto.ReplyTouched
		return nil
	})
	return touched, err
}

// Stats fetches the server's stats map.
func (c *Client) Stats() (map[string]string, error) {
	req := &memproto.Request{Command: memproto.CmdStats}
	var stats map[string]string
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		var err error
		stats, err = memproto.ReadStats(br)
		return err
	})
	return stats, err
}

// FlushAll clears the server.
func (c *Client) FlushAll() error {
	req := &memproto.Request{Command: memproto.CmdFlushAll}
	return c.expectReply(req, memproto.ReplyOK)
}

// Version returns the server version string.
func (c *Client) Version() (string, error) {
	req := &memproto.Request{Command: memproto.CmdVersion}
	var version string
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		version = reply
		return nil
	})
	return version, err
}

// FetchDigest snapshots and downloads the server's Bloom filter digest,
// exactly as the paper's web servers do at the start of a transition:
// get(SET_BLOOM_FILTER) then get(BLOOM_FILTER).
func (c *Client) FetchDigest() (*bloom.Filter, error) {
	if _, _, err := c.Get("SET_BLOOM_FILTER"); err != nil {
		return nil, fmt.Errorf("cacheclient: snapshot digest: %w", err)
	}
	data, ok, err := c.Get("BLOOM_FILTER")
	if err != nil {
		return nil, fmt.Errorf("cacheclient: fetch digest: %w", err)
	}
	if !ok {
		return nil, errors.New("cacheclient: server returned no digest")
	}
	return bloom.UnmarshalFilter(data)
}

func (c *Client) expectReply(req *memproto.Request, want string) error {
	return c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		if reply != want {
			return fmt.Errorf("cacheclient: unexpected reply %q (want %q)", reply, want)
		}
		return nil
	})
}

func (c *Client) storedReply(req *memproto.Request) (bool, error) {
	var stored bool
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		stored = reply == memproto.ReplyStored
		return nil
	})
	return stored, err
}
