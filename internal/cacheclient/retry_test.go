package cacheclient

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/faultinject"
	"proteus/internal/memproto"
)

// scriptServer answers each request with the next canned response, for
// exercising exact wire corner cases. accepts counts connections.
func scriptServer(t *testing.T, responses []string) (addr string, accepts, requests *int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	served := 0
	accepts, requests = new(int32), new(int32)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(accepts, 1)
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := memproto.ReadRequest(br); err != nil {
						return
					}
					mu.Lock()
					i := served
					served++
					mu.Unlock()
					atomic.AddInt32(requests, 1)
					if i >= len(responses) {
						return
					}
					if _, err := conn.Write([]byte(responses[i])); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), accepts, requests
}

// Regression for the pool-poisoning bug: a per-key SERVER_ERROR inside
// a retrieval response ("SERVER_ERROR ...\r\nEND\r\n", exactly what the
// cache server emits when a digest snapshot fails mid-get) used to
// leave the trailing END buffered on a connection that went back into
// the pool, so the NEXT request read the stale END as its own response
// and silently became a miss. The connection must be discarded instead.
func TestServerErrorMidResponseDoesNotPoisonPool(t *testing.T) {
	addr, _, _ := scriptServer(t, []string{
		"SERVER_ERROR digest snapshot failed\r\nEND\r\n",
		"VALUE k 0 1\r\nv\r\nEND\r\n",
	})
	c := New(addr, WithMaxConns(1), WithTimeout(time.Second))
	defer c.Close()

	_, _, err := c.Get("k")
	var se *memproto.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("first Get error = %v, want ServerError", err)
	}
	// The poisoned path returned (nil, false, nil) here — a phantom
	// miss — because the stale END was consumed as the response.
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after SERVER_ERROR: %q, %v, %v (stale bytes served?)", v, ok, err)
	}
}

// A clean single-line SERVER_ERROR (stream aligned, nothing buffered)
// still keeps the connection, as before.
func TestAlignedServerErrorKeepsConnection(t *testing.T) {
	addr, accepts, _ := scriptServer(t, []string{
		"SERVER_ERROR out of memory\r\n",
		"STORED\r\n",
	})
	c := New(addr, WithMaxConns(1), WithTimeout(time.Second))
	defer c.Close()

	err := c.Set("k", []byte("v"), 0)
	var se *memproto.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("Set error = %v, want ServerError", err)
	}
	if err := c.Set("k", []byte("v"), 0); err != nil {
		t.Fatalf("second Set: %v", err)
	}
	if *accepts != 1 {
		t.Fatalf("server accepted %d conns; aligned SERVER_ERROR should keep the connection", *accepts)
	}
}

// Transport errors retry with jittered backoff until the server
// recovers within the retry budget.
func TestRetriesRideOutInjectedFaults(t *testing.T) {
	addr := startServer(t).Addr() // live server, lifetime tied to t.Cleanup

	// Fail the first two dials, then let traffic through.
	inj := faultinject.New(1, faultinject.Rule{
		Server: 0, Op: faultinject.OpDial, Kind: faultinject.KindError, Every: 1, Limit: 2,
	})
	var slept []time.Duration
	c := New(addr,
		WithDialer(func(a string, to time.Duration) (net.Conn, error) { return inj.Dial(0, a, to) }),
		WithMaxRetries(2),
		WithBackoff(time.Millisecond, 8*time.Millisecond),
		WithJitterSeed(7),
		WithSleep(func(d time.Duration) { slept = append(slept, d) }),
		WithTimeout(time.Second),
	)
	defer c.Close()

	if err := c.Set("k", []byte("v"), 0); err != nil {
		t.Fatalf("Set through 2 injected dial faults: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("backoff slept %d times (%v), want 2", len(slept), slept)
	}
	// Jittered exponential: sleep k falls in [window/2, window] with the
	// window doubling per attempt.
	if slept[0] < 500*time.Microsecond || slept[0] > time.Millisecond {
		t.Errorf("first backoff %v outside [0.5ms, 1ms]", slept[0])
	}
	if slept[1] < time.Millisecond || slept[1] > 2*time.Millisecond {
		t.Errorf("second backoff %v outside [1ms, 2ms]", slept[1])
	}
}

// Same jitter seed -> same backoff schedule (test determinism).
func TestBackoffDeterministicUnderSeed(t *testing.T) {
	schedule := func() []time.Duration {
		inj := faultinject.New(3, faultinject.Rule{
			Server: 0, Op: faultinject.OpDial, Kind: faultinject.KindError, Every: 1,
		})
		var slept []time.Duration
		c := New("127.0.0.1:1",
			WithDialer(func(a string, to time.Duration) (net.Conn, error) { return inj.Dial(0, a, to) }),
			WithMaxRetries(3),
			WithBackoff(time.Millisecond, 50*time.Millisecond),
			WithJitterSeed(99),
			WithSleep(func(d time.Duration) { slept = append(slept, d) }),
		)
		defer c.Close()
		c.Get("k") // fails after exhausting retries
		return slept
	}
	a, b := schedule(), schedule()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("sleep counts = %d, %d, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff schedule diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// The breaker opens after `threshold` consecutive transport failures,
// fails fast during cooldown without touching the network, then a
// half-open probe closes it once the server recovers.
func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	addr := startServer(t).Addr()
	inj := faultinject.New(5)
	inj.Partition(0)

	var dials int32
	var mu sync.Mutex
	now := time.Unix(0, 0)
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	c := New(addr,
		WithDialer(func(a string, to time.Duration) (net.Conn, error) {
			atomic.AddInt32(&dials, 1)
			return inj.Dial(0, a, to)
		}),
		WithMaxRetries(0),
		WithBreaker(3, 100*time.Millisecond),
		WithSleep(func(time.Duration) {}),
		WithTimeout(time.Second),
	)
	defer c.Close()
	c.breaker.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}

	// Three failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, _, err := c.Get("k"); err == nil {
			t.Fatal("Get against partitioned server succeeded")
		}
	}
	// Open: fails fast with no dial.
	before := atomic.LoadInt32(&dials)
	if _, _, err := c.Get("k"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("during cooldown: err = %v, want ErrCircuitOpen", err)
	}
	if got := atomic.LoadInt32(&dials); got != before {
		t.Fatalf("breaker-open call dialed %d times", got-before)
	}

	// Server heals; cooldown elapses; the probe closes the breaker.
	inj.Heal(0)
	advance(101 * time.Millisecond)
	if err := c.Set("k", []byte("v"), 0); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if _, ok, err := c.Get("k"); err != nil || !ok {
		t.Fatalf("after recovery: ok=%v err=%v", ok, err)
	}
}

// A probe failure re-opens the breaker for another full cooldown.
func TestCircuitBreakerReopensOnFailedProbe(t *testing.T) {
	c := New("127.0.0.1:1", // refused
		WithMaxRetries(0),
		WithBreaker(2, 50*time.Millisecond),
		WithSleep(func(time.Duration) {}),
		WithTimeout(100*time.Millisecond),
	)
	defer c.Close()
	now := time.Unix(0, 0)
	c.breaker.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		c.Get("k")
	}
	if _, _, err := c.Get("k"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	now = now.Add(51 * time.Millisecond)
	if _, _, err := c.Get("k"); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("half-open probe was not allowed through")
	}
	// The failed probe re-armed the cooldown.
	if _, _, err := c.Get("k"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after failed probe: err = %v, want ErrCircuitOpen", err)
	}
}

// When the breaker opens, idle pooled connections are evicted so a
// recovered server starts from fresh dials instead of stale sockets.
func TestBreakerOpenEvictsPool(t *testing.T) {
	addr := startServer(t).Addr()
	inj := faultinject.New(9)
	c := New(addr,
		WithDialer(func(a string, to time.Duration) (net.Conn, error) { return inj.Dial(0, a, to) }),
		WithMaxConns(2), WithBreaker(1, time.Hour), WithMaxRetries(0),
		WithSleep(func(time.Duration) {}), WithTimeout(time.Second),
	)
	defer c.Close()

	// Fill the pool with two live, injector-wrapped connections.
	for i := 0; i < 2; i++ {
		<-c.tokens
		nc, err := inj.Dial(0, addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c.putConn(&conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, false)
	}

	// Partition the server: the next Get fails on the first pooled
	// connection, trips the threshold-1 breaker, and the breaker evicts
	// the remaining idle connection.
	inj.Partition(0)
	if _, _, err := c.Get("k"); !errors.Is(err, ErrCircuitOpen) && err == nil {
		t.Fatal("Get against partitioned server succeeded")
	}
	if got := len(c.pool); got != 0 {
		t.Fatalf("pool after breaker open holds %d conns, want 0", got)
	}
	if got := len(c.tokens); got != 2 {
		t.Fatalf("tokens after eviction = %d, want 2", got)
	}
}
