package cacheclient

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"proteus/internal/memproto"
)

// recordingServer is a minimal memcached speaker that records every
// parsed request's key list, so tests can assert on the wire shape of
// a pipelined MultiGet (how many get lines, which keys, no duplicates).
type recordingServer struct {
	ln net.Listener

	mu   sync.Mutex
	gets [][]string
}

func startRecordingServer(t *testing.T, store map[string][]byte) *recordingServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &recordingServer{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				for {
					req, err := memproto.ReadRequest(br)
					if err != nil {
						return
					}
					if req.Command != memproto.CmdGet {
						continue
					}
					rs.mu.Lock()
					rs.gets = append(rs.gets, append([]string(nil), req.Keys...))
					rs.mu.Unlock()
					for _, k := range req.Keys {
						if v, ok := store[k]; ok {
							if err := memproto.WriteValue(bw, memproto.Value{Key: k, Data: v}); err != nil {
								return
							}
						}
					}
					if err := memproto.WriteEnd(bw); err != nil {
						return
					}
					if br.Buffered() == 0 {
						if err := bw.Flush(); err != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return rs
}

func (rs *recordingServer) getLines() [][]string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([][]string(nil), rs.gets...)
}

// Regression test: duplicate keys used to be sent verbatim ("get a b a")
// and must now be deduplicated before hitting the wire, while every
// requested key still resolves in the result.
func TestMultiGetDedupesDuplicateKeys(t *testing.T) {
	rs := startRecordingServer(t, map[string][]byte{
		"a": []byte("va"), "b": []byte("vb"),
	})
	c := New(rs.ln.Addr().String(), WithTimeout(2*time.Second))
	defer c.Close()

	got, err := c.MultiGet("a", "b", "a", "a", "b", "miss", "miss")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["a"]) != "va" || string(got["b"]) != "vb" || len(got) != 2 {
		t.Fatalf("MultiGet = %v", got)
	}
	lines := rs.getLines()
	if len(lines) != 1 {
		t.Fatalf("sent %d get lines, want 1: %v", len(lines), lines)
	}
	if want := []string{"a", "b", "miss"}; strings.Join(lines[0], " ") != strings.Join(want, " ") {
		t.Errorf("wire keys = %v, want %v (deduped, order preserved)", lines[0], want)
	}
}

// A key list too long for one command line must be pipelined as several
// line-limit-respecting get requests in one exchange, and the merged
// result must cover every batch.
func TestMultiGetBatchesLongKeyLists(t *testing.T) {
	store := make(map[string][]byte)
	var keys []string
	for i := 0; i < 120; i++ {
		// ~200-byte keys force multiple batches well before 120 keys.
		k := fmt.Sprintf("chunk-%03d-%s", i, strings.Repeat("x", 190))
		keys = append(keys, k)
		if i%3 != 0 { // leave every third key a miss
			store[k] = []byte(fmt.Sprintf("v%d", i))
		}
	}
	rs := startRecordingServer(t, store)
	c := New(rs.ln.Addr().String(), WithTimeout(2*time.Second))
	defer c.Close()

	got, err := c.MultiGet(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(store) {
		t.Fatalf("MultiGet returned %d values, want %d", len(got), len(store))
	}
	for k, v := range store {
		if string(got[k]) != string(v) {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
	lines := rs.getLines()
	if len(lines) < 2 {
		t.Fatalf("expected multiple pipelined get lines, got %d", len(lines))
	}
	var total int
	for _, l := range lines {
		lineLen := len("get")
		for _, k := range l {
			lineLen += 1 + len(k)
		}
		if lineLen+2 > memproto.MaxLineLen {
			t.Errorf("batch of %d keys encodes to %d bytes, over the %d line limit", len(l), lineLen+2, memproto.MaxLineLen)
		}
		total += len(l)
	}
	if total != len(keys) {
		t.Errorf("batches cover %d keys, want %d", total, len(keys))
	}
}

func TestDedupeKeys(t *testing.T) {
	uniq, dups := dedupeKeys([]string{"a", "b", "c"})
	if dups != 0 || len(uniq) != 3 {
		t.Fatalf("all-unique: %v, %d", uniq, dups)
	}
	uniq, dups = dedupeKeys([]string{"a", "b", "a", "c", "b", "a"})
	if dups != 3 || strings.Join(uniq, "") != "abc" {
		t.Fatalf("deduped: %v, %d", uniq, dups)
	}
}

func TestBatchKeysRespectsLineLimit(t *testing.T) {
	long := strings.Repeat("k", memproto.MaxKeyLen)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = long
	}
	batches := batchKeys(keys)
	if len(batches) < 2 {
		t.Fatalf("100 max-length keys fit in %d batch(es)", len(batches))
	}
	var total int
	for _, b := range batches {
		lineLen := len("get") + 2
		for _, k := range b {
			lineLen += 1 + len(k)
		}
		if lineLen > memproto.MaxLineLen {
			t.Errorf("batch encodes to %d bytes, over limit", lineLen)
		}
		total += len(b)
	}
	if total != len(keys) {
		t.Errorf("batches cover %d keys, want %d", total, len(keys))
	}
	if got := batchKeys([]string{"a", "b"}); len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("short list batched as %v", got)
	}
}
