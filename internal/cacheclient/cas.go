package cacheclient

import (
	"bufio"
	"strconv"

	"proteus/internal/memproto"
)

// CASValue is a value with its check-and-set token.
type CASValue struct {
	Value []byte
	CAS   uint64
}

// Gets fetches a key with its CAS token (memcached "gets").
func (c *Client) Gets(key string) (CASValue, bool, error) {
	req := &memproto.Request{Command: memproto.CmdGets, Keys: []string{key}}
	var (
		out CASValue
		ok  bool
	)
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		values, err := memproto.ReadValues(br)
		if err != nil {
			return err
		}
		if len(values) > 0 {
			out = CASValue{Value: values[0].Data, CAS: values[0].CAS}
			ok = true
		}
		return nil
	})
	return out, ok, err
}

// CASStatus is the outcome of a CompareAndSwap.
type CASStatus int

const (
	// CASStored means the swap succeeded.
	CASStored CASStatus = iota + 1
	// CASExists means the value changed since Gets.
	CASExists
	// CASNotFound means the key vanished.
	CASNotFound
)

// CompareAndSwap stores value only if the server-side token still
// matches (memcached "cas").
func (c *Client) CompareAndSwap(key string, value []byte, exptime int64, cas uint64) (CASStatus, error) {
	req := &memproto.Request{
		Command: memproto.CmdCas, Keys: []string{key},
		Exptime: exptime, Data: value, CAS: cas,
	}
	status := CASNotFound
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		switch reply {
		case memproto.ReplyStored:
			status = CASStored
		case memproto.ReplyExists:
			status = CASExists
		}
		return nil
	})
	return status, err
}

// Increment adds delta to a numeric value, returning the new value;
// found is false when the key is absent.
func (c *Client) Increment(key string, delta uint64) (value uint64, found bool, err error) {
	return c.arith(memproto.CmdIncr, key, delta)
}

// Decrement subtracts delta (clamped at zero).
func (c *Client) Decrement(key string, delta uint64) (value uint64, found bool, err error) {
	return c.arith(memproto.CmdDecr, key, delta)
}

func (c *Client) arith(cmd memproto.Command, key string, delta uint64) (uint64, bool, error) {
	req := &memproto.Request{Command: cmd, Keys: []string{key}, Delta: delta}
	var (
		value uint64
		found bool
	)
	err := c.roundTrip(req, func(br *bufio.Reader) error {
		reply, err := memproto.ReadReply(br)
		if err != nil {
			return err
		}
		if reply == memproto.ReplyNotFound {
			return nil
		}
		n, err := strconv.ParseUint(reply, 10, 64)
		if err != nil {
			return err
		}
		value, found = n, true
		return nil
	})
	return value, found, err
}

// Append concatenates data after an existing value, reporting whether
// the key was resident.
func (c *Client) Append(key string, data []byte) (bool, error) {
	return c.storedReply(&memproto.Request{Command: memproto.CmdAppend, Keys: []string{key}, Data: data})
}

// Prepend concatenates data before an existing value.
func (c *Client) Prepend(key string, data []byte) (bool, error) {
	return c.storedReply(&memproto.Request{Command: memproto.CmdPrepend, Keys: []string{key}, Data: data})
}
