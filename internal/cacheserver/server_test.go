package cacheserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"proteus/internal/cache"
	"proteus/internal/cacheclient"
	"proteus/internal/testutil"
)

// startServer launches a server on a loopback port and returns it with
// a connected client. Both are torn down with t.Cleanup.
func startServer(t *testing.T, cfg Config) (*Server, *cacheclient.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	c := cacheclient.New(ln.Addr().String(), cacheclient.WithTimeout(2*time.Second))
	t.Cleanup(c.Close)
	return s, c
}

func TestGetSetDeleteOverTCP(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})

	if _, ok, err := c.Get("missing"); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
	if err := c.Set("page:1", []byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("page:1")
	if err != nil || !ok || string(v) != "hello world" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	deleted, err := c.Delete("page:1")
	if err != nil || !deleted {
		t.Fatalf("Delete = %v,%v", deleted, err)
	}
	deleted, err = c.Delete("page:1")
	if err != nil || deleted {
		t.Fatalf("second Delete = %v,%v", deleted, err)
	}
}

func TestAddReplaceOverTCP(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	stored, err := c.Add("k", []byte("1"), 0)
	if err != nil || !stored {
		t.Fatalf("Add = %v,%v", stored, err)
	}
	stored, err = c.Add("k", []byte("2"), 0)
	if err != nil || stored {
		t.Fatalf("Add on resident = %v,%v", stored, err)
	}
	stored, err = c.Replace("k", []byte("3"), 0)
	if err != nil || !stored {
		t.Fatalf("Replace = %v,%v", stored, err)
	}
	v, _, _ := c.Get("k")
	if string(v) != "3" {
		t.Fatalf("value = %q, want 3", v)
	}
}

func TestMultiGet(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	for i := 0; i < 5; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.MultiGet("k0", "k2", "k4", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got["k2"]) != "v2" {
		t.Fatalf("MultiGet = %v", got)
	}
}

func TestTouchAndExpiry(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	if err := c.Set("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	touched, err := c.Touch("k", 3600)
	if err != nil || !touched {
		t.Fatalf("Touch = %v,%v", touched, err)
	}
	touched, err = c.Touch("absent", 60)
	if err != nil || touched {
		t.Fatalf("Touch(absent) = %v,%v", touched, err)
	}
	// Negative exptime stores an immediately-expired item.
	if err := c.Set("dead", []byte("v"), -1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("dead"); ok {
		t.Fatal("negative exptime item still resident")
	}
}

func TestStatsAndVersionAndFlush(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	c.Set("a", []byte("1"), 0)
	c.Get("a")
	c.Get("zzz")
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["curr_items"] != "1" || stats["get_hits"] != "1" || stats["get_misses"] != "1" {
		t.Fatalf("stats = %v", stats)
	}
	if stats["digest_keys"] != "1" {
		t.Fatalf("digest_keys = %q, want 1", stats["digest_keys"])
	}
	version, err := c.Version()
	if err != nil || !strings.HasPrefix(version, "VERSION ") {
		t.Fatalf("Version = %q,%v", version, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("a"); ok {
		t.Fatal("item survived flush_all")
	}
}

// The paper's digest flow: get(SET_BLOOM_FILTER) snapshots; then
// get(BLOOM_FILTER) retrieves the bit array as ordinary data.
func TestDigestSnapshotProtocol(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	for i := 0; i < 500; i++ {
		if err := c.Set(fmt.Sprintf("page:%d", i), []byte("data"), 0); err != nil {
			t.Fatal(err)
		}
	}
	digest, err := c.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if !digest.Contains(fmt.Sprintf("page:%d", i)) {
			t.Fatalf("digest missing resident key page:%d", i)
		}
	}
	// Deleted keys disappear from the *next* snapshot.
	for i := 0; i < 250; i++ {
		if _, err := c.Delete(fmt.Sprintf("page:%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	digest2, err := c.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	falsePos := 0
	for i := 0; i < 250; i++ {
		if digest2.Contains(fmt.Sprintf("page:%d", i)) {
			falsePos++
		}
	}
	if falsePos > 10 {
		t.Fatalf("%d/250 deleted keys still in digest", falsePos)
	}
	for i := 250; i < 500; i++ {
		if !digest2.Contains(fmt.Sprintf("page:%d", i)) {
			t.Fatalf("digest lost surviving key page:%d", i)
		}
	}
}

func TestDigestFetchBeforeSnapshotIsMiss(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	_, ok, err := c.Get(KeyFetchDigest)
	if err != nil || ok {
		t.Fatalf("BLOOM_FILTER before snapshot: ok=%v err=%v, want miss", ok, err)
	}
}

func TestEvictionKeepsDigestConsistent(t *testing.T) {
	s, c := startServer(t, Config{
		Cache:  cache.Config{MaxBytes: 20 * 1024},
		Digest: testutil.SmallDigest(),
	})
	value := make([]byte, 1024)
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("big:%d", i), value, 0); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Cache().Stats()
	if stats.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// Live digest must agree with the cache for all keys.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("big:%d", i)
		if s.Cache().Contains(key) && !s.DigestContains(key) {
			t.Fatalf("resident key %s absent from digest", key)
		}
	}
}

func TestRawProtocolSession(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	nc, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	send := func(lines string) {
		if _, err := nc.Write([]byte(lines)); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want string) {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got := strings.TrimRight(line, "\r\n"); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	send("set foo 0 0 3\r\nbar\r\n")
	expect("STORED")
	send("get foo\r\n")
	expect("VALUE foo 0 3")
	expect("bar")
	expect("END")
	send("set quiet 0 0 1 noreply\r\nx\r\nget quiet\r\n")
	expect("VALUE quiet 0 1")
	expect("x")
	expect("END")
	send("quit\r\n")
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestMalformedCommandGetsClientError(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	nc, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("gibberish\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "CLIENT_ERROR") {
		t.Fatalf("got %q, want CLIENT_ERROR", line)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, cc := startServer(t, Config{Digest: testutil.SmallDigest()})
	addr := cc.Addr()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := cacheclient.New(addr, cacheclient.WithMaxConns(2))
			defer c.Close()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := c.Set(key, []byte("v"), 0); err != nil {
					errs <- err
					return
				}
				if _, ok, err := c.Get(key); err != nil || !ok {
					errs <- fmt.Errorf("get %s: ok=%v err=%v", key, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Cache().Len(); got != 8*200 {
		t.Fatalf("cache has %d items, want %d", got, 8*200)
	}
}

func TestNewRejectsHookedCacheConfig(t *testing.T) {
	_, err := New(Config{Cache: cache.Config{OnLink: func(string) {}}})
	if err == nil {
		t.Fatal("New accepted a cache config with hooks")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s, err := New(Config{Digest: testutil.SmallDigest()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
