package cacheserver

import (
	"bufio"
	"io"
	"testing"

	"proteus/internal/memproto"
	"proteus/internal/telemetry"
	"proteus/internal/testutil"
)

// The zero-alloc contract for the request hot path (ISSUE: hot-path
// overhaul). These are hard assertions, not benchmarks: a regression
// that adds an allocation to the GET-hit path fails `go test`, so it
// cannot slip in between baseline refreshes.

func allocServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{Digest: testutil.SmallDigest(), Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A GET hit — counter bump, cache lookup, VALUE block, END — must not
// allocate at all. Every piece is preallocated: telemetry counters at
// New, response numbers via stack-array strconv appends, the value
// bytes streamed straight from the cache's buffer.
func TestHandleGetHitZeroAllocs(t *testing.T) {
	s := allocServer(t)
	s.cache.Set("alloc:key", make([]byte, 256), 0)
	req := &memproto.Request{Command: memproto.CmdGet, Keys: []string{"alloc:key"}}
	bw := bufio.NewWriter(io.Discard)
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.handle(bw, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("GET hit allocates %.1f objects/op, want 0", allocs)
	}
}

// A GET miss writes only END; it must also stay at zero.
func TestHandleGetMissZeroAllocs(t *testing.T) {
	s := allocServer(t)
	req := &memproto.Request{Command: memproto.CmdGet, Keys: []string{"alloc:absent"}}
	bw := bufio.NewWriter(io.Discard)
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.handle(bw, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("GET miss allocates %.1f objects/op, want 0", allocs)
	}
}

// A SET (overwrite of a resident key) may allocate exactly the new
// cache entry and nothing else — no reply formatting, no digest churn
// allocations.
func TestHandleSetAtMostOneAlloc(t *testing.T) {
	s := allocServer(t)
	data := make([]byte, 64)
	req := &memproto.Request{Command: memproto.CmdSet, Keys: []string{"alloc:set"}, Data: data}
	bw := bufio.NewWriter(io.Discard)
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.handle(bw, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("SET allocates %.1f objects/op, want <= 1 (the cache entry)", allocs)
	}
}
