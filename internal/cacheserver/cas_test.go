package cacheserver

import (
	"testing"

	"proteus/internal/cacheclient"
	"proteus/internal/testutil"
)

func TestGetsAndCompareAndSwapOverTCP(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	if err := c.Set("k", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	cv, ok, err := c.Gets("k")
	if err != nil || !ok || string(cv.Value) != "v1" || cv.CAS == 0 {
		t.Fatalf("Gets = %+v,%v,%v", cv, ok, err)
	}
	status, err := c.CompareAndSwap("k", []byte("v2"), 0, cv.CAS)
	if err != nil || status != cacheclient.CASStored {
		t.Fatalf("CAS = %v,%v", status, err)
	}
	// Stale token now.
	status, err = c.CompareAndSwap("k", []byte("v3"), 0, cv.CAS)
	if err != nil || status != cacheclient.CASExists {
		t.Fatalf("stale CAS = %v,%v", status, err)
	}
	status, err = c.CompareAndSwap("ghost", []byte("v"), 0, 1)
	if err != nil || status != cacheclient.CASNotFound {
		t.Fatalf("absent CAS = %v,%v", status, err)
	}
	v, _, _ := c.Get("k")
	if string(v) != "v2" {
		t.Fatalf("value = %q, want v2", v)
	}
}

func TestGetsMissOmitsValue(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	if _, ok, err := c.Gets("nope"); err != nil || ok {
		t.Fatalf("Gets(miss) = ok=%v err=%v", ok, err)
	}
}

func TestIncrDecrOverTCP(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	if err := c.Set("n", []byte("41"), 0); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Increment("n", 1)
	if err != nil || !found || v != 42 {
		t.Fatalf("Increment = %d,%v,%v", v, found, err)
	}
	v, found, err = c.Decrement("n", 2)
	if err != nil || !found || v != 40 {
		t.Fatalf("Decrement = %d,%v,%v", v, found, err)
	}
	if _, found, err := c.Increment("ghost", 1); err != nil || found {
		t.Fatalf("Increment(absent) = found=%v err=%v", found, err)
	}
	// Non-numeric values produce CLIENT_ERROR.
	if err := c.Set("s", []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Increment("s", 1); err == nil {
		t.Fatal("Increment on non-number succeeded")
	}
	// The connection survives the error reply.
	if _, ok, err := c.Get("n"); err != nil || !ok {
		t.Fatalf("connection poisoned after CLIENT_ERROR: ok=%v err=%v", ok, err)
	}
}

func TestAppendPrependOverTCP(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	if stored, err := c.Append("k", []byte("x")); err != nil || stored {
		t.Fatalf("Append(absent) = %v,%v", stored, err)
	}
	if err := c.Set("k", []byte("mid"), 0); err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Append("k", []byte("-end")); err != nil || !stored {
		t.Fatalf("Append = %v,%v", stored, err)
	}
	if stored, err := c.Prepend("k", []byte("start-")); err != nil || !stored {
		t.Fatalf("Prepend = %v,%v", stored, err)
	}
	v, _, _ := c.Get("k")
	if string(v) != "start-mid-end" {
		t.Fatalf("value = %q", v)
	}
}

// The digest must remain consistent through concat/arith mutations:
// the key stays resident and the digest keeps reporting it.
func TestDigestSurvivesMutatingOps(t *testing.T) {
	s, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	if err := c.Set("n", []byte("1"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Increment("n", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append("n", []byte("0")); err != nil {
		t.Fatal(err)
	}
	if !s.DigestContains("n") {
		t.Fatal("digest lost key after in-place mutations")
	}
	if _, err := c.Delete("n"); err != nil {
		t.Fatal(err)
	}
	if s.DigestContains("n") {
		t.Fatal("digest retains deleted key")
	}
}
