package cacheserver

import (
	"net"
	"strings"
	"testing"
	"time"

	"proteus/internal/cacheclient"
	"proteus/internal/testutil"
)

func TestListenAndServe(t *testing.T) {
	s, err := New(Config{Digest: testutil.SmallDigest()})
	if err != nil {
		t.Fatal(err)
	}
	// Reserve a free port, release it, and let the server bind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(addr) }()

	c := cacheclient.New(addr, cacheclient.WithTimeout(2*time.Second))
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.Set("k", []byte("v"), 0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
}

func TestListenAndServeBadAddr(t *testing.T) {
	s, err := New(Config{Digest: testutil.SmallDigest()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ListenAndServe("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestServeAfterCloseRejected(t *testing.T) {
	s, err := New(Config{Digest: testutil.SmallDigest()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(ln); err == nil {
		t.Fatal("Serve after Close accepted")
	}
}

func TestAddrBeforeServeIsNil(t *testing.T) {
	s, err := New(Config{Digest: testutil.SmallDigest()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() != nil {
		t.Fatal("Addr non-nil before Serve")
	}
}

func TestCloseDrainsOpenConnections(t *testing.T) {
	s, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	// Hold an idle raw connection open; Close must not hang on it.
	nc, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle connection")
	}
	// The held connection is dead.
	nc.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection still alive after Close")
	}
}

func TestStatsIncludeDigestFields(t *testing.T) {
	_, c := startServer(t, Config{Digest: testutil.SmallDigest()})
	for i := 0; i < 10; i++ {
		if err := c.Set(strings.Repeat("x", i+1), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"digest_keys", "digest_saturated", "uptime", "bytes"} {
		if _, ok := stats[field]; !ok {
			t.Errorf("stats missing %q", field)
		}
	}
	if stats["digest_keys"] != "10" {
		t.Errorf("digest_keys = %q, want 10", stats["digest_keys"])
	}
}
