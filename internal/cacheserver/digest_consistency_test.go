package cacheserver

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"proteus/internal/cache"
	"proteus/internal/testutil"
)

// The paper's digest contract: the counting Bloom filter tracks cache
// residency exactly — every link inserts, every unlink deletes — so
// after any interleaving of Set/Get/Delete/eviction across shards the
// filter has no false negatives for resident keys and its net key count
// equals the cache's item count. This is the cross-shard version of the
// cache-level hook test (internal/cache.TestShardedHookConsistencyConcurrent);
// it exercises the real server hooks (digestMu serialising per-shard
// callbacks) and runs under -race in CI.
func TestDigestMatchesCacheUnderConcurrency(t *testing.T) {
	s, err := New(Config{
		Digest: testutil.SmallDigest(),
		Cache: cache.Config{
			// Tight enough that capacity evictions fire constantly.
			MaxBytes: 48 * 100,
			Clock:    time.Now,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const keySpace = 256
	keys := make([]string, keySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("digest-key-%d", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for i := 0; i < 2500; i++ {
				k := keys[rng.Intn(keySpace)]
				switch rng.Intn(6) {
				case 0, 1, 2:
					s.cache.Set(k, make([]byte, rng.Intn(32)), 0)
				case 3:
					s.cache.Get(k)
				case 4:
					s.cache.Delete(k)
				default:
					s.cache.Touch(k, time.Hour)
				}
			}
		}(g)
	}
	wg.Wait()

	s.digestMu.Lock()
	digestKeys := s.digest.Keys()
	saturated := s.digest.SaturatedCounters()
	s.digestMu.Unlock()
	if saturated != 0 {
		t.Fatalf("digest saturated (%d counters): result not meaningful, resize the test", saturated)
	}
	if got := s.cache.Len(); digestKeys != got {
		t.Errorf("digest tracks %d keys, cache holds %d items", digestKeys, got)
	}
	for _, k := range keys {
		if s.cache.Contains(k) && !s.DigestContains(k) {
			t.Errorf("resident key %q missing from digest (false negative)", k)
		}
	}
}
