// Package cacheserver implements the Proteus cache server: a TCP server
// speaking the memcached text protocol over an LRU+TTL store, with the
// paper's built-in counting Bloom filter digest. The digest is updated
// on every item link/unlink (the paper's do_item_link / do_item_unlink
// hooks) and exported through the two reserved keys the paper defines:
// a get for "SET_BLOOM_FILTER" snapshots the filter, and a get for
// "BLOOM_FILTER" retrieves the snapshot bit array as ordinary value
// data, so any stock memcached client can fetch a digest.
package cacheserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/memproto"
	"proteus/internal/telemetry"
)

// Reserved keys from the paper's memcached modification.
const (
	// KeySnapshotDigest triggers a digest snapshot when fetched.
	KeySnapshotDigest = "SET_BLOOM_FILTER"
	// KeyFetchDigest retrieves the latest snapshot bytes when fetched.
	KeyFetchDigest = "BLOOM_FILTER"
)

// Version is reported by the "version" command.
const Version = "proteus-0.9.0"

// DefaultDigestParams sizes the digest per the paper's evaluation
// (512 KB of counters is "negligible false positive and false negative
// rate" for the per-server working set; Fig. 7/8).
var DefaultDigestParams = bloom.Params{
	Counters:    1 << 20,
	CounterBits: 4,
	Hashes:      4,
	Mode:        bloom.Saturate,
}

// Config configures a Server.
type Config struct {
	// Cache configures the backing store. OnLink/OnUnlink must be nil;
	// the server installs the digest hooks itself.
	Cache cache.Config
	// Digest configures the counting Bloom filter; zero value selects
	// DefaultDigestParams.
	Digest bloom.Params
	// Logger receives connection errors; nil disables logging.
	Logger *log.Logger
	// WrapConn, when non-nil, wraps every accepted connection before it
	// is served. The fault injector installs its server-side fault
	// points here (faultinject.Injector.WrapConn).
	WrapConn func(net.Conn) net.Conn
	// Telemetry receives per-command counters
	// (proteus_server_commands_total{cmd}). Optional.
	Telemetry *telemetry.Registry
	// Tracer records one span per served connection. Optional.
	Tracer *telemetry.Tracer
}

// Server is one cache node. Create with New, start with Serve or
// ListenAndServe, stop with Close.
type Server struct {
	cache    *cache.Cache
	logger   *log.Logger
	wrapConn func(net.Conn) net.Conn
	tracer   *telemetry.Tracer

	// cmdCounters is keyed by command and read-only after New, so the
	// per-request lookup takes no lock; cmdOther absorbs unknown
	// commands.
	cmdCounters map[memproto.Command]*telemetry.Counter
	cmdOther    *telemetry.Counter

	digestMu sync.Mutex
	digest   *bloom.CountingFilter
	snapshot []byte

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	startTime time.Time
}

// New builds a Server. The digest hooks are wired into the cache so the
// filter stays exactly consistent with cache contents.
func New(cfg Config) (*Server, error) {
	if cfg.Cache.OnLink != nil || cfg.Cache.OnUnlink != nil {
		return nil, errors.New("cacheserver: Cache.OnLink/OnUnlink are reserved for the digest")
	}
	params := cfg.Digest
	if params == (bloom.Params{}) {
		params = DefaultDigestParams
	}
	digest, err := bloom.NewCounting(params)
	if err != nil {
		return nil, fmt.Errorf("cacheserver: digest: %w", err)
	}
	s := &Server{
		digest:    digest,
		logger:    cfg.Logger,
		wrapConn:  cfg.WrapConn,
		tracer:    cfg.Tracer,
		conns:     make(map[net.Conn]struct{}),
		startTime: time.Now(),
	}
	cmds := cfg.Telemetry.Counter("proteus_server_commands_total",
		"memcached commands served, by command", "cmd")
	s.cmdCounters = make(map[memproto.Command]*telemetry.Counter)
	for _, cmd := range []memproto.Command{
		memproto.CmdGet, memproto.CmdGets, memproto.CmdCas,
		memproto.CmdAppend, memproto.CmdPrepend,
		memproto.CmdIncr, memproto.CmdDecr,
		memproto.CmdSet, memproto.CmdAdd, memproto.CmdReplace,
		memproto.CmdDelete, memproto.CmdTouch, memproto.CmdStats,
		memproto.CmdFlushAll, memproto.CmdVersion, memproto.CmdQuit,
	} {
		s.cmdCounters[cmd] = cmds.With(cmd.String())
	}
	s.cmdOther = cmds.With("other")
	cacheCfg := cfg.Cache
	cacheCfg.OnLink = s.onLink
	cacheCfg.OnUnlink = s.onUnlink
	if cacheCfg.Clock == nil {
		// The server is the live-plane wall-clock boundary; the cache
		// itself requires an explicit time source.
		cacheCfg.Clock = time.Now
	}
	s.cache = cache.New(cacheCfg)
	return s, nil
}

func (s *Server) onLink(key string) {
	s.digestMu.Lock()
	s.digest.Insert(key)
	s.digestMu.Unlock()
}

func (s *Server) onUnlink(key string) {
	s.digestMu.Lock()
	s.digest.Delete(key)
	s.digestMu.Unlock()
}

// Cache exposes the backing store (used by in-process harnesses and
// tests; network clients use the protocol).
func (s *Server) Cache() *cache.Cache { return s.cache }

// SnapshotDigest takes a digest snapshot and returns its encoding; the
// same bytes become fetchable via the BLOOM_FILTER key.
func (s *Server) SnapshotDigest() ([]byte, error) {
	s.digestMu.Lock()
	defer s.digestMu.Unlock()
	data, err := s.digest.Snapshot().MarshalBinary()
	if err != nil {
		return nil, err
	}
	s.snapshot = data
	return data, nil
}

// DigestContains queries the live counting filter (in-process fast path
// for the simulator; network callers fetch snapshots instead).
func (s *Server) DigestContains(key string) bool {
	s.digestMu.Lock()
	defer s.digestMu.Unlock()
	return s.digest.Contains(key)
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cacheserver: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after a
// graceful Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close() // refusing the listener; its close error is moot
		return errors.New("cacheserver: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("cacheserver: accept: %w", err)
		}
		if s.wrapConn != nil {
			conn = s.wrapConn(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing accept during shutdown
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting, closes all connections, and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close() // shutdown teardown is best-effort
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// connState is the per-connection scratch: buffered reader/writer plus
// the protocol parser with its reusable line/field/request scratch.
// Pooling it means a connection churn storm (the load generator's
// reconnect loops, chaos tests) does not allocate fresh 4 KB buffers
// per accept.
type connState struct {
	br *bufio.Reader
	bw *bufio.Writer
	p  *memproto.Parser
}

var connStatePool = sync.Pool{
	New: func() interface{} {
		cs := &connState{
			br: bufio.NewReader(nil),
			bw: bufio.NewWriter(nil),
		}
		cs.p = memproto.NewParser(cs.br)
		return cs
	},
}

func (s *Server) serveConn(conn net.Conn) {
	sp := s.tracer.Start("server.conn")
	sp.SetAttr("remote", conn.RemoteAddr().String())
	cs := connStatePool.Get().(*connState)
	cs.br.Reset(conn)
	cs.bw.Reset(conn)
	defer func() {
		sp.End()
		conn.Close()
		// Drop the conn reference before pooling so the pool does not
		// pin closed sockets.
		cs.br.Reset(nil)
		cs.bw.Reset(nil)
		connStatePool.Put(cs)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br, bw := cs.br, cs.bw
	for {
		req, err := cs.p.Next()
		if err != nil {
			if err == io.EOF {
				return
			}
			if errors.Is(err, memproto.ErrProtocol) || errors.Is(err, memproto.ErrBadKey) || errors.Is(err, memproto.ErrTooLarge) {
				// Report and drop the connection: after a framing error
				// the stream position is unreliable.
				_ = memproto.WriteClientError(bw, err.Error())
				_ = bw.Flush()
			}
			s.logf("conn %s: %v", conn.RemoteAddr(), err)
			return
		}
		quit, err := s.handle(bw, req)
		if err != nil {
			s.logf("conn %s: write: %v", conn.RemoteAddr(), err)
			return
		}
		// Flush unless more pipelined input is already buffered.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if quit {
			_ = bw.Flush()
			return
		}
	}
}

// handle executes one request, writing the response. The bool result
// requests connection shutdown (quit).
func (s *Server) handle(bw *bufio.Writer, req *memproto.Request) (bool, error) {
	if c, ok := s.cmdCounters[req.Command]; ok {
		c.Inc()
	} else {
		s.cmdOther.Inc()
	}
	switch req.Command {
	case memproto.CmdGet, memproto.CmdGets:
		withCAS := req.Command == memproto.CmdGets
		for _, key := range req.Keys {
			if err := s.handleGetKey(bw, key, withCAS); err != nil {
				return false, err
			}
		}
		return false, memproto.WriteEnd(bw)
	case memproto.CmdCas:
		var reply string
		switch s.cache.CompareAndSwap(req.Key(), req.Data, req.Exptime, req.CAS) {
		case cache.CASStored:
			reply = memproto.ReplyStored
		case cache.CASExists:
			reply = memproto.ReplyExists
		default:
			reply = memproto.ReplyNotFound
		}
		if req.NoReply {
			return false, nil
		}
		return false, memproto.WriteReply(bw, reply)
	case memproto.CmdAppend, memproto.CmdPrepend:
		var stored bool
		if req.Command == memproto.CmdAppend {
			stored = s.cache.Append(req.Key(), req.Data)
		} else {
			stored = s.cache.Prepend(req.Key(), req.Data)
		}
		if req.NoReply {
			return false, nil
		}
		reply := memproto.ReplyStored
		if !stored {
			reply = memproto.ReplyNotStored
		}
		return false, memproto.WriteReply(bw, reply)
	case memproto.CmdIncr, memproto.CmdDecr:
		var (
			next  uint64
			found bool
			err   error
		)
		if req.Command == memproto.CmdIncr {
			next, found, err = s.cache.Increment(req.Key(), req.Delta)
		} else {
			next, found, err = s.cache.Decrement(req.Key(), req.Delta)
		}
		if req.NoReply {
			return false, nil
		}
		switch {
		case err != nil:
			return false, memproto.WriteClientError(bw, "cannot increment or decrement non-numeric value")
		case !found:
			return false, memproto.WriteReply(bw, memproto.ReplyNotFound)
		default:
			return false, memproto.WriteNumber(bw, next)
		}
	case memproto.CmdSet, memproto.CmdAdd, memproto.CmdReplace:
		stored := s.store(req)
		if req.NoReply {
			return false, nil
		}
		reply := memproto.ReplyStored
		if !stored {
			reply = memproto.ReplyNotStored
		}
		return false, memproto.WriteReply(bw, reply)
	case memproto.CmdDelete:
		deleted := s.cache.Delete(req.Key())
		if req.NoReply {
			return false, nil
		}
		reply := memproto.ReplyDeleted
		if !deleted {
			reply = memproto.ReplyNotFound
		}
		return false, memproto.WriteReply(bw, reply)
	case memproto.CmdTouch:
		touched := s.cache.Touch(req.Key(), expDuration(req.Exptime))
		if req.NoReply {
			return false, nil
		}
		reply := memproto.ReplyTouched
		if !touched {
			reply = memproto.ReplyNotFound
		}
		return false, memproto.WriteReply(bw, reply)
	case memproto.CmdStats:
		return false, memproto.WriteStats(bw, s.statsMap())
	case memproto.CmdFlushAll:
		s.cache.FlushAll()
		if req.NoReply {
			return false, nil
		}
		return false, memproto.WriteReply(bw, memproto.ReplyOK)
	case memproto.CmdVersion:
		return false, memproto.WriteReply(bw, "VERSION "+Version)
	case memproto.CmdQuit:
		return true, nil
	default:
		return false, memproto.WriteReply(bw, memproto.ReplyError)
	}
}

//lint:hotpath per-key GET handling
func (s *Server) handleGetKey(bw *bufio.Writer, key string, withCAS bool) error {
	switch key {
	case KeySnapshotDigest:
		//lint:allow hotalloc the digest admin key is off the data path; marshaling the snapshot allocates by design
		data, err := s.SnapshotDigest()
		if err != nil {
			return memproto.WriteServerError(bw, "digest snapshot failed")
		}
		return memproto.WriteValue(bw, memproto.Value{
			Key: key,
			//lint:allow hotalloc the digest admin key is off the data path; formatting its one-line reply per request is fine
			Data: []byte(strconv.Itoa(len(data))),
		})
	case KeyFetchDigest:
		s.digestMu.Lock()
		data := s.snapshot
		s.digestMu.Unlock()
		if data == nil {
			return nil // no snapshot taken: behaves as a miss
		}
		return memproto.WriteValue(bw, memproto.Value{Key: key, Data: data})
	default:
		if withCAS {
			value, cas, ok := s.cache.GetWithCAS(key)
			if !ok {
				return nil
			}
			return memproto.WriteValue(bw, memproto.Value{Key: key, Data: value, CAS: cas, HasCAS: true})
		}
		value, ok := s.cache.Get(key)
		if !ok {
			return nil
		}
		return memproto.WriteValue(bw, memproto.Value{Key: key, Data: value})
	}
}

func (s *Server) store(req *memproto.Request) bool {
	ttl := expDuration(req.Exptime)
	switch req.Command {
	case memproto.CmdAdd:
		return s.cache.Add(req.Key(), req.Data, ttl)
	case memproto.CmdReplace:
		return s.cache.Replace(req.Key(), req.Data, ttl)
	default:
		s.cache.Set(req.Key(), req.Data, ttl)
		return true
	}
}

// expDuration maps memcached exptime seconds to a cache TTL. A negative
// exptime expires immediately (memcached semantics).
func expDuration(exptime int64) time.Duration {
	if exptime < 0 {
		return -time.Nanosecond
	}
	return time.Duration(exptime) * time.Second
}

func (s *Server) statsMap() map[string]string {
	st := s.cache.Stats()
	s.digestMu.Lock()
	digestKeys := s.digest.Keys()
	saturated := s.digest.SaturatedCounters()
	s.digestMu.Unlock()
	return map[string]string{
		"version":           Version,
		"uptime":            strconv.FormatInt(int64(time.Since(s.startTime).Seconds()), 10),
		"curr_items":        strconv.Itoa(st.Items),
		"bytes":             strconv.FormatInt(st.Bytes, 10),
		"get_hits":          strconv.FormatUint(st.Hits, 10),
		"get_misses":        strconv.FormatUint(st.Misses, 10),
		"cmd_set":           strconv.FormatUint(st.Sets, 10),
		"delete_hits":       strconv.FormatUint(st.Deletes, 10),
		"evictions":         strconv.FormatUint(st.Evictions, 10),
		"expired_unfetched": strconv.FormatUint(st.Expirations, 10),
		"digest_keys":       strconv.Itoa(digestKeys),
		"digest_saturated":  strconv.Itoa(saturated),
	}
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
