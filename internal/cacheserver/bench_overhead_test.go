package cacheserver

import (
	"bufio"
	"io"
	"testing"

	"proteus/internal/memproto"
	"proteus/internal/telemetry"
	"proteus/internal/testutil"
)

// benchGetServer builds a server with one resident key and returns a
// ready GET request against it, bypassing the TCP layer so the
// benchmark isolates the handle() hot path.
func benchGetServer(b *testing.B, reg *telemetry.Registry) (*Server, *memproto.Request) {
	b.Helper()
	s, err := New(Config{Digest: testutil.SmallDigest(), Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	s.cache.Set("bench:key", make([]byte, 256), 0)
	return s, &memproto.Request{Command: memproto.CmdGet, Keys: []string{"bench:key"}}
}

func benchmarkHandleGet(b *testing.B, reg *telemetry.Registry) {
	s, req := benchGetServer(b, reg)
	bw := bufio.NewWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.handle(bw, req); err != nil {
			b.Fatal(err)
		}
	}
}

// The overhead guard for the telemetry subsystem: the GET hot path with
// a live registry must stay within noise of the uninstrumented path
// (the counters are precomputed at New and atomically incremented, so
// the delta is one map lookup plus one atomic add). The measured gap is
// recorded in DESIGN.md §7.
func BenchmarkHandleGetTelemetry(b *testing.B) {
	benchmarkHandleGet(b, telemetry.NewRegistry())
}

func BenchmarkHandleGetNoTelemetry(b *testing.B) {
	benchmarkHandleGet(b, nil)
}
