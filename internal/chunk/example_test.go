package chunk_test

import (
	"bytes"
	"fmt"

	"proteus/internal/chunk"
)

// Split a 10 KB page into the paper's 4 KB basic units and put it back
// together.
func ExampleSplit() {
	page := bytes.Repeat([]byte("wiki"), 2560) // 10240 bytes
	m, pieces := chunk.Split(page, chunk.DefaultPieceSize)
	fmt.Printf("pieces: %d (last %d bytes)\n", m.Pieces(), len(pieces[len(pieces)-1]))
	for i := range pieces {
		fmt.Println(chunk.PieceKey("page:42", i))
	}
	whole, err := chunk.Reassemble(m, pieces)
	fmt.Println(bytes.Equal(whole, page), err)
	// Output:
	// pieces: 3 (last 2048 bytes)
	// page:42#p0
	// page:42#p1
	// page:42#p2
	// true <nil>
}
