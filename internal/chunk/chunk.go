// Package chunk implements the paper's fixed-size-piece model (Section
// II, Assumptions): "Each object in cache is of the same size. Even
// though the size of pages or user accounts would vary considerably,
// they can be divided into fixed-size pieces. One piece is considered
// as the basic unit of objects in cache."
//
// A large value is split into PieceSize-byte pieces, each stored under
// its own derived key. Piece keys hash independently, so one large page
// spreads across cache servers exactly like the paper's basic units —
// which is what makes the Balance Condition's per-key-space guarantee
// translate into per-byte balance. The original key stores a small
// manifest describing the split.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// DefaultPieceSize is the paper's 4 KB basic unit.
const DefaultPieceSize = 4096

// pieceSep separates the parent key from the piece index. Keys
// containing this suffix pattern are reserved for the chunk layer.
const pieceSep = "#p"

// PieceKey derives the cache key of piece i of a parent key.
func PieceKey(parent string, i int) string {
	return parent + pieceSep + strconv.Itoa(i)
}

// ParsePieceKey reports whether key is a piece key, returning its
// parent and index.
func ParsePieceKey(key string) (parent string, index int, ok bool) {
	at := strings.LastIndex(key, pieceSep)
	if at < 0 {
		return "", 0, false
	}
	idx, err := strconv.Atoi(key[at+len(pieceSep):])
	if err != nil || idx < 0 {
		return "", 0, false
	}
	return key[:at], idx, true
}

// Manifest describes one split object.
type Manifest struct {
	// Size is the original value length in bytes.
	Size int
	// PieceSize is the split unit; the final piece may be shorter.
	PieceSize int
}

// Pieces returns the number of pieces the object was split into.
func (m Manifest) Pieces() int {
	if m.PieceSize <= 0 {
		return 0
	}
	return (m.Size + m.PieceSize - 1) / m.PieceSize
}

// manifestMagic marks encoded manifests ("PMAN").
const manifestMagic = 0x504d414e

// manifestLen is the fixed encoding size.
const manifestLen = 12

// Encode serialises the manifest for storage under the parent key.
func (m Manifest) Encode() []byte {
	out := make([]byte, manifestLen)
	binary.BigEndian.PutUint32(out[0:], manifestMagic)
	binary.BigEndian.PutUint32(out[4:], uint32(m.Size))
	binary.BigEndian.PutUint32(out[8:], uint32(m.PieceSize))
	return out
}

// IsManifest reports whether a cached value is an encoded manifest.
func IsManifest(data []byte) bool {
	return len(data) == manifestLen && binary.BigEndian.Uint32(data) == manifestMagic
}

// DecodeManifest parses an encoded manifest.
func DecodeManifest(data []byte) (Manifest, error) {
	if !IsManifest(data) {
		return Manifest{}, errors.New("chunk: not a manifest")
	}
	m := Manifest{
		Size:      int(binary.BigEndian.Uint32(data[4:])),
		PieceSize: int(binary.BigEndian.Uint32(data[8:])),
	}
	if m.Size < 0 || m.PieceSize <= 0 {
		return Manifest{}, fmt.Errorf("chunk: invalid manifest %+v", m)
	}
	return m, nil
}

// Split cuts data into pieces of pieceSize bytes (the final piece may
// be shorter) and returns the manifest. pieceSize <= 0 selects
// DefaultPieceSize. The returned slices alias data.
func Split(data []byte, pieceSize int) (Manifest, [][]byte) {
	if pieceSize <= 0 {
		pieceSize = DefaultPieceSize
	}
	m := Manifest{Size: len(data), PieceSize: pieceSize}
	pieces := make([][]byte, 0, m.Pieces())
	for off := 0; off < len(data); off += pieceSize {
		end := off + pieceSize
		if end > len(data) {
			end = len(data)
		}
		pieces = append(pieces, data[off:end])
	}
	return m, pieces
}

// Reassemble concatenates pieces and validates them against the
// manifest.
func Reassemble(m Manifest, pieces [][]byte) ([]byte, error) {
	if len(pieces) != m.Pieces() {
		return nil, fmt.Errorf("chunk: have %d pieces, manifest says %d", len(pieces), m.Pieces())
	}
	out := make([]byte, 0, m.Size)
	for i, p := range pieces {
		wantLen := m.PieceSize
		if i == len(pieces)-1 {
			wantLen = m.Size - m.PieceSize*(len(pieces)-1)
		}
		if len(p) != wantLen {
			return nil, fmt.Errorf("chunk: piece %d is %d bytes, want %d", i, len(p), wantLen)
		}
		out = append(out, p...)
	}
	return out, nil
}
