package chunk

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPieceKeyRoundTrip(t *testing.T) {
	cases := []struct {
		parent string
		index  int
	}{
		{"page:1", 0},
		{"page:1", 17},
		{"weird#pkey", 3}, // parent containing the separator
	}
	for _, c := range cases {
		key := PieceKey(c.parent, c.index)
		parent, index, ok := ParsePieceKey(key)
		if !ok || parent != c.parent || index != c.index {
			t.Errorf("ParsePieceKey(%q) = %q,%d,%v want %q,%d", key, parent, index, ok, c.parent, c.index)
		}
	}
	for _, notPiece := range []string{"page:1", "page#px", "page#p-1", ""} {
		if _, _, ok := ParsePieceKey(notPiece); ok {
			t.Errorf("ParsePieceKey(%q) accepted", notPiece)
		}
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	m := Manifest{Size: 10000, PieceSize: 4096}
	data := m.Encode()
	if !IsManifest(data) {
		t.Fatal("encoded manifest not recognised")
	}
	back, err := DecodeManifest(data)
	if err != nil || back != m {
		t.Fatalf("DecodeManifest = %+v, %v", back, err)
	}
	if m.Pieces() != 3 {
		t.Fatalf("Pieces = %d, want 3", m.Pieces())
	}
	if _, err := DecodeManifest([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
	// A real page body must never look like a manifest.
	if IsManifest(bytes.Repeat([]byte{'a'}, manifestLen)) {
		t.Fatal("plain text mistaken for manifest")
	}
}

func TestSplitReassembleRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 4095, 4096, 4097, 8192, 10000} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		m, pieces := Split(data, 4096)
		if m.Size != size || m.PieceSize != 4096 {
			t.Fatalf("manifest = %+v", m)
		}
		back, err := Reassemble(m, pieces)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("size %d: reassembly mismatch", size)
		}
	}
}

func TestSplitDefaultPieceSize(t *testing.T) {
	m, _ := Split(make([]byte, 100), 0)
	if m.PieceSize != DefaultPieceSize {
		t.Fatalf("PieceSize = %d", m.PieceSize)
	}
}

func TestReassembleValidation(t *testing.T) {
	data := make([]byte, 9000)
	m, pieces := Split(data, 4096)
	if _, err := Reassemble(m, pieces[:2]); err == nil {
		t.Fatal("missing piece accepted")
	}
	bad := append([][]byte{}, pieces...)
	bad[1] = bad[1][:100]
	if _, err := Reassemble(m, bad); err == nil {
		t.Fatal("truncated piece accepted")
	}
}

// Property: split/reassemble is the identity for any data and piece
// size.
func TestQuickSplitRoundTrip(t *testing.T) {
	prop := func(data []byte, rawSize uint16) bool {
		pieceSize := int(rawSize%8192) + 1
		m, pieces := Split(data, pieceSize)
		back, err := Reassemble(m, pieces)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
