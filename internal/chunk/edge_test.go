package chunk

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// A zero-length object is legal: zero pieces, an empty reassembly, and
// a manifest that still round-trips — the frontend stores it as a bare
// manifest with no piece keys at all.
func TestZeroLengthObject(t *testing.T) {
	m, pieces := Split(nil, 4096)
	if m.Size != 0 || m.Pieces() != 0 || len(pieces) != 0 {
		t.Fatalf("Split(nil) = %+v with %d pieces", m, len(pieces))
	}
	back, err := Reassemble(m, nil)
	if err != nil {
		t.Fatalf("Reassemble of empty object: %v", err)
	}
	if len(back) != 0 {
		t.Fatalf("empty object reassembled to %d bytes", len(back))
	}
	decoded, err := DecodeManifest(m.Encode())
	if err != nil || decoded != m {
		t.Fatalf("empty manifest round trip = %+v, %v", decoded, err)
	}
	// Handing it a spurious piece must fail, not silently concatenate.
	if _, err := Reassemble(m, [][]byte{{1}}); err == nil {
		t.Fatal("spurious piece accepted for a zero-length object")
	}
}

// An object smaller than one piece stays a single (short) piece.
func TestSinglePieceObject(t *testing.T) {
	data := []byte("tiny")
	m, pieces := Split(data, 4096)
	if m.Pieces() != 1 || len(pieces) != 1 {
		t.Fatalf("want exactly one piece, got %d (manifest %+v)", len(pieces), m)
	}
	if !bytes.Equal(pieces[0], data) {
		t.Fatal("single piece does not equal the object")
	}
	back, err := Reassemble(m, pieces)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("Reassemble = %q, %v", back, err)
	}
}

// When the size is an exact multiple of the piece size, the final piece
// is full-length — the "may be shorter" clause must not shave it.
func TestExactMultipleBoundary(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 3*512)
	m, pieces := Split(data, 512)
	if m.Pieces() != 3 {
		t.Fatalf("Pieces = %d, want 3", m.Pieces())
	}
	if got := len(pieces[2]); got != 512 {
		t.Fatalf("final piece is %d bytes, want 512", got)
	}
	if _, err := Reassemble(m, pieces); err != nil {
		t.Fatal(err)
	}
}

// Every shape of missing piece must be rejected: none at all, one
// dropped from the middle, and a piece replaced by an empty slice.
func TestMissingPieceError(t *testing.T) {
	data := make([]byte, 3000)
	m, pieces := Split(data, 1024)
	if _, err := Reassemble(m, nil); err == nil {
		t.Error("nil piece list accepted")
	}
	gap := append(append([][]byte{}, pieces[:1]...), pieces[2:]...)
	if _, err := Reassemble(m, gap); err == nil {
		t.Error("dropped middle piece accepted")
	}
	hole := append([][]byte{}, pieces...)
	hole[1] = nil
	if _, err := Reassemble(m, hole); err == nil {
		t.Error("nil middle piece accepted")
	}
}

// Pieces() must be defensive about manifests that never came from
// Split: non-positive piece sizes yield zero pieces rather than a
// divide-by-zero or a negative count.
func TestManifestDegenerateFields(t *testing.T) {
	if n := (Manifest{Size: 100, PieceSize: 0}).Pieces(); n != 0 {
		t.Errorf("PieceSize 0: Pieces = %d", n)
	}
	if n := (Manifest{Size: 100, PieceSize: -4}).Pieces(); n != 0 {
		t.Errorf("negative PieceSize: Pieces = %d", n)
	}
	// An on-the-wire manifest with a zero piece size is corrupt.
	raw := make([]byte, manifestLen)
	binary.BigEndian.PutUint32(raw[0:], manifestMagic)
	binary.BigEndian.PutUint32(raw[4:], 100)
	binary.BigEndian.PutUint32(raw[8:], 0)
	if _, err := DecodeManifest(raw); err == nil {
		t.Error("zero-piece-size manifest decoded")
	}
}

// FuzzManifestRoundTrip drives DecodeManifest with arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to exactly
// the input (the encoding is canonical) with a sane piece count.
func FuzzManifestRoundTrip(f *testing.F) {
	f.Add(Manifest{Size: 0, PieceSize: 4096}.Encode())
	f.Add(Manifest{Size: 10000, PieceSize: 4096}.Encode())
	f.Add(Manifest{Size: 1, PieceSize: 1}.Encode())
	f.Add([]byte("PMANxxxxyyyy"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.PieceSize <= 0 || m.Size < 0 {
			t.Fatalf("decoder accepted degenerate manifest %+v", m)
		}
		if m.Pieces() < 0 {
			t.Fatalf("negative piece count for %+v", m)
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Fatalf("re-encode of %+v differs from accepted input %x", m, data)
		}
	})
}

// FuzzSplitRoundTrip asserts the core identity on arbitrary data and
// piece sizes, including the degenerate empty object.
func FuzzSplitRoundTrip(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add([]byte("hello world"), 4)
	f.Add(bytes.Repeat([]byte{9}, 4096), 4096)
	f.Fuzz(func(t *testing.T, data []byte, pieceSize int) {
		m, pieces := Split(data, pieceSize)
		back, err := Reassemble(m, pieces)
		if err != nil {
			t.Fatalf("Reassemble of fresh split: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("round trip lost data")
		}
	})
}
