package provision

import "time"

// Static keeps a fixed fleet — the paper's Table II "Static" row, and
// the energy ceiling every dynamic policy is measured against.
type Static struct {
	// N is the fleet size to hold.
	N int
}

// Name implements Policy.
func (s Static) Name() string { return "static" }

// Decide implements Policy.
func (s Static) Decide(State) Target {
	return Target{Servers: s.N, Reason: "hold"}
}

// Planned follows a precomputed per-slot plan — the open-loop
// rate-proportional stand-in (sim.PlanProvisioning) wrapped as a
// Policy. Slots past the end of the plan hold its last value.
type Planned struct {
	// Plan is the per-slot fleet size (required, non-empty).
	Plan []int
	// PolicyName labels the plan ("rate-plan", "static-plan", ...);
	// empty defaults to "planned".
	PolicyName string
}

// Name implements Policy.
func (p Planned) Name() string {
	if p.PolicyName == "" {
		return "planned"
	}
	return p.PolicyName
}

// Decide implements Policy.
func (p Planned) Decide(s State) Target {
	if len(p.Plan) == 0 {
		return Target{Servers: s.Active, Reason: "hold"}
	}
	i := s.Slot
	if i < 0 {
		i = 0
	}
	if i >= len(p.Plan) {
		i = len(p.Plan) - 1
	}
	return Target{Servers: p.Plan[i], Reason: "plan"}
}

// Oracle provisions with perfect knowledge of the offered-load curve:
// each slot gets exactly enough servers for the true peak rate over the
// slot plus a lookahead window, so ramps are pre-provisioned before the
// load arrives. It is the lower bound a reactive policy chases — not
// realizable outside the simulator, where the curve is known.
type Oracle struct {
	// Rate returns the true offered load (req/s) at a time relative to
	// the measurement epoch (required).
	Rate func(time.Duration) float64
	// SlotWidth is the provisioning period (required).
	SlotWidth time.Duration
	// Lookahead extends the scan past the slot's end so boots complete
	// before the demand they serve (default: one slot).
	Lookahead time.Duration
	// PerServerCapacity is the sustainable req/s per server (required).
	PerServerCapacity float64
	// Min and Max clamp the fleet.
	Min, Max int
}

// Name implements Policy.
func (o Oracle) Name() string { return "oracle" }

// Decide implements Policy.
func (o Oracle) Decide(s State) Target {
	look := o.Lookahead
	if look <= 0 {
		look = o.SlotWidth
	}
	span := o.SlotWidth + look
	peak := 0.0
	const samples = 20
	for i := 0; i <= samples; i++ {
		t := s.Now + span*time.Duration(i)/samples
		if r := o.Rate(t); r > peak {
			peak = r
		}
	}
	n := clamp(ceilDiv(peak, o.PerServerCapacity), o.Min, o.Max)
	reason := "hold"
	switch {
	case n > s.Active:
		reason = "grow:lookahead"
	case n < s.Active:
		reason = "shed:lookahead"
	}
	return Target{Servers: n, Reason: reason}
}

// LegacyController is the original two-threshold heuristic that shipped
// as cluster.Controller before this package existed: feed-forward from
// the measured rate, grow one past it on a bound violation, shed one
// server per slot when the delay is comfortably under the reference.
// cluster.Controller delegates here verbatim, so the historical
// behaviour stays available (and bit-identical) as a comparison
// baseline; new callers should prefer DelayFeedback.
type LegacyController struct {
	// Reference is the target high-percentile response time.
	Reference time.Duration
	// Bound is the delay SLO.
	Bound time.Duration
	// PerServerCapacity estimates sustainable req/s per server.
	PerServerCapacity float64
	// Min and Max clamp the fleet.
	Min, Max int
}

// Name implements Policy.
func (l LegacyController) Name() string { return "legacy-feedback" }

// Decide implements Policy.
func (l LegacyController) Decide(s State) Target {
	current := s.Active
	if current < l.Min {
		current = l.Min
	}
	feedForward := current
	if l.PerServerCapacity > 0 {
		feedForward = ceilDiv(s.Rate, l.PerServerCapacity)
	}

	next := current
	reason := "hold"
	switch {
	case s.Delay > l.Bound:
		// SLO violated: grow immediately, at least one server above
		// the feed-forward estimate.
		next = max(current+1, feedForward+1)
		reason = "grow:slo"
	case s.Delay > l.Reference:
		// Above reference but within bound: hold, or follow the
		// feed-forward term upward only.
		next = max(current, feedForward)
		if next > current {
			reason = "grow:rate"
		}
	default:
		// Comfortable: shed at most one server per slot toward the
		// feed-forward target (hysteresis against oscillation).
		if feedForward < current {
			next = current - 1
			reason = "shed"
		} else {
			next = max(current, feedForward)
			if next > current {
				reason = "grow:rate"
			}
		}
	}
	return Target{Servers: clamp(next, l.Min, l.Max), Reason: reason}
}
