package provision

import "proteus/internal/telemetry"

// Instrumented wraps a Policy with telemetry: per-decision gauges for
// the loop inputs and output, and a per-reason decision counter, all
// labelled with the policy name so sweeps over multiple policies stay
// distinguishable on one registry.
type Instrumented struct {
	inner Policy

	delayGauge  *telemetry.Gauge
	rateGauge   *telemetry.Gauge
	targetGauge *telemetry.Gauge
	decisions   *telemetry.CounterVec
}

// Instrument wraps p with decision gauges and counters on reg (which
// may be nil: telemetry's detached instruments make the wrapper free).
func Instrument(p Policy, reg *telemetry.Registry) *Instrumented {
	name := p.Name()
	return &Instrumented{
		inner: p,
		delayGauge: reg.Gauge("proteus_provision_delay_seconds",
			"last slot's high-percentile response time fed to the policy", "policy").With(name),
		rateGauge: reg.Gauge("proteus_provision_rate",
			"last slot's request rate (req/s) fed to the policy", "policy").With(name),
		targetGauge: reg.Gauge("proteus_provision_target_nodes",
			"fleet size the policy asked for in the last slot", "policy").With(name),
		decisions: reg.Counter("proteus_provision_decisions_total",
			"policy decisions by reason tag", "policy", "reason"),
	}
}

// Name implements Policy.
func (i *Instrumented) Name() string { return i.inner.Name() }

// Decide implements Policy.
func (i *Instrumented) Decide(s State) Target {
	t := i.inner.Decide(s)
	i.delayGauge.Set(s.Delay.Seconds())
	i.rateGauge.Set(s.Rate)
	i.targetGauge.Set(float64(t.Servers))
	i.decisions.With(i.inner.Name(), t.Reason).Inc()
	return t
}
