package provision

import (
	"math"
	"time"

	"proteus/internal/power"
)

// FeedbackConfig parametrises the delay-feedback controller. The zero
// value is unusable; NewDelayFeedback fills paper-flavoured defaults
// (0.4 s reference under a 0.5 s bound, as the evaluation describes).
type FeedbackConfig struct {
	// Reference is the target high-percentile response time the loop
	// regulates to (paper: 0.4 s, chosen to tolerate overshoot under
	// the bound).
	Reference time.Duration
	// Bound is the delay SLO (paper: 0.5 s). A measurement above it
	// bypasses the PI loop and grows immediately.
	Bound time.Duration
	// PerServerCapacity (req/s) is the feed-forward term's capacity
	// estimate. 0 disables feed-forward (pure feedback).
	PerServerCapacity float64
	// Min and Max clamp the fleet.
	Min, Max int

	// Kp and Ki are the proportional and integral gains applied to the
	// relative delay error (Delay-Reference)/Reference. The control
	// output u = Kp*err + integral scales the feed-forward fleet:
	// n = ceil(ff * (1+u)), so the integral term effectively learns
	// how far the true per-server capacity sits from the estimate.
	Kp, Ki float64
	// IntegralMin and IntegralMax clamp the integral term
	// (anti-windup). The lower clamp bounds how far below the
	// feed-forward estimate the loop may settle.
	IntegralMin, IntegralMax float64
	// Deadband is the relative-error band around the reference inside
	// which the fleet holds (scale-ups demanded by the feed-forward
	// term still pass). Prevents slot-to-slot thrash on measurement
	// noise.
	Deadband float64
	// DwellSlots is the minimum number of slots after any fleet change
	// before the next scale-down. Scale-ups are never dwell-gated: the
	// SLO always wins.
	DwellSlots int
	// MaxStepDown bounds servers shed per decision (default 1): a
	// misread valley costs one transition, not half the fleet.
	MaxStepDown int

	// Model prices the energy term; SlotWidth and DwellSlots set the
	// horizon a shed is guaranteed to last (the dwell). A scale-down
	// is issued only when the projected joule savings over that
	// horizon beat MigrationCostJ.
	Model power.Model
	// SlotWidth is the decision period (required for the energy gate;
	// 0 falls back to State.SlotWidth per decision).
	SlotWidth time.Duration
	// MigrationCostJ estimates the joules one scale-down transition
	// burns: the digest broadcast, the on-demand migration traffic and
	// database refills, and the boot energy if the shed is reversed.
	MigrationCostJ float64
}

// DefaultMigrationCostJ prices one scale-down transition for the
// default server model: roughly a boot's worth of peak draw (the cost
// of being wrong) plus the migration window's extra work.
const DefaultMigrationCostJ = 1500

// NewDelayFeedback returns the controller with paper defaults for a
// fleet of up to n servers at the given capacity estimate.
func NewDelayFeedback(n int, perServerCapacity float64) *DelayFeedback {
	return &DelayFeedback{cfg: FeedbackConfig{
		Reference:         400 * time.Millisecond,
		Bound:             500 * time.Millisecond,
		PerServerCapacity: perServerCapacity,
		Min:               1,
		Max:               n,
		Kp:                0.6,
		Ki:                0.15,
		IntegralMin:       -0.6,
		IntegralMax:       1.0,
		Deadband:          0.1,
		DwellSlots:        2,
		MaxStepDown:       1,
		Model:             power.DefaultServer,
		MigrationCostJ:    DefaultMigrationCostJ,
	}}
}

// NewDelayFeedbackConfig builds a controller from an explicit config,
// filling only the zero-valued loop-shape fields with defaults (gains,
// clamps, dwell, step, migration cost). Reference, Bound, capacity and
// Min/Max are taken as given.
func NewDelayFeedbackConfig(cfg FeedbackConfig) *DelayFeedback {
	def := NewDelayFeedback(cfg.Max, cfg.PerServerCapacity).cfg
	if cfg.Kp == 0 {
		cfg.Kp = def.Kp
	}
	if cfg.Ki == 0 {
		cfg.Ki = def.Ki
	}
	if cfg.IntegralMin == 0 {
		cfg.IntegralMin = def.IntegralMin
	}
	if cfg.IntegralMax == 0 {
		cfg.IntegralMax = def.IntegralMax
	}
	if cfg.Deadband == 0 {
		cfg.Deadband = def.Deadband
	}
	if cfg.DwellSlots == 0 {
		cfg.DwellSlots = def.DwellSlots
	}
	if cfg.MaxStepDown == 0 {
		cfg.MaxStepDown = def.MaxStepDown
	}
	if cfg.Model == (power.Model{}) {
		cfg.Model = def.Model
	}
	if cfg.MigrationCostJ == 0 {
		cfg.MigrationCostJ = def.MigrationCostJ
	}
	return &DelayFeedback{cfg: cfg}
}

// DelayFeedback is the real delay-feedback controller: PI feedback on
// the measured high-percentile delay against the reference, rate
// feed-forward, deadband + dwell-time hysteresis, and an energy gate
// that only sheds a server when the projected savings beat the
// migration cost. It keeps loop state across slots; one instance per
// controlled fleet.
type DelayFeedback struct {
	cfg FeedbackConfig

	integral   float64
	lastChange int  // slot of the last actuated fleet change
	changed    bool // a change has happened (lastChange is meaningful)
}

// Name implements Policy.
func (d *DelayFeedback) Name() string { return "delay-feedback" }

// Config returns the controller's effective configuration.
func (d *DelayFeedback) Config() FeedbackConfig { return d.cfg }

// Integral exposes the integral term (tests, gauges).
func (d *DelayFeedback) Integral() float64 { return d.integral }

// Decide implements Policy. The loop, in order:
//
//  1. Bound violation: grow immediately past the feed-forward term,
//     bleed the integral (the backlog that caused the violation is not
//     steady-state evidence).
//  2. PI update on the relative error, frozen while a drain defers
//     actuation (no windup against a gate).
//  3. Desired fleet = ceil(feed-forward * (1+u)), u = Kp*err+integral:
//     the loop learns the true capacity the estimate missed.
//  4. Deadband: inside it, only rate-demanded growth passes.
//  5. Scale-down passes dwell, drain, and energy gates, one server
//     (MaxStepDown) at a time.
func (d *DelayFeedback) Decide(s State) Target {
	cfg := d.cfg
	current := clamp(s.Active, cfg.Min, cfg.Max)
	ff := ceilDiv(s.Rate, cfg.PerServerCapacity)

	// SLO violation: react now, reason later.
	if s.Delay > cfg.Bound {
		next := clamp(max(current+1, ff+1), cfg.Min, cfg.Max)
		// Keep only the non-negative half of the integral: the
		// violation invalidates any learned "capacity is better than
		// estimated" credit.
		if d.integral < 0 {
			d.integral = 0
		}
		if next != current {
			d.lastChange, d.changed = s.Slot, true
		}
		return Target{Servers: next, Reason: "grow:slo"}
	}

	err := 0.0
	if cfg.Reference > 0 {
		err = float64(s.Delay-cfg.Reference) / float64(cfg.Reference)
	}
	// Anti-windup: while a drain is deferring actuation, or the fleet
	// is pinned at a clamp the error is pushing past, integrating
	// would bank error the plant can never answer for.
	pinnedLow := current <= cfg.Min && err < 0
	pinnedHigh := current >= cfg.Max && err > 0
	if !(s.Draining && err < 0) && !pinnedLow && !pinnedHigh {
		d.integral += cfg.Ki * err
		d.integral = math.Max(cfg.IntegralMin, math.Min(cfg.IntegralMax, d.integral))
	}
	u := cfg.Kp*err + d.integral

	base := ff
	if base < 1 {
		// No feed-forward signal (unknown capacity or idle slot):
		// scale the current fleet instead.
		base = current
	}
	desired := int(math.Ceil(float64(base) * (1 + u)))
	desired = clamp(desired, cfg.Min, cfg.Max)

	// Deadband: near the reference, hold — except for growth the
	// feed-forward term demands (rate outran the fleet).
	if math.Abs(err) <= cfg.Deadband {
		next := max(current, clamp(ff, cfg.Min, cfg.Max))
		if next > current {
			d.lastChange, d.changed = s.Slot, true
			return Target{Servers: next, Reason: "grow:rate"}
		}
		return Target{Servers: current, Reason: "hold"}
	}

	switch {
	case desired > current:
		d.lastChange, d.changed = s.Slot, true
		return Target{Servers: desired, Reason: "grow:delay"}
	case desired < current:
		if d.changed && s.Slot-d.lastChange < cfg.DwellSlots {
			return Target{Servers: current, Reason: "hold:dwell"}
		}
		if s.Draining {
			return Target{Servers: current, Reason: "defer:drain"}
		}
		step := cfg.MaxStepDown
		if step < 1 {
			step = 1
		}
		next := current - min(step, current-desired)
		next = clamp(next, cfg.Min, cfg.Max)
		if next == current {
			return Target{Servers: current, Reason: "hold"}
		}
		if !d.shedWorthIt(current-next, s) {
			return Target{Servers: current, Reason: "hold:energy"}
		}
		d.lastChange, d.changed = s.Slot, true
		return Target{Servers: next, Reason: "shed"}
	default:
		return Target{Servers: current, Reason: "hold"}
	}
}

// shedWorthIt applies the energy term: shedding k servers is worth a
// transition only when the joules saved over the dwell horizon (the
// minimum time the lower level is guaranteed to last) beat the
// migration cost. With very short slots the guaranteed savings shrink
// below the transition's price and the controller correctly refuses to
// churn.
func (d *DelayFeedback) shedWorthIt(k int, s State) bool {
	cfg := d.cfg
	slot := cfg.SlotWidth
	if slot <= 0 {
		slot = s.SlotWidth
	}
	if slot <= 0 || cfg.MigrationCostJ <= 0 {
		return true // energy term disabled
	}
	dwell := cfg.DwellSlots
	if dwell < 1 {
		dwell = 1
	}
	horizon := slot * time.Duration(dwell)
	// A shed server drops from (at least) idle draw to standby draw.
	savedW := cfg.Model.Watts(true, 0) - cfg.Model.Watts(false, 0)
	savedJ := float64(k) * savedW * horizon.Seconds()
	return savedJ > cfg.MigrationCostJ
}
