// Package provision owns the cluster's provisioning policy: deciding
// n(t), the number of active cache servers per slot. The paper's power
// proportionality hinges on this decision, but its delay-feedback
// controller is unpublished; this package makes the policy surface
// explicit so implementations can be compared on the same traces (see
// cmd/proteus-policy) instead of asserted.
//
// A Policy is a pure, replay-deterministic function of the State it is
// handed each provisioning slot — it never reads the wall clock or
// global randomness (enforced by proteuslint's determinism analyzers).
// Actuation is the caller's job: the simulator's runner and the live
// cluster.Supervisor both gate a scale-down while a previous
// transition window is still draining, so no policy can power off a
// server that old owners still need for on-demand migration.
package provision

import (
	"math"
	"time"
)

// State is one provisioning slot's measurement snapshot, assembled by
// the actuator (sim runner or cluster supervisor) at the slot boundary
// and handed to the Policy.
type State struct {
	// Slot is the 0-based index of the decision (the slot that is
	// beginning). Policies that follow precomputed plans index by it;
	// stateful policies use it for dwell-time accounting.
	Slot int
	// Now is the slot boundary's time relative to the measurement
	// epoch (warmup end in the simulator, supervisor start live).
	Now time.Duration
	// SlotWidth is the decision period.
	SlotWidth time.Duration
	// Delay is the ending slot's measured high-percentile response
	// time (the telemetry histograms' p99.9 by default).
	Delay time.Duration
	// Rate is the ending slot's measured request rate in req/s.
	Rate float64
	// Active is the currently provisioned fleet size (the level the
	// last decision asked for, whether or not its transition has
	// finished).
	Active int
	// InTransition reports that a smooth-transition window is open in
	// either direction.
	InTransition bool
	// Draining reports that a scale-down's TTL window is still open:
	// dying servers are serving hot data for on-demand migration and
	// must not be powered off early. Actuators gate scale-downs on
	// this; policies should avoid treating a deferred decision as a
	// fleet change (integral windup, dwell restarts).
	Draining bool
}

// Target is a Policy's decision for the beginning slot.
type Target struct {
	// Servers is the fleet size to provision.
	Servers int
	// Reason is a short, deterministic tag explaining the decision
	// ("hold", "grow:slo", "shed", "defer:drain", ...). It feeds the
	// decision event stream and the policy harness, never control
	// flow.
	Reason string
}

// Policy decides the fleet size for the next slot from the ending
// slot's measurements. Implementations may keep state across calls
// (integral terms, dwell counters) but must be deterministic: the same
// State sequence yields the same Target sequence.
type Policy interface {
	// Name identifies the policy in tables, events, and metrics.
	Name() string
	// Decide returns the fleet target for the beginning slot.
	Decide(State) Target
}

// clamp bounds n to [min, max] (max < min returns min).
func clamp(n, min, max int) int {
	if n < min {
		return min
	}
	if max >= min && n > max {
		return max
	}
	return n
}

// ceilDiv returns ceil(rate/perServer) as a server count, 0 when the
// capacity is unknown (<= 0).
func ceilDiv(rate, perServer float64) int {
	if perServer <= 0 || rate <= 0 {
		return 0
	}
	return int(math.Ceil(rate / perServer))
}
