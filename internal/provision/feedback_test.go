package provision

import (
	"math"
	"testing"
	"time"

	"proteus/internal/power"
)

const (
	testCap  = 100.0
	testSlot = 30 * time.Second
)

// plantDelay is a coarse open-loop plant: the measured p99.9 as a
// function of fleet utilisation. The bands straddle the controller's
// reference (400 ms) and bound (500 ms) so every regime is reachable.
func plantDelay(rate float64, n int) time.Duration {
	util := rate / (float64(n) * testCap)
	switch {
	case util < 0.7:
		return 100 * time.Millisecond
	case util < 0.9:
		return 380 * time.Millisecond // inside the deadband
	case util <= 1.0:
		return 460 * time.Millisecond // above reference, under bound
	default:
		return 600 * time.Millisecond // SLO violation
	}
}

// drive runs the controller against the plant for the given rate
// trajectory, one Decide per slot, and returns the fleet and delay
// trajectories.
func drive(t *testing.T, d *DelayFeedback, start int, rates []float64) (fleet []int, delays []time.Duration) {
	t.Helper()
	n := start
	for slot, rate := range rates {
		delay := plantDelay(rate, n)
		got := d.Decide(State{
			Slot:      slot,
			Now:       time.Duration(slot) * testSlot,
			SlotWidth: testSlot,
			Delay:     delay,
			Rate:      rate,
			Active:    n,
		})
		n = got.Servers
		fleet = append(fleet, n)
		delays = append(delays, delay)
	}
	return fleet, delays
}

func flips(fleet []int, start int) int {
	prev, count := start, 0
	for _, n := range fleet {
		if n != prev {
			count++
		}
		prev = n
	}
	return count
}

// TestFeedbackDynamics drives the controller through step, ramp, and
// flash-crowd trajectories and checks recovery time, tracking, and the
// no-thrash bound.
func TestFeedbackDynamics(t *testing.T) {
	cases := []struct {
		name     string
		start    int
		rates    func() []float64
		maxViol  int // slots with delay > bound
		maxFlips int
		check    func(t *testing.T, fleet []int, delays []time.Duration)
	}{
		{
			name:  "step up recovers fast",
			start: 2,
			rates: func() []float64 {
				r := make([]float64, 12)
				for i := range r {
					r[i] = 800
				}
				return r
			},
			maxViol:  2,
			maxFlips: 4,
			check: func(t *testing.T, fleet []int, delays []time.Duration) {
				// After recovery the delay must stay under the bound.
				for i := 3; i < len(delays); i++ {
					if delays[i] > 500*time.Millisecond {
						t.Errorf("slot %d: delay %v still violates the bound", i, delays[i])
					}
				}
				if last := fleet[len(fleet)-1]; last < 8 {
					t.Errorf("settled fleet %d cannot carry 800 req/s", last)
				}
			},
		},
		{
			name:  "diurnal ramp tracks without thrash",
			start: 5,
			rates: func() []float64 {
				r := make([]float64, 48)
				for i := range r {
					phase := 2 * math.Pi * float64(i) / 48
					r[i] = 500 - 300*math.Cos(phase) // valley 200, peak 800
				}
				return r
			},
			maxViol:  4,
			maxFlips: 24,
			check: func(t *testing.T, fleet []int, delays []time.Duration) {
				lo, hi := fleet[0], fleet[0]
				for _, n := range fleet {
					lo, hi = min(lo, n), max(hi, n)
				}
				if hi < 8 {
					t.Errorf("peak fleet %d never provisioned for 800 req/s", hi)
				}
				if lo > 5 {
					t.Errorf("valley fleet %d never shed toward 200 req/s", lo)
				}
			},
		},
		{
			name:  "flash crowd grows then returns",
			start: 4,
			rates: func() []float64 {
				r := make([]float64, 24)
				for i := range r {
					r[i] = 300
					if i >= 4 && i < 8 {
						r[i] = 900 // the surge
					}
				}
				return r
			},
			maxViol:  2,
			maxFlips: 12,
			check: func(t *testing.T, fleet []int, delays []time.Duration) {
				surgePeak := 0
				for i := 4; i < 8; i++ {
					surgePeak = max(surgePeak, fleet[i])
				}
				if surgePeak < 9 {
					t.Errorf("surge fleet %d cannot carry 900 req/s", surgePeak)
				}
				if last := fleet[len(fleet)-1]; last > 5 {
					t.Errorf("fleet %d never returned after the surge (want <= 5)", last)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := NewDelayFeedback(10, testCap)
			rates := c.rates()
			fleet, delays := drive(t, d, c.start, rates)
			viol := 0
			for _, dl := range delays {
				if dl > 500*time.Millisecond {
					viol++
				}
			}
			if viol > c.maxViol {
				t.Errorf("%d SLO-violation slots, want <= %d (fleet %v)", viol, c.maxViol, fleet)
			}
			if f := flips(fleet, c.start); f > c.maxFlips {
				t.Errorf("%d fleet changes, want <= %d (thrash) (fleet %v)", f, c.maxFlips, fleet)
			}
			if c.check != nil {
				c.check(t, fleet, delays)
			}
		})
	}
}

func TestFeedbackBoundViolationGrowsImmediately(t *testing.T) {
	d := NewDelayFeedback(10, testCap)
	got := d.Decide(State{Slot: 0, SlotWidth: testSlot, Delay: 600 * time.Millisecond, Rate: 450, Active: 3})
	if got.Servers != 6 || got.Reason != "grow:slo" {
		t.Fatalf("got %d (%s), want 6 (grow:slo)", got.Servers, got.Reason)
	}
}

func TestFeedbackScaleDownDeferredWhileDraining(t *testing.T) {
	d := NewDelayFeedback(10, testCap)
	// Comfortable: 5 servers at 200 req/s and 100 ms p99.9 wants a shed,
	// but the previous window is still draining.
	s := State{Slot: 3, SlotWidth: testSlot, Delay: 100 * time.Millisecond, Rate: 200, Active: 5, InTransition: true, Draining: true}
	got := d.Decide(s)
	if got.Servers != 5 || got.Reason != "defer:drain" {
		t.Fatalf("draining: got %d (%s), want 5 (defer:drain)", got.Servers, got.Reason)
	}
	// Same measurement with the drain finished: the shed proceeds, one
	// server at a time.
	s.Slot, s.InTransition, s.Draining = 4, false, false
	got = d.Decide(s)
	if got.Servers != 4 || got.Reason != "shed" {
		t.Fatalf("drained: got %d (%s), want 4 (shed)", got.Servers, got.Reason)
	}
}

func TestFeedbackDwellBlocksBackToBackSheds(t *testing.T) {
	d := NewDelayFeedback(10, testCap)
	s := State{SlotWidth: testSlot, Delay: 100 * time.Millisecond, Rate: 200, Active: 8}
	s.Slot = 0
	if got := d.Decide(s); got.Reason != "shed" {
		t.Fatalf("slot 0: got %s, want shed", got.Reason)
	}
	s.Slot, s.Active = 1, 7
	if got := d.Decide(s); got.Reason != "hold:dwell" {
		t.Fatalf("slot 1: got %s, want hold:dwell", got.Reason)
	}
	s.Slot = 2
	if got := d.Decide(s); got.Reason != "shed" {
		t.Fatalf("slot 2: got %s, want shed after the dwell", got.Reason)
	}
}

func TestFeedbackEnergyGate(t *testing.T) {
	// With 1-second slots the dwell horizon saves ~98 J per shed server
	// — far under the 1500 J migration cost, so the controller refuses
	// to churn.
	d := NewDelayFeedbackConfig(FeedbackConfig{
		Reference: 400 * time.Millisecond, Bound: 500 * time.Millisecond,
		PerServerCapacity: testCap, Min: 1, Max: 10,
		SlotWidth: time.Second,
	})
	s := State{Slot: 0, SlotWidth: time.Second, Delay: 100 * time.Millisecond, Rate: 200, Active: 5}
	if got := d.Decide(s); got.Reason != "hold:energy" {
		t.Fatalf("got %s, want hold:energy", got.Reason)
	}
	// Disabling the energy term (MigrationCostJ < 0) lets the same shed
	// through.
	d2 := NewDelayFeedbackConfig(FeedbackConfig{
		Reference: 400 * time.Millisecond, Bound: 500 * time.Millisecond,
		PerServerCapacity: testCap, Min: 1, Max: 10,
		SlotWidth: time.Second, MigrationCostJ: -1,
	})
	if got := d2.Decide(s); got.Reason != "shed" {
		t.Fatalf("energy term disabled: got %s, want shed", got.Reason)
	}
}

func TestFeedbackAntiWindupAtClamp(t *testing.T) {
	d := NewDelayFeedback(10, testCap)
	// Pinned at Min with persistent negative error: the integral must
	// not wind up.
	s := State{SlotWidth: testSlot, Delay: 100 * time.Millisecond, Rate: 50, Active: 1}
	for slot := 0; slot < 20; slot++ {
		s.Slot = slot
		d.Decide(s)
	}
	if got := d.Integral(); got != 0 {
		t.Errorf("integral wound up to %v while pinned at Min", got)
	}
	// And the clamps bound it everywhere else.
	d2 := NewDelayFeedback(10, testCap)
	s2 := State{SlotWidth: testSlot, Delay: 100 * time.Millisecond, Rate: 300, Active: 10}
	for slot := 0; slot < 50; slot++ {
		s2.Slot = slot
		got := d2.Decide(s2)
		s2.Active = got.Servers
	}
	cfg := d2.Config()
	if i := d2.Integral(); i < cfg.IntegralMin || i > cfg.IntegralMax {
		t.Errorf("integral %v escaped [%v, %v]", i, cfg.IntegralMin, cfg.IntegralMax)
	}
}

func TestFeedbackDefaults(t *testing.T) {
	d := NewDelayFeedback(10, testCap)
	cfg := d.Config()
	if cfg.Reference != 400*time.Millisecond || cfg.Bound != 500*time.Millisecond {
		t.Errorf("paper reference/bound not defaulted: %+v", cfg)
	}
	if cfg.Model != power.DefaultServer {
		t.Errorf("power model not defaulted")
	}
	if d.Name() != "delay-feedback" {
		t.Errorf("name = %q", d.Name())
	}
	// NewDelayFeedbackConfig keeps explicit fields and fills loop shape.
	c2 := NewDelayFeedbackConfig(FeedbackConfig{
		Reference: 300 * time.Millisecond, Bound: time.Second,
		PerServerCapacity: 42, Min: 2, Max: 7,
	}).Config()
	if c2.Reference != 300*time.Millisecond || c2.Max != 7 {
		t.Errorf("explicit fields overwritten: %+v", c2)
	}
	if c2.Kp == 0 || c2.DwellSlots == 0 || c2.MigrationCostJ == 0 {
		t.Errorf("loop-shape defaults not filled: %+v", c2)
	}
}
