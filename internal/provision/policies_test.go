package provision

import (
	"testing"
	"time"
)

func TestStatic(t *testing.T) {
	p := Static{N: 7}
	if p.Name() != "static" {
		t.Errorf("name = %q", p.Name())
	}
	for _, s := range []State{{}, {Active: 3, Delay: time.Second, Rate: 1e6}} {
		if got := p.Decide(s); got.Servers != 7 {
			t.Errorf("Decide(%+v) = %d, want 7", s, got.Servers)
		}
	}
}

func TestPlanned(t *testing.T) {
	p := Planned{Plan: []int{4, 6, 8}}
	if p.Name() != "planned" {
		t.Errorf("name = %q", p.Name())
	}
	if got := (Planned{PolicyName: "rate-plan"}).Name(); got != "rate-plan" {
		t.Errorf("name = %q", got)
	}
	cases := []struct {
		slot, want int
	}{
		{-3, 4}, {0, 4}, {1, 6}, {2, 8},
		{5, 8}, // past the end: hold the last value
	}
	for _, c := range cases {
		if got := p.Decide(State{Slot: c.slot}).Servers; got != c.want {
			t.Errorf("slot %d: got %d, want %d", c.slot, got, c.want)
		}
	}
	if got := (Planned{}).Decide(State{Active: 5}).Servers; got != 5 {
		t.Errorf("empty plan: got %d, want hold at 5", got)
	}
}

func TestOracleLookahead(t *testing.T) {
	// A step from 100 to 900 req/s at t=70s. The oracle must
	// pre-provision while still inside the low-rate region, because its
	// lookahead window reaches the step.
	rate := func(t time.Duration) float64 {
		if t >= 70*time.Second {
			return 900
		}
		return 100
	}
	o := Oracle{Rate: rate, SlotWidth: 30 * time.Second, PerServerCapacity: 100, Min: 1, Max: 10}

	if got := o.Decide(State{Now: 0, Active: 1}); got.Servers != 1 {
		// Slot [0,30s] + lookahead to 60s: the step is just out of reach.
		t.Errorf("t=0: got %d, want 1", got.Servers)
	}
	got := o.Decide(State{Now: 30 * time.Second, Active: 1})
	if got.Servers != 9 || got.Reason != "grow:lookahead" {
		t.Errorf("t=30s: got %d (%s), want 9 (grow:lookahead)", got.Servers, got.Reason)
	}
	got = o.Decide(State{Now: 90 * time.Second, Active: 9})
	if got.Servers != 9 {
		t.Errorf("t=90s: got %d, want hold at 9", got.Servers)
	}
}

// TestLegacyEquivalence pins the historical cluster.Controller rule the
// shim delegates to (the same cases cluster/controller_test.go checks
// through the deprecated API).
func TestLegacyEquivalence(t *testing.T) {
	l := LegacyController{
		Reference:         400 * time.Millisecond,
		Bound:             500 * time.Millisecond,
		PerServerCapacity: 100,
		Min:               1,
		Max:               10,
	}
	cases := []struct {
		name       string
		active     int
		delay      time.Duration
		rate       float64
		want       int
		wantReason string
	}{
		{"bound violated grows past feed-forward", 5, 600 * time.Millisecond, 450, 6, "grow:slo"},
		{"above reference within bound holds", 5, 450 * time.Millisecond, 450, 5, "hold"},
		{"comfortable sheds one per slot", 7, 100 * time.Millisecond, 250, 6, "shed"},
		{"comfortable but rate demands growth", 4, 100 * time.Millisecond, 820, 9, "grow:rate"},
		{"clamped at max", 9, 600 * time.Millisecond, 2500, 10, "grow:slo"},
		{"clamped at min", 1, 100 * time.Millisecond, 10, 1, "hold"},
	}
	for _, c := range cases {
		got := l.Decide(State{Active: c.active, Delay: c.delay, Rate: c.rate})
		if got.Servers != c.want || got.Reason != c.wantReason {
			t.Errorf("%s: Decide(%d, %v, %.0f) = %d (%s), want %d (%s)",
				c.name, c.active, c.delay, c.rate, got.Servers, got.Reason, c.want, c.wantReason)
		}
	}
}
