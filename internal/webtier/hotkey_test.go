package webtier

import (
	"testing"

	"proteus/internal/hotkey"
	"proteus/internal/testutil/clustertest"
)

// newHotEnv builds a cluster with hot-key replication at depth 2 and,
// optionally, the online promotion tracker.
func newHotEnv(t *testing.T, nodes, active int, tracker *hotkey.TrackerConfig) *env {
	t.Helper()
	return buildEnv(t,
		clustertest.Opts{Nodes: nodes, InitialActive: active, HotReplicas: 2, HotTracker: tracker},
		envShape{pages: 400})
}

// hotCandidate finds a key whose two rings resolve to distinct owners
// at the current active size.
func hotCandidate(t *testing.T, e *env) (key string, owners []int) {
	t.Helper()
	for i := 0; i < e.corpus.Pages(); i++ {
		k := e.corpus.Key(i)
		if e.coord.IsHot(k) {
			continue
		}
		a, _, _ := e.coord.RouteRing(k, 0)
		b, _, _ := e.coord.RouteRing(k, 1)
		if a != b {
			return k, []int{a, b}
		}
	}
	t.Fatal("no key with two distinct owners")
	return "", nil
}

// Promotion must replicate the key to every owner, writes must fan
// out, and after the primary crashes the replica still serves from
// cache — the whole point of the hot set.
func TestHotKeyPromotionReplicatesAndSurvivesCrash(t *testing.T) {
	e := newHotEnv(t, 4, 4, nil)
	key, owners := hotCandidate(t, e)

	if _, _, err := e.front.Fetch(key); err != nil { // db fill on the primary
		t.Fatal(err)
	}
	hot, err := e.coord.Promote(key)
	if err != nil || !hot {
		t.Fatalf("promote: hot=%v err=%v", hot, err)
	}
	if e.coord.RingsFor(key) != 2 {
		t.Fatalf("hot key resolves at depth %d, want 2", e.coord.RingsFor(key))
	}
	for _, o := range owners {
		if !e.locals[o].Server().Cache().Contains(key) {
			t.Fatalf("owner %d missing the copy after promotion", o)
		}
	}

	// A write must land on both owners.
	fresh := []byte("updated-by-hotkey-test")
	if err := e.front.Update(key, fresh); err != nil {
		t.Fatal(err)
	}
	for _, o := range owners {
		got, ok := e.locals[o].Server().Cache().Get(key)
		if !ok || string(got) != string(fresh) {
			t.Fatalf("owner %d holds (%q, %v) after fan-out write", o, got, ok)
		}
	}

	// Crash the primary: the replica serves the hot key from cache.
	if err := e.locals[owners[0]].PowerOff(); err != nil {
		t.Fatal(err)
	}
	data, src, err := e.front.Fetch(key)
	if err != nil {
		t.Fatalf("fetch after primary crash: %v", err)
	}
	if src != SourceNewCache || string(data) != string(fresh) {
		t.Fatalf("got (%q, %s), want the replica's cached copy", data, src)
	}
	if e.front.Stats().ReplicaHits == 0 {
		t.Fatal("replica hit not counted")
	}
}

// A fan-out write that misses an owner must auto-demote the key: the
// unreached replica may hold the previous value, so the key must stop
// resolving at depth 2.
func TestHotKeyWriteFailureAutoDemotes(t *testing.T) {
	e := newHotEnv(t, 4, 4, nil)
	key, owners := hotCandidate(t, e)

	if _, _, err := e.front.Fetch(key); err != nil {
		t.Fatal(err)
	}
	if hot, err := e.coord.Promote(key); err != nil || !hot {
		t.Fatalf("promote: hot=%v err=%v", hot, err)
	}
	if err := e.locals[owners[1]].PowerOff(); err != nil {
		t.Fatal(err)
	}
	// The write reaches the primary but not the dead replica.
	if err := e.front.Update(key, []byte("post-crash value")); err != nil {
		t.Fatal(err)
	}
	if e.coord.IsHot(key) {
		t.Fatal("key still hot after a failed fan-out write")
	}
	// Routing is back to the single healthy primary.
	data, src, err := e.front.Fetch(key)
	if err != nil || src != SourceNewCache || string(data) != "post-crash value" {
		t.Fatalf("primary did not serve the demoted key: (%q, %s, %v)", data, src, err)
	}
}

// With the tracker enabled, a skewed read stream promotes its head key
// without any explicit Promote call, and the copies land on both
// owners — the online pipeline end to end.
func TestOnlineTrackerPromotesHotKey(t *testing.T) {
	e := newHotEnv(t, 4, 4, &hotkey.TrackerConfig{Window: 64, MaxHot: 2, PromoteShare: 0.2})
	key, owners := hotCandidate(t, e)

	// Two windows of a stream dominated by one key: the first window
	// decides the promotion, the second proves stability.
	for i := 0; i < 128; i++ {
		k := key
		if i%4 == 3 { // background noise
			k = e.corpus.Key(i % e.corpus.Pages())
		}
		if _, _, err := e.front.Fetch(k); err != nil {
			t.Fatal(err)
		}
	}
	if !e.coord.IsHot(key) {
		t.Fatalf("tracker never promoted the dominant key (hot set %v)", e.coord.HotKeys())
	}
	for _, o := range owners {
		if !e.locals[o].Server().Cache().Contains(key) {
			t.Fatalf("owner %d missing the copy after online promotion", o)
		}
	}
}
