package webtier

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

// FetchMany must resolve a mixed batch — some keys cached, some cold —
// with the cached subset served from the pipelined per-owner batches
// and the cold subset taking the database path with write-through.
func TestFetchManyMixedResidency(t *testing.T) {
	e := newEnv(t, 3, 3)
	var keys []string
	for i := 0; i < 12; i++ {
		keys = append(keys, e.corpus.Key(i))
	}
	// Warm half the batch.
	for i := 0; i < 6; i++ {
		if _, _, err := e.front.Fetch(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := e.front.Stats()

	got, err := e.front.FetchMany(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("FetchMany resolved %d of %d keys", len(got), len(keys))
	}
	for i, k := range keys {
		if string(got[k]) != string(e.corpus.Page(i)) {
			t.Fatalf("key %q: wrong body", k)
		}
	}
	after := e.front.Stats()
	if hits := after.Hits - before.Hits; hits != 6 {
		t.Errorf("batched fetch recorded %d hits, want 6", hits)
	}
	if db := after.DBFetches - before.DBFetches; db != 6 {
		t.Errorf("batched fetch hit the database %d times, want 6", db)
	}

	// The whole batch is now resident: a second call is pure cache.
	before = e.front.Stats()
	if _, err := e.front.FetchMany(keys...); err != nil {
		t.Fatal(err)
	}
	after = e.front.Stats()
	if db := after.DBFetches - before.DBFetches; db != 0 {
		t.Errorf("fully warm batch still hit the database %d times", db)
	}
	if hits := after.Hits - before.Hits; hits != uint64(len(keys)) {
		t.Errorf("fully warm batch recorded %d hits, want %d", hits, len(keys))
	}
}

// Duplicate keys in the request resolve to one fetch each and still
// appear once in the result.
func TestFetchManyDuplicateKeys(t *testing.T) {
	e := newEnv(t, 2, 2)
	k := e.corpus.Key(3)
	got, err := e.front.FetchMany(k, k, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[k]) != string(e.corpus.Page(3)) {
		t.Fatalf("FetchMany(dup) = %v", got)
	}
	if db := e.front.Stats().DBFetches; db != 1 {
		t.Errorf("duplicate keys caused %d DB fetches, want 1", db)
	}
}

// Chunked objects resolve through FetchMany too: the manifest arrives
// in the owner batch and the pieces are gathered with per-owner
// pipelined batches.
func TestFetchManyChunked(t *testing.T) {
	e := newChunkedEnv(t, 4, 4, 64)
	var keys []string
	for i := 0; i < 4; i++ {
		keys = append(keys, e.corpus.Key(i))
	}
	// Warm so manifests and pieces are resident.
	for _, k := range keys {
		if _, _, err := e.front.Fetch(k); err != nil {
			t.Fatal(err)
		}
	}
	before := e.front.Stats().DBFetches
	got, err := e.front.FetchMany(keys...)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if string(got[k]) != string(e.corpus.Page(i)) {
			t.Fatalf("key %q: wrong reassembled body", k)
		}
	}
	if db := e.front.Stats().DBFetches - before; db != 0 {
		t.Errorf("warm chunked batch hit the database %d times", db)
	}
}

// The /pages route serves a JSON map of the batched fetch.
func TestHTTPPagesBatch(t *testing.T) {
	e := newEnv(t, 2, 2)
	k0, k1 := e.corpus.Key(0), e.corpus.Key(1)
	req := httptest.NewRequest("GET", fmt.Sprintf("/pages?keys=%s,%s", k0, k1), nil)
	rec := httptest.NewRecorder()
	e.front.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /pages = %d: %s", rec.Code, rec.Body.String())
	}
	var got map[string][]byte
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if string(got[k0]) != string(e.corpus.Page(0)) || string(got[k1]) != string(e.corpus.Page(1)) {
		t.Fatalf("/pages returned wrong bodies")
	}

	rec = httptest.NewRecorder()
	e.front.ServeHTTP(rec, httptest.NewRequest("GET", "/pages", nil))
	if rec.Code != 400 {
		t.Errorf("GET /pages without keys = %d, want 400", rec.Code)
	}
}
