package webtier

import (
	"testing"

	"proteus/internal/testutil/clustertest"
)

// newReplicatedEnv builds a cluster with r-way replication enabled.
func newReplicatedEnv(t *testing.T, nodes, active, replicas int) *env {
	t.Helper()
	return buildEnv(t,
		clustertest.Opts{Nodes: nodes, InitialActive: active, Replicas: replicas},
		envShape{pages: 400})
}

func TestReplicatedWriteThroughStoresAllCopies(t *testing.T) {
	e := newReplicatedEnv(t, 4, 4, 2)
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every key must be resident on each of its distinct owners.
	for i := 0; i < e.corpus.Pages(); i++ {
		key := e.corpus.Key(i)
		for _, owner := range e.coord.WriteOwners(key) {
			if !e.locals[owner].Server().Cache().Contains(key) {
				t.Fatalf("key %s missing from replica owner %d", key, owner)
			}
		}
	}
}

// The fault-tolerance story: after one server crashes (not a planned
// transition — its data is simply gone and it answers nothing), keys
// with a surviving replica are still served from cache.
func TestReplicaServesAfterCrash(t *testing.T) {
	e := newReplicatedEnv(t, 4, 4, 2)
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Crash node 3 without telling the coordinator.
	crashed := 3
	if err := e.locals[crashed].PowerOff(); err != nil {
		t.Fatal(err)
	}

	servedFromCache, replicated := 0, 0
	for i := 0; i < e.corpus.Pages(); i++ {
		key := e.corpus.Key(i)
		primary, _, _ := e.coord.RouteRing(key, 0)
		secondary, _, _ := e.coord.RouteRing(key, 1)
		if primary != crashed || secondary == crashed || secondary == primary {
			continue // only keys whose primary died but replica survives
		}
		replicated++
		_, source, err := e.front.Fetch(key)
		if err != nil {
			t.Fatalf("fetch %s after crash: %v", key, err)
		}
		if source == SourceNewCache {
			servedFromCache++
		}
	}
	if replicated == 0 {
		t.Fatal("no keys with a surviving replica; test broken")
	}
	if servedFromCache < replicated*9/10 {
		t.Fatalf("only %d/%d crash-affected keys served from the replica", servedFromCache, replicated)
	}
	if s := e.front.Stats(); s.ReplicaHits == 0 {
		t.Fatal("ReplicaHits not counted")
	}
}

// Keys whose entire replica set died fall back to the database and are
// re-replicated by the write-through.
func TestCrashFallsBackToDatabaseAndRepairs(t *testing.T) {
	e := newReplicatedEnv(t, 2, 2, 2)
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	// With 2 nodes and 2 rings, crash node 1: keys owned by node 1 on
	// both rings lose all copies.
	if err := e.locals[1].PowerOff(); err != nil {
		t.Fatal(err)
	}
	key := ""
	for i := 0; i < e.corpus.Pages(); i++ {
		k := e.corpus.Key(i)
		owners := e.coord.WriteOwners(k)
		if len(owners) == 1 && owners[0] == 1 {
			key = k
			break
		}
	}
	if key == "" {
		t.Skip("no key with all copies on the crashed node")
	}
	_, source, err := e.front.Fetch(key)
	if err != nil {
		t.Fatal(err)
	}
	if source != SourceDatabase {
		t.Fatalf("fetch after total loss served from %v, want database", source)
	}
}

// Replication composes with smooth transitions: scale down and verify
// on-demand migration still works per ring.
func TestReplicatedSmoothTransition(t *testing.T) {
	e := newReplicatedEnv(t, 3, 3, 2)
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := e.front.Stats().DBFetches
	if err := e.coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	extra := e.front.Stats().DBFetches - before
	if extra > uint64(e.corpus.Pages()/20) {
		t.Fatalf("replicated transition leaked %d fetches to the database", extra)
	}
	e.timer.Fire()
	if e.locals[2].Running() {
		t.Fatal("dying server still up after TTL")
	}
}
