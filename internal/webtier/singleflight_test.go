package webtier

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCollapses(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	shared := atomic.Int32{}
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err, wasShared := g.do("k", func() ([]byte, error) {
				calls.Add(1)
				<-release
				return []byte("v"), nil
			})
			if err != nil || string(data) != "v" {
				t.Errorf("do = %q, %v", data, err)
			}
			if wasShared {
				shared.Add(1)
			}
		}()
	}
	// Give all goroutines time to join the flight, then release.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn called %d times, want 1", got)
	}
	if got := shared.Load(); got != 9 {
		t.Fatalf("shared count = %d, want 9", got)
	}
}

func TestFlightGroupPropagatesErrors(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, err, _ := g.do("k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The flight is cleared: a later call runs fn again.
	data, err, _ := g.do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(data) != "ok" {
		t.Fatalf("second do = %q, %v", data, err)
	}
}

func TestFlightGroupDistinctKeysRunConcurrently(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		key := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.do(key, func() ([]byte, error) {
				calls.Add(1)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 4 {
		t.Fatalf("fn called %d times, want 4", got)
	}
}

// End to end: a cold hot-key stampede reaches the database exactly once.
func TestDogPileProtection(t *testing.T) {
	e := newEnv(t, 2, 2)
	key := e.corpus.Key(5)
	const stampede = 16
	var wg sync.WaitGroup
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.front.Fetch(key); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s := e.front.Stats()
	if s.DBFetches != 1 {
		t.Fatalf("stampede reached the database %d times, want 1", s.DBFetches)
	}
	if s.Collapsed == 0 {
		t.Fatal("no collapsed fetches recorded")
	}
}
