package webtier

import (
	"bytes"
	"testing"

	"proteus/internal/chunk"
	"proteus/internal/testutil/clustertest"
)

// newChunkedEnv builds an environment with big pages and the piece
// layer enabled.
func newChunkedEnv(t *testing.T, nodes, active, pieceSize int) *env {
	t.Helper()
	return buildEnv(t,
		clustertest.Opts{Nodes: nodes, InitialActive: active},
		// Big pages: ~4 pieces each at 2 KB.
		envShape{pages: 60, pageSize: 8192, pieceSize: pieceSize})
}

func TestChunkedFetchRoundTrip(t *testing.T) {
	e := newChunkedEnv(t, 3, 3, 2048)
	for i := 0; i < e.corpus.Pages(); i++ {
		key := e.corpus.Key(i)
		data, src, err := e.front.Fetch(key)
		if err != nil || src != SourceDatabase {
			t.Fatalf("cold fetch %s: src=%v err=%v", key, src, err)
		}
		if !bytes.Equal(data, e.corpus.Page(i)) {
			t.Fatalf("cold body mismatch for %s", key)
		}
		data, src, err = e.front.Fetch(key)
		if err != nil || src != SourceNewCache {
			t.Fatalf("warm fetch %s: src=%v err=%v", key, src, err)
		}
		if !bytes.Equal(data, e.corpus.Page(i)) {
			t.Fatalf("warm body mismatch for %s", key)
		}
	}
}

// The point of the piece model: one large object's pieces land on
// multiple servers, restoring per-byte balance.
func TestChunkedPiecesSpreadAcrossServers(t *testing.T) {
	e := newChunkedEnv(t, 3, 3, 2048)
	spreadObjects := 0
	for i := 0; i < e.corpus.Pages(); i++ {
		key := e.corpus.Key(i)
		if _, _, err := e.front.Fetch(key); err != nil {
			t.Fatal(err)
		}
		m, pieces := chunk.Split(e.corpus.Page(i), 2048)
		owners := map[int]bool{}
		for p := 0; p < m.Pieces(); p++ {
			owner, _, _ := e.coord.Route(chunk.PieceKey(key, p))
			owners[owner] = true
			// Each piece must be resident on its own owner.
			if !e.locals[owner].Server().Cache().Contains(chunk.PieceKey(key, p)) {
				t.Fatalf("piece %d of %s missing from owner %d", p, key, owner)
			}
		}
		_ = pieces
		if len(owners) > 1 {
			spreadObjects++
		}
	}
	if spreadObjects < e.corpus.Pages()/4 {
		t.Fatalf("only %d/%d objects spread over multiple servers", spreadObjects, e.corpus.Pages())
	}
}

// Losing one piece (deleted behind the frontend's back) triggers a
// database repair that restores the full piece set.
func TestChunkedPieceLossRepairs(t *testing.T) {
	e := newChunkedEnv(t, 3, 3, 2048)
	key := e.corpus.Key(7)
	if _, _, err := e.front.Fetch(key); err != nil {
		t.Fatal(err)
	}
	pieceKey := chunk.PieceKey(key, 1)
	owner, _, _ := e.coord.Route(pieceKey)
	if deleted, err := e.coord.Client(owner).Delete(pieceKey); err != nil || !deleted {
		t.Fatalf("delete piece: %v %v", deleted, err)
	}

	data, src, err := e.front.Fetch(key)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceDatabase {
		t.Fatalf("fetch after piece loss served from %v, want database repair", src)
	}
	if !bytes.Equal(data, e.corpus.Page(7)) {
		t.Fatal("repaired body mismatch")
	}
	if e.front.Stats().PieceRepairs != 1 {
		t.Fatalf("PieceRepairs = %d, want 1", e.front.Stats().PieceRepairs)
	}
	// The piece set is whole again.
	if _, src, _ := e.front.Fetch(key); src != SourceNewCache {
		t.Fatalf("post-repair fetch from %v, want cache", src)
	}
}

// Chunked objects ride smooth transitions: pieces migrate on demand
// like any other key, and the database stays quiet.
func TestChunkedSmoothTransition(t *testing.T) {
	e := newChunkedEnv(t, 3, 3, 2048)
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := e.front.Stats().DBFetches
	if err := e.coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.corpus.Pages(); i++ {
		data, _, err := e.front.Fetch(e.corpus.Key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, e.corpus.Page(i)) {
			t.Fatalf("body mismatch for %s during transition", e.corpus.Key(i))
		}
	}
	extra := e.front.Stats().DBFetches - before
	if extra > uint64(e.corpus.Pages()/10) {
		t.Fatalf("chunked transition leaked %d fetches to the database", extra)
	}
	if e.front.Stats().Migrated == 0 {
		t.Fatal("no piece migrations during transition")
	}
}

// Small values below the piece size are stored whole even with the
// chunk layer enabled.
func TestChunkedSmallValuesStoredWhole(t *testing.T) {
	e := newChunkedEnv(t, 2, 2, 1<<20) // piece size far above page size
	key := e.corpus.Key(1)
	if _, _, err := e.front.Fetch(key); err != nil {
		t.Fatal(err)
	}
	owner, _, _ := e.coord.Route(key)
	raw, ok := e.locals[owner].Server().Cache().Peek(key)
	if !ok {
		t.Fatal("value not resident")
	}
	if chunk.IsManifest(raw) {
		t.Fatal("small value was chunked")
	}
}
