package webtier

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"proteus/internal/chunk"
)

// httptestNewServer keeps the test body readable.
func httptestNewServer(h http.Handler) *httptest.Server { return httptest.NewServer(h) }

func TestUpdateReplacesValue(t *testing.T) {
	e := newEnv(t, 3, 3)
	key := e.corpus.Key(3)
	if _, _, err := e.front.Fetch(key); err != nil {
		t.Fatal(err)
	}
	if err := e.front.Update(key, []byte("edited")); err != nil {
		t.Fatal(err)
	}
	data, src, err := e.front.Fetch(key)
	if err != nil || src != SourceNewCache {
		t.Fatalf("fetch after update: src=%v err=%v", src, err)
	}
	if string(data) != "edited" {
		t.Fatalf("data = %q", data)
	}
}

func TestInvalidateForcesDatabase(t *testing.T) {
	e := newEnv(t, 3, 3)
	key := e.corpus.Key(4)
	if _, _, err := e.front.Fetch(key); err != nil {
		t.Fatal(err)
	}
	removed, err := e.front.Invalidate(key)
	if err != nil || !removed {
		t.Fatalf("Invalidate = %v,%v", removed, err)
	}
	_, src, err := e.front.Fetch(key)
	if err != nil || src != SourceDatabase {
		t.Fatalf("fetch after invalidate: src=%v err=%v", src, err)
	}
	// Second invalidate of an absent key reports false.
	e.front.Invalidate(key) // remove the refreshed copy
	removed, err = e.front.Invalidate(key)
	if err != nil || removed {
		t.Fatalf("second Invalidate = %v,%v", removed, err)
	}
}

func TestUpdateShrinksChunkedValue(t *testing.T) {
	e := newChunkedEnv(t, 3, 3, 2048)
	key := e.corpus.Key(2)
	if _, _, err := e.front.Fetch(key); err != nil {
		t.Fatal(err)
	}
	oldBody := e.corpus.Page(2)
	m, _ := chunk.Split(oldBody, 2048)
	if m.Pieces() < 3 {
		t.Skipf("page too small to exercise shrink: %d pieces", m.Pieces())
	}

	// Update to a small, unchunked value.
	if err := e.front.Update(key, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	data, src, err := e.front.Fetch(key)
	if err != nil || src != SourceNewCache || string(data) != "tiny" {
		t.Fatalf("after shrink: %q,%v,%v", data, src, err)
	}
	// Old pieces must be gone from their owners.
	for i := 0; i < m.Pieces(); i++ {
		pk := chunk.PieceKey(key, i)
		owner, _, _ := e.coord.Route(pk)
		if e.locals[owner].Server().Cache().Contains(pk) {
			t.Fatalf("orphan piece %d survived the shrink", i)
		}
	}
}

func TestUpdateGrowsIntoChunks(t *testing.T) {
	e := newChunkedEnv(t, 2, 2, 2048)
	key := e.corpus.Key(1)
	big := bytes.Repeat([]byte("x"), 5000)
	if err := e.front.Update(key, big); err != nil {
		t.Fatal(err)
	}
	data, src, err := e.front.Fetch(key)
	if err != nil || src != SourceNewCache || !bytes.Equal(data, big) {
		t.Fatalf("after grow: len=%d src=%v err=%v", len(data), src, err)
	}
}

func TestInvalidateChunkedRemovesPieces(t *testing.T) {
	e := newChunkedEnv(t, 3, 3, 2048)
	key := e.corpus.Key(5)
	if _, _, err := e.front.Fetch(key); err != nil {
		t.Fatal(err)
	}
	removed, err := e.front.Invalidate(key)
	if err != nil || !removed {
		t.Fatalf("Invalidate = %v,%v", removed, err)
	}
	m, _ := chunk.Split(e.corpus.Page(5), 2048)
	for i := 0; i < m.Pieces(); i++ {
		pk := chunk.PieceKey(key, i)
		owner, _, _ := e.coord.Route(pk)
		if e.locals[owner].Server().Cache().Contains(pk) {
			t.Fatalf("piece %d survived invalidation", i)
		}
	}
}

func TestHTTPPutAndDelete(t *testing.T) {
	e := newEnv(t, 2, 2)
	srv := httptestNewServer(e.front)
	defer srv.Close()
	key := e.corpus.Key(9)

	// PUT installs a value.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/page/"+key, strings.NewReader("fresh"))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/page/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "fresh" || resp.Header.Get("X-Proteus-Source") != "cache" {
		t.Fatalf("GET after PUT = %q (%s)", body, resp.Header.Get("X-Proteus-Source"))
	}

	// DELETE invalidates.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/page/"+key, nil)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	// Second DELETE: nothing cached.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/page/"+key, nil)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status %d", resp.StatusCode)
	}

	// Unsupported method.
	req, _ = http.NewRequest(http.MethodPatch, srv.URL+"/page/"+key, nil)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH status %d", resp.StatusCode)
	}
}
