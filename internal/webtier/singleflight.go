package webtier

import "sync"

// The paper motivates cache clusters with Facebook's "break up the
// memcache dog pile" problem: when a hot key misses, every concurrent
// request for it stampedes the database. singleflight collapses
// concurrent fetches of one key into a single database query; the
// paper's amortized migration already prevents transition stampedes,
// and this guards the residual cold-miss path.

type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// do executes fn once per concurrent set of callers for key; every
// caller receives the same result. shared reports whether the result
// came from another caller's flight.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (data []byte, err error, shared bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.data, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.data, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.data, f.err, false
}
