package webtier

import (
	"sync"
	"sync/atomic"
	"testing"
)

// End-to-end under concurrency: RBE-style load hammers the front end
// while a scale-down and, after its TTL completes, a scale-up execute.
// No request may fail, and both transitions must stay (nearly)
// invisible to the database tier.
func TestTransitionUnderConcurrentLoad(t *testing.T) {
	e := newEnv(t, 3, 3)

	// Warm everything first.
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}

	// loadPhase sweeps the whole corpus from several goroutines twice,
	// so every key is touched during the phase.
	loadPhase := func() {
		const workers = 8
		var (
			wg       sync.WaitGroup
			failures atomic.Uint64
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < 2*e.corpus.Pages(); i += workers {
					key := e.corpus.Key(i % e.corpus.Pages())
					if _, _, err := e.front.Fetch(key); err != nil {
						failures.Add(1)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if failures.Load() != 0 {
			t.Fatalf("%d requests failed during transition load", failures.Load())
		}
	}

	budget := uint64(e.corpus.Pages() / 20)

	// Phase 1: scale down 3 -> 2 under load. Every key that lived on
	// the dying server is touched, so it migrates on demand.
	before := e.front.Stats().DBFetches
	if err := e.coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	loadPhase()
	if leaked := e.front.Stats().DBFetches - before; leaked > budget {
		t.Fatalf("scale-down leaked %d fetches to the database (budget %d)", leaked, budget)
	}
	if e.front.Stats().Migrated == 0 {
		t.Fatal("no on-demand migrations during scale-down")
	}

	// TTL elapses: the dying server powers off; its data has migrated.
	e.timer.Fire()

	// Phase 2: scale back up 2 -> 3 under load. The re-mapped keys'
	// old owners (the survivors) hold every hot item, so the digest
	// routes their first request there, not to the database.
	before = e.front.Stats().DBFetches
	migratedBefore := e.front.Stats().Migrated
	if err := e.coord.SetActive(3); err != nil {
		t.Fatal(err)
	}
	loadPhase()
	if leaked := e.front.Stats().DBFetches - before; leaked > budget {
		t.Fatalf("scale-up leaked %d fetches to the database (budget %d)", leaked, budget)
	}
	if e.front.Stats().Migrated == migratedBefore {
		t.Fatal("no on-demand migrations during scale-up")
	}
	if errs := e.front.Stats().Errors; errs != 0 {
		t.Fatalf("front end recorded %d errors", errs)
	}
}
