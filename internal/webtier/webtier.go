// Package webtier is the web-server tier of the paper's Fig. 1: it
// terminates user requests, routes data keys to cache servers through
// the cluster coordinator's deterministic placement, and implements
// Algorithm 2 (data retrieval) against live memcached-protocol servers
// — try the new owner, consult the old owner's digest during a
// transition, fall back to the database, and write through so only the
// first request for a hot key pays the migration cost.
package webtier

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"proteus/internal/chunk"
	"proteus/internal/cluster"
	"proteus/internal/telemetry"
)

// Backing is the database tier interface (satisfied by *database.DB).
type Backing interface {
	Get(key string) ([]byte, error)
}

// Source reports where a fetch was satisfied.
type Source int

const (
	// SourceNewCache is a hit on the key's current owner.
	SourceNewCache Source = iota + 1
	// SourceOldCache is an Algorithm 2 on-demand migration from the
	// previous owner during a transition.
	SourceOldCache
	// SourceDatabase is a full miss served by the database tier.
	SourceDatabase
)

func (s Source) String() string {
	switch s {
	case SourceNewCache:
		return "cache"
	case SourceOldCache:
		return "old-cache"
	case SourceDatabase:
		return "database"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Stats counts fetch outcomes.
type Stats struct {
	Hits           uint64 // new-owner hits (any ring)
	ReplicaHits    uint64 // of Hits, those served by ring > 0
	Migrated       uint64 // served and migrated from the old owner
	DigestFalsePos uint64 // digest said hot, old owner missed
	DBFetches      uint64
	PieceRepairs   uint64 // chunked object rebuilt after losing a piece
	Collapsed      uint64 // concurrent misses collapsed into one DB query
	// CacheErrors counts cache-tier faults the frontend absorbed by
	// degrading (skipped write-through, failed migration install, ring
	// fallthrough to the DB). They cost latency or a future miss, never
	// a wrong answer.
	CacheErrors uint64
	// Errors counts client-visible failures: the database path failed,
	// so the request itself errored.
	Errors uint64
}

// Config configures a Frontend.
type Config struct {
	// Coordinator supplies routing and per-node clients (required).
	Coordinator *cluster.Coordinator
	// DB is the backing store (required).
	DB Backing
	// CacheExpiry is the exptime (seconds) for write-through sets;
	// 0 stores without expiry.
	CacheExpiry int64
	// PieceSize enables the paper's fixed-size-piece model: values
	// longer than this are split into PieceSize-byte pieces, each
	// cached under its own key (and therefore on its own server), with
	// a manifest under the original key. 0 stores whole objects.
	PieceSize int
	// Telemetry receives the frontend's outcome counters
	// (proteus_webtier_events_total{kind}). Optional: with a nil
	// registry the counters still work (Stats reads them) but are not
	// exported.
	Telemetry *telemetry.Registry
	// Tracer records one span per Fetch with key and source attributes.
	// Optional.
	Tracer *telemetry.Tracer
	// Events receives amortized-migration hit/miss events (the digest
	// consult outcomes of Algorithm 2 lines 6-8). Optional.
	Events *telemetry.EventLog
}

// Frontend answers data requests. It is safe for concurrent use.
type Frontend struct {
	coord     *cluster.Coordinator
	db        Backing
	expiry    int64
	pieceSize int

	// Outcome counters, one series per kind of the
	// proteus_webtier_events_total family. Registry counters are
	// atomic, so the hot path takes no locks.
	hits        *telemetry.Counter
	replicaHits *telemetry.Counter
	migrated    *telemetry.Counter
	falsePos    *telemetry.Counter
	dbGets      *telemetry.Counter
	repairs     *telemetry.Counter
	collapsed   *telemetry.Counter
	cacheErrs   *telemetry.Counter
	errs        *telemetry.Counter

	tracer *telemetry.Tracer
	events *telemetry.EventLog

	flights flightGroup
}

// New builds a Frontend.
func New(cfg Config) (*Frontend, error) {
	if cfg.Coordinator == nil {
		return nil, errors.New("webtier: coordinator required")
	}
	if cfg.DB == nil {
		return nil, errors.New("webtier: backing store required")
	}
	if cfg.PieceSize < 0 {
		return nil, errors.New("webtier: PieceSize must be >= 0")
	}
	f := &Frontend{
		coord:     cfg.Coordinator,
		db:        cfg.DB,
		expiry:    cfg.CacheExpiry,
		pieceSize: cfg.PieceSize,
		tracer:    cfg.Tracer,
		events:    cfg.Events,
	}
	ev := cfg.Telemetry.Counter("proteus_webtier_events_total",
		"fetch outcomes by kind (Algorithm 2 accounting)", "kind")
	f.hits = ev.With("hit")
	f.replicaHits = ev.With("replica_hit")
	f.migrated = ev.With("migrated")
	f.falsePos = ev.With("digest_false_pos")
	f.dbGets = ev.With("db_fetch")
	f.repairs = ev.With("piece_repair")
	f.collapsed = ev.With("collapsed")
	f.cacheErrs = ev.With("cache_error")
	f.errs = ev.With("error")
	return f, nil
}

// Fetch implements Algorithm 2 for one key. With replication enabled
// (Section III-E) the rings are read in order: a hit on any replica
// serves the request, and an unreachable server simply degrades to the
// next ring — the fault-tolerance behaviour the paper describes. With
// PieceSize set, large values are stored as fixed-size pieces under
// derived keys (the paper's basic-unit assumption) and reassembled
// here.
func (f *Frontend) Fetch(key string) ([]byte, Source, error) {
	sp := f.tracer.Start("webtier.fetch")
	sp.SetAttr("key", key)
	data, src, err := f.fetch(key)
	if err != nil {
		sp.SetAttr("source", "error")
	} else {
		sp.SetAttr("source", src.String())
	}
	sp.End()
	return data, src, err
}

func (f *Frontend) fetch(key string) ([]byte, Source, error) {
	f.coord.ObserveGet(key)
	if raw, src, ok := f.cacheFetch(key); ok {
		if f.pieceSize > 0 && chunk.IsManifest(raw) {
			if data, ok := f.gatherPieces(key, raw); ok {
				return data, src, nil
			}
			// A piece went missing (evicted or lost to a crash):
			// rebuild the whole object from the database.
			f.repairs.Inc()
		} else {
			return raw, src, nil
		}
	}

	// Lines 9-12: the database tier; concurrent misses for one key
	// collapse into a single query (dog-pile protection), and the
	// winner writes through so the key regains its full copy (and
	// piece) set.
	data, err, shared := f.flights.do(key, func() ([]byte, error) {
		// Double-check before the database: a stampeder that missed in
		// the cache while an earlier flight was in progress can reach
		// here only after that flight completed — and its write-through
		// with it — so one probe of the primary keeps the whole
		// stampede at a single database query.
		owner := f.coord.WriteOwners(key)[0]
		if raw, ok, err := f.coord.Client(owner).Get(key); err == nil && ok {
			if f.pieceSize == 0 || !chunk.IsManifest(raw) {
				return raw, nil
			}
			if full, ok := f.gatherPieces(key, raw); ok {
				return full, nil
			}
		}
		data, err := f.db.Get(key)
		if err != nil {
			return nil, err
		}
		f.dbGets.Inc()
		f.writeThrough(key, data)
		return data, nil
	})
	if shared {
		f.collapsed.Inc()
	}
	if err != nil {
		f.errs.Inc()
		return nil, SourceDatabase, fmt.Errorf("webtier: fetch %q: %w", key, err)
	}
	return data, SourceDatabase, nil
}

// cacheFetch runs Algorithm 2 against the cache tier only (lines 2-8),
// reporting whether any server produced the value. It reads in two
// phases. Phase 1 probes the key's distinct current owners, least
// loaded first — power-of-two-choices generalized to the replica set;
// cold keys have one owner and skip the ordering. The replica
// invariant (a hot key's owners never hold *different* values; a
// missing copy just falls through) makes the answer independent of
// probe order, so load-aware routing moves work, never meaning. Phase
// 2 consults the old owners' digests ring by ring during a transition
// and amortized-migrates a hit onto that ring's new owner.
func (f *Frontend) cacheFetch(key string) ([]byte, Source, bool) {
	// Phase 1: current owners. A transport error (crashed or
	// partitioned server, open circuit breaker) degrades to the next
	// replica and ultimately the database — never to a client error.
	owners := f.coord.WriteOwners(key)
	primary := owners[0]
	if len(owners) > 1 && f.coord.IsHot(key) {
		// Load-aware ordering applies to promoted keys only: Section
		// III-E base replicas keep deterministic ring order (the load
		// signal is wall-clock and would make replica choice — and the
		// ReplicaHits accounting — nondeterministic for every key).
		owners = f.orderByLoad(owners)
	}
	for _, owner := range owners {
		if data, ok, err := f.coord.Client(owner).Get(key); err == nil && ok {
			f.hits.Inc()
			if owner != primary {
				f.replicaHits.Inc()
			}
			return data, SourceNewCache, true
		} else if err != nil {
			f.cacheErrs.Inc()
		}
	}

	// Phase 2: hot data still on a ring's old owner (lines 6-8).
	consulted := make([]int, 0, 4)
	rings := f.coord.RingsFor(key)
	for ring := 0; ring < rings; ring++ {
		newOwner, oldOwner, tryOld := f.coord.RouteRing(key, ring)
		if !tryOld || containsInt(consulted, oldOwner) {
			continue
		}
		consulted = append(consulted, oldOwner)
		data, ok, err := f.coord.Client(oldOwner).Get(key)
		if err != nil {
			// Faulted old owner: fall through to the DB path rather
			// than surfacing the error (the digest may even have been
			// right — the data is simply unreachable now).
			f.cacheErrs.Inc()
			continue
		}
		if !ok {
			f.falsePos.Inc()
			f.events.Record(telemetry.Event{Kind: telemetry.EventMigrationMiss, Node: oldOwner})
			continue
		}
		f.migrated.Inc()
		f.events.Record(telemetry.Event{Kind: telemetry.EventMigrationHit, Node: oldOwner})
		// Line 12: amortized migration — install on the new owner so
		// every subsequent request hits there. A failed install just
		// means the next request migrates again.
		if err := f.coord.Client(newOwner).Set(key, data, f.expiry); err != nil {
			f.cacheErrs.Inc()
		}
		return data, SourceOldCache, true
	}
	return nil, SourceDatabase, false
}

// orderByLoad orders owners for probing: ascending load estimate,
// stable so the primary (index 0) wins ties — fresh clients score 0
// and an idle cluster probes in ring order. Scores are snapshotted
// once so concurrent exchanges cannot make the comparator
// inconsistent mid-sort.
func (f *Frontend) orderByLoad(owners []int) []int {
	if len(owners) < 2 {
		return owners
	}
	scores := make([]float64, len(owners))
	for i, o := range owners {
		scores[i] = f.coord.Client(o).LoadEstimate()
	}
	order := make([]int, len(owners))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	out := make([]int, len(owners))
	for i, j := range order {
		out[i] = owners[j]
	}
	return out
}

// gatherPieces fetches and reassembles a chunked object. Pieces are
// grouped by their ring-0 owner and fetched with one pipelined MultiGet
// per owner (a 1 MB object in 4 KB pieces costs a handful of round
// trips instead of 256); any piece the batch does not produce — a miss,
// a faulted server, or hot data still on an old owner mid-transition —
// takes the full per-key Algorithm 2 path, so migration and replica
// semantics are exactly those of the unbatched fetch.
func (f *Frontend) gatherPieces(key string, rawManifest []byte) ([]byte, bool) {
	m, err := chunk.DecodeManifest(rawManifest)
	if err != nil {
		return nil, false
	}
	pieces := make([][]byte, m.Pieces())
	found := make([]bool, m.Pieces())
	pieceKeys := make([]string, m.Pieces())
	groups := make(map[int][]int) // ring-0 owner -> piece indices
	for i := range pieces {
		pieceKeys[i] = chunk.PieceKey(key, i)
		owner, _, _ := f.coord.RouteRing(pieceKeys[i], 0)
		groups[owner] = append(groups[owner], i)
	}
	for owner, idx := range groups {
		keys := make([]string, len(idx))
		for j, i := range idx {
			keys[j] = pieceKeys[i]
		}
		got, err := f.coord.Client(owner).MultiGet(keys...)
		if err != nil {
			// Faulted owner: every piece in this group falls back below.
			f.cacheErrs.Inc()
			continue
		}
		for j, i := range idx {
			if v, ok := got[keys[j]]; ok {
				pieces[i], found[i] = v, true
				f.hits.Inc()
			}
		}
	}
	for i := range pieces {
		if found[i] {
			continue
		}
		p, _, ok := f.cacheFetch(pieceKeys[i])
		if !ok {
			return nil, false
		}
		pieces[i] = p
	}
	data, err := chunk.Reassemble(m, pieces)
	if err != nil {
		return nil, false
	}
	return data, true
}

// FetchMany resolves several page keys, batching the first-try cache
// reads into one pipelined MultiGet per owner. Keys the batch does not
// resolve — misses, faulted servers, keys mid-migration — fall back to
// the full per-key Fetch path (replica rings, old-owner migration,
// database with dog-pile protection). The returned map holds every key
// that resolved; the error is the first per-key failure (remaining
// keys are still attempted).
func (f *Frontend) FetchMany(keys ...string) (map[string][]byte, error) {
	sp := f.tracer.Start("webtier.fetch_many")
	sp.SetAttr("keys", fmt.Sprintf("%d", len(keys)))
	defer sp.End()
	out := make(map[string][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	order := make([]string, 0, len(keys))
	groups := make(map[int][]string) // chosen owner -> keys
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		order = append(order, k)
		// Cold keys batch on their primary; hot keys batch on whichever
		// replica owner looks least loaded right now, so one popular
		// page's assets spread across its replica set.
		owners := f.coord.WriteOwners(k)
		owner := owners[0]
		if len(owners) > 1 && f.coord.IsHot(k) {
			owner = f.orderByLoad(owners)[0]
		}
		groups[owner] = append(groups[owner], k)
	}
	batched := make(map[string][]byte, len(order))
	for owner, ks := range groups {
		got, err := f.coord.Client(owner).MultiGet(ks...)
		if err != nil {
			f.cacheErrs.Inc() // whole group degrades to the per-key path
			continue
		}
		for k, v := range got {
			batched[k] = v
		}
	}
	var firstErr error
	for _, k := range order {
		if raw, ok := batched[k]; ok {
			if f.pieceSize > 0 && chunk.IsManifest(raw) {
				if data, ok := f.gatherPieces(k, raw); ok {
					f.hits.Inc()
					out[k] = data
					continue
				}
				// Lost piece: fall through to Fetch, which counts the
				// repair and rebuilds from the database.
			} else {
				f.hits.Inc()
				out[k] = raw
				continue
			}
		}
		data, _, err := f.fetch(k)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[k] = data
	}
	return out, firstErr
}

// writeThrough installs a value on every distinct owner, splitting into
// pieces when the chunk layer is enabled.
func (f *Frontend) writeThrough(key string, data []byte) {
	if f.pieceSize > 0 && len(data) > f.pieceSize {
		m, pieces := chunk.Split(data, f.pieceSize)
		for i, p := range pieces {
			f.storeAll(chunk.PieceKey(key, i), p)
		}
		f.storeAll(key, m.Encode())
		return
	}
	f.storeAll(key, data)
}

// storeAll writes one key to every distinct owner across the rings.
func (f *Frontend) storeAll(key string, data []byte) {
	owners := f.coord.WriteOwners(key)
	failed := false
	for _, owner := range owners {
		// A failed write-through leaves the owner cold, not wrong: the
		// next read misses there and repopulates from the DB.
		if err := f.coord.Client(owner).Set(key, data, f.expiry); err != nil {
			f.cacheErrs.Inc()
			failed = true
		}
	}
	if failed && len(owners) > 1 {
		// A replica that missed this write may still hold the previous
		// value — divergence, which the hot-key replica invariant
		// forbids. Demote so reads collapse to the primary (no-op for
		// cold keys); a later promotion re-syncs the copies.
		f.coord.Demote(key)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of outcome counters.
func (f *Frontend) Stats() Stats {
	return Stats{
		Hits:           f.hits.Value(),
		ReplicaHits:    f.replicaHits.Value(),
		Migrated:       f.migrated.Value(),
		DigestFalsePos: f.falsePos.Value(),
		DBFetches:      f.dbGets.Value(),
		PieceRepairs:   f.repairs.Value(),
		Collapsed:      f.collapsed.Value(),
		CacheErrors:    f.cacheErrs.Value(),
		Errors:         f.errs.Value(),
	}
}

// pagePrefix is the HTTP route for page fetches.
const pagePrefix = "/page/"

// ServeHTTP exposes the frontend as the paper's servlet layer:
// GET /page/<key> returns the page body; /stats returns counters.
func (f *Frontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, pagePrefix):
		key := strings.TrimPrefix(r.URL.Path, pagePrefix)
		if key == "" {
			http.Error(w, "missing key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, source, err := f.Fetch(key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			w.Header().Set("X-Proteus-Source", source.String())
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write(data)
		case http.MethodPut:
			body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := f.Update(key, body); err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			removed, err := f.Invalidate(key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			if !removed {
				http.Error(w, "not cached", http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	case r.URL.Path == "/pages":
		// Batched page-asset fetch: GET /pages?keys=k1,k2,... returns a
		// JSON object of key -> base64 body, resolved through FetchMany's
		// pipelined per-owner batches.
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		raw := r.URL.Query().Get("keys")
		if raw == "" {
			http.Error(w, "missing keys parameter", http.StatusBadRequest)
			return
		}
		pages, err := f.FetchMany(strings.Split(raw, ",")...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(pages)
	case r.URL.Path == "/stats":
		s := f.Stats()
		_, _ = fmt.Fprintf(w, "hits %d\nreplica_hits %d\nmigrated %d\ndigest_false_pos %d\ndb_fetches %d\npiece_repairs %d\ncollapsed %d\ncache_errors %d\nerrors %d\n",
			s.Hits, s.ReplicaHits, s.Migrated, s.DigestFalsePos, s.DBFetches, s.PieceRepairs, s.Collapsed, s.CacheErrors, s.Errors)
	default:
		http.NotFound(w, r)
	}
}

var _ http.Handler = (*Frontend)(nil)
