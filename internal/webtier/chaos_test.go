package webtier

import (
	"testing"

	"proteus/internal/cluster"
	"proteus/internal/faultinject"
	"proteus/internal/testutil"
	"proteus/internal/testutil/clustertest"
	"proteus/internal/wiki"
)

// chaosEnv is a live TCP stack (cache servers, coordinator, frontend)
// with the fault injector wired into the client dialers and the
// coordinator's transition hook.
type chaosEnv struct {
	coord  *cluster.Coordinator
	front  *Frontend
	corpus *wiki.Corpus
	timer  *testutil.ManualTimer
	inj    *faultinject.Injector
}

// crashedServer is the fixed provisioning-order index that the chaos
// schedule crashes at the first transition. In a 4 -> 3 shrink it is
// the dying server: the one whose still-hot data Algorithm 2 would
// migrate on demand — losing it mid-transition is the worst case.
const crashedServer = 3

func newChaosEnv(t *testing.T, seed int64) *chaosEnv {
	t.Helper()
	inj := faultinject.New(seed,
		// ~1% of client writes fail mid-request: broken connections,
		// discarded pool entries, retries.
		faultinject.Rule{Server: faultinject.AnyServer, Op: faultinject.OpWrite, Kind: faultinject.KindError, P: 0.01},
		// The dying server crashes the instant the first transition's
		// routing table is installed.
		faultinject.Rule{Server: crashedServer, Op: faultinject.OpTransition, Kind: faultinject.KindCrash, At: 1},
	)
	e := buildEnv(t,
		clustertest.Opts{Nodes: 4, InitialActive: 4, Replicas: 2, Faults: inj, Seed: seed},
		envShape{pages: 400})
	return &chaosEnv{coord: e.coord, front: e.front, corpus: e.corpus, timer: e.timer, inj: inj}
}

// chaosRun executes the chaos scenario once and returns the frontend
// stats plus the injector's fired-fault schedule: warm the corpus at
// r=2 over 4 servers, shrink to 3 — which crashes the dying server
// mid-transition — then sweep every key twice.
func chaosRun(t *testing.T, seed int64) (Stats, []faultinject.Event) {
	t.Helper()
	e := newChaosEnv(t, seed)

	sweep := func(phase string) {
		for i := 0; i < e.corpus.Pages(); i++ {
			key := e.corpus.Key(i)
			data, _, err := e.front.Fetch(key)
			if err != nil {
				t.Fatalf("%s: fetch %s: %v", phase, key, err)
			}
			want, _ := e.corpus.PageByKey(key)
			if string(data) != string(want) {
				t.Fatalf("%s: wrong body for %s", phase, key)
			}
		}
	}

	sweep("warm")
	if err := e.coord.SetActive(3); err != nil {
		t.Fatal(err)
	}
	sweep("post-crash")
	migratedAfterFirst := e.front.Stats().Migrated
	sweep("steady")

	s := e.front.Stats()

	// The crash rule must actually have fired.
	crashed := false
	for _, ev := range e.inj.Events() {
		if ev.Kind == faultinject.KindCrash && ev.Server == crashedServer {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("crash rule never fired")
	}

	// Zero client-visible errors: every fault was absorbed by a retry,
	// a replica ring, or the database fallthrough.
	if s.Errors != 0 {
		t.Fatalf("frontend surfaced %d client errors (stats %+v)", s.Errors, s)
	}
	if s.CacheErrors == 0 {
		t.Fatal("no cache-tier faults recorded; the schedule injected nothing")
	}
	if s.ReplicaHits == 0 {
		t.Fatal("no replica hits; ring fallthrough never engaged")
	}

	// Each still-hot key was served exactly once per sweep, from cache
	// or database — never lost. The crashed server held every moved
	// key's old copy, so r=2 replicas plus the DB must have covered
	// them: the post-crash DB leak stays a fraction of the corpus.
	pages := uint64(e.corpus.Pages())
	if leaked := s.DBFetches - pages; leaked > pages/4 {
		t.Fatalf("post-crash sweeps leaked %d of %d keys to the database", leaked, pages)
	}

	// No double migration: once a key is installed on its new owner,
	// later requests hit there. The steady sweep may re-migrate only
	// keys whose install was itself faulted.
	if re := s.Migrated - migratedAfterFirst; re > pages/20 {
		t.Fatalf("steady sweep re-migrated %d keys", re)
	}
	return s, e.inj.Events()
}

// A cache server crashes mid-transition while ~1% of client writes
// fail, on the live TCP stack with r=2 replication: no request fails,
// no key is lost, nothing migrates twice.
func TestChaosCrashMidTransitionTCP(t *testing.T) {
	chaosRun(t, 42)
}

// Same seed, same fault schedule, same outcome — the injector's
// decisions are pure functions of (seed, rule, match ordinal), and the
// single-goroutine sweep fixes the match order.
func TestChaosDeterministicTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("double chaos run")
	}
	s1, ev1 := chaosRun(t, 7)
	s2, ev2 := chaosRun(t, 7)
	if s1 != s2 {
		t.Fatalf("stats diverged across identical seeds:\n%+v\n%+v", s1, s2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("fault schedules diverged: %d vs %d events", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("fault schedule diverged at %d: %v vs %v", i, ev1[i], ev2[i])
		}
	}
}
