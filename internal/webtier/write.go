package webtier

import (
	"proteus/internal/chunk"
)

// The paper's workload is read-mostly (wiki pages), but a production
// cache tier also takes writes. Update and Invalidate complete the API:
// both fan out across the replication rings, and both understand the
// chunk layer so a value's pieces stay consistent with its manifest.

// Update installs a new value for key on every distinct owner,
// replacing any chunked representation. Readers see either the old or
// the new value (per-key atomicity is per cache server, as with
// memcached).
func (f *Frontend) Update(key string, data []byte) error {
	// If the old value was chunked with more pieces than the new one
	// needs, the tail pieces must go, or a later manifest read could
	// pair a new manifest with stale pieces. Fetch the old manifest
	// (cache-only) to learn the old piece count.
	oldPieces := 0
	if f.pieceSize > 0 {
		if raw, _, ok := f.cacheFetch(key); ok && chunk.IsManifest(raw) {
			if m, err := chunk.DecodeManifest(raw); err == nil {
				oldPieces = m.Pieces()
			}
		}
	}

	f.writeThrough(key, data)

	// Drop orphaned tail pieces.
	newPieces := 0
	if f.pieceSize > 0 && len(data) > f.pieceSize {
		m, _ := chunk.Split(data, f.pieceSize)
		newPieces = m.Pieces()
	}
	for i := newPieces; i < oldPieces; i++ {
		f.deleteAll(chunk.PieceKey(key, i))
	}
	return nil
}

// Invalidate removes key (and its pieces) from every distinct owner,
// forcing the next read back to the database. It reports whether any
// copy was resident.
func (f *Frontend) Invalidate(key string) (bool, error) {
	pieces := 0
	if f.pieceSize > 0 {
		if raw, _, ok := f.cacheFetch(key); ok && chunk.IsManifest(raw) {
			if m, err := chunk.DecodeManifest(raw); err == nil {
				pieces = m.Pieces()
			}
		}
	}
	removed := f.deleteAll(key)
	for i := 0; i < pieces; i++ {
		if f.deleteAll(chunk.PieceKey(key, i)) {
			removed = true
		}
	}
	return removed, nil
}

// deleteAll removes one key from every distinct owner across the rings,
// reporting whether any server held it.
func (f *Frontend) deleteAll(key string) bool {
	owners := f.coord.WriteOwners(key)
	removed, failed := false, false
	for _, owner := range owners {
		deleted, err := f.coord.Client(owner).Delete(key)
		if err != nil {
			f.cacheErrs.Add(1)
			failed = true
			continue
		}
		if deleted {
			removed = true
		}
	}
	if failed && len(owners) > 1 {
		// Same divergence rule as storeAll: a replica that kept its copy
		// through a failed delete must not keep serving it as a hot peer.
		f.coord.Demote(key)
	}
	return removed
}
