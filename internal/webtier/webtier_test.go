package webtier

import (
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"proteus/internal/cluster"
	"proteus/internal/database"
	"proteus/internal/testutil"
	"proteus/internal/testutil/clustertest"
	"proteus/internal/wiki"
)

type env struct {
	coord  *cluster.Coordinator
	locals []*cluster.LocalNode
	front  *Frontend
	corpus *wiki.Corpus
	timer  *testutil.ManualTimer
}

// envShape sizes the corpus and frontend of a test environment; the
// zero value of each field selects the suite default.
type envShape struct {
	pages, pageSize int
	pieceSize       int
}

// buildEnv is the one scaffolding path for the whole suite: corpus and
// no-sleep database from testutil, cluster bring-up (manual transition
// timer, optional faults) from clustertest.
func buildEnv(t *testing.T, o clustertest.Opts, shape envShape) *env {
	t.Helper()
	if shape.pages == 0 {
		shape.pages = 500
	}
	if shape.pageSize == 0 {
		shape.pageSize = 512
	}
	corpus := testutil.NewCorpus(t, shape.pages, shape.pageSize)
	db := testutil.NewDB(t, corpus, 3)
	ce := clustertest.Start(t, o)
	front, err := New(Config{Coordinator: ce.Coord, DB: db, PieceSize: shape.pieceSize})
	if err != nil {
		t.Fatal(err)
	}
	return &env{coord: ce.Coord, locals: ce.Locals, front: front, corpus: corpus, timer: ce.Timer}
}

func newEnv(t *testing.T, nodes, active int) *env {
	return buildEnv(t, clustertest.Opts{Nodes: nodes, InitialActive: active}, envShape{})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestFetchColdThenHot(t *testing.T) {
	e := newEnv(t, 3, 3)
	key := e.corpus.Key(7)

	data, source, err := e.front.Fetch(key)
	if err != nil || source != SourceDatabase {
		t.Fatalf("first fetch: source=%v err=%v", source, err)
	}
	if string(data) != string(e.corpus.Page(7)) {
		t.Fatal("first fetch returned wrong body")
	}
	data, source, err = e.front.Fetch(key)
	if err != nil || source != SourceNewCache {
		t.Fatalf("second fetch: source=%v err=%v", source, err)
	}
	if string(data) != string(e.corpus.Page(7)) {
		t.Fatal("cached body mismatch")
	}
	s := e.front.Stats()
	if s.Hits != 1 || s.DBFetches != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFetchUnknownKey(t *testing.T) {
	e := newEnv(t, 2, 2)
	_, _, err := e.front.Fetch("not-a-page")
	if err == nil {
		t.Fatal("unknown key fetched successfully")
	}
	if !errors.Is(err, database.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// The paper's core end-to-end property: after a scale-down, the first
// request for a hot re-mapped key is served from the OLD owner (not
// the database), and every subsequent request hits the new owner.
func TestAmortizedMigrationOnScaleDown(t *testing.T) {
	e := newEnv(t, 3, 3)

	// Warm every page through the frontend.
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.coord.SetActive(2); err != nil {
		t.Fatal(err)
	}

	// Find keys that moved off server 2.
	var movedKeys []string
	for i := 0; i < e.corpus.Pages(); i++ {
		key := e.corpus.Key(i)
		if e.coord.Placement().Lookup(key, 3) == 2 {
			movedKeys = append(movedKeys, key)
		}
	}
	if len(movedKeys) == 0 {
		t.Fatal("no keys moved")
	}

	fromOld, fromDB := 0, 0
	for _, key := range movedKeys {
		data, source, err := e.front.Fetch(key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := e.corpus.PageByKey(key)
		if string(data) != string(want) {
			t.Fatalf("migrated body mismatch for %s", key)
		}
		switch source {
		case SourceOldCache:
			fromOld++
		case SourceDatabase:
			fromDB++
		}
	}
	// Nearly all first requests must be amortized migrations, not DB
	// hits ("only the first request will reach the old server").
	if fromOld < len(movedKeys)*9/10 {
		t.Fatalf("only %d/%d served from old owner (db=%d)", fromOld, len(movedKeys), fromDB)
	}
	// Second pass: everything hits the new owner.
	for _, key := range movedKeys {
		_, source, err := e.front.Fetch(key)
		if err != nil {
			t.Fatal(err)
		}
		if source != SourceNewCache {
			t.Fatalf("second fetch of %s from %v, want new cache", key, source)
		}
	}
	// After TTL the old server dies and requests still work.
	e.timer.Fire()
	for _, key := range movedKeys[:10] {
		if _, _, err := e.front.Fetch(key); err != nil {
			t.Fatal(err)
		}
	}
}

// Requests issued during a transition for keys that did NOT move must
// be untouched (no extra hops).
func TestUnmovedKeysUnaffected(t *testing.T) {
	e := newEnv(t, 3, 3)
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.corpus.Pages(); i++ {
		key := e.corpus.Key(i)
		if e.coord.Placement().Lookup(key, 3) == 2 {
			continue
		}
		_, source, err := e.front.Fetch(key)
		if err != nil {
			t.Fatal(err)
		}
		if source != SourceNewCache {
			t.Fatalf("unmoved key %s served from %v", key, source)
		}
	}
}

// The database tier must see (almost) no traffic during a transition —
// the paper's "the database tier will not realize transition dynamics
// is taking place".
func TestDatabaseShieldedDuringTransition(t *testing.T) {
	e := newEnv(t, 3, 3)
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := e.front.Stats().DBFetches
	if err := e.coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.corpus.Pages(); i++ {
		if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	after := e.front.Stats().DBFetches
	if extra := after - before; extra > uint64(e.corpus.Pages()/20) {
		t.Fatalf("database saw %d fetches during transition, want ~0 of %d", extra, e.corpus.Pages())
	}
}

func TestHTTPHandler(t *testing.T) {
	e := newEnv(t, 2, 2)
	srv := httptest.NewServer(e.front)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/page/" + e.corpus.Key(3))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Proteus-Source"); got != "database" {
		t.Fatalf("source header %q, want database", got)
	}
	if string(body) != string(e.corpus.Page(3)) {
		t.Fatal("body mismatch")
	}

	resp, err = srv.Client().Get(srv.URL + "/page/bogus-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Fatalf("bogus key status %d, want 502", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(stats) == 0 {
		t.Fatal("empty stats body")
	}

	resp, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path status %d", resp.StatusCode)
	}
}

func TestConcurrentFetches(t *testing.T) {
	e := newEnv(t, 3, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < e.corpus.Pages(); i += 8 {
				if _, _, err := e.front.Fetch(e.corpus.Key(i)); err != nil {
					errs <- fmt.Errorf("fetch %d: %w", i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
