package cache

import (
	"strconv"
	"time"
)

// This file adds the remaining memcached storage semantics: CAS
// (check-and-set), numeric increment/decrement, and append/prepend.
// They are part of the protocol surface the paper's web tier builds on
// (spymemcached and python-memcached, the clients the paper validates
// against, exercise all of them). Every operation touches exactly one
// shard — the one owning its key — so these paths scale with the
// sharded hot path.

// CASResult is the outcome of a CompareAndSwap.
type CASResult int

const (
	// CASStored means the swap succeeded.
	CASStored CASResult = iota + 1
	// CASExists means the item changed since the token was fetched.
	CASExists
	// CASNotFound means the key is not resident.
	CASNotFound
)

// GetWithCAS is Get plus the item's CAS token (memcached "gets").
func (c *Cache) GetWithCAS(key string) (value []byte, cas uint64, ok bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, found := s.items[key]
	if !found {
		s.mu.Unlock()
		c.ctr.misses.Add(1)
		return nil, 0, false
	}
	now := c.now()
	if e.expired(now) {
		c.removeLocked(s, e, &c.ctr.expirations)
		s.mu.Unlock()
		c.ctr.misses.Add(1)
		return nil, 0, false
	}
	e.lastAccess = now
	e.seq = c.accessSeq.Add(1)
	s.moveToFrontLocked(e)
	value, cas = e.value, e.cas
	s.mu.Unlock()
	c.ctr.hits.Add(1)
	return value, cas, true
}

// CompareAndSwap stores value only if the item's CAS token still equals
// cas (memcached "cas").
func (c *Cache) CompareAndSwap(key string, value []byte, ttl0 int64, cas uint64) CASResult {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.items[key]
	if !found || e.expired(c.now()) {
		return CASNotFound
	}
	if e.cas != cas {
		return CASExists
	}
	c.setLocked(s, key, value, secondsTTL(ttl0))
	return CASStored
}

// Increment adds delta to a numeric value (memcached "incr"),
// returning the new value. ok is false when the key is absent;
// errNotNumber when the stored value is not an unsigned decimal.
func (c *Cache) Increment(key string, delta uint64) (uint64, bool, error) {
	return c.arith(key, delta, true)
}

// Decrement subtracts delta, clamping at 0 (memcached semantics).
func (c *Cache) Decrement(key string, delta uint64) (uint64, bool, error) {
	return c.arith(key, delta, false)
}

// ErrNotNumber reports incr/decr on a non-numeric value.
var ErrNotNumber = errNotNumber{}

type errNotNumber struct{}

func (errNotNumber) Error() string {
	return "cache: cannot increment or decrement non-numeric value"
}

func (c *Cache) arith(key string, delta uint64, up bool) (uint64, bool, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.items[key]
	if !found || e.expired(c.now()) {
		return 0, false, nil
	}
	cur, err := strconv.ParseUint(string(e.value), 10, 64)
	if err != nil {
		return 0, true, ErrNotNumber
	}
	var next uint64
	if up {
		next = cur + delta // wraps at 2^64 like memcached
	} else if cur < delta {
		next = 0
	} else {
		next = cur - delta
	}
	// In-place value update: keeps expiry, refreshes recency and CAS.
	s.bytes += int64(len(strconv.FormatUint(next, 10))) - int64(len(e.value))
	e.value = []byte(strconv.FormatUint(next, 10))
	e.lastAccess = c.now()
	e.seq = c.accessSeq.Add(1)
	e.cas = c.casCounter.Add(1)
	s.moveToFrontLocked(e)
	return next, true, nil
}

// Append concatenates data after an existing value (memcached
// "append"), reporting whether the key was resident.
func (c *Cache) Append(key string, data []byte) bool {
	return c.concat(key, data, true)
}

// Prepend concatenates data before an existing value.
func (c *Cache) Prepend(key string, data []byte) bool {
	return c.concat(key, data, false)
}

func (c *Cache) concat(key string, data []byte, after bool) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.items[key]
	if !found || e.expired(c.now()) {
		return false
	}
	joined := make([]byte, 0, len(e.value)+len(data))
	if after {
		joined = append(append(joined, e.value...), data...)
	} else {
		joined = append(append(joined, data...), e.value...)
	}
	s.bytes += int64(len(joined)) - int64(len(e.value))
	e.value = joined
	e.lastAccess = c.now()
	e.seq = c.accessSeq.Add(1)
	e.cas = c.casCounter.Add(1)
	s.moveToFrontLocked(e)
	c.evictLocked(s)
	return true
}

// secondsTTL converts memcached exptime seconds to a duration for the
// internal API (negative = already expired).
func secondsTTL(exptime int64) time.Duration {
	if exptime < 0 {
		return -time.Nanosecond
	}
	return time.Duration(exptime) * time.Second
}
