package cache

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{9, 16},
		{16, 16},
		{17, 32},
	}
	for _, tc := range cases {
		c := New(Config{Clock: time.Now, Shards: tc.in})
		if got := c.Shards(); got != tc.want {
			t.Errorf("Shards(%d) rounded to %d, want %d", tc.in, got, tc.want)
		}
	}
}

// The per-shard byte budgets must sum exactly to MaxBytes so the global
// bound is preserved under any key distribution.
func TestShardBudgetsSumToMaxBytes(t *testing.T) {
	for _, max := range []int64{1, 10, 1023, 64 << 20} {
		c := New(Config{Clock: time.Now, MaxBytes: max})
		var sum int64
		for i := range c.shards {
			if !c.shards[i].bounded {
				t.Fatalf("MaxBytes=%d: shard %d unbounded", max, i)
			}
			sum += c.shards[i].maxBytes
		}
		if sum != max {
			t.Errorf("MaxBytes=%d: shard budgets sum to %d", max, sum)
		}
	}
}

// Deterministic routing: the same key always lands on the same shard,
// and a realistic key population spreads across all shards.
func TestShardRoutingStableAndSpread(t *testing.T) {
	c := New(Config{Clock: time.Now})
	seen := make(map[*shard]bool)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("page:%d", i)
		s := c.shardFor(k)
		if s != c.shardFor(k) {
			t.Fatalf("key %q routed to two shards", k)
		}
		seen[s] = true
	}
	if len(seen) != c.Shards() {
		t.Errorf("4096 keys touched %d/%d shards", len(seen), c.Shards())
	}
}

// The global byte bound holds with default sharding even when keys are
// skewed (all budget pressure can land on one shard).
func TestShardedGlobalByteBound(t *testing.T) {
	max := int64(32 * (itemOverhead + 16))
	c := New(Config{Clock: time.Now, MaxBytes: max})
	for i := 0; i < 2000; i++ {
		c.Set(fmt.Sprintf("k%d", i), make([]byte, 8), 0)
		if b := c.Bytes(); b > max {
			t.Fatalf("Bytes = %d exceeds MaxBytes %d after %d sets", b, max, i+1)
		}
	}
	if c.Len() == 0 {
		t.Fatal("bounded cache retained nothing")
	}
}

// Model-based property test: after a randomized concurrent workload of
// Set/Get/Delete/Touch plus capacity evictions, the hook-derived
// residency multiset matches the cache contents exactly — the invariant
// the counting-Bloom digest depends on. Run with -race in CI.
func TestShardedHookConsistencyConcurrent(t *testing.T) {
	var mu sync.Mutex
	live := make(map[string]int) // link count minus unlink count
	c := New(Config{
		Clock:    time.Now,
		MaxBytes: 64 * (itemOverhead + 16),
		OnLink: func(k string) {
			mu.Lock()
			live[k]++
			mu.Unlock()
		},
		OnUnlink: func(k string) {
			mu.Lock()
			live[k]--
			mu.Unlock()
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("key-%d", rng.Intn(256))
				switch rng.Intn(5) {
				case 0, 1:
					c.Set(k, make([]byte, rng.Intn(16)), 0)
				case 2:
					c.Get(k)
				case 3:
					c.Delete(k)
				default:
					c.Touch(k, time.Hour)
				}
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	resident := 0
	for k, n := range live {
		switch n {
		case 0:
			if c.Contains(k) {
				t.Errorf("hooks say %q gone, cache still has it", k)
			}
		case 1:
			resident++
			if !c.Contains(k) {
				t.Errorf("hooks say %q resident, cache misses it", k)
			}
		default:
			t.Errorf("hook imbalance for %q: %d", k, n)
		}
	}
	if resident != c.Len() {
		t.Errorf("hook-derived residency %d != cache Len %d", resident, c.Len())
	}
}

// benchParallelGet measures read throughput at the configured shard
// count; the 1-shard run is the single-mutex control the sharded run is
// compared against (EXPERIMENTS.md A-series).
func benchParallelGet(b *testing.B, shards int) {
	c := New(Config{Clock: time.Now, MaxBytes: 64 << 20, Shards: shards})
	keys := make([]string, 4096)
	val := make([]byte, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
		c.Set(keys[i], val, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i&4095])
			i++
		}
	})
}

func BenchmarkCacheGetHitParallel(b *testing.B) {
	benchParallelGet(b, 0) // DefaultShards
}

func BenchmarkCacheGetHitParallelSingleShard(b *testing.B) {
	benchParallelGet(b, 1)
}

// Sanity-check (not a benchmark): with >= 4 cores the sharded cache
// must beat the single-mutex control by a wide margin under parallel
// load. Thresholded well below the benchmarked ~5-10x so scheduler
// noise cannot flake it; skipped on small machines where the
// comparison is meaningless.
func TestShardedParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("contention comparison needs real time")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4", runtime.GOMAXPROCS(0))
	}
	throughput := func(shards int) float64 {
		c := New(Config{Clock: time.Now, Shards: shards})
		keys := make([]string, 1024)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
			c.Set(keys[i], []byte("v"), 0)
		}
		const goroutines = 8
		const opsPer = 60000
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					c.Get(keys[(g*31+i)&1023])
				}
			}(g)
		}
		wg.Wait()
		return float64(goroutines*opsPer) / time.Since(start).Seconds()
	}
	// Interleave runs and keep the best of 3 per config to shrug off
	// scheduler hiccups.
	best := func(shards int) float64 {
		var m float64
		for i := 0; i < 3; i++ {
			if v := throughput(shards); v > m {
				m = v
			}
		}
		return m
	}
	sharded, single := best(0), best(1)
	if sharded < 1.5*single {
		t.Errorf("sharded throughput %.0f ops/s not >= 1.5x single-mutex %.0f ops/s", sharded, single)
	}
	t.Logf("sharded %.0f ops/s vs single-mutex %.0f ops/s (%.1fx)", sharded, single, sharded/single)
}
