package cache

import (
	"testing"
	"time"
)

func TestAddOnlyWhenAbsent(t *testing.T) {
	c := New(Config{Clock: time.Now})
	if !c.Add("k", []byte("1"), 0) {
		t.Fatal("Add on absent key failed")
	}
	if c.Add("k", []byte("2"), 0) {
		t.Fatal("Add on resident key succeeded")
	}
	v, _ := c.Get("k")
	if string(v) != "1" {
		t.Fatalf("value = %q, want 1", v)
	}
}

func TestReplaceOnlyWhenPresent(t *testing.T) {
	c := New(Config{Clock: time.Now})
	if c.Replace("k", []byte("1"), 0) {
		t.Fatal("Replace on absent key succeeded")
	}
	c.Set("k", []byte("1"), 0)
	if !c.Replace("k", []byte("2"), 0) {
		t.Fatal("Replace on resident key failed")
	}
	v, _ := c.Get("k")
	if string(v) != "2" {
		t.Fatalf("value = %q, want 2", v)
	}
}

func TestAddTreatsExpiredAsAbsent(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now})
	c.Set("k", []byte("old"), time.Second)
	clk.Advance(2 * time.Second)
	if !c.Add("k", []byte("new"), 0) {
		t.Fatal("Add treated expired key as resident")
	}
	v, _ := c.Get("k")
	if string(v) != "new" {
		t.Fatalf("value = %q, want new", v)
	}
}

func TestReplaceTreatsExpiredAsAbsent(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now})
	c.Set("k", []byte("old"), time.Second)
	clk.Advance(2 * time.Second)
	if c.Replace("k", []byte("new"), 0) {
		t.Fatal("Replace treated expired key as resident")
	}
}
