package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is an adjustable clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestGetSetDelete(t *testing.T) {
	c := New(Config{Clock: time.Now})
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Set("a", []byte("1"), 0)
	v, ok := c.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q,%v want 1,true", v, ok)
	}
	if !c.Delete("a") {
		t.Fatal("Delete(a) = false on resident key")
	}
	if c.Delete("a") {
		t.Fatal("Delete(a) = true on absent key")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted key still resident")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Sets != 1 || s.Deletes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOverwriteReplacesValue(t *testing.T) {
	c := New(Config{Clock: time.Now})
	c.Set("k", []byte("old"), 0)
	c.Set("k", []byte("new"), 0)
	v, _ := c.Get("k")
	if string(v) != "new" {
		t.Fatalf("value = %q, want new", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity for ~3 items of this size. Shards: 1 pins exact global
	// LRU order; with more shards eviction is LRU per shard.
	itemSize := int64(len("key-0")+1) + itemOverhead
	c := New(Config{Clock: time.Now, MaxBytes: 3 * itemSize, Shards: 1})
	for i := 0; i < 4; i++ {
		c.Set(fmt.Sprintf("key-%d", i), []byte("x"), 0)
	}
	if _, ok := c.Get("key-0"); ok {
		t.Fatal("LRU item key-0 not evicted")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("key-%d evicted out of LRU order", i)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	itemSize := int64(len("key-0")+1) + itemOverhead
	c := New(Config{Clock: time.Now, MaxBytes: 3 * itemSize, Shards: 1})
	c.Set("key-0", []byte("x"), 0)
	c.Set("key-1", []byte("x"), 0)
	c.Set("key-2", []byte("x"), 0)
	c.Get("key-0") // key-0 becomes MRU; key-1 is now LRU
	c.Set("key-3", []byte("x"), 0)
	if _, ok := c.Get("key-1"); ok {
		t.Fatal("key-1 should have been evicted")
	}
	if _, ok := c.Get("key-0"); !ok {
		t.Fatal("recently read key-0 was evicted")
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now})
	c.Set("k", []byte("v"), time.Minute)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh item missing")
	}
	clk.Advance(61 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired item still served")
	}
	if exp := c.Stats().Expirations; exp != 1 {
		t.Fatalf("Expirations = %d, want 1", exp)
	}
}

func TestDefaultTTL(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now, DefaultTTL: time.Minute})
	c.Set("k", []byte("v"), 0)
	clk.Advance(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("item expired before default TTL")
	}
	clk.Advance(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("item outlived default TTL")
	}
}

func TestTouchExtendsTTL(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now})
	c.Set("k", []byte("v"), time.Minute)
	clk.Advance(50 * time.Second)
	if !c.Touch("k", time.Minute) {
		t.Fatal("Touch failed on fresh key")
	}
	clk.Advance(50 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("touched item expired early")
	}
	if c.Touch("absent", time.Minute) {
		t.Fatal("Touch succeeded on absent key")
	}
}

func TestExpireSweep(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now})
	for i := 0; i < 10; i++ {
		c.Set(fmt.Sprintf("short-%d", i), []byte("v"), time.Second)
	}
	for i := 0; i < 5; i++ {
		c.Set(fmt.Sprintf("long-%d", i), []byte("v"), time.Hour)
	}
	clk.Advance(2 * time.Second)
	if dropped := c.ExpireSweep(); dropped != 10 {
		t.Fatalf("ExpireSweep dropped %d, want 10", dropped)
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d after sweep, want 5", c.Len())
	}
}

func TestColdKeys(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now})
	c.Set("old", []byte("v"), 0)
	clk.Advance(10 * time.Minute)
	c.Set("fresh", []byte("v"), 0)
	cold := c.ColdKeys(5 * time.Minute)
	if len(cold) != 1 || cold[0] != "old" {
		t.Fatalf("ColdKeys = %v, want [old]", cold)
	}
	// Accessing refreshes hotness.
	c.Get("old")
	if cold := c.ColdKeys(5 * time.Minute); len(cold) != 0 {
		t.Fatalf("ColdKeys after access = %v, want empty", cold)
	}
}

func TestHooksTrackResidency(t *testing.T) {
	linked := map[string]int{}
	unlinked := map[string]int{}
	itemSize := int64(1+1) + itemOverhead
	clk := newFakeClock()
	c := New(Config{
		MaxBytes: 2 * itemSize,
		Clock:    clk.Now,
		OnLink:   func(k string) { linked[k]++ },
		OnUnlink: func(k string) { unlinked[k]++ },
		Shards:   1, // exact global LRU so "c evicts a" is deterministic
	})
	c.Set("a", []byte("1"), 0)
	c.Set("a", []byte("2"), 0) // overwrite: unlink + link
	c.Set("b", []byte("1"), 0)
	c.Set("c", []byte("1"), 0) // evicts a
	c.Delete("b")
	if linked["a"] != 2 || unlinked["a"] != 2 {
		t.Errorf("a: linked=%d unlinked=%d, want 2/2", linked["a"], unlinked["a"])
	}
	if linked["b"] != 1 || unlinked["b"] != 1 {
		t.Errorf("b: linked=%d unlinked=%d, want 1/1", linked["b"], unlinked["b"])
	}
	if linked["c"] != 1 || unlinked["c"] != 0 {
		t.Errorf("c: linked=%d unlinked=%d, want 1/0", linked["c"], unlinked["c"])
	}
	// Net residency from hooks must equal actual contents.
	for k, n := range linked {
		resident := n-unlinked[k] == 1
		if resident != c.Contains(k) {
			t.Errorf("hook residency for %q = %v, cache says %v", k, resident, c.Contains(k))
		}
	}
}

func TestFlushAllFiresUnlink(t *testing.T) {
	unlinked := 0
	c := New(Config{Clock: time.Now, OnUnlink: func(string) { unlinked++ }})
	for i := 0; i < 7; i++ {
		c.Set(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	c.FlushAll()
	if unlinked != 7 {
		t.Fatalf("unlink fired %d times, want 7", unlinked)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("cache not empty after FlushAll: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := New(Config{Clock: time.Now})
	c.Set("a", []byte("1"), 0)
	c.Set("b", []byte("1"), 0)
	c.Set("c", []byte("1"), 0)
	c.Get("a")
	got := c.Keys()
	want := []string{"a", "c", "b"}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	c := New(Config{Clock: time.Now})
	c.Set("key", make([]byte, 100), 0)
	want := int64(3+100) + itemOverhead
	if got := c.Bytes(); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
	c.Delete("key")
	if got := c.Bytes(); got != 0 {
		t.Fatalf("Bytes = %d after delete, want 0", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Config{Clock: time.Now, MaxBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%512)
				switch i % 3 {
				case 0:
					c.Set(k, []byte("v"), 0)
				case 1:
					c.Get(k)
				default:
					c.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: whatever the op sequence, hook-derived residency matches
// Contains, and Bytes never exceeds MaxBytes.
func TestQuickResidencyInvariant(t *testing.T) {
	prop := func(ops []uint8) bool {
		live := map[string]bool{}
		c := New(Config{
			Clock:    time.Now,
			MaxBytes: 16 * (itemOverhead + 8),
			OnLink:   func(k string) { live[k] = true },
			OnUnlink: func(k string) { delete(live, k) },
		})
		for _, op := range ops {
			k := fmt.Sprintf("key%d", op%64)
			if op < 170 {
				c.Set(k, []byte("v"), 0)
			} else {
				c.Delete(k)
			}
			if c.Bytes() > 16*(itemOverhead+8) {
				return false
			}
		}
		if len(live) != c.Len() {
			return false
		}
		for k := range live {
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCacheSet(b *testing.B) {
	c := New(Config{Clock: time.Now, MaxBytes: 64 << 20})
	val := make([]byte, 1024)
	keys := make([]string, 8192)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(keys[i%len(keys)], val, 0)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(Config{Clock: time.Now})
	val := make([]byte, 1024)
	keys := make([]string, 8192)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
		c.Set(keys[i], val, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i%len(keys)])
	}
}
