package cache

import (
	"errors"
	"testing"
	"time"
)

func TestGetWithCASAndSwap(t *testing.T) {
	c := New(Config{Clock: time.Now})
	c.Set("k", []byte("v1"), 0)
	_, cas1, ok := c.GetWithCAS("k")
	if !ok || cas1 == 0 {
		t.Fatalf("GetWithCAS = cas=%d ok=%v", cas1, ok)
	}
	if res := c.CompareAndSwap("k", []byte("v2"), 0, cas1); res != CASStored {
		t.Fatalf("CAS with fresh token = %v, want CASStored", res)
	}
	v, cas2, _ := c.GetWithCAS("k")
	if string(v) != "v2" || cas2 == cas1 {
		t.Fatalf("after swap: v=%q cas=%d (old %d)", v, cas2, cas1)
	}
	// Stale token: value changed since cas1.
	if res := c.CompareAndSwap("k", []byte("v3"), 0, cas1); res != CASExists {
		t.Fatalf("CAS with stale token = %v, want CASExists", res)
	}
	if res := c.CompareAndSwap("absent", []byte("v"), 0, 1); res != CASNotFound {
		t.Fatalf("CAS on absent key = %v, want CASNotFound", res)
	}
}

func TestCASChangesOnEveryMutation(t *testing.T) {
	c := New(Config{Clock: time.Now})
	c.Set("k", []byte("1"), 0)
	_, cas1, _ := c.GetWithCAS("k")
	c.Set("k", []byte("2"), 0)
	_, cas2, _ := c.GetWithCAS("k")
	if cas2 == cas1 {
		t.Fatal("overwrite did not change CAS token")
	}
	c.Append("k", []byte("x"))
	_, cas3, _ := c.GetWithCAS("k")
	if cas3 == cas2 {
		t.Fatal("append did not change CAS token")
	}
}

func TestGetWithCASExpired(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now})
	c.Set("k", []byte("v"), time.Second)
	clk.Advance(2 * time.Second)
	if _, _, ok := c.GetWithCAS("k"); ok {
		t.Fatal("expired item served by GetWithCAS")
	}
	if res := c.CompareAndSwap("k", []byte("v"), 0, 1); res != CASNotFound {
		t.Fatalf("CAS on expired = %v, want CASNotFound", res)
	}
}

func TestIncrementDecrement(t *testing.T) {
	c := New(Config{Clock: time.Now})
	c.Set("n", []byte("10"), 0)
	v, found, err := c.Increment("n", 5)
	if err != nil || !found || v != 15 {
		t.Fatalf("Increment = %d,%v,%v", v, found, err)
	}
	v, found, err = c.Decrement("n", 7)
	if err != nil || !found || v != 8 {
		t.Fatalf("Decrement = %d,%v,%v", v, found, err)
	}
	// Clamp at zero.
	v, _, _ = c.Decrement("n", 100)
	if v != 0 {
		t.Fatalf("Decrement below zero = %d, want 0", v)
	}
	// Stored value is the decimal string.
	raw, _ := c.Get("n")
	if string(raw) != "0" {
		t.Fatalf("stored value %q, want \"0\"", raw)
	}
	// Absent key.
	if _, found, _ := c.Increment("ghost", 1); found {
		t.Fatal("Increment on absent key reported found")
	}
	// Non-numeric value.
	c.Set("s", []byte("abc"), 0)
	if _, _, err := c.Increment("s", 1); !errors.Is(err, ErrNotNumber) {
		t.Fatalf("Increment on non-number err = %v", err)
	}
}

func TestIncrementBytesAccounting(t *testing.T) {
	c := New(Config{Clock: time.Now})
	c.Set("n", []byte("9"), 0)
	before := c.Bytes()
	c.Increment("n", 1) // "9" -> "10": one byte longer
	if got := c.Bytes(); got != before+1 {
		t.Fatalf("Bytes = %d, want %d", got, before+1)
	}
}

func TestAppendPrepend(t *testing.T) {
	c := New(Config{Clock: time.Now})
	if c.Append("k", []byte("x")) {
		t.Fatal("Append to absent key succeeded")
	}
	c.Set("k", []byte("mid"), 0)
	if !c.Append("k", []byte("-end")) {
		t.Fatal("Append failed")
	}
	if !c.Prepend("k", []byte("start-")) {
		t.Fatal("Prepend failed")
	}
	v, _ := c.Get("k")
	if string(v) != "start-mid-end" {
		t.Fatalf("value = %q", v)
	}
}

func TestConcatRespectsCapacity(t *testing.T) {
	// Room for both small items plus one grown item, but not for the
	// grown item and a small one together.
	itemSize := int64(1+4) + itemOverhead // 53
	grownSize := itemSize + 64            // 117
	// Shards: 1 so "a" and "b" compete for one budget (global LRU).
	c := New(Config{Clock: time.Now, MaxBytes: grownSize + itemSize/2, Shards: 1})
	c.Set("a", []byte("1234"), 0)
	c.Set("b", []byte("1234"), 0)
	// Growing b pushes total over capacity; LRU (a) is evicted.
	if !c.Append("b", make([]byte, 64)) {
		t.Fatal("Append failed")
	}
	if c.Contains("a") {
		t.Fatal("LRU item survived over-capacity append")
	}
	if !c.Contains("b") {
		t.Fatal("appended item evicted")
	}
}
