// Package cache implements the in-memory key-value store at the heart of
// each Proteus cache server: a byte-bounded LRU with per-item TTL, the
// Go counterpart of the paper's modified memcached. Item link/unlink
// events are exposed as hooks so a counting Bloom filter digest can be
// kept exactly consistent with cache contents (the paper wires these to
// memcached's do_item_link / do_item_unlink).
package cache

import (
	"fmt"
	"sync"
	"time"
)

// itemOverhead approximates memcached's per-item bookkeeping cost, added
// to key+value length when accounting bytes.
const itemOverhead = 48

// Config configures a Cache. Except for Clock — which is required —
// the zero value of every field is usable: unlimited size, no expiry,
// no hooks.
type Config struct {
	// MaxBytes bounds the total accounted size (keys + values +
	// per-item overhead); 0 means unlimited. The least recently used
	// items are evicted to stay within the bound.
	MaxBytes int64
	// DefaultTTL applies to Set calls with ttl == 0; 0 means items
	// never expire.
	DefaultTTL time.Duration
	// Clock supplies the current time and is required: this package is
	// replay-critical, so the caller must choose the time source
	// explicitly. The discrete-event simulator injects its virtual
	// clock; live-plane constructors (cacheserver) pass time.Now at
	// the wall-clock boundary.
	Clock func() time.Time
	// OnLink is invoked (under the cache lock) whenever a key becomes
	// resident; OnUnlink whenever it stops being resident (delete,
	// eviction, expiry, or overwrite). Hooks must not call back into
	// the cache.
	OnLink   func(key string)
	OnUnlink func(key string)
}

// Stats is a snapshot of cache counters, matching the memcached "stats"
// command fields the evaluation uses.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Sets        uint64
	Deletes     uint64
	Evictions   uint64
	Expirations uint64
	Items       int
	Bytes       int64
}

// HitRatio returns hits / (hits + misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s Stats) String() string {
	return fmt.Sprintf("items=%d bytes=%d hits=%d misses=%d hit_ratio=%.4f evictions=%d expirations=%d",
		s.Items, s.Bytes, s.Hits, s.Misses, s.HitRatio(), s.Evictions, s.Expirations)
}

type entry struct {
	key        string
	value      []byte
	expires    time.Time // zero means never
	lastAccess time.Time
	cas        uint64 // unique token for check-and-set
	prev, next *entry // intrusive LRU list
}

func (e *entry) size() int64 { return int64(len(e.key)) + int64(len(e.value)) + itemOverhead }

// Cache is a thread-safe LRU + TTL store.
type Cache struct {
	cfg Config

	mu         sync.Mutex
	items      map[string]*entry
	head       *entry // most recently used
	tail       *entry // least recently used
	bytes      int64
	stats      Stats
	casCounter uint64
}

// New builds an empty cache. Config.Clock must be set: silently
// defaulting to the wall clock here is exactly the kind of hidden
// nondeterminism the replay contract (and proteuslint's nodeterminism
// analyzer) forbids, so a nil Clock panics like other unusable configs
// in this repository (cf. metrics.NewLatencySeries).
func New(cfg Config) *Cache {
	if cfg.Clock == nil {
		panic("cache: Config.Clock is required; pass time.Now at a live-plane boundary or the sim clock for replay")
	}
	return &Cache{cfg: cfg, items: make(map[string]*entry)}
}

// now is the configured clock.
func (c *Cache) now() time.Time { return c.cfg.Clock() }

// Get returns the value for key and whether it was resident and fresh.
// A hit refreshes the item's LRU position and last-access time. The
// returned slice is the cache's own buffer; callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	now := c.now()
	if e.expired(now) {
		c.removeLocked(e, &c.stats.Expirations)
		c.stats.Misses++
		return nil, false
	}
	e.lastAccess = now
	c.moveToFrontLocked(e)
	c.stats.Hits++
	return e.value, true
}

// Peek returns the value without refreshing recency or counting a
// hit/miss; used by inspection paths.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok || e.expired(c.now()) {
		return nil, false
	}
	return e.value, true
}

// Contains reports residency (fresh, non-expired) without stat effects.
func (c *Cache) Contains(key string) bool {
	_, ok := c.Peek(key)
	return ok
}

// Set stores value under key. ttl == 0 applies the configured default;
// a negative ttl stores an already-expired item (useful in tests). The
// value slice is retained; callers must not modify it afterwards.
func (c *Cache) Set(key string, value []byte, ttl time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setLocked(key, value, ttl)
}

// Add stores value only if key is not already resident (memcached
// "add"), reporting whether it stored.
func (c *Cache) Add(key string, value []byte, ttl time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok && !e.expired(c.now()) {
		return false
	}
	c.setLocked(key, value, ttl)
	return true
}

// Replace stores value only if key is already resident (memcached
// "replace"), reporting whether it stored.
func (c *Cache) Replace(key string, value []byte, ttl time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; !ok || e.expired(c.now()) {
		return false
	}
	c.setLocked(key, value, ttl)
	return true
}

func (c *Cache) setLocked(key string, value []byte, ttl time.Duration) {
	now := c.now()
	if ttl == 0 {
		ttl = c.cfg.DefaultTTL
	}
	var expires time.Time
	if ttl != 0 {
		expires = now.Add(ttl)
	}
	if old, ok := c.items[key]; ok {
		c.removeLocked(old, nil)
	}
	c.casCounter++
	e := &entry{key: key, value: value, expires: expires, lastAccess: now, cas: c.casCounter}
	c.items[key] = e
	c.pushFrontLocked(e)
	c.bytes += e.size()
	c.stats.Sets++
	if c.cfg.OnLink != nil {
		c.cfg.OnLink(key)
	}
	c.evictLocked()
}

// Delete removes key, reporting whether it was resident.
func (c *Cache) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeLocked(e, nil)
	c.stats.Deletes++
	return true
}

// Touch resets the TTL of a resident key, reporting success.
func (c *Cache) Touch(key string, ttl time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	now := c.now()
	if !ok || e.expired(now) {
		return false
	}
	if ttl == 0 {
		ttl = c.cfg.DefaultTTL
	}
	if ttl == 0 {
		e.expires = time.Time{}
	} else {
		e.expires = now.Add(ttl)
	}
	e.lastAccess = now
	c.moveToFrontLocked(e)
	return true
}

// FlushAll removes every item (memcached flush_all).
func (c *Cache) FlushAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.items {
		if c.cfg.OnUnlink != nil {
			c.cfg.OnUnlink(e.key)
		}
	}
	c.items = make(map[string]*entry)
	c.head, c.tail, c.bytes = nil, nil, 0
}

// ExpireSweep removes all items whose TTL has passed and returns how
// many were dropped. Expiry is otherwise lazy (checked on access).
func (c *Cache) ExpireSweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	dropped := 0
	for e := c.tail; e != nil; {
		prev := e.prev
		if e.expired(now) {
			c.removeLocked(e, &c.stats.Expirations)
			dropped++
		}
		e = prev
	}
	return dropped
}

// ColdKeys returns the keys not accessed within the given window — the
// complement of the paper's "hot" set. The smooth-transition logic uses
// this to verify a server is safe to power off after TTL seconds.
func (c *Cache) ColdKeys(window time.Duration) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := c.now().Add(-window)
	var cold []string
	for _, e := range c.items {
		if e.lastAccess.Before(cutoff) {
			cold = append(cold, e.key)
		}
	}
	return cold
}

// Len returns the number of resident items (including not-yet-swept
// expired ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the accounted size of resident items.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Items = len(c.items)
	s.Bytes = c.bytes
	return s
}

// Keys returns all resident keys in most-recently-used-first order.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.items))
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

func (e *entry) expired(now time.Time) bool {
	return !e.expires.IsZero() && !now.Before(e.expires)
}

// removeLocked unlinks e from the map and list, fires OnUnlink, and
// bumps the optional counter (used for eviction/expiry stats).
func (c *Cache) removeLocked(e *entry, counter *uint64) {
	delete(c.items, e.key)
	c.unlinkLocked(e)
	c.bytes -= e.size()
	if counter != nil {
		*counter++
	}
	if c.cfg.OnUnlink != nil {
		c.cfg.OnUnlink(e.key)
	}
}

// evictLocked drops LRU items until within MaxBytes.
func (c *Cache) evictLocked() {
	if c.cfg.MaxBytes <= 0 {
		return
	}
	for c.bytes > c.cfg.MaxBytes && c.tail != nil {
		c.removeLocked(c.tail, &c.stats.Evictions)
	}
}

func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}
