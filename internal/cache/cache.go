// Package cache implements the in-memory key-value store at the heart of
// each Proteus cache server: a byte-bounded LRU with per-item TTL, the
// Go counterpart of the paper's modified memcached. Item link/unlink
// events are exposed as hooks so a counting Bloom filter digest can be
// kept exactly consistent with cache contents (the paper wires these to
// memcached's do_item_link / do_item_unlink).
//
// The store is sharded: keys are hash-routed to a power-of-two array of
// independently locked shards, each with its own LRU list and byte
// budget, so concurrent Get/Set traffic scales with cores instead of
// serializing behind one mutex (the striped-locking design of memcached
// itself and the MemC3 line of work). Global counters are atomics; the
// OnLink/OnUnlink hooks fire under the owning shard's lock, preserving
// the exact digest-residency invariant per shard.
package cache

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// itemOverhead approximates memcached's per-item bookkeeping cost, added
// to key+value length when accounting bytes.
const itemOverhead = 48

// DefaultShards is the shard count selected by Config.Shards == 0. It
// is a fixed constant — not derived from GOMAXPROCS — so that replayed
// workloads (the DES, fig6) behave identically on every machine.
const DefaultShards = 16

// Config configures a Cache. Except for Clock — which is required —
// the zero value of every field is usable: unlimited size, no expiry,
// no hooks, DefaultShards shards.
type Config struct {
	// MaxBytes bounds the total accounted size (keys + values +
	// per-item overhead); 0 means unlimited. The budget is divided
	// evenly across shards and the least recently used items of a
	// shard are evicted to keep that shard within its share, so the
	// global bound always holds. With Shards > 1 eviction order is
	// therefore LRU per shard, not globally; replay experiments that
	// depend on exact global LRU (fig6, the DES) set Shards to 1.
	MaxBytes int64
	// DefaultTTL applies to Set calls with ttl == 0; 0 means items
	// never expire.
	DefaultTTL time.Duration
	// Clock supplies the current time and is required: this package is
	// replay-critical, so the caller must choose the time source
	// explicitly. The discrete-event simulator injects its virtual
	// clock; live-plane constructors (cacheserver) pass time.Now at
	// the wall-clock boundary.
	Clock func() time.Time
	// OnLink is invoked (under the owning shard's lock) whenever a key
	// becomes resident; OnUnlink whenever it stops being resident
	// (delete, eviction, expiry, or overwrite). Hooks must not call
	// back into the cache.
	OnLink   func(key string)
	OnUnlink func(key string)
	// Shards is the number of independently locked shards; it is
	// rounded up to a power of two. 0 selects DefaultShards. 1 gives
	// the exact global-LRU semantics of a single-mutex cache (used by
	// the deterministic replay planes and as the contention control in
	// benchmarks).
	Shards int
}

// Stats is a snapshot of cache counters, matching the memcached "stats"
// command fields the evaluation uses.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Sets        uint64
	Deletes     uint64
	Evictions   uint64
	Expirations uint64
	Items       int
	Bytes       int64
}

// HitRatio returns hits / (hits + misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s Stats) String() string {
	return fmt.Sprintf("items=%d bytes=%d hits=%d misses=%d hit_ratio=%.4f evictions=%d expirations=%d",
		s.Items, s.Bytes, s.Hits, s.Misses, s.HitRatio(), s.Evictions, s.Expirations)
}

type entry struct {
	key        string
	value      []byte
	expires    time.Time // zero means never
	lastAccess time.Time
	seq        uint64 // global access ordinal (Keys MRU ordering)
	cas        uint64 // unique token for check-and-set
	prev, next *entry // intrusive LRU list
}

func (e *entry) size() int64 { return int64(len(e.key)) + int64(len(e.value)) + itemOverhead }

// counters holds the cache-wide statistics. Every field is an atomic so
// the hot path never touches a lock shared with other shards.
type counters struct {
	hits        atomic.Uint64
	misses      atomic.Uint64
	sets        atomic.Uint64
	deletes     atomic.Uint64
	evictions   atomic.Uint64
	expirations atomic.Uint64
}

// shard is one independently locked slice of the key space: its own
// map, its own intrusive LRU list, its own byte budget. The trailing
// pad keeps adjacent shards on separate cache lines so uncontended
// locks do not false-share.
type shard struct {
	mu       sync.Mutex
	items    map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	bytes    int64
	maxBytes int64 // this shard's slice of Config.MaxBytes
	bounded  bool  // false when Config.MaxBytes == 0 (unlimited)
	_        [40]byte
}

// Cache is a thread-safe sharded LRU + TTL store.
type Cache struct {
	cfg    Config
	shards []shard
	mask   uint64

	ctr        counters
	casCounter atomic.Uint64
	accessSeq  atomic.Uint64
}

// New builds an empty cache. Config.Clock must be set: silently
// defaulting to the wall clock here is exactly the kind of hidden
// nondeterminism the replay contract (and proteuslint's nodeterminism
// analyzer) forbids, so a nil Clock panics like other unusable configs
// in this repository (cf. metrics.NewLatencySeries).
func New(cfg Config) *Cache {
	if cfg.Clock == nil {
		panic("cache: Config.Clock is required; pass time.Now at a live-plane boundary or the sim clock for replay")
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	n = nextPow2(n)
	c := &Cache{cfg: cfg, shards: make([]shard, n), mask: uint64(n - 1)}
	var base, rem int64
	if cfg.MaxBytes > 0 {
		base, rem = cfg.MaxBytes/int64(n), cfg.MaxBytes%int64(n)
	}
	for i := range c.shards {
		budget := base
		if int64(i) < rem {
			budget = base + 1
		}
		s := &c.shards[i]
		s.items = make(map[string]*entry)
		s.bounded = cfg.MaxBytes > 0
		s.maxBytes = budget
	}
	return c
}

// nextPow2 rounds n up to the next power of two (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the shard count the cache was built with.
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor routes a key to its shard by FNV-1a hash. The hash is fixed
// and seedless so shard assignment — and therefore per-shard eviction —
// replays identically across runs and machines.
//
//lint:hotpath shard routing on every operation
func (c *Cache) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&c.mask]
}

// now is the configured clock.
func (c *Cache) now() time.Time { return c.cfg.Clock() }

// Get returns the value for key and whether it was resident and fresh.
// A hit refreshes the item's LRU position and last-access time. The
// returned slice is the cache's own buffer; callers must not modify it.
//
//lint:hotpath the serving read path
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.ctr.misses.Add(1)
		return nil, false
	}
	now := c.now()
	if e.expired(now) {
		c.removeLocked(s, e, &c.ctr.expirations)
		s.mu.Unlock()
		c.ctr.misses.Add(1)
		return nil, false
	}
	e.lastAccess = now
	e.seq = c.accessSeq.Add(1)
	s.moveToFrontLocked(e)
	value := e.value
	s.mu.Unlock()
	c.ctr.hits.Add(1)
	return value, true
}

// Peek returns the value without refreshing recency or counting a
// hit/miss; used by inspection paths.
func (c *Cache) Peek(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok || e.expired(c.now()) {
		return nil, false
	}
	return e.value, true
}

// Contains reports residency (fresh, non-expired) without stat effects.
func (c *Cache) Contains(key string) bool {
	_, ok := c.Peek(key)
	return ok
}

// Set stores value under key. ttl == 0 applies the configured default;
// a negative ttl stores an already-expired item (useful in tests). The
// value slice is retained; callers must not modify it afterwards.
func (c *Cache) Set(key string, value []byte, ttl time.Duration) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	c.setLocked(s, key, value, ttl)
}

// Add stores value only if key is not already resident (memcached
// "add"), reporting whether it stored.
func (c *Cache) Add(key string, value []byte, ttl time.Duration) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok && !e.expired(c.now()) {
		return false
	}
	c.setLocked(s, key, value, ttl)
	return true
}

// Replace stores value only if key is already resident (memcached
// "replace"), reporting whether it stored.
func (c *Cache) Replace(key string, value []byte, ttl time.Duration) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; !ok || e.expired(c.now()) {
		return false
	}
	c.setLocked(s, key, value, ttl)
	return true
}

// setLocked stores into s, which must be key's shard and locked by the
// caller.
func (c *Cache) setLocked(s *shard, key string, value []byte, ttl time.Duration) {
	now := c.now()
	if ttl == 0 {
		ttl = c.cfg.DefaultTTL
	}
	var expires time.Time
	if ttl != 0 {
		expires = now.Add(ttl)
	}
	if old, ok := s.items[key]; ok {
		c.removeLocked(s, old, nil)
	}
	e := &entry{
		key: key, value: value, expires: expires, lastAccess: now,
		seq: c.accessSeq.Add(1), cas: c.casCounter.Add(1),
	}
	s.items[key] = e
	s.pushFrontLocked(e)
	s.bytes += e.size()
	c.ctr.sets.Add(1)
	if c.cfg.OnLink != nil {
		c.cfg.OnLink(key)
	}
	c.evictLocked(s)
}

// Delete removes key, reporting whether it was resident.
func (c *Cache) Delete(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return false
	}
	c.removeLocked(s, e, nil)
	c.ctr.deletes.Add(1)
	return true
}

// Touch resets the TTL of a resident key, reporting success.
func (c *Cache) Touch(key string, ttl time.Duration) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	now := c.now()
	if !ok || e.expired(now) {
		return false
	}
	if ttl == 0 {
		ttl = c.cfg.DefaultTTL
	}
	if ttl == 0 {
		e.expires = time.Time{}
	} else {
		e.expires = now.Add(ttl)
	}
	e.lastAccess = now
	e.seq = c.accessSeq.Add(1)
	s.moveToFrontLocked(e)
	return true
}

// FlushAll removes every item (memcached flush_all).
func (c *Cache) FlushAll() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.items {
			if c.cfg.OnUnlink != nil {
				c.cfg.OnUnlink(e.key)
			}
		}
		s.items = make(map[string]*entry)
		s.head, s.tail, s.bytes = nil, nil, 0
		s.mu.Unlock()
	}
}

// ExpireSweep removes all items whose TTL has passed and returns how
// many were dropped. Expiry is otherwise lazy (checked on access).
func (c *Cache) ExpireSweep() int {
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		now := c.now()
		for e := s.tail; e != nil; {
			prev := e.prev
			if e.expired(now) {
				c.removeLocked(s, e, &c.ctr.expirations)
				dropped++
			}
			e = prev
		}
		s.mu.Unlock()
	}
	return dropped
}

// ColdKeys returns the keys not accessed within the given window — the
// complement of the paper's "hot" set. The smooth-transition logic uses
// this to verify a server is safe to power off after TTL seconds.
func (c *Cache) ColdKeys(window time.Duration) []string {
	cutoff := c.now().Add(-window)
	var cold []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.items {
			if e.lastAccess.Before(cutoff) {
				cold = append(cold, e.key)
			}
		}
		s.mu.Unlock()
	}
	// Map iteration order must not leak into replay-critical output:
	// power-off safety decisions consume this list.
	sort.Strings(cold)
	return cold
}

// Len returns the number of resident items (including not-yet-swept
// expired ones).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the accounted size of resident items.
func (c *Cache) Bytes() int64 {
	var b int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		b += s.bytes
		s.mu.Unlock()
	}
	return b
}

// Stats returns a snapshot of the counters. The counter fields are each
// atomically read; concurrent traffic may tick one counter between two
// reads, so the snapshot is per-field exact rather than globally
// instantaneous (same as memcached "stats" under load).
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:        c.ctr.hits.Load(),
		Misses:      c.ctr.misses.Load(),
		Sets:        c.ctr.sets.Load(),
		Deletes:     c.ctr.deletes.Load(),
		Evictions:   c.ctr.evictions.Load(),
		Expirations: c.ctr.expirations.Load(),
	}
	s.Items = c.Len()
	s.Bytes = c.Bytes()
	return s
}

// Keys returns all resident keys in most-recently-used-first order
// across every shard (ordered by the global access ordinal each hit or
// store assigns).
func (c *Cache) Keys() []string {
	type keySeq struct {
		key string
		seq uint64
	}
	var all []keySeq
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.head; e != nil; e = e.next {
			all = append(all, keySeq{e.key, e.seq})
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	out := make([]string, len(all))
	for i, ks := range all {
		out[i] = ks.key
	}
	return out
}

func (e *entry) expired(now time.Time) bool {
	return !e.expires.IsZero() && !now.Before(e.expires)
}

// removeLocked unlinks e from s's map and list, fires OnUnlink, and
// bumps the optional counter (used for eviction/expiry stats). s must
// be locked by the caller.
func (c *Cache) removeLocked(s *shard, e *entry, counter *atomic.Uint64) {
	delete(s.items, e.key)
	s.unlinkLocked(e)
	s.bytes -= e.size()
	if counter != nil {
		counter.Add(1)
	}
	if c.cfg.OnUnlink != nil {
		c.cfg.OnUnlink(e.key)
	}
}

// evictLocked drops LRU items until s is within its byte budget.
func (c *Cache) evictLocked(s *shard) {
	if !s.bounded {
		return
	}
	for s.bytes > s.maxBytes && s.tail != nil {
		c.removeLocked(s, s.tail, &c.ctr.evictions)
	}
}

func (s *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFrontLocked(e *entry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}
