// Package clustertest brings up a live-plane Proteus cluster — in-process
// cacheserver.LocalNodes behind a cluster.Coordinator — with the
// deterministic wiring the chaos and conformance suites standardise on:
// a manual transition timer instead of wall-clock TTLs, and (optionally)
// a fault injector spliced into every client dialer plus the
// coordinator's transition hook.
//
// It lives in its own package (not testutil proper) because it imports
// the coordinator: test suites below cluster in the import graph
// (cacheserver, cluster itself) use testutil's leaf helpers instead.
package clustertest

import (
	"net"
	"testing"
	"time"

	"proteus/internal/cache"
	"proteus/internal/cacheclient"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/faultinject"
	"proteus/internal/hotkey"
	"proteus/internal/telemetry"
	"proteus/internal/testutil"
)

// Opts configures a test cluster. The zero value of every optional
// field is usable.
type Opts struct {
	// Nodes is the provisioning-order length (required, >= 1).
	Nodes int
	// InitialActive is the starting active prefix (required, >= 1).
	InitialActive int
	// Replicas enables Section III-E replication (0 or 1 disables).
	Replicas int
	// HotReplicas enables hot-key replication: promoted keys resolve
	// at this replica depth (0 or 1 disables).
	HotReplicas int
	// HotTracker, when set with HotReplicas > Replicas, enables online
	// promotion from the coordinator's top-k sketch.
	HotTracker *hotkey.TrackerConfig
	// Backend selects the placement geometry (empty = Algorithm 1).
	Backend core.BackendKind
	// TTL is the transition hot-data window; it only shapes the
	// recorded deadline — expiry fires via the manual timer. Defaults
	// to one minute.
	TTL time.Duration
	// Faults, when set, is wired into every client dialer (per-server
	// indices bound from the provisioning order) and into the
	// coordinator's transition hook, with retries made deterministic:
	// no real sleeps, no circuit breaker, seeded jitter.
	Faults *faultinject.Injector
	// Seed salts the per-client jitter streams when Faults is set.
	Seed int64
	// After, when set, replaces the default ManualTimer for transition
	// TTL scheduling. The conformance harness injects a cancellable
	// virtual timer here: overlapping transitions cancel the pending
	// expiry, which a fire-everything manual timer cannot express.
	After func(d time.Duration, fn func()) func()
	// Events, when set, receives the coordinator's transition timeline.
	Events *telemetry.EventLog
}

// Env is a running test cluster, torn down via t.Cleanup.
type Env struct {
	Coord  *cluster.Coordinator
	Locals []*cluster.LocalNode
	Timer  *testutil.ManualTimer
}

// Start brings up Opts.Nodes local cache servers and a coordinator over
// them, registering teardown with t.Cleanup.
func Start(t testing.TB, o Opts) *Env {
	t.Helper()
	env, err := New(o)
	if err != nil {
		t.Fatalf("clustertest: %v", err)
	}
	t.Cleanup(env.Close)
	return env
}

// New is Start without the testing.TB: the conformance harness
// (internal/check) builds clusters outside any test. Callers own Close.
func New(o Opts) (*Env, error) {
	if o.TTL <= 0 {
		o.TTL = time.Minute
	}
	timer := &testutil.ManualTimer{}
	after := o.After
	if after == nil {
		after = timer.After
	}
	nodes := make([]cluster.Node, o.Nodes)
	locals := make([]*cluster.LocalNode, o.Nodes)
	addrIdx := make(map[string]int, o.Nodes)
	for i := range nodes {
		locals[i] = cluster.NewLocalNode(cache.Config{}, testutil.SmallDigest())
		nodes[i] = locals[i]
		addrIdx[locals[i].Addr()] = i
	}
	cfg := cluster.Config{
		Nodes:         nodes,
		InitialActive: o.InitialActive,
		TTL:           o.TTL,
		Replicas:      o.Replicas,
		HotReplicas:   o.HotReplicas,
		Backend:       o.Backend,
		HotTracker:    o.HotTracker,
		After:         after,
		Faults:        o.Faults,
		Events:        o.Events,
	}
	if inj := o.Faults; inj != nil {
		seed := o.Seed
		cfg.NewClient = func(addr string) *cacheclient.Client {
			server := addrIdx[addr]
			return cacheclient.New(addr,
				cacheclient.WithDialer(func(a string, to time.Duration) (net.Conn, error) {
					return inj.Dial(server, a, to)
				}),
				cacheclient.WithTimeout(2*time.Second),
				cacheclient.WithJitterSeed(seed+int64(server)),
				// No real sleeps and no breaker: the fault schedule must
				// be a pure function of the operation sequence, free of
				// wall-clock state, so two runs with one seed match
				// event for event.
				cacheclient.WithSleep(func(time.Duration) {}),
				cacheclient.WithBreaker(0, 0),
			)
		}
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		for _, l := range locals {
			_ = l.PowerOff()
		}
		return nil, err
	}
	return &Env{Coord: coord, Locals: locals, Timer: timer}, nil
}

// Close finalizes any transition and powers every node off.
func (e *Env) Close() {
	e.Coord.Close()
	for _, l := range e.Locals {
		_ = l.PowerOff()
	}
}
