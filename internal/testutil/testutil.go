// Package testutil holds the shared test scaffolding that used to be
// duplicated across the cacheserver, webtier, and sim test suites:
// deterministic corpora and database tiers, the standard small digest
// parameters, a manual transition timer, and seeded RNG helpers.
//
// The package deliberately imports only leaf packages (bloom, wiki,
// database, workload) so that every test suite in the tree — including
// the internal test packages of cacheserver and cluster, which sit
// below the coordinator in the import graph — can use it without
// creating an import cycle. Cluster bring-up helpers, which must import
// the coordinator itself, live in the clustertest subpackage.
package testutil

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/database"
	"proteus/internal/wiki"
)

// SmallDigest returns the counting-filter parameters the test suites
// standardise on: large enough that false positives stay rare over a
// few hundred keys, small enough to snapshot cheaply.
func SmallDigest() bloom.Params {
	return bloom.Params{Counters: 1 << 14, CounterBits: 4, Hashes: 4}
}

// NewCorpus builds a deterministic wiki corpus, failing the test on
// error.
func NewCorpus(t testing.TB, pages, pageSize int) *wiki.Corpus {
	t.Helper()
	corpus, err := wiki.New(pages, pageSize)
	if err != nil {
		t.Fatalf("testutil: corpus: %v", err)
	}
	return corpus
}

// NewDB builds a no-sleep database tier over the corpus: latency
// bookkeeping without wall-clock delays, the configuration every test
// that is not measuring latency wants.
func NewDB(t testing.TB, corpus *wiki.Corpus, shards int) *database.DB {
	t.Helper()
	db, err := database.New(database.Config{
		Shards: shards,
		Corpus: corpus,
		Sleep:  func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("testutil: database: %v", err)
	}
	return db
}

// Rand returns a seeded *rand.Rand. Tests must never touch the global
// math/rand source (the determinism contract of DESIGN.md §6); this
// helper makes the compliant idiom one call.
func Rand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ManualTimer collects cluster.Config.After callbacks so tests control
// exactly when a transition's TTL window expires. Fire drains and runs
// every pending callback.
type ManualTimer struct {
	mu  sync.Mutex
	fns []func()
}

// After implements the cluster.Config.After signature. The returned
// cancel is a no-op: tests that registered a callback decide whether to
// fire it.
func (m *ManualTimer) After(d time.Duration, fn func()) func() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fns = append(m.fns, fn)
	return func() {}
}

// Fire runs and clears every pending callback.
func (m *ManualTimer) Fire() {
	m.mu.Lock()
	fns := m.fns
	m.fns = nil
	m.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Pending reports how many callbacks are waiting.
func (m *ManualTimer) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.fns)
}
