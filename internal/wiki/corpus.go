// Package wiki provides a deterministic synthetic Wikipedia corpus,
// substituting for the 70 GB 2011-12-01 English dump the paper loads
// into MySQL. Page keys play the paper's page-title role; page bodies
// are generated pseudo-text around the paper's 4 KB-per-page figure.
// Generation is a pure function of (seed, index), so every component —
// database shards, workload generators, verification code — sees the
// same corpus without storing it.
package wiki

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultPageSize is the paper's nominal page size (Fig. 6 assumes
// "4KB data per page").
const DefaultPageSize = 4096

// Corpus describes a synthetic page collection.
type Corpus struct {
	pages    int
	meanSize int
	seed     uint64
}

// New creates a corpus of n pages with the given mean body size in
// bytes (0 selects DefaultPageSize).
func New(n, meanSize int) (*Corpus, error) {
	if n < 1 {
		return nil, fmt.Errorf("wiki: corpus needs at least 1 page, got %d", n)
	}
	if meanSize == 0 {
		meanSize = DefaultPageSize
	}
	if meanSize < 16 {
		return nil, fmt.Errorf("wiki: mean page size %d too small", meanSize)
	}
	return &Corpus{pages: n, meanSize: meanSize, seed: 0x77696b69 /* "wiki" */}, nil
}

// Pages returns the corpus size.
func (c *Corpus) Pages() int { return c.pages }

// MeanSize returns the configured mean body size.
func (c *Corpus) MeanSize() int { return c.meanSize }

const keyPrefix = "page:"

// Key returns the data key of page i (the paper's keyd, "a page title
// in Wikipedia").
func (c *Corpus) Key(i int) string {
	return keyPrefix + strconv.Itoa(i)
}

// Index parses a key back to its page index, reporting whether the key
// belongs to this corpus.
func (c *Corpus) Index(key string) (int, bool) {
	if !strings.HasPrefix(key, keyPrefix) {
		return 0, false
	}
	i, err := strconv.Atoi(key[len(keyPrefix):])
	if err != nil || i < 0 || i >= c.pages {
		return 0, false
	}
	return i, true
}

// Size returns the body size of page i without generating it. Sizes
// vary deterministically in [meanSize/2, 3*meanSize/2).
func (c *Corpus) Size(i int) int {
	span := c.meanSize // width of the size range
	return c.meanSize/2 + int(mix(c.seed^uint64(i))%uint64(span))
}

// Page generates the body of page i. The body is wiki-markup-flavoured
// pseudo-text of exactly Size(i) bytes, stable across calls.
func (c *Corpus) Page(i int) []byte {
	size := c.Size(i)
	var b strings.Builder
	b.Grow(size + 64)
	fmt.Fprintf(&b, "= Article %d =\n", i)
	state := mix(c.seed ^ uint64(i) ^ 0xa5a5a5a5)
	for b.Len() < size {
		state = mix(state)
		word := vocabulary[state%uint64(len(vocabulary))]
		if b.Len() > 0 && (state>>32)%13 == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
		b.WriteString(word)
	}
	return []byte(b.String()[:size])
}

// PageByKey generates the body for a key, reporting whether the key is
// in the corpus.
func (c *Corpus) PageByKey(key string) ([]byte, bool) {
	i, ok := c.Index(key)
	if !ok {
		return nil, false
	}
	return c.Page(i), true
}

// TotalBytes estimates the whole corpus size (sum of mean sizes).
func (c *Corpus) TotalBytes() int64 {
	return int64(c.pages) * int64(c.meanSize)
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vocabulary supplies the pseudo-text tokens.
var vocabulary = []string{
	"the", "of", "and", "in", "was", "history", "article", "category",
	"reference", "external", "link", "page", "wikipedia", "encyclopedia",
	"infobox", "citation", "needed", "section", "revision", "template",
	"population", "government", "university", "science", "culture",
	"music", "geography", "language", "century", "world", "national",
	"system", "theory", "development", "international", "community",
}
