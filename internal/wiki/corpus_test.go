package wiki

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Error("New(0,0) accepted")
	}
	if _, err := New(10, 4); err == nil {
		t.Error("tiny page size accepted")
	}
	c, err := New(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanSize() != DefaultPageSize {
		t.Errorf("default mean size = %d", c.MeanSize())
	}
}

func TestKeyIndexRoundTrip(t *testing.T) {
	c, err := New(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 500, 999} {
		key := c.Key(i)
		got, ok := c.Index(key)
		if !ok || got != i {
			t.Fatalf("Index(Key(%d)) = %d,%v", i, got, ok)
		}
	}
	for _, bad := range []string{"", "page:", "page:abc", "page:-1", "page:1000", "user:5"} {
		if _, ok := c.Index(bad); ok {
			t.Errorf("Index(%q) accepted", bad)
		}
	}
}

func TestPageDeterministicAndSized(t *testing.T) {
	c, err := New(100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 7 {
		a := c.Page(i)
		b := c.Page(i)
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d not deterministic", i)
		}
		if len(a) != c.Size(i) {
			t.Fatalf("page %d: len=%d Size=%d", i, len(a), c.Size(i))
		}
		if c.Size(i) < 2048 || c.Size(i) >= 6144 {
			t.Fatalf("page %d size %d outside [mean/2, 3*mean/2)", i, c.Size(i))
		}
	}
}

func TestPagesDiffer(t *testing.T) {
	c, err := New(10, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.Page(1), c.Page(2)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if bytes.Equal(a[:n], b[:n]) {
		t.Error("adjacent pages identical")
	}
}

func TestPageByKey(t *testing.T) {
	c, err := New(10, 256)
	if err != nil {
		t.Fatal(err)
	}
	body, ok := c.PageByKey(c.Key(3))
	if !ok || !bytes.Equal(body, c.Page(3)) {
		t.Fatal("PageByKey mismatch")
	}
	if _, ok := c.PageByKey("nope"); ok {
		t.Fatal("PageByKey accepted foreign key")
	}
}

func TestMeanSizeApproximation(t *testing.T) {
	c, err := New(5000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < c.Pages(); i++ {
		total += int64(c.Size(i))
	}
	mean := float64(total) / float64(c.Pages())
	if mean < 3800 || mean > 4400 {
		t.Errorf("empirical mean size %.0f, want ≈4096", mean)
	}
	if got, want := c.TotalBytes(), int64(5000*4096); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

// Property: every valid index round-trips and sizes are in range.
func TestQuickCorpusInvariants(t *testing.T) {
	c, err := New(1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(raw uint32) bool {
		i := int(raw % (1 << 20))
		key := c.Key(i)
		j, ok := c.Index(key)
		if !ok || j != i {
			return false
		}
		s := c.Size(i)
		return s >= 2048 && s < 6144
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
