package faultinject

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrInjected marks every fault surfaced as an error, so tests and
// resilience code can tell injected faults from organic failures with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Dial dials addr with OpDial faults applied and, on success, returns
// the connection wrapped with OpRead/OpWrite fault points. It is shaped
// to slot straight into cacheclient.WithDialer via a closure binding
// the server index.
func (in *Injector) Dial(server int, addr string, timeout time.Duration) (net.Conn, error) {
	switch d := in.Decide(server, OpDial); d.Kind {
	case KindDelay, KindSlowRead:
		//lint:allow nodeterminism live-plane fault actuation: the schedule is already fixed by the seeded Decide; the DES applies delays in virtual time instead
		time.Sleep(d.Delay)
	case KindError, KindDrop:
		return nil, fmt.Errorf("dial %s: %w", addr, ErrInjected)
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(server, nc), nil
}

// WrapConn wraps an established connection (either side) so every Read
// and Write consults the injector first. cacheserver.Config.WrapConn
// accepts the server-side closure.
func (in *Injector) WrapConn(server int, nc net.Conn) net.Conn {
	return &faultConn{Conn: nc, in: in, server: server}
}

type faultConn struct {
	net.Conn
	in     *Injector
	server int
}

func (c *faultConn) Read(p []byte) (int, error) {
	switch d := c.in.Decide(c.server, OpRead); d.Kind {
	case KindDelay:
		//lint:allow nodeterminism live-plane fault actuation: the schedule is already fixed by the seeded Decide; the DES applies delays in virtual time instead
		time.Sleep(d.Delay)
	case KindSlowRead:
		//lint:allow nodeterminism live-plane fault actuation: the schedule is already fixed by the seeded Decide; the DES applies delays in virtual time instead
		time.Sleep(d.Delay)
		if len(p) > 1 {
			p = p[:1]
		}
	case KindError:
		return 0, fmt.Errorf("read: %w", ErrInjected)
	case KindDrop:
		c.Conn.Close()
		return 0, fmt.Errorf("read: %w", ErrInjected)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	switch d := c.in.Decide(c.server, OpWrite); d.Kind {
	case KindDelay, KindSlowRead:
		//lint:allow nodeterminism live-plane fault actuation: the schedule is already fixed by the seeded Decide; the DES applies delays in virtual time instead
		time.Sleep(d.Delay)
	case KindError:
		return 0, fmt.Errorf("write: %w", ErrInjected)
	case KindDrop:
		c.Conn.Close()
		return 0, fmt.Errorf("write: %w", ErrInjected)
	}
	return c.Conn.Write(p)
}
