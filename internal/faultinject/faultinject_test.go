package faultinject

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// Same seed, same per-rule event sequence -> identical schedules.
func TestProbabilisticScheduleDeterministic(t *testing.T) {
	run := func() []int {
		in := New(42, Rule{Server: AnyServer, Op: OpGet, Kind: KindError, P: 0.05})
		var fired []int
		for i := 0; i < 2000; i++ {
			if d := in.Decide(i%4, OpGet); d.Kind != KindNone {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("p=0.05 over 2000 events never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// ~5% of 2000 = 100 firings; allow generous slack but catch
	// degenerate always/never behaviour.
	if len(a) < 50 || len(a) > 200 {
		t.Fatalf("p=0.05 fired %d/2000 times", len(a))
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	fires := func(seed int64) []int {
		in := New(seed, Rule{Server: AnyServer, Op: OpGet, Kind: KindError, P: 0.1})
		var out []int
		for i := 0; i < 500; i++ {
			if in.Decide(0, OpGet).Kind != KindNone {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := fires(1), fires(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

func TestEveryAtAfterLimit(t *testing.T) {
	in := New(1,
		Rule{Server: 0, Op: OpGet, Kind: KindError, Every: 3},
		Rule{Server: 1, Op: OpGet, Kind: KindDrop, At: 2},
		Rule{Server: 2, Op: OpGet, Kind: KindError, After: 4, Every: 1, Limit: 2},
	)
	var s0, s1, s2 []int
	for i := 1; i <= 9; i++ {
		if in.Decide(0, OpGet).Kind != KindNone {
			s0 = append(s0, i)
		}
		if in.Decide(1, OpGet).Kind != KindNone {
			s1 = append(s1, i)
		}
		if in.Decide(2, OpGet).Kind != KindNone {
			s2 = append(s2, i)
		}
	}
	if len(s0) != 3 || s0[0] != 3 || s0[1] != 6 || s0[2] != 9 {
		t.Errorf("Every=3 fired at %v, want [3 6 9]", s0)
	}
	if len(s1) != 1 || s1[0] != 2 {
		t.Errorf("At=2 fired at %v, want [2]", s1)
	}
	if len(s2) != 2 || s2[0] != 5 || s2[1] != 6 {
		t.Errorf("After=4 Every=1 Limit=2 fired at %v, want [5 6]", s2)
	}
}

func TestRuleScopesByServerAndOp(t *testing.T) {
	in := New(1, Rule{Server: 1, Op: OpRead, Kind: KindError, Every: 1})
	if d := in.Decide(0, OpRead); d.Kind != KindNone {
		t.Errorf("server 0 matched a server-1 rule: %v", d.Kind)
	}
	if d := in.Decide(1, OpWrite); d.Kind != KindNone {
		t.Errorf("write matched a read rule: %v", d.Kind)
	}
	if d := in.Decide(1, OpRead); d.Kind != KindError {
		t.Errorf("server 1 read not faulted: %v", d.Kind)
	}
}

// OpAny must not swallow control-plane events.
func TestOpAnyExcludesControlPlane(t *testing.T) {
	in := New(1, Rule{Server: AnyServer, Op: OpAny, Kind: KindError, Every: 1})
	if d := in.Decide(0, OpTick); d.Kind != KindNone {
		t.Errorf("OpAny matched OpTick: %v", d.Kind)
	}
	if d := in.Decide(0, OpDial); d.Kind != KindError {
		t.Errorf("OpAny missed OpDial: %v", d.Kind)
	}
}

func TestPartitionBlackholesServer(t *testing.T) {
	in := New(1)
	in.Partition(2)
	if !in.Partitioned(2) {
		t.Fatal("Partitioned(2) = false")
	}
	if d := in.Decide(2, OpDial); d.Kind != KindError {
		t.Errorf("dial to partitioned server: %v", d.Kind)
	}
	if d := in.Decide(1, OpDial); d.Kind != KindNone {
		t.Errorf("dial to healthy server faulted: %v", d.Kind)
	}
	in.Heal(2)
	if d := in.Decide(2, OpDial); d.Kind != KindNone {
		t.Errorf("dial after Heal faulted: %v", d.Kind)
	}
}

func TestTransitionCrashAndPartitionHooks(t *testing.T) {
	in := New(7,
		Rule{Server: 2, Op: OpTransition, Kind: KindCrash, At: 2},
		Rule{Server: 3, Op: OpTransition, Kind: KindPartition, At: 1},
	)
	var crashed []int
	in.OnCrash(func(s int) { crashed = append(crashed, s) })

	in.TransitionStarted()
	if len(crashed) != 0 {
		t.Fatalf("crash fired at transition 1: %v", crashed)
	}
	if !in.Partitioned(3) {
		t.Fatal("partition rule at transition 1 did not fire")
	}
	in.TransitionStarted()
	if len(crashed) != 1 || crashed[0] != 2 {
		t.Fatalf("crashed = %v, want [2]", crashed)
	}
	in.TransitionStarted()
	if len(crashed) != 1 {
		t.Fatalf("crash refired: %v", crashed)
	}
	if in.Transitions() != 3 {
		t.Fatalf("Transitions = %d", in.Transitions())
	}
}

func TestEventsLog(t *testing.T) {
	in := New(1, Rule{Server: 0, Op: OpGet, Kind: KindError, At: 1})
	in.Decide(0, OpGet)
	ev := in.Events()
	if len(ev) != 1 || ev[0].Server != 0 || ev[0].Kind != KindError || ev[0].Op != OpGet {
		t.Fatalf("Events = %v", ev)
	}
	if ev[0].String() == "" {
		t.Fatal("empty event string")
	}
}

// Conn wrapping: an injected read error surfaces as ErrInjected; a drop
// also kills the underlying conn.
func TestWrapConnFaults(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	in := New(1, Rule{Server: 0, Op: OpRead, Kind: KindError, At: 1})
	fc := in.WrapConn(0, client)
	defer fc.Close()

	buf := make([]byte, 8)
	if _, err := fc.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v, want ErrInjected", err)
	}

	// Second read passes through to the pipe.
	go func() {
		server.Write([]byte("hi"))
	}()
	n, err := fc.Read(buf)
	if err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("clean read = %q, %v", buf[:n], err)
	}
}

func TestWrapConnDropClosesUnderlying(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	in := New(1, Rule{Server: 0, Op: OpWrite, Kind: KindDrop, At: 1})
	fc := in.WrapConn(0, client)

	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	// The underlying conn is closed: the peer sees EOF.
	server.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := server.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("peer read after drop = %v, want EOF", err)
	}
}

func TestDialFaultAndPartition(t *testing.T) {
	in := New(1, Rule{Server: 0, Op: OpDial, Kind: KindError, At: 1})
	if _, err := in.Dial(0, "127.0.0.1:1", 100*time.Millisecond); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected dial error = %v", err)
	}
	// Subsequent dial reaches the network (refused port -> real error,
	// not ErrInjected).
	if _, err := in.Dial(0, "127.0.0.1:1", 100*time.Millisecond); errors.Is(err, ErrInjected) || err == nil {
		t.Fatalf("second dial = %v, want organic network error", err)
	}
}

func TestSlowReadDribbles(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	in := New(1, Rule{Server: 0, Op: OpRead, Kind: KindSlowRead, Every: 1})
	fc := in.WrapConn(0, client)
	defer fc.Close()
	go server.Write([]byte("abc"))
	buf := make([]byte, 8)
	n, err := fc.Read(buf)
	if err != nil || n != 1 {
		t.Fatalf("slow read returned n=%d err=%v, want 1 byte", n, err)
	}
}
